/**
 * @file
 * Recovery-latency curve (DESIGN.md §16): how long does it take to come
 * back from a crash, and where does the time go?
 *
 * Every cell of the sweep (tree height x shard count x storage backend
 * x integrity mode) runs the same controlled experiment:
 *
 *   1. *Probe*: drive a fixed write-heavy trace against a fresh system
 *      with an unarmed FaultInjector and count the persist boundaries.
 *   2. *Crash*: rebuild from scratch, arm the injector at the midpoint
 *      boundary, and drive the trace until the injected fault aborts it
 *      — a crash with WPQ rounds and redeliverable ADR state genuinely
 *      in flight.
 *   3. *Recover*: apply the power-failure recovery sequence and read
 *      the per-phase breakdown out of System::recovery_stats
 *      (common/stats.hh RecoveryStats — the six phases sum to the total
 *      exactly, which the CI schema gate checks per row).
 *
 * Sharded cells crash one shard mid-trace and then recover the whole
 * fleet (recoverAll); the row aggregates every shard's recovery.
 *
 * Overrides (bench_common.hh conventions):
 *   heights=4,6          tree heights to sweep
 *   shardlist=1,2,4      shard counts to sweep
 *   backends=memory,file,disk
 *   integrities=off,mac,tree
 *   ops=96               trace length per cell
 *   repeats=1            crash+recover cycles per cell
 *   flightrec=1          run every cell with the black box on
 *
 * Output: --json BENCH_recovery.json (per-phase ns as exact integers).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "common/stats.hh"
#include "sim/crash_enumerator.hh"
#include "sim/recovery_invariants.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram::bench {
namespace {

std::vector<std::string>
splitCsv(const std::string &value)
{
    std::vector<std::string> out;
    std::string token;
    for (std::size_t i = 0; i <= value.size(); ++i) {
        if (i < value.size() && value[i] != ',') {
            token += value[i];
            continue;
        }
        if (!token.empty())
            out.push_back(token);
        token.clear();
    }
    return out;
}

/** @return true if an InjectedFault aborted the trace. */
bool
driveTrace(PsOramController &controller,
           const std::vector<TraceOp> &trace)
{
    std::uint8_t buf[kBlockDataBytes];
    try {
        for (const TraceOp &op : trace) {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                controller.write(op.addr, buf);
            } else {
                controller.read(op.addr, buf);
            }
        }
    } catch (const InjectedFault &) {
        return true;
    }
    return false;
}

struct CellResult
{
    RecoveryStats stats;
    std::uint64_t boundaries = 0;
    std::uint64_t armed_at = 0;
    bool ok = true;
};

/** Probe, crash at the midpoint boundary, recover. One repeat. */
void
crashRecoverOnce(const SystemConfig &config,
                 const std::vector<TraceOp> &trace, CellResult &result)
{
    removeBackingTree(config.backing_file);
    {
        System probe = buildSystem(config);
        FaultInjector injector;
        probe.attachFaultInjector(&injector);
        driveTrace(*probe.controller, trace);
        result.boundaries = injector.boundariesSeen();
    }
    removeBackingTree(config.backing_file);
    if (result.boundaries == 0) {
        result.ok = false;
        return;
    }
    result.armed_at = 1 + result.boundaries / 2;

    System system = buildSystem(config);
    FaultInjector injector;
    system.attachFaultInjector(&injector);
    injector.armAt(result.armed_at);
    if (!driveTrace(*system.controller, trace)) {
        result.ok = false;
        return;
    }
    system.recoverController();
    result.stats.merge(*system.recovery_stats);
}

/** Sharded repeat: crash shard 0 mid-trace, recover the whole fleet. */
void
crashRecoverShardedOnce(const SystemConfig &base, unsigned shards,
                        const std::vector<TraceOp> &trace,
                        CellResult &result)
{
    ShardedSystemConfig config;
    config.base = base;
    config.sharding.num_shards = shards;

    const auto drive = [&trace](ShardedSystem &sharded) {
        std::uint8_t buf[kBlockDataBytes];
        try {
            for (const TraceOp &op : trace) {
                const ShardSlot slot = sharded.router.route(op.addr);
                if (op.is_write) {
                    stampPayload(slot.local, op.version, buf);
                    sharded.controller(slot.shard).write(slot.local,
                                                         buf);
                } else {
                    sharded.controller(slot.shard).read(slot.local,
                                                        buf);
                }
            }
        } catch (const InjectedFault &) {
            return true;
        }
        return false;
    };

    removeBackingTree(base.backing_file);
    {
        ShardedSystem probe = buildShardedSystem(config);
        FaultInjector injector;
        probe.shards[0].attachFaultInjector(&injector);
        drive(probe);
        result.boundaries = injector.boundariesSeen();
    }
    removeBackingTree(base.backing_file);
    if (result.boundaries == 0) {
        result.ok = false;
        return;
    }
    result.armed_at = 1 + result.boundaries / 2;

    ShardedSystem sharded = buildShardedSystem(config);
    FaultInjector injector;
    sharded.shards[0].attachFaultInjector(&injector);
    injector.armAt(result.armed_at);
    if (!drive(sharded)) {
        result.ok = false;
        return;
    }
    injector.disarm();
    sharded.recoverAll();
    for (const System &shard : sharded.shards)
        result.stats.merge(*shard.recovery_stats);
}

/** Emit one JSON row: exact-integer ns so phases sum to total. */
void
addRow(JsonReport &report, const SystemConfig &config, unsigned shards,
       const CellResult &result)
{
    const RecoveryStats &s = result.stats;
    report.addRow()
        .str("backend", backendName(config.effectiveBackend()))
        .str("integrity", integrityModeName(config.integrity))
        .count("height", config.tree_height)
        .count("shards", shards)
        .count("boundaries", result.boundaries)
        .count("armed_at", result.armed_at)
        .count("recoveries", s.recoveries.value())
        .count("wpq_replay_ns",
               static_cast<std::uint64_t>(s.wpq_replay.sum()))
        .count("adr_redeliver_ns",
               static_cast<std::uint64_t>(s.adr_redeliver.sum()))
        .count("image_reload_ns",
               static_cast<std::uint64_t>(s.image_reload.sum()))
        .count("posmap_rebuild_ns",
               static_cast<std::uint64_t>(s.posmap_rebuild.sum()))
        .count("integrity_verify_ns",
               static_cast<std::uint64_t>(s.integrity_verify.sum()))
        .count("node_repair_ns",
               static_cast<std::uint64_t>(s.node_repair.sum()))
        .count("total_ns", static_cast<std::uint64_t>(s.total.sum()))
        .count("redelivered_entries", s.redelivered_entries.value())
        .count("replayed_rounds", s.replayed_rounds.value())
        .count("records_verified", s.records_verified.value())
        .count("nodes_repaired", s.nodes_repaired.value())
        .count("blackbox_events", s.blackbox_events.value())
        .count("blackbox_torn", s.blackbox_torn.value());
}

int
benchMain(int argc, char **argv)
{
    BenchContext ctx = parseContext(argc, argv);

    std::vector<unsigned> heights =
        parseDepthList(ctx.overrides.getString("heights", "4,6"));
    std::vector<unsigned> shard_counts =
        parseDepthList(ctx.overrides.getString("shardlist", "1,2,4"));
    const std::vector<std::string> backends = splitCsv(
        ctx.overrides.getString("backends", "memory,file,disk"));
    const std::vector<std::string> integrities =
        splitCsv(ctx.overrides.getString("integrities", "off,mac,tree"));
    const std::size_t ops =
        static_cast<std::size_t>(ctx.overrides.getUint("ops", 96));
    const unsigned repeats =
        static_cast<unsigned>(ctx.overrides.getUint("repeats", 1));
    const bool flightrec = ctx.overrides.getUint("flightrec", 1) != 0;

    const std::string tree_path =
        "/tmp/psoram_bench_recovery_" +
        std::to_string(static_cast<long>(::getpid())) + ".tree";
    scrubBackingTreeOnExit(tree_path);

    JsonReport report("recovery");
    report.metaCount("ops", ops)
        .metaCount("repeats", repeats)
        .metaCount("flight_recorder", flightrec ? 1 : 0);

    TextTable table({"height", "shards", "backend", "integrity",
                     "boundaries", "total_us", "wpq_us", "adr_us",
                     "reload_us", "posmap_us", "verify_us",
                     "repair_us"});

    for (const unsigned height : heights) {
        for (const unsigned shards : shard_counts) {
            for (const std::string &backend : backends) {
                for (const std::string &integrity : integrities) {
                    SystemConfig config;
                    config.design = DesignKind::PsOram;
                    config.tree_height = height;
                    config.bucket_slots = 4;
                    const TreeGeometry geo{height, config.bucket_slots};
                    config.num_blocks = geo.dataBlocks(0.5);
                    config.stash_capacity = 96;
                    config.wpq_entries = static_cast<std::size_t>(
                        ctx.overrides.getUint("wpq", 96));
                    config.seed = ctx.overrides.getUint("seed", 1);
                    config.flight_recorder = flightrec;
                    if (!parseIntegrityMode(integrity,
                                            config.integrity)) {
                        std::cerr << "unknown integrity '" << integrity
                                  << "'\n";
                        return 2;
                    }
                    if (backend == "file") {
                        config.backend = BackendKind::File;
                        config.backing_file = tree_path;
                    } else if (backend == "disk") {
                        config.backend = BackendKind::Disk;
                        config.backing_file = tree_path;
                        config.disk_cache_pages = 64;
                        config.disk_pinned_pages = 4;
                    } else if (backend != "memory") {
                        std::cerr << "unknown backend '" << backend
                                  << "'\n";
                        return 2;
                    }

                    // The shard router partitions num_blocks, so the
                    // trace's address space is the same either way.
                    const std::vector<TraceOp> trace = makeCrashTrace(
                        config.seed ^ (height * 131 + shards), ops,
                        config.num_blocks, /*write_fraction=*/0.7);

                    CellResult result;
                    for (unsigned r = 0; r < repeats && result.ok; ++r) {
                        if (shards == 1)
                            crashRecoverOnce(config, trace, result);
                        else
                            crashRecoverShardedOnce(config, shards,
                                                    trace, result);
                    }
                    removeBackingTree(config.backing_file);
                    if (!result.ok) {
                        std::cerr << "cell height=" << height
                                  << " shards=" << shards << " backend="
                                  << backend << " integrity="
                                  << integrity
                                  << ": armed fault never fired\n";
                        return 1;
                    }
                    addRow(report, config, shards, result);
                    const RecoveryStats &s = result.stats;
                    table.addRow(
                        {std::to_string(height), std::to_string(shards),
                         backend, integrity,
                         std::to_string(result.boundaries),
                         TextTable::num(s.total.sum() / 1e3, 1),
                         TextTable::num(s.wpq_replay.sum() / 1e3, 1),
                         TextTable::num(s.adr_redeliver.sum() / 1e3, 1),
                         TextTable::num(s.image_reload.sum() / 1e3, 1),
                         TextTable::num(s.posmap_rebuild.sum() / 1e3, 1),
                         TextTable::num(s.integrity_verify.sum() / 1e3,
                                        1),
                         TextTable::num(s.node_repair.sum() / 1e3, 1)});
                }
            }
        }
    }

    table.print(std::cout);
    if (!ctx.json_path.empty())
        report.writeTo(ctx.json_path);
    return 0;
}

} // namespace
} // namespace psoram::bench

int
main(int argc, char **argv)
{
    return psoram::bench::benchMain(argc, argv);
}
