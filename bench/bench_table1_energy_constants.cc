/**
 * @file
 * Table 1 — energy cost estimation constants for crash-time draining
 * (following BBB [3]; see energy/drain_model.hh).
 */

#include <iostream>

#include "common/table.hh"
#include "energy/drain_model.hh"

int
main()
{
    using namespace psoram;

    const DrainCostParams params;
    std::cout << "# Table 1: Energy cost estimation in case of system "
                 "crashes (following [3])\n";
    TextTable table({"Operation", "Energy Cost", "Paper"});
    table.addRow({"Accessing data from SRAM",
                  TextTable::num(params.sram_access_j_per_byte * 1e12,
                                 3) + " pJ/Byte",
                  "1 pJ/Byte"});
    table.addRow({"Moving data from L1D to NVM",
                  TextTable::num(params.l1_to_nvm_j_per_byte * 1e9, 3) +
                      " nJ/Byte",
                  "11.839 nJ/Byte"});
    table.addRow({"Moving data from L2/stash/PosMap/WPQs to NVM",
                  TextTable::num(params.l2_to_nvm_j_per_byte * 1e9, 3) +
                      " nJ/Byte",
                  "11.228 nJ/Byte"});
    table.print(std::cout);
    return 0;
}
