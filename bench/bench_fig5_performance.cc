/**
 * @file
 * Figure 5 — normalized execution time of every design variant
 * (Z = 4, 1 channel, 1 core).
 *
 * 5(a): Baseline, FullNVM, FullNVM(STT), Naive-PS-ORAM, PS-ORAM
 *       normalized to Baseline.
 * 5(b): Rcr-Baseline and Rcr-PS-ORAM normalized to Baseline, plus the
 *       Rcr-PS-ORAM / Rcr-Baseline gap the paper quotes (3.65%).
 */

#include <chrono>
#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    const auto bench_start = std::chrono::steady_clock::now();
    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::Baseline);
    printConfigBanner(std::cout, banner, ctx.instructions);

    const std::vector<DesignKind> designs = allDesigns();

    // Run everything once: results[design][workload].
    std::map<DesignKind, std::vector<WorkloadResult>> results;
    for (const DesignKind design : designs) {
        for (const WorkloadSpec &workload : ctx.workloads)
            results[design].push_back(runCell(ctx, design, workload));
    }
    const auto &base = results[DesignKind::Baseline];

    std::cout << "\n# Figure 5(a): normalized execution time "
                 "(non-recursive designs; Baseline = 1.0)\n";
    std::vector<std::string> header{"Workload"};
    for (const DesignKind design : nonRecursiveDesigns())
        header.push_back(designName(design));
    TextTable table_a(header);
    for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
        std::vector<std::string> row{ctx.workloads[w].name};
        for (const DesignKind design : nonRecursiveDesigns())
            row.push_back(TextTable::num(
                cyclesMetric(results[design][w]) /
                cyclesMetric(base[w]), 3));
        table_a.addRow(row);
    }
    std::vector<std::string> avg_row{"average"};
    for (const DesignKind design : nonRecursiveDesigns())
        avg_row.push_back(TextTable::num(
            normalize(results[design], base, cyclesMetric).mean, 3));
    table_a.addRow(avg_row);
    table_a.print(std::cout);

    std::cout << "\n# Paper 5(a) averages: FullNVM +90.54%, "
                 "FullNVM(STT) +37.69%, Naive-PS-ORAM +73.92%, "
                 "PS-ORAM +4.29%\n";
    std::cout << "# Measured averages:";
    for (const DesignKind design :
         {DesignKind::FullNvm, DesignKind::FullNvmStt,
          DesignKind::NaivePsOram, DesignKind::PsOram})
        std::cout << " " << designName(design) << " "
                  << TextTable::pct(
                         normalize(results[design], base,
                                   cyclesMetric).mean - 1.0);
    std::cout << "\n";

    std::cout << "\n# Figure 5(b): recursive designs (normalized to "
                 "the non-recursive Baseline)\n";
    TextTable table_b({"Workload", "Rcr-Baseline", "Rcr-PS-ORAM",
                       "Rcr gap"});
    for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
        const double rcr_base =
            cyclesMetric(results[DesignKind::RcrBaseline][w]) /
            cyclesMetric(base[w]);
        const double rcr_ps =
            cyclesMetric(results[DesignKind::RcrPsOram][w]) /
            cyclesMetric(base[w]);
        table_b.addRow({ctx.workloads[w].name,
                        TextTable::num(rcr_base, 3),
                        TextTable::num(rcr_ps, 3),
                        TextTable::pct(rcr_ps / rcr_base - 1.0)});
    }
    const double rcr_base_mean =
        normalize(results[DesignKind::RcrBaseline], base,
                  cyclesMetric).mean;
    const double rcr_ps_mean =
        normalize(results[DesignKind::RcrPsOram], base,
                  cyclesMetric).mean;
    table_b.addRow({"average", TextTable::num(rcr_base_mean, 3),
                    TextTable::num(rcr_ps_mean, 3),
                    TextTable::pct(rcr_ps_mean / rcr_base_mean - 1.0)});
    table_b.print(std::cout);
    std::cout << "# Paper 5(b): Rcr-Baseline +68.93% vs Baseline, "
                 "Rcr-PS-ORAM +3.65% vs Rcr-Baseline\n";

    if (!ctx.json_path.empty()) {
        const double host_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - bench_start)
                .count();
        JsonReport report("fig5_performance");
        report.metaCount("instructions", ctx.instructions)
            .metaCount("tree_height", banner.tree_height)
            .metaCount("bucket_slots", banner.bucket_slots)
            .metaCount("seed", banner.seed)
            .metaNum("host_seconds", host_seconds);
        addSystemMeta(report, banner);
        for (const DesignKind design : designs) {
            for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
                const WorkloadResult &r = results[design][w];
                report.addRow()
                    .str("design", designName(design))
                    .str("workload", ctx.workloads[w].name)
                    .count("cycles", r.core.cycles)
                    .num("normalized_cycles",
                         cyclesMetric(r) / cyclesMetric(base[w]))
                    .count("oram_accesses", r.oram_accesses)
                    .count("stash_peak", r.stash_peak)
                    .num("stash_mean_occupancy",
                         r.stash_mean_occupancy);
            }
        }
        if (!report.writeTo(ctx.json_path))
            return 1;
    }
    return 0;
}
