/**
 * @file
 * Figure 7 — performance in multi-channel systems (1 / 2 / 4 channels)
 * for Baseline, PS-ORAM, Rcr-Baseline and Rcr-PS-ORAM.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::Baseline);
    printConfigBanner(std::cout, banner, ctx.instructions);

    const std::vector<DesignKind> designs = {
        DesignKind::Baseline, DesignKind::PsOram,
        DesignKind::RcrBaseline, DesignKind::RcrPsOram};
    const unsigned channel_counts[] = {1, 2, 4};

    // results[design][channel_index] = mean cycles across workloads.
    std::map<DesignKind, std::array<double, 3>> mean_cycles;
    std::map<DesignKind, std::array<std::vector<WorkloadResult>, 3>>
        all;
    for (const DesignKind design : designs) {
        for (std::size_t c = 0; c < 3; ++c) {
            double sum = 0.0;
            for (const WorkloadSpec &workload : ctx.workloads) {
                const WorkloadResult result =
                    runCell(ctx, design, workload, channel_counts[c]);
                all[design][c].push_back(result);
                sum += static_cast<double>(result.core.cycles);
            }
            mean_cycles[design][c] =
                sum / static_cast<double>(ctx.workloads.size());
        }
    }

    std::cout << "\n# Figure 7: mean execution time normalized to the "
                 "design's own 1-channel run\n";
    TextTable table({"Design", "1ch", "2ch", "4ch",
                     "perf +% (2ch vs 1ch)", "perf +% (4ch vs 1ch)"});
    for (const DesignKind design : designs) {
        const auto &m = mean_cycles[design];
        table.addRow({designName(design), "1.000",
                      TextTable::num(m[1] / m[0], 3),
                      TextTable::num(m[2] / m[0], 3),
                      TextTable::pct(m[0] / m[1] - 1.0),
                      TextTable::pct(m[0] / m[2] - 1.0)});
    }
    table.print(std::cout);
    std::cout << "# Paper: PS-ORAM +51.26% (2ch) / +53.76% (4ch) over "
                 "1ch; Rcr-PS-ORAM +46.50% / +55.21%\n";

    std::cout << "\n# Gap of the PS designs vs their baselines per "
                 "channel count\n";
    TextTable gaps({"Channels", "PS-ORAM vs Baseline",
                    "Rcr-PS-ORAM vs Rcr-Baseline"});
    for (std::size_t c = 0; c < 3; ++c) {
        gaps.addRow({std::to_string(channel_counts[c]),
                     TextTable::pct(mean_cycles[DesignKind::PsOram][c] /
                                        mean_cycles[DesignKind::Baseline]
                                                   [c] - 1.0),
                     TextTable::pct(
                         mean_cycles[DesignKind::RcrPsOram][c] /
                             mean_cycles[DesignKind::RcrBaseline][c] -
                         1.0)});
    }
    gaps.print(std::cout);
    std::cout << "# Paper: PS-ORAM slower than Baseline by 4.29% / "
                 "4.94% / 5.32%; Rcr by 3.65% / 2.12% / 5.36%\n";
    return 0;
}
