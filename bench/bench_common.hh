/**
 * @file
 * Shared plumbing for the table/figure bench binaries.
 *
 * Every bench accepts "key=value" overrides on the command line:
 *   instructions=N   trace length per workload (default 200000;
 *                    the paper samples 5000000 — pass that for full
 *                    fidelity runs)
 *   height=L z=Z stash=N wpq=N channels=N banks=N seed=N
 *   cipher=aes|fast  tech=pcm|stt
 *   workloads=K      only run the first K workloads (quick looks)
 */

#ifndef PSORAM_BENCH_BENCH_COMMON_HH
#define PSORAM_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/designs.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace psoram::bench {

struct BenchContext
{
    Config overrides;
    std::uint64_t instructions = 200'000;
    std::vector<WorkloadSpec> workloads;

    GeneratorParams
    genParams(std::uint64_t seed_salt = 0) const
    {
        GeneratorParams gen;
        gen.instructions = instructions;
        gen.seed = overrides.getUint("seed", 1) ^ (seed_salt * 0x9e37);
        return gen;
    }
};

inline BenchContext
parseContext(int argc, char **argv)
{
    BenchContext ctx;
    ctx.overrides.parseArgs(argc, argv);
    ctx.instructions =
        ctx.overrides.getUint("instructions", 200'000);
    ctx.workloads = spec2006Workloads();
    const auto limit = ctx.overrides.getUint("workloads", 0);
    if (limit > 0 && limit < ctx.workloads.size())
        ctx.workloads.resize(limit);
    return ctx;
}

/** Run one (design, workload) cell. */
inline WorkloadResult
runCell(const BenchContext &ctx, DesignKind design,
        const WorkloadSpec &workload, unsigned channels = 0)
{
    SystemConfig config = configFromOverrides(ctx.overrides, design);
    if (channels != 0)
        config.channels = channels;
    return runWorkload(config, workload,
                       ctx.genParams(workload.mpki * 1000));
}

/** Normalized execution time of @p design vs @p baseline per workload,
 *  plus the average; prints one row per workload. */
struct NormalizedSeries
{
    std::vector<double> per_workload;
    double mean = 0.0;
};

inline NormalizedSeries
normalize(const std::vector<WorkloadResult> &design_results,
          const std::vector<WorkloadResult> &baseline_results,
          double (*metric)(const WorkloadResult &))
{
    NormalizedSeries series;
    double sum = 0.0;
    for (std::size_t i = 0; i < design_results.size(); ++i) {
        const double value = metric(design_results[i]) /
                             metric(baseline_results[i]);
        series.per_workload.push_back(value);
        sum += value;
    }
    series.mean = design_results.empty()
        ? 0.0
        : sum / static_cast<double>(design_results.size());
    return series;
}

inline double
cyclesMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.core.cycles);
}

inline double
readsMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.traffic.reads);
}

inline double
writesMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.traffic.writes);
}

} // namespace psoram::bench

#endif // PSORAM_BENCH_BENCH_COMMON_HH
