/**
 * @file
 * Shared plumbing for the table/figure bench binaries.
 *
 * Every bench accepts "key=value" overrides on the command line:
 *   instructions=N   trace length per workload (default 200000;
 *                    the paper samples 5000000 — pass that for full
 *                    fidelity runs)
 *   height=L z=Z stash=N wpq=N channels=N banks=N seed=N
 *   cipher=aes|fast  tech=pcm|stt
 *   workloads=K      only run the first K workloads (quick looks)
 *
 * Storage backend selection ("--backend <kind>" or "--backend=<kind>",
 * equivalently the "backend=<kind>" override):
 *   --backend memory  in-memory NvmDevice (default)
 *   --backend file    FileBackedNvm (image checkpointed to a file)
 *   --backend disk    PagedDiskBackend (out-of-core page-cached tree)
 * file/disk take their path from "backingfile=<path>"; when absent the
 * bench generates a per-process temp path and deletes the tree at exit.
 * Disk tuning rides along as "cachepages=N pinpages=N".
 *
 * Benches additionally accept "--json <path>" (or --json=<path>): the
 * run then also emits a machine-readable report (BENCH_*.json) used by
 * the CI perf-smoke step and the perf trajectory in DESIGN.md §8.
 *
 * Observability flags (DESIGN.md §11), also "--flag <path>" or
 * "--flag=<path>":
 *   --trace <file>    record Chrome trace_event JSON of the run (open
 *                     at https://ui.perfetto.dev); written at exit
 *   --metrics <file>  dump a metrics snapshot at exit (.prom/.txt for
 *                     Prometheus text format, anything else JSON)
 */

#ifndef PSORAM_BENCH_BENCH_COMMON_HH
#define PSORAM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/config.hh"
#include "common/table.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/designs.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace psoram::bench {

/**
 * Minimal JSON report writer: a flat "meta" object plus one "results"
 * array of flat objects. Field order is preserved, numbers are emitted
 * raw and strings quoted — just enough structure for the perf-smoke CI
 * artifact and for plotting scripts, with no external dependency.
 */
class JsonReport
{
  public:
    /** Every report self-describes the machine and build that produced
     *  it: a single-core or Debug artifact (like an inverted depth
     *  curve) must be explainable from the JSON alone. */
    explicit JsonReport(std::string bench) : bench_(std::move(bench))
    {
#ifdef PSORAM_BUILD_TYPE
        meta_.str("build_type", PSORAM_BUILD_TYPE);
#else
        meta_.str("build_type", "unknown");
#endif
#ifdef PSORAM_GIT_SHA
        meta_.str("git_commit", PSORAM_GIT_SHA);
#else
        meta_.str("git_commit", "unknown");
#endif
        meta_.count("hardware_concurrency",
                    std::thread::hardware_concurrency());
    }

    /** One flat result object ("name": ... plus numeric fields). */
    class Row
    {
      public:
        Row &
        str(const std::string &key, const std::string &value)
        {
            fields_.emplace_back(key, quote(value));
            return *this;
        }
        Row &
        num(const std::string &key, double value)
        {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6g", value);
            fields_.emplace_back(key, buf);
            return *this;
        }
        Row &
        count(const std::string &key, std::uint64_t value)
        {
            fields_.emplace_back(key, std::to_string(value));
            return *this;
        }

      private:
        friend class JsonReport;
        std::vector<std::pair<std::string, std::string>> fields_;
    };

    JsonReport &
    meta(const std::string &key, const std::string &value)
    {
        meta_.str(key, value);
        return *this;
    }
    JsonReport &
    metaNum(const std::string &key, double value)
    {
        meta_.num(key, value);
        return *this;
    }
    JsonReport &
    metaCount(const std::string &key, std::uint64_t value)
    {
        meta_.count(key, value);
        return *this;
    }

    Row &
    addRow()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /** Write the document; returns false (and warns) on I/O failure. */
    bool
    writeTo(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "warning: cannot write JSON report to " << path
                      << "\n";
            return false;
        }
        out << "{\n  \"bench\": " << quote(bench_) << ",\n";
        for (const auto &[key, value] : meta_.fields_)
            out << "  " << quote(key) << ": " << value << ",\n";
        out << "  \"results\": [\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            out << "    {";
            const auto &fields = rows_[r].fields_;
            for (std::size_t f = 0; f < fields.size(); ++f)
                out << (f ? ", " : "") << quote(fields[f].first) << ": "
                    << fields[f].second;
            out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        return out.good();
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string quoted = "\"";
        for (const char c : s) {
            if (c == '"' || c == '\\')
                quoted += '\\';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    }

    std::string bench_;
    Row meta_;
    std::vector<Row> rows_;
};

struct BenchContext
{
    Config overrides;
    std::uint64_t instructions = 200'000;
    /** Resolved --backend / backend= choice ("memory"|"file"|"disk"). */
    std::string backend = "memory";
    /** Backing tree path for file/disk backends; empty for memory.
     *  When the bench generated it (no backingfile= given), the paths
     *  (plus per-shard suffixes) are deleted at exit. */
    std::string backing_file;
    bool owns_backing_file = false;
    /** Non-empty: also emit a JSON report here (--json <path>). */
    std::string json_path;
    /** Non-empty: record and write a Chrome trace here (--trace). */
    std::string trace_path;
    /** Non-empty: dump a metrics snapshot here at exit (--metrics). */
    std::string metrics_path;
    std::vector<WorkloadSpec> workloads;

    GeneratorParams
    genParams(std::uint64_t seed_salt = 0) const
    {
        GeneratorParams gen;
        gen.instructions = instructions;
        gen.seed = overrides.getUint("seed", 1) ^ (seed_salt * 0x9e37);
        return gen;
    }
};

/** @{ Exit-time trace dump: last setupObservability() path wins, so
 *  every bench leaves a trace behind without per-bench plumbing. */
inline std::string &
traceDumpPath()
{
    // Leaked: the atexit hook may run during static destruction.
    static std::string *path = new std::string();
    return *path;
}

inline void
traceDumpAtExit()
{
    if (!traceDumpPath().empty())
        obs::TraceRecorder::instance().writeTo(traceDumpPath());
}
/** @} */

/**
 * Honor the --trace/--metrics flags: enable the recorder and register
 * exit-time dumps. Called by parseContext(); harnesses that finish (or
 * abort) without further plumbing still leave the files behind.
 */
inline void
setupObservability(const BenchContext &ctx)
{
    if (!ctx.trace_path.empty()) {
        obs::TraceRecorder::instance().enable();
        static bool registered = false;
        traceDumpPath() = ctx.trace_path;
        if (!registered) {
            registered = true;
            std::atexit(traceDumpAtExit);
        }
    }
    if (!ctx.metrics_path.empty())
        obs::MetricsExporter::dumpAtExit(ctx.metrics_path);
}

/**
 * Delete a backing tree file plus any per-shard siblings
 * ("<path>.shardK") a sharded run may have created. Missing files are
 * fine — std::remove failures are ignored.
 */
inline void
removeBackingTree(const std::string &path, unsigned max_shards = 64)
{
    if (path.empty())
        return;
    std::remove(path.c_str());
    for (unsigned shard = 0; shard < max_shards; ++shard)
        std::remove((path + ".shard" + std::to_string(shard)).c_str());
}

/** @{ Exit-time scrub of bench-generated backing trees (same leaked-
 *  static pattern as the trace dump: the hook may run during static
 *  destruction). */
inline std::vector<std::string> &
scrubPaths()
{
    static std::vector<std::string> *paths = new std::vector<std::string>();
    return *paths;
}

inline void
scrubBackingTreesAtExit()
{
    for (const std::string &path : scrubPaths())
        removeBackingTree(path);
}

inline void
scrubBackingTreeOnExit(const std::string &path)
{
    static bool registered = false;
    if (!registered) {
        registered = true;
        std::atexit(scrubBackingTreesAtExit);
    }
    scrubPaths().push_back(path);
}
/** @} */

/** Value of "--name <v>" or "--name=<v>" (empty when absent). */
inline std::string
flagValue(int argc, char **argv, const std::string &name)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == name && i + 1 < argc)
            return argv[i + 1];
        if (arg.rfind(name + "=", 0) == 0)
            return arg.substr(name.size() + 1);
    }
    return "";
}

/** Parse a comma-separated depth list ("1,2,4,8"); invalid/empty
 *  tokens are skipped. */
inline std::vector<unsigned>
parseDepthList(const std::string &value)
{
    std::vector<unsigned> depths;
    std::string token;
    for (std::size_t i = 0; i <= value.size(); ++i) {
        if (i < value.size() && value[i] != ',') {
            token += value[i];
            continue;
        }
        if (!token.empty()) {
            const long depth = std::strtol(token.c_str(), nullptr, 10);
            if (depth > 0)
                depths.push_back(static_cast<unsigned>(depth));
            token.clear();
        }
    }
    return depths;
}

inline BenchContext
parseContext(int argc, char **argv)
{
    BenchContext ctx;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            ctx.json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            ctx.json_path = arg.substr(7);
        else if (arg == "--trace" && i + 1 < argc)
            ctx.trace_path = argv[++i];
        else if (arg.rfind("--trace=", 0) == 0)
            ctx.trace_path = arg.substr(8);
        else if (arg == "--metrics" && i + 1 < argc)
            ctx.metrics_path = argv[++i];
        else if (arg.rfind("--metrics=", 0) == 0)
            ctx.metrics_path = arg.substr(10);
    }
    setupObservability(ctx);
    ctx.overrides.parseArgs(argc, argv);
    const std::string backend_flag = flagValue(argc, argv, "--backend");
    if (!backend_flag.empty())
        ctx.overrides.set("backend", backend_flag);
    const std::string integrity_flag =
        flagValue(argc, argv, "--integrity");
    if (!integrity_flag.empty())
        ctx.overrides.set("integrity", integrity_flag);
    ctx.backend = ctx.overrides.getString("backend", "memory");
    ctx.backing_file = ctx.overrides.getString("backingfile", "");
    if (ctx.backend != "memory" && ctx.backing_file.empty()) {
        // file/disk need a tree path; keep generated ones out of the
        // repo and off the next run's plate.
        ctx.backing_file = "/tmp/psoram_bench_" +
                           std::to_string(static_cast<long>(::getpid())) +
                           ".tree";
        ctx.overrides.set("backingfile", ctx.backing_file);
        ctx.owns_backing_file = true;
        scrubBackingTreeOnExit(ctx.backing_file);
    }
    ctx.instructions =
        ctx.overrides.getUint("instructions", 200'000);
    ctx.workloads = spec2006Workloads();
    const auto limit = ctx.overrides.getUint("workloads", 0);
    if (limit > 0 && limit < ctx.workloads.size())
        ctx.workloads.resize(limit);
    return ctx;
}

/**
 * Stamp the pipeline-relevant bits of @p config into @p report's meta:
 * fetch-thread count and subtree-cache shape (resolved against the
 * PipelineParams defaults), so per-machine artifacts are explainable
 * without the command line that produced them.
 */
inline void
addSystemMeta(JsonReport &report, const SystemConfig &config)
{
    const PipelineParams defaults;
    report.meta("backend", backendName(config.effectiveBackend()));
    report.meta("integrity", integrityModeName(config.integrity));
    if (config.effectiveBackend() == BackendKind::Disk)
        report.metaCount("disk_cache_pages", config.disk_cache_pages)
            .metaCount("disk_pinned_pages", config.disk_pinned_pages);
    report.metaCount("fetch_threads", config.fetch_threads)
        .metaCount("cache_buckets", config.cache_buckets != 0
                       ? config.cache_buckets
                       : defaults.cache_buckets)
        .metaCount("cache_stripes", config.cache_stripes != 0
                       ? config.cache_stripes
                       : defaults.cache_stripes);
}

/** Run one (design, workload) cell. */
inline WorkloadResult
runCell(const BenchContext &ctx, DesignKind design,
        const WorkloadSpec &workload, unsigned channels = 0)
{
    SystemConfig config = configFromOverrides(ctx.overrides, design);
    if (channels != 0)
        config.channels = channels;
    return runWorkload(config, workload,
                       ctx.genParams(workload.mpki * 1000));
}

/** Normalized execution time of @p design vs @p baseline per workload,
 *  plus the average; prints one row per workload. */
struct NormalizedSeries
{
    std::vector<double> per_workload;
    double mean = 0.0;
};

inline NormalizedSeries
normalize(const std::vector<WorkloadResult> &design_results,
          const std::vector<WorkloadResult> &baseline_results,
          double (*metric)(const WorkloadResult &))
{
    NormalizedSeries series;
    double sum = 0.0;
    for (std::size_t i = 0; i < design_results.size(); ++i) {
        const double value = metric(design_results[i]) /
                             metric(baseline_results[i]);
        series.per_workload.push_back(value);
        sum += value;
    }
    series.mean = design_results.empty()
        ? 0.0
        : sum / static_cast<double>(design_results.size());
    return series;
}

inline double
cyclesMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.core.cycles);
}

inline double
readsMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.traffic.reads);
}

inline double
writesMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.traffic.writes);
}

} // namespace psoram::bench

#endif // PSORAM_BENCH_BENCH_COMMON_HH
