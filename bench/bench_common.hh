/**
 * @file
 * Shared plumbing for the table/figure bench binaries.
 *
 * Every bench accepts "key=value" overrides on the command line:
 *   instructions=N   trace length per workload (default 200000;
 *                    the paper samples 5000000 — pass that for full
 *                    fidelity runs)
 *   height=L z=Z stash=N wpq=N channels=N banks=N seed=N
 *   cipher=aes|fast  tech=pcm|stt
 *   workloads=K      only run the first K workloads (quick looks)
 *
 * Benches additionally accept "--json <path>" (or --json=<path>): the
 * run then also emits a machine-readable report (BENCH_*.json) used by
 * the CI perf-smoke step and the perf trajectory in DESIGN.md §8.
 */

#ifndef PSORAM_BENCH_BENCH_COMMON_HH
#define PSORAM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/table.hh"
#include "sim/designs.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace psoram::bench {

/**
 * Minimal JSON report writer: a flat "meta" object plus one "results"
 * array of flat objects. Field order is preserved, numbers are emitted
 * raw and strings quoted — just enough structure for the perf-smoke CI
 * artifact and for plotting scripts, with no external dependency.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    /** One flat result object ("name": ... plus numeric fields). */
    class Row
    {
      public:
        Row &
        str(const std::string &key, const std::string &value)
        {
            fields_.emplace_back(key, quote(value));
            return *this;
        }
        Row &
        num(const std::string &key, double value)
        {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6g", value);
            fields_.emplace_back(key, buf);
            return *this;
        }
        Row &
        count(const std::string &key, std::uint64_t value)
        {
            fields_.emplace_back(key, std::to_string(value));
            return *this;
        }

      private:
        friend class JsonReport;
        std::vector<std::pair<std::string, std::string>> fields_;
    };

    JsonReport &
    meta(const std::string &key, const std::string &value)
    {
        meta_.str(key, value);
        return *this;
    }
    JsonReport &
    metaNum(const std::string &key, double value)
    {
        meta_.num(key, value);
        return *this;
    }
    JsonReport &
    metaCount(const std::string &key, std::uint64_t value)
    {
        meta_.count(key, value);
        return *this;
    }

    Row &
    addRow()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /** Write the document; returns false (and warns) on I/O failure. */
    bool
    writeTo(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "warning: cannot write JSON report to " << path
                      << "\n";
            return false;
        }
        out << "{\n  \"bench\": " << quote(bench_) << ",\n";
        for (const auto &[key, value] : meta_.fields_)
            out << "  " << quote(key) << ": " << value << ",\n";
        out << "  \"results\": [\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            out << "    {";
            const auto &fields = rows_[r].fields_;
            for (std::size_t f = 0; f < fields.size(); ++f)
                out << (f ? ", " : "") << quote(fields[f].first) << ": "
                    << fields[f].second;
            out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        return out.good();
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string quoted = "\"";
        for (const char c : s) {
            if (c == '"' || c == '\\')
                quoted += '\\';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    }

    std::string bench_;
    Row meta_;
    std::vector<Row> rows_;
};

struct BenchContext
{
    Config overrides;
    std::uint64_t instructions = 200'000;
    /** Non-empty: also emit a JSON report here (--json <path>). */
    std::string json_path;
    std::vector<WorkloadSpec> workloads;

    GeneratorParams
    genParams(std::uint64_t seed_salt = 0) const
    {
        GeneratorParams gen;
        gen.instructions = instructions;
        gen.seed = overrides.getUint("seed", 1) ^ (seed_salt * 0x9e37);
        return gen;
    }
};

inline BenchContext
parseContext(int argc, char **argv)
{
    BenchContext ctx;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            ctx.json_path = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            ctx.json_path = arg.substr(7);
    }
    ctx.overrides.parseArgs(argc, argv);
    ctx.instructions =
        ctx.overrides.getUint("instructions", 200'000);
    ctx.workloads = spec2006Workloads();
    const auto limit = ctx.overrides.getUint("workloads", 0);
    if (limit > 0 && limit < ctx.workloads.size())
        ctx.workloads.resize(limit);
    return ctx;
}

/** Run one (design, workload) cell. */
inline WorkloadResult
runCell(const BenchContext &ctx, DesignKind design,
        const WorkloadSpec &workload, unsigned channels = 0)
{
    SystemConfig config = configFromOverrides(ctx.overrides, design);
    if (channels != 0)
        config.channels = channels;
    return runWorkload(config, workload,
                       ctx.genParams(workload.mpki * 1000));
}

/** Normalized execution time of @p design vs @p baseline per workload,
 *  plus the average; prints one row per workload. */
struct NormalizedSeries
{
    std::vector<double> per_workload;
    double mean = 0.0;
};

inline NormalizedSeries
normalize(const std::vector<WorkloadResult> &design_results,
          const std::vector<WorkloadResult> &baseline_results,
          double (*metric)(const WorkloadResult &))
{
    NormalizedSeries series;
    double sum = 0.0;
    for (std::size_t i = 0; i < design_results.size(); ++i) {
        const double value = metric(design_results[i]) /
                             metric(baseline_results[i]);
        series.per_workload.push_back(value);
        sum += value;
    }
    series.mean = design_results.empty()
        ? 0.0
        : sum / static_cast<double>(design_results.size());
    return series;
}

inline double
cyclesMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.core.cycles);
}

inline double
readsMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.traffic.reads);
}

inline double
writesMetric(const WorkloadResult &r)
{
    return static_cast<double>(r.traffic.writes);
}

} // namespace psoram::bench

#endif // PSORAM_BENCH_BENCH_COMMON_HH
