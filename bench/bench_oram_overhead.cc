/**
 * @file
 * §5.1 datum — ORAM overhead vs a non-ORAM NVM system: the paper quotes
 * 2x-24x (avg ~11x) at one channel and 1.8x-21x (avg ~6.5x) at four.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::Baseline);
    printConfigBanner(std::cout, banner, ctx.instructions);

    std::cout << "\n# Path ORAM (Baseline) vs non-ORAM NVM main "
                 "memory\n";
    TextTable table({"Workload", "overhead (1ch)", "overhead (4ch)"});
    double sum1 = 0.0, sum4 = 0.0;
    double min1 = 1e30, max1 = 0.0;
    for (const WorkloadSpec &workload : ctx.workloads) {
        SystemConfig config1 =
            configFromOverrides(ctx.overrides, DesignKind::Baseline);
        SystemConfig config4 = config1;
        config4.channels = 4;
        const GeneratorParams gen = ctx.genParams(workload.mpki * 131);

        const double oram1 = static_cast<double>(
            runWorkload(config1, workload, gen).core.cycles);
        const double raw1 = static_cast<double>(
            runWorkloadNoOram(config1, workload, gen).core.cycles);
        const double oram4 = static_cast<double>(
            runWorkload(config4, workload, gen).core.cycles);
        const double raw4 = static_cast<double>(
            runWorkloadNoOram(config4, workload, gen).core.cycles);

        const double o1 = oram1 / raw1;
        const double o4 = oram4 / raw4;
        sum1 += o1;
        sum4 += o4;
        min1 = std::min(min1, o1);
        max1 = std::max(max1, o1);
        table.addRow({workload.name, TextTable::num(o1, 2) + "x",
                      TextTable::num(o4, 2) + "x"});
    }
    const double n = static_cast<double>(ctx.workloads.size());
    table.addRow({"average", TextTable::num(sum1 / n, 2) + "x",
                  TextTable::num(sum4 / n, 2) + "x"});
    table.print(std::cout);
    std::cout << "# Measured range (1ch): " << TextTable::num(min1, 1)
              << "x - " << TextTable::num(max1, 1)
              << "x; paper: 2x-24x (avg ~11x) at 1ch, avg ~6.5x at "
                 "4ch.\n";
    return 0;
}
