/**
 * @file
 * Ablation — stash occupancy across designs and stash-capacity sweep:
 * validates the paper's Claim 2 (backup blocks do not change stash
 * occupancy) and shows the occupancy behaviour of the safe-placement
 * eviction vs classic greedy.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    printConfigBanner(std::cout, banner, ctx.instructions);

    const WorkloadSpec workload =
        ctx.workloads[std::min<std::size_t>(6,
                                            ctx.workloads.size() - 1)];

    std::cout << "\n# Stash occupancy per design (workload "
              << workload.name << ")\n";
    TextTable per_design({"Design", "mean occupancy", "peak",
                          "overflows", "backups created"});
    for (const DesignKind design : allDesigns()) {
        const WorkloadResult result =
            runWorkload(configFromOverrides(ctx.overrides, design),
                        workload, ctx.genParams(2));
        per_design.addRow(
            {designName(design),
             TextTable::num(result.stash_mean_occupancy, 2),
             std::to_string(result.stash_peak),
             std::to_string(0), // overflow would abort the run
             std::to_string(result.backups)});
    }
    per_design.print(std::cout);

    std::cout << "\n# PS-ORAM stash capacity sweep (Claim 2: backups "
                 "are always evicted, occupancy stays bounded)\n";
    TextTable sweep({"Stash capacity", "mean occupancy", "peak"});
    for (const std::size_t capacity : {100, 200, 400}) {
        SystemConfig config =
            configFromOverrides(ctx.overrides, DesignKind::PsOram);
        config.stash_capacity = capacity;
        const WorkloadResult result =
            runWorkload(config, workload, ctx.genParams(3));
        sweep.addRow({std::to_string(capacity),
                      TextTable::num(result.stash_mean_occupancy, 2),
                      std::to_string(result.stash_peak)});
    }
    sweep.print(std::cout);
    return 0;
}
