/**
 * @file
 * Figure 6 — NVM read and write traffic of every design, normalized to
 * Baseline (single channel).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::Baseline);
    printConfigBanner(std::cout, banner, ctx.instructions);

    std::map<DesignKind, std::vector<WorkloadResult>> results;
    for (const DesignKind design : allDesigns())
        for (const WorkloadSpec &workload : ctx.workloads)
            results[design].push_back(runCell(ctx, design, workload));
    const auto &base = results[DesignKind::Baseline];

    for (const bool writes : {false, true}) {
        std::cout << "\n# Figure 6(" << (writes ? "b" : "a")
                  << "): normalized NVM " << (writes ? "write" : "read")
                  << " traffic (Baseline = 1.0)\n";
        std::vector<std::string> header{"Workload"};
        for (const DesignKind design : allDesigns())
            header.push_back(designName(design));
        TextTable table(header);
        const auto metric = writes ? writesMetric : readsMetric;
        for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
            std::vector<std::string> row{ctx.workloads[w].name};
            for (const DesignKind design : allDesigns())
                row.push_back(TextTable::num(
                    metric(results[design][w]) / metric(base[w]), 3));
            table.addRow(row);
        }
        std::vector<std::string> avg{"average"};
        for (const DesignKind design : allDesigns())
            avg.push_back(TextTable::num(
                normalize(results[design], base, metric).mean, 3));
        table.addRow(avg);
        table.print(std::cout);
    }

    std::cout << "\n# Paper: reads — recursive designs +90.28%/+90.54%,"
                 " others unchanged.\n"
              << "# Paper: writes — FullNVM +111.63%, Naive ~+100%, "
                 "PS-ORAM +4.84%, Rcr-PS-ORAM +15.54% over "
                 "Rcr-Baseline.\n";
    const double rcr_delta =
        normalize(results[DesignKind::RcrPsOram],
                  results[DesignKind::RcrBaseline], writesMetric).mean;
    std::cout << "# Measured: Rcr-PS-ORAM writes vs Rcr-Baseline: "
              << TextTable::pct(rcr_delta - 1.0) << "\n";
    return 0;
}
