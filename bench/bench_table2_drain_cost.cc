/**
 * @file
 * Table 2 — estimated draining energy and time for PS-ORAM vs eADR on a
 * power failure (§4.2.4).
 */

#include <iostream>

#include "common/table.hh"
#include "energy/drain_model.hh"

int
main()
{
    using namespace psoram;

    const DrainModel model;
    const DrainInventory inventories[] = {
        DrainModel::eadrCache(),
        DrainModel::eadrOram(),
        DrainModel::psOramWpq(96),
        DrainModel::psOramWpq(4),
    };
    const char *paper_energy[] = {"12.653 mJ", "2.286 J", "76.530 uJ",
                                  "2.83 uJ"};
    const char *paper_time[] = {"26.638 us", "4.817 ms", "161.134 ns",
                                "6.713 ns"};

    const DrainCost ps96 = model.cost(DrainModel::psOramWpq(96));

    std::cout << "# Table 2: Estimated draining energy and time cost "
                 "for PS-ORAM vs. eADR\n";
    TextTable table({"System", "Energy", "Time", "Energy (paper)",
                     "Time (paper)", "Energy vs PS-ORAM(96)"});
    for (std::size_t i = 0; i < 4; ++i) {
        const DrainCost cost = model.cost(inventories[i]);
        table.addRow({inventories[i].name,
                      formatEnergy(cost.energy_joules),
                      formatTime(cost.time_seconds), paper_energy[i],
                      paper_time[i],
                      TextTable::num(cost.energy_joules /
                                         ps96.energy_joules,
                                     1) + "x"});
    }
    table.print(std::cout);

    std::cout << "\n# PS-ORAM drains 5-6 orders of magnitude less than "
                 "eADR-ORAM (paper: 29870x / 807797x).\n";
    return 0;
}
