/**
 * @file
 * Table 4 — workload roster with target (published) vs measured MPKI of
 * the calibrated synthetic traces through the Table 3a cache hierarchy.
 */

#include <iostream>

#include "bench_common.hh"
#include "mem/core.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    std::cout << "# Table 4: Workloads and their MPKIs (target = "
                 "published; measured = synthetic trace through "
                 "32K/32K L1 + 1MB L2)\n"
              << "# trace length: " << ctx.instructions
              << " instructions\n";

    TextTable table({"Workload", "MPKI (paper)", "MPKI (measured)",
                     "error"});
    for (const WorkloadSpec &workload : ctx.workloads) {
        SyntheticTrace trace(workload, ctx.genParams());
        CacheHierarchy hierarchy;
        InOrderCore core(hierarchy);
        const MemRequestHandler nop =
            [](const MemRequest &) -> CpuCycle { return 0; };
        const CoreRunStats stats = core.run(trace, nop);
        table.addRow({workload.name, TextTable::num(workload.mpki),
                      TextTable::num(stats.mpki()),
                      TextTable::pct(stats.mpki() / workload.mpki -
                                     1.0)});
    }
    table.print(std::cout);
    return 0;
}
