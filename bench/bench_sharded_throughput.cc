/**
 * @file
 * Sharded-engine throughput scaling: host accesses/sec of the
 * ShardedOramEngine worker pool at shards = 1, 2, 4, 8 on the PS-ORAM
 * design, reported per shard and in aggregate.
 *
 * The shards=1 configuration is byte-identical to the unsharded stack
 * (see sim/sharded_system.hh), so its throughput row is directly
 * comparable to the PS-ORAM row of BENCH_micro.json — within noise plus
 * the mailbox/drain-thread overhead of the engine frontend. Rows for
 * N > 1 carry "speedup_vs_1" so CI can eyeball the scaling curve; on a
 * single-core runner the curve is flat by construction.
 *
 * With "--json <path>" the run also emits BENCH_sharded.json. Overrides:
 * accesses=N (per-configuration target, default 20000), maxseconds=S
 * (per-configuration cap, default 0.8), shards=K (bench only K in
 * addition to the baseline 1) plus the usual height/z/stash/wpq/cipher/
 * seed keys shared with bench_micro_oram.
 *
 * "--pipeline-depth D" additionally runs every shard's intra-shard
 * engine at that pipeline depth (DESIGN.md §12), composing the two
 * parallelism axes: shards × in-flight accesses per shard.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"

namespace {

using namespace psoram;

struct ShardRow
{
    unsigned shard = 0;
    std::uint64_t accesses = 0;
    std::uint64_t physical = 0;
    std::uint64_t stash_hits = 0;
};

struct RunResult
{
    unsigned num_shards = 0;
    std::uint64_t accesses = 0;
    double seconds = 0.0;
    std::uint64_t physical = 0;
    std::vector<ShardRow> per_shard;

    double
    accessesPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(accesses) / seconds
                             : 0.0;
    }
};

/** Drive one worker-pool configuration to the access target. */
RunResult
runConfiguration(const psoram::bench::BenchContext &ctx,
                 unsigned num_shards, std::uint64_t target,
                 double max_seconds, unsigned pipeline_depth)
{
    using Clock = std::chrono::steady_clock;

    ShardedSystemConfig config;
    config.base = configFromOverrides(ctx.overrides, DesignKind::PsOram);
    config.base.pipeline_depth = pipeline_depth;
    config.sharding.num_shards = num_shards;

    // Per-shard tree capacity depends on the shard count, so a
    // file/disk backing tree left by the previous sweep cell would be
    // reopened with mismatched geometry (a fatal on disk). Each cell
    // measures a cold start from its own fresh trees.
    if (!config.base.backing_file.empty())
        psoram::bench::removeBackingTree(config.base.backing_file);

    ShardedSystem system = buildShardedSystem(config);
    ShardedEngineConfig engine_config;
    engine_config.record_completions = false;
    engine_config.pipeline_depth = pipeline_depth;
    ShardedOramEngine engine(system, engine_config);

    const BlockAddr blocks = system.router.totalBlocks();
    std::uint8_t buf[kBlockDataBytes] = {};
    BlockAddr addr = 0;
    const auto submitChunk = [&](unsigned count) {
        for (unsigned i = 0; i < count; ++i) {
            engine.submitWrite(addr, buf);
            // Stride 97 is coprime to the shard counts: consecutive
            // requests land on different shards, so every mailbox
            // stays busy.
            addr = (addr + 97) % blocks;
        }
        engine.drain();
    };

    // Warm every shard's tree and stash before timing.
    submitChunk(512 * num_shards);
    const ShardedOramEngine::StatsSnapshot warm = engine.stats();
    std::vector<ShardedOramEngine::StatsSnapshot> warm_shard;
    for (unsigned k = 0; k < num_shards; ++k)
        warm_shard.push_back(engine.shardStats(k));

    std::uint64_t accesses = 0;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    while (accesses < target && elapsed < max_seconds) {
        submitChunk(512);
        accesses += 512;
        elapsed =
            std::chrono::duration<double>(Clock::now() - t0).count();
    }

    RunResult result;
    result.num_shards = num_shards;
    result.accesses = accesses;
    result.seconds = elapsed;
    const ShardedOramEngine::StatsSnapshot total = engine.stats();
    result.physical = total.physical_accesses - warm.physical_accesses;
    for (unsigned k = 0; k < num_shards; ++k) {
        const ShardedOramEngine::StatsSnapshot s = engine.shardStats(k);
        ShardRow row;
        row.shard = k;
        row.accesses = s.completed - warm_shard[k].completed;
        row.physical =
            s.physical_accesses - warm_shard[k].physical_accesses;
        row.stash_hits = s.stash_hits - warm_shard[k].stash_hits;
        result.per_shard.push_back(row);
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const psoram::bench::BenchContext ctx =
        psoram::bench::parseContext(argc, argv);
    const std::uint64_t target = ctx.overrides.getUint("accesses", 20'000);
    const double max_seconds = ctx.overrides.getDouble("maxseconds", 0.8);
    const auto only = ctx.overrides.getUint("shards", 0);
    const std::string depth_flag =
        psoram::bench::flagValue(argc, argv, "--pipeline-depth");
    const std::vector<unsigned> depth_list =
        psoram::bench::parseDepthList(depth_flag);
    const unsigned pipeline_depth =
        depth_list.empty() ? 1 : depth_list.front();

    std::vector<unsigned> shard_counts{1, 2, 4, 8};
    if (only > 1)
        shard_counts = {1, static_cast<unsigned>(only)};

    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    psoram::bench::JsonReport report("sharded_throughput");
    report.metaCount("tree_height", banner.tree_height)
        .metaCount("bucket_slots", banner.bucket_slots)
        .metaCount("stash_capacity", banner.stash_capacity)
        .metaCount("wpq_entries", banner.wpq_entries)
        .meta("cipher",
              banner.cipher == CipherKind::Aes128Ctr ? "aes" : "fast")
        .metaCount("seed", banner.seed)
        .metaCount("target_accesses", target)
        .metaCount("pipeline_depth", pipeline_depth);
    psoram::bench::addSystemMeta(report, banner);

    TextTable table({"shards", "accesses", "seconds", "accesses/sec",
                     "speedup_vs_1", "physical/access"});
    double baseline_rate = 0.0;
    for (const unsigned num_shards : shard_counts) {
        const RunResult run = runConfiguration(ctx, num_shards, target,
                                               max_seconds,
                                               pipeline_depth);
        if (num_shards == 1)
            baseline_rate = run.accessesPerSec();
        const double speedup = baseline_rate > 0.0
            ? run.accessesPerSec() / baseline_rate
            : 0.0;

        report.addRow()
            .str("scope", "aggregate")
            .count("shards", num_shards)
            .count("accesses", run.accesses)
            .num("seconds", run.seconds)
            .num("accesses_per_sec", run.accessesPerSec())
            .num("speedup_vs_1", speedup)
            .count("physical_accesses", run.physical);
        for (const ShardRow &row : run.per_shard)
            report.addRow()
                .str("scope", "shard")
                .count("shards", num_shards)
                .count("shard", row.shard)
                .count("accesses", row.accesses)
                .count("physical_accesses", row.physical)
                .count("stash_hits", row.stash_hits);

        table.addRow({std::to_string(num_shards),
                      std::to_string(run.accesses),
                      TextTable::num(run.seconds, 3),
                      TextTable::num(run.accessesPerSec(), 0),
                      TextTable::num(speedup, 2),
                      TextTable::num(
                          run.accesses
                              ? static_cast<double>(run.physical) /
                                    static_cast<double>(run.accesses)
                              : 0.0,
                          2)});
        std::cout << "shards=" << num_shards << ": "
                  << static_cast<std::uint64_t>(run.accessesPerSec())
                  << " accesses/sec (" << run.accesses << " in "
                  << run.seconds << " s, " << TextTable::num(speedup, 2)
                  << "x vs 1 shard)\n";
    }

    std::cout << "\n";
    table.print(std::cout);
    if (!ctx.json_path.empty())
        return report.writeTo(ctx.json_path) ? 0 : 1;
    return 0;
}
