/**
 * @file
 * NVM lifetime ablation — the abstract claims PS-ORAM "is friendly to
 * NVM lifetime". This bench compares per-line wear (total writes, hot
 * line, mean per written line) across the designs: Naive-PS-ORAM's
 * blanket metadata persistence and FullNVM's on-chip NVM buffers burn
 * endurance that dirty-only tracking avoids.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    printConfigBanner(std::cout, banner, ctx.instructions);

    const WorkloadSpec workload =
        ctx.workloads[std::min<std::size_t>(6,
                                            ctx.workloads.size() - 1)];
    std::cout << "\n# NVM wear after running " << workload.name
              << " on each design\n";

    TextTable table({"Design", "NVM writes (norm)", "hottest line",
                     "mean writes/line", "distinct lines"});
    double base_writes = 0.0;
    for (const DesignKind design : allDesigns()) {
        SystemConfig config = configFromOverrides(ctx.overrides, design);
        System system = buildSystem(config);
        GeneratorParams gen = ctx.genParams(4);
        gen.address_space_lines = system.params.num_blocks;
        SyntheticTrace trace(workload, gen);
        CacheHierarchy hierarchy;
        InOrderCore core(hierarchy);
        std::uint8_t buf[kBlockDataBytes] = {};
        const MemRequestHandler handler =
            [&](const MemRequest &request) -> CpuCycle {
            if (request.is_write)
                system.controller->write(request.line, buf);
            else
                system.controller->read(request.line, buf);
            return 0;
        };
        core.run(trace, handler);

        const double writes =
            static_cast<double>(system.controller->traffic().writes);
        if (base_writes == 0.0)
            base_writes = writes;
        table.addRow(
            {designName(design), TextTable::num(writes / base_writes, 3),
             std::to_string(system.device->maxLineWrites()),
             TextTable::num(system.device->meanLineWrites(), 2),
             std::to_string(system.device->distinctLinesWritten())});
    }
    table.print(std::cout);
    std::cout << "# Dirty-only persistence keeps PS-ORAM's wear at the "
                 "Baseline level; Naive doubles the\n"
              << "# write volume and FullNVM additionally hammers its "
                 "on-chip NVM buffers (not shown in\n"
              << "# the per-line columns, which cover main NVM only).\n";
    return 0;
}
