/**
 * @file
 * Google-benchmark micro suite: single ORAM access cost by design, the
 * AES codec, and the WPQ persist path. Complements the table/figure
 * benches with host-time microbenchmarks of the simulator itself.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "oram/block.hh"
#include "psoram/drainer.hh"
#include "sim/system.hh"

namespace {

using namespace psoram;

SystemConfig
microConfig(DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 12;
    config.stash_capacity = 200;
    config.cipher = CipherKind::FastStream;
    return config;
}

void
BM_OramAccess(benchmark::State &state)
{
    const auto design = static_cast<DesignKind>(state.range(0));
    System system = buildSystem(microConfig(design));
    std::uint8_t buf[kBlockDataBytes] = {};
    BlockAddr addr = 0;
    std::uint64_t simulated_cycles = 0;
    for (auto _ : state) {
        const OramAccessInfo info =
            system.controller->write(addr, buf);
        simulated_cycles += info.nvm_cycles;
        addr = (addr + 97) % system.params.num_blocks;
    }
    state.SetLabel(designName(design));
    state.counters["sim_nvm_cycles_per_access"] =
        benchmark::Counter(static_cast<double>(simulated_cycles),
                           benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OramAccess)
    ->Arg(static_cast<int>(DesignKind::Baseline))
    ->Arg(static_cast<int>(DesignKind::FullNvm))
    ->Arg(static_cast<int>(DesignKind::NaivePsOram))
    ->Arg(static_cast<int>(DesignKind::PsOram))
    ->Arg(static_cast<int>(DesignKind::RcrBaseline))
    ->Arg(static_cast<int>(DesignKind::RcrPsOram));

void
BM_BlockCodec(benchmark::State &state)
{
    const auto kind = state.range(0) == 0 ? CipherKind::Aes128Ctr
                                          : CipherKind::FastStream;
    BlockCodec codec(Aes128::Key{1, 2, 3}, kind);
    PlainBlock block;
    block.addr = 42;
    block.path = 7;
    for (auto _ : state) {
        const SlotBytes wire = codec.encode(block);
        benchmark::DoNotOptimize(codec.decode(wire));
    }
    state.SetLabel(kind == CipherKind::Aes128Ctr ? "aes" : "fast");
}
BENCHMARK(BM_BlockCodec)->Arg(0)->Arg(1);

void
BM_DrainerPersist(benchmark::State &state)
{
    const auto entries = static_cast<std::size_t>(state.range(0));
    NvmDevice device(pcmTimings(), 1, 8, 64ULL << 20);
    Drainer drainer(96, 96);
    for (auto _ : state) {
        EvictionBundle bundle;
        for (std::size_t i = 0; i < entries; ++i) {
            WpqEntry entry;
            entry.addr = (i % 1024) * 96;
            entry.data.assign(kSlotBytes, 0xAB);
            bundle.data_writes.push_back(std::move(entry));
        }
        benchmark::DoNotOptimize(
            drainer.persist(bundle, device, 0, nullptr));
    }
}
BENCHMARK(BM_DrainerPersist)->Arg(24)->Arg(96);

} // namespace

int
main(int argc, char **argv)
{
    // The table/figure benches accept "key=value" overrides; tolerate
    // (and ignore) them here so one loop can run every bench binary.
    std::vector<char *> filtered;
    for (int i = 0; i < argc; ++i)
        if (i == 0 || argv[i][0] == '-')
            filtered.push_back(argv[i]);
    int filtered_argc = static_cast<int>(filtered.size());
    benchmark::Initialize(&filtered_argc, filtered.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
