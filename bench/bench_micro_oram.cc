/**
 * @file
 * Google-benchmark micro suite: single ORAM access cost by design, the
 * AES codec, and the WPQ persist path. Complements the table/figure
 * benches with host-time microbenchmarks of the simulator itself.
 *
 * With "--json <path>" the binary instead runs the regression-harness
 * mode: a fixed host-throughput measurement of every design on the
 * default Table-3 configuration, reporting accesses/sec, ns/access and
 * stash occupancy to the JSON file (BENCH_micro.json). CI runs this for
 * a few seconds per push and archives the report.
 *
 * JSON-mode overrides: accesses=N (per-design target, default 20000),
 * maxseconds=S (per-design time cap, default 0.8) plus the usual
 * height/z/stash/wpq/cipher/seed keys.
 *
 * "--pipeline-depth D[,D...]" (with --json) switches to the pipeline
 * depth-scaling mode instead: the PS-ORAM design is driven through an
 * OramEngine at each listed pipeline depth (depth 1 is always measured
 * first as the baseline) and the curve is written to the JSON file
 * (BENCH_pipeline.json) with per-depth speedup_vs_depth1.
 *
 * "--integrity-curve [off,mac,tree]" (with --json) runs the
 * authenticated-record overhead mode instead: the PS-ORAM design is
 * measured at each integrity level (off is always measured first as
 * the baseline) and the curve is written to the JSON file
 * (BENCH_integrity.json) with per-mode overhead_vs_off. A bare
 * "--integrity MODE" on any other mode simply rides along as the
 * integrity= override (persistent non-recursive designs only).
 *
 * "--disk-curve P[,P...]" (with --json) runs the out-of-core mode: the
 * PS-ORAM design on the PagedDiskBackend at each listed page-cache size
 * (BENCH_disk.json), reporting throughput plus the backend's physical
 * IO counters — vectored calls, preads/pwrites/fsyncs, cache hit rate —
 * per access. The default sweep spans in-core down to a cache ~50x
 * smaller than the tree. height= / depth= / accesses= ride along.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "nvm/fault_injector.hh"
#include "nvm/paged_disk.hh"
#include "nvm/write_behind.hh"
#include "oram/block.hh"
#include "oram/subtree_cache.hh"
#include "psoram/drainer.hh"
#include "sim/engine.hh"
#include "sim/system.hh"

namespace {

using namespace psoram;

SystemConfig
microConfig(DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 12;
    config.stash_capacity = 200;
    config.cipher = CipherKind::FastStream;
    return config;
}

void
BM_OramAccess(benchmark::State &state)
{
    const auto design = static_cast<DesignKind>(state.range(0));
    System system = buildSystem(microConfig(design));
    std::uint8_t buf[kBlockDataBytes] = {};
    BlockAddr addr = 0;
    std::uint64_t simulated_cycles = 0;
    for (auto _ : state) {
        const OramAccessInfo info =
            system.controller->write(addr, buf);
        simulated_cycles += info.nvm_cycles;
        addr = (addr + 97) % system.params.num_blocks;
    }
    state.SetLabel(designName(design));
    state.counters["sim_nvm_cycles_per_access"] =
        benchmark::Counter(static_cast<double>(simulated_cycles),
                           benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_OramAccess)
    ->Arg(static_cast<int>(DesignKind::Baseline))
    ->Arg(static_cast<int>(DesignKind::FullNvm))
    ->Arg(static_cast<int>(DesignKind::NaivePsOram))
    ->Arg(static_cast<int>(DesignKind::PsOram))
    ->Arg(static_cast<int>(DesignKind::RcrBaseline))
    ->Arg(static_cast<int>(DesignKind::RcrPsOram));

void
BM_BlockCodec(benchmark::State &state)
{
    const auto kind = state.range(0) == 0 ? CipherKind::Aes128Ctr
                                          : CipherKind::FastStream;
    BlockCodec codec(Aes128::Key{1, 2, 3}, kind);
    PlainBlock block;
    block.addr = 42;
    block.path = 7;
    for (auto _ : state) {
        const SlotBytes wire = codec.encode(block);
        benchmark::DoNotOptimize(codec.decode(wire));
    }
    state.SetLabel(kind == CipherKind::Aes128Ctr ? "aes" : "fast");
}
BENCHMARK(BM_BlockCodec)->Arg(0)->Arg(1);

void
BM_DrainerPersist(benchmark::State &state)
{
    const auto entries = static_cast<std::size_t>(state.range(0));
    NvmDevice device(pcmTimings(), 1, 8, 64ULL << 20);
    Drainer drainer(96, 96);
    for (auto _ : state) {
        EvictionBundle bundle;
        for (std::size_t i = 0; i < entries; ++i) {
            WpqEntry entry;
            entry.addr = (i % 1024) * 96;
            entry.data.assign(kSlotBytes, 0xAB);
            bundle.data_writes.push_back(std::move(entry));
        }
        benchmark::DoNotOptimize(
            drainer.persist(bundle, device, 0, nullptr));
    }
}
BENCHMARK(BM_DrainerPersist)->Arg(24)->Arg(96);

/** Split a comma list of integrity mode names ("off,mac,tree");
 *  empty tokens are skipped, validation happens at parse time in the
 *  curve runner. A key=value operand (the flag was bare and swallowed
 *  the next override) yields the empty list, i.e. the default sweep. */
std::vector<std::string>
parseModeList(const std::string &value)
{
    std::vector<std::string> modes;
    if (value.find('=') != std::string::npos)
        return modes;
    std::string token;
    for (std::size_t i = 0; i <= value.size(); ++i) {
        if (i < value.size() && value[i] != ',') {
            token += value[i];
            continue;
        }
        if (!token.empty()) {
            modes.push_back(token);
            token.clear();
        }
    }
    return modes;
}

/**
 * Regression-harness mode: host throughput of the full access loop per
 * design on the Table-3 default configuration, written as JSON.
 */
int
runJsonMode(const psoram::bench::BenchContext &ctx)
{
    using Clock = std::chrono::steady_clock;
    const std::uint64_t target =
        ctx.overrides.getUint("accesses", 20'000);
    const double max_seconds =
        ctx.overrides.getDouble("maxseconds", 0.8);

    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    psoram::bench::JsonReport report("micro_oram");
    report.metaCount("tree_height", banner.tree_height)
        .metaCount("bucket_slots", banner.bucket_slots)
        .metaCount("stash_capacity", banner.stash_capacity)
        .metaCount("wpq_entries", banner.wpq_entries)
        .meta("cipher", banner.cipher == CipherKind::Aes128Ctr
                  ? "aes" : "fast")
        .metaCount("seed", banner.seed)
        .metaCount("target_accesses", target);
    psoram::bench::addSystemMeta(report, banner);

    // Systems and their stat groups stay alive until the metrics
    // snapshot is written (the exporter holds non-owning pointers).
    std::vector<System> systems;
    std::deque<StatGroup> groups;

    for (const DesignKind design : allDesigns()) {
        SystemConfig config = configFromOverrides(ctx.overrides, design);
        // An integrity= override applies only where the layer exists:
        // persistent non-recursive designs with a synchronous drive
        // thread (buildSystem rejects anything else).
        const DesignOptions opts = designOptions(design);
        if (opts.persist == PersistMode::None || opts.recursive_posmap)
            config.integrity = IntegrityMode::Off;
        if (config.integrity != IntegrityMode::Off)
            config.pipeline_depth = 1;
        systems.push_back(buildSystem(config));
        System &system = systems.back();
        groups.emplace_back(std::string("micro.") + designName(design));
        system.controller->registerStats(groups.back());
        obs::MetricsExporter::global().addGroup(&groups.back());
        // Unarmed injector: counts persist boundaries (the crash-point
        // population the enumerator in sim/crash_enumerator walks)
        // without ever firing, so the throughput numbers include the
        // counting overhead every fault-injection run pays.
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        std::uint8_t buf[kBlockDataBytes] = {};
        BlockAddr addr = 0;
        const auto step = [&] {
            const OramAccessInfo info =
                system.controller->write(addr, buf);
            addr = (addr + 97) % system.params.num_blocks;
            return info.nvm_cycles;
        };
        for (unsigned i = 0; i < 512; ++i)
            step(); // warm the tree and the stash
        injector.reset(); // count boundaries over the timed region only

        std::uint64_t accesses = 0;
        std::uint64_t sim_cycles = 0;
        const auto t0 = Clock::now();
        double elapsed = 0.0;
        while (accesses < target && elapsed < max_seconds) {
            for (unsigned i = 0; i < 512; ++i)
                sim_cycles += step();
            accesses += 512;
            elapsed = std::chrono::duration<double>(Clock::now() - t0)
                          .count();
        }

        const Stash &stash = system.controller->stash();
        // Per-phase breakdown (host ns, full accesses only): the five
        // phase windows are adjacent and sum to the end-to-end access
        // time exactly (common/stats.hh PhaseLatencyStats).
        const PhaseLatencyStats &phases =
            system.controller->phaseHostNs();
        report.addRow()
            .str("design", designName(design))
            .str("integrity", integrityModeName(config.integrity))
            .count("accesses", accesses)
            .num("seconds", elapsed)
            .num("accesses_per_sec",
                 static_cast<double>(accesses) / elapsed)
            .num("ns_per_access",
                 elapsed * 1e9 / static_cast<double>(accesses))
            .num("sim_nvm_cycles_per_access",
                 static_cast<double>(sim_cycles) /
                     static_cast<double>(accesses))
            .count("stash_peak", stash.peakSize())
            .num("stash_mean_occupancy", stash.occupancy().mean())
            .num("persist_boundaries_per_access",
                 static_cast<double>(injector.boundariesSeen()) /
                     static_cast<double>(accesses))
            .num("drain_writes_per_access",
                 static_cast<double>(
                     injector.kindCount(PersistBoundary::DrainWrite)) /
                     static_cast<double>(accesses))
            .num("phase_remap_ns_mean", phases.remap.mean())
            .num("phase_load_ns_mean", phases.load.mean())
            .num("phase_backup_ns_mean", phases.backup.mean())
            .num("phase_evict_ns_mean", phases.evict.mean())
            .num("phase_drain_ns_mean", phases.drain.mean())
            .num("phase_sum_ns", phases.phaseSum())
            .num("phase_total_ns", phases.total.sum())
            .count("phase_accesses", phases.total.count());
        std::cout << designName(design) << ": "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(accesses) / elapsed)
                  << " accesses/sec (" << accesses << " in " << elapsed
                  << " s)\n";
    }

    // Write the observability files now, while the registered stat
    // groups (owned by the local systems) are still alive, then cancel
    // the exit-time dumps that would otherwise observe dead groups.
    if (!ctx.metrics_path.empty())
        obs::MetricsExporter::global().writeTo(ctx.metrics_path);
    if (!ctx.trace_path.empty())
        obs::TraceRecorder::instance().writeTo(ctx.trace_path);
    obs::MetricsExporter::global().removeAllGroups();
    obs::MetricsExporter::dumpAtExit("");
    psoram::bench::traceDumpPath().clear();

    return report.writeTo(ctx.json_path) ? 0 : 1;
}

/**
 * Authenticated-record overhead mode: the PS-ORAM design measured at
 * each integrity level (BENCH_integrity.json). Mode "off" — plain
 * 96-byte records, no GMAC, no Merkle streaming — is always measured
 * first and anchors overhead_vs_off (ns/access ratio). All cells run
 * at pipeline depth 1 so the off row pays the same synchronous drive
 * path the authenticated rows are restricted to.
 */
int
runIntegrityJsonMode(const psoram::bench::BenchContext &ctx,
                     std::vector<std::string> modes)
{
    using Clock = std::chrono::steady_clock;
    const std::uint64_t target =
        ctx.overrides.getUint("accesses", 20'000);
    const double max_seconds =
        ctx.overrides.getDouble("maxseconds", 2.0);

    if (modes.empty())
        modes = {"off", "mac", "tree"};
    if (modes.front() != "off")
        modes.insert(modes.begin(), "off");

    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    psoram::bench::JsonReport report("integrity_overhead");
    report.metaCount("tree_height", banner.tree_height)
        .metaCount("bucket_slots", banner.bucket_slots)
        .metaCount("stash_capacity", banner.stash_capacity)
        .metaCount("wpq_entries", banner.wpq_entries)
        .meta("cipher", banner.cipher == CipherKind::Aes128Ctr
                  ? "aes" : "fast")
        .metaCount("seed", banner.seed)
        .metaCount("target_accesses", target);
    psoram::bench::addSystemMeta(report, banner);

    double off_ns = 0.0;
    for (const std::string &mode : modes) {
        SystemConfig config =
            configFromOverrides(ctx.overrides, DesignKind::PsOram);
        if (!parseIntegrityMode(mode, config.integrity)) {
            std::cerr << "unknown integrity mode '" << mode
                      << "' (want off|mac|tree)\n";
            return 1;
        }
        config.pipeline_depth = 1;
        System system = buildSystem(config);
        FaultInjector injector;
        system.attachFaultInjector(&injector);

        std::uint8_t buf[kBlockDataBytes] = {};
        BlockAddr addr = 0;
        const auto step = [&] {
            const OramAccessInfo info =
                system.controller->write(addr, buf);
            addr = (addr + 97) % system.params.num_blocks;
            return info.nvm_cycles;
        };
        for (unsigned i = 0; i < 512; ++i)
            step(); // warm the tree and the stash
        injector.reset();

        std::uint64_t accesses = 0;
        std::uint64_t sim_cycles = 0;
        const auto t0 = Clock::now();
        double elapsed = 0.0;
        while (accesses < target && elapsed < max_seconds) {
            for (unsigned i = 0; i < 512; ++i)
                sim_cycles += step();
            accesses += 512;
            elapsed = std::chrono::duration<double>(Clock::now() - t0)
                          .count();
        }

        const double ns_per_access =
            elapsed * 1e9 / static_cast<double>(accesses);
        if (config.integrity == IntegrityMode::Off)
            off_ns = ns_per_access;
        report.addRow()
            .str("integrity", integrityModeName(config.integrity))
            .count("record_bytes", system.params.data_layout.record_bytes)
            .count("accesses", accesses)
            .num("seconds", elapsed)
            .num("accesses_per_sec",
                 static_cast<double>(accesses) / elapsed)
            .num("ns_per_access", ns_per_access)
            .num("overhead_vs_off",
                 off_ns > 0.0 ? ns_per_access / off_ns : 1.0)
            .num("sim_nvm_cycles_per_access",
                 static_cast<double>(sim_cycles) /
                     static_cast<double>(accesses))
            .num("persist_boundaries_per_access",
                 static_cast<double>(injector.boundariesSeen()) /
                     static_cast<double>(accesses));
        std::cout << "integrity " << integrityModeName(config.integrity)
                  << ": "
                  << static_cast<std::uint64_t>(
                         static_cast<double>(accesses) / elapsed)
                  << " accesses/sec (x"
                  << (off_ns > 0.0 ? ns_per_access / off_ns : 1.0)
                  << " vs off)\n";
    }

    return report.writeTo(ctx.json_path) ? 0 : 1;
}

/**
 * Pipeline depth-scaling mode: drive the persistent PS-ORAM design
 * through an OramEngine at each requested pipeline depth and report the
 * accesses/sec curve (BENCH_pipeline.json). Depth 1 — which builds no
 * pipeline machinery at all and replays the exact synchronous traffic —
 * is always measured first and anchors speedup_vs_depth1.
 *
 * The curve's shape is machine-dependent: moving the WPQ drain to a
 * background thread only helps when there is a second core for it to
 * run on, so on a single-core host depth > 1 reads below 1x by
 * construction (DESIGN.md §12.6 quantifies this; the overrides
 * fetchthreads= / cachebuckets= / retirerounds= exist to reproduce the
 * control experiments there).
 */
int
runPipelineJsonMode(const psoram::bench::BenchContext &ctx,
                    std::vector<unsigned> depths)
{
    using Clock = std::chrono::steady_clock;
    const std::uint64_t target =
        ctx.overrides.getUint("accesses", 20'000);
    const double max_seconds =
        ctx.overrides.getDouble("maxseconds", 2.0);

    // Depth 1 anchors the speedup column: force it to the front.
    if (depths.empty())
        depths = {1, 2, 4, 8};
    if (depths.front() != 1)
        depths.insert(depths.begin(), 1u);

    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    psoram::bench::JsonReport report("pipeline_depth");
    report.metaCount("tree_height", banner.tree_height)
        .metaCount("bucket_slots", banner.bucket_slots)
        .metaCount("stash_capacity", banner.stash_capacity)
        .metaCount("wpq_entries", banner.wpq_entries)
        .meta("cipher", banner.cipher == CipherKind::Aes128Ctr
                  ? "aes" : "fast")
        .metaCount("seed", banner.seed)
        .metaCount("target_accesses", target);
    psoram::bench::addSystemMeta(report, banner);

    double depth1_rate = 0.0;
    for (const unsigned depth : depths) {
        SystemConfig config =
            configFromOverrides(ctx.overrides, DesignKind::PsOram);
        config.pipeline_depth = depth;
        config.fetch_threads = static_cast<unsigned>(
            ctx.overrides.getUint("fetchthreads", config.fetch_threads));
        config.cache_buckets = ctx.overrides.getUint("cachebuckets", 0);
        config.retire_queue_rounds =
            ctx.overrides.getUint("retirerounds", 0);
        System system = buildSystem(config);
        EngineConfig engine_config;
        engine_config.record_completions = false;
        OramEngine engine(*system.controller, engine_config);

        std::uint8_t buf[kBlockDataBytes] = {};
        BlockAddr addr = 0;
        const auto submitChunk = [&](unsigned count) {
            for (unsigned i = 0; i < count; ++i) {
                engine.submitWrite(addr, buf, nullptr);
                addr = (addr + 97) % system.params.num_blocks;
            }
            engine.drain();
        };
        submitChunk(512); // warm the tree and the stash

        std::uint64_t accesses = 0;
        const auto t0 = Clock::now();
        double elapsed = 0.0;
        while (accesses < target && elapsed < max_seconds) {
            submitChunk(256);
            accesses += 256;
            elapsed = std::chrono::duration<double>(Clock::now() - t0)
                          .count();
        }

        const double rate = static_cast<double>(accesses) / elapsed;
        if (depth == depths.front())
            depth1_rate = rate;
        auto &row = report.addRow();
        row.count("pipeline_depth", depth)
            .count("resolved_depth", engine.pipelineDepth())
            .count("accesses", accesses)
            .num("seconds", elapsed)
            .num("accesses_per_sec", rate)
            .num("ns_per_access",
                 elapsed * 1e9 / static_cast<double>(accesses))
            .num("speedup_vs_depth1",
                 depth1_rate > 0.0 ? rate / depth1_rate : 1.0);
        if (const SubtreeCache *cache =
                system.controller->subtreeCache()) {
            row.count("subtree_cache_hits", cache->hits())
                .count("subtree_cache_misses", cache->misses())
                .num("subtree_cache_hit_rate", cache->hitRate())
                .count("subtree_cache_capacity",
                       cache->config().capacity_buckets)
                .count("subtree_cache_stripes",
                       cache->config().stripes);
        }
        if (const WriteBehindNvm *wb = system.controller->writeBehind())
            row.count("rounds_retired", wb->roundsRetired())
                .count("writes_coalesced", wb->writesCoalesced())
                .count("retire_transactions", wb->retireTransactions());
        const PhaseLatencyStats &phases =
            system.controller->phaseHostNs();
        row.num("phase_remap_ns_mean", phases.remap.mean())
            .num("phase_load_ns_mean", phases.load.mean())
            .num("phase_backup_ns_mean", phases.backup.mean())
            .num("phase_evict_ns_mean", phases.evict.mean())
            .num("phase_drain_ns_mean", phases.drain.mean());
        std::cout << "depth " << depth << ": "
                  << static_cast<std::uint64_t>(rate)
                  << " accesses/sec (" << accesses << " in " << elapsed
                  << " s, x" << (rate / depth1_rate)
                  << " vs depth 1)\n";
    }

    return report.writeTo(ctx.json_path) ? 0 : 1;
}

/**
 * Out-of-core mode: PS-ORAM on the PagedDiskBackend across a page-cache
 * size sweep (BENCH_disk.json). A memory-backend row at the same
 * geometry anchors the curve; each disk cell starts from a fresh tree
 * so cells are independent. Runs at pipeline depth 2 by default — the
 * vectored fetch/retire path is what the disk backend batches, so the
 * per-access IO counters land at ~1 readv + ~1 writev + ~1 quiet writev.
 */
int
runDiskJsonMode(const psoram::bench::BenchContext &ctx,
                std::vector<unsigned> pages_list)
{
    using Clock = std::chrono::steady_clock;
    const std::uint64_t target =
        ctx.overrides.getUint("accesses", 4'000);
    const double max_seconds =
        ctx.overrides.getDouble("maxseconds", 2.0);
    const auto height = static_cast<unsigned>(
        ctx.overrides.getUint("height", 14));
    const auto depth = static_cast<unsigned>(
        ctx.overrides.getUint("depth", 2));

    std::string path = ctx.backing_file;
    if (path.empty()) {
        path = "/tmp/psoram_disk_curve_" +
               std::to_string(static_cast<long>(::getpid())) + ".tree";
        psoram::bench::scrubBackingTreeOnExit(path);
    }
    if (pages_list.empty())
        pages_list = {4096, 1024, 256, 64};

    const auto makeConfig = [&](bool disk, unsigned cache_pages) {
        SystemConfig config =
            configFromOverrides(ctx.overrides, DesignKind::PsOram);
        config.tree_height = height;
        config.pipeline_depth = depth;
        config.backend =
            disk ? BackendKind::Disk : BackendKind::Memory;
        config.backing_file = disk ? path : "";
        config.disk_cache_pages = cache_pages;
        return config;
    };

    psoram::bench::JsonReport report("disk_backend");
    report.metaCount("tree_height", height)
        .metaCount("pipeline_depth", depth)
        .metaCount("target_accesses", target)
        .metaCount("seed", ctx.overrides.getUint("seed", 1));
    psoram::bench::addSystemMeta(report, makeConfig(true, pages_list[0]));

    // One measured cell; cache_pages == 0 means the in-memory anchor.
    const auto runCell = [&](unsigned cache_pages) {
        const bool disk = cache_pages != 0;
        if (disk)
            psoram::bench::removeBackingTree(path);
        System system = buildSystem(makeConfig(disk, cache_pages));
        EngineConfig engine_config;
        engine_config.record_completions = false;
        OramEngine engine(*system.controller, engine_config);

        std::uint8_t buf[kBlockDataBytes] = {};
        BlockAddr addr = 0;
        const auto submitChunk = [&](unsigned count) {
            for (unsigned i = 0; i < count; ++i) {
                engine.submitWrite(addr, buf, nullptr);
                addr = (addr + 97) % system.params.num_blocks;
            }
            engine.drain();
        };
        submitChunk(512); // warm tree, stash and page cache
        auto *paged = dynamic_cast<PagedDiskBackend *>(
            system.device.get());
        if (paged)
            paged->resetStats(); // count IO over the timed region only

        std::uint64_t accesses = 0;
        const auto t0 = Clock::now();
        double elapsed = 0.0;
        while (accesses < target && elapsed < max_seconds) {
            submitChunk(256);
            accesses += 256;
            elapsed = std::chrono::duration<double>(Clock::now() - t0)
                          .count();
        }
        const auto per_access = [&](std::uint64_t count) {
            return static_cast<double>(count) /
                   static_cast<double>(accesses);
        };

        const double rate = static_cast<double>(accesses) / elapsed;
        auto &row = report.addRow();
        row.str("backend", disk ? "disk" : "memory")
            .count("cache_pages", cache_pages)
            .count("accesses", accesses)
            .num("seconds", elapsed)
            .num("accesses_per_sec", rate)
            .num("ns_per_access",
                 elapsed * 1e9 / static_cast<double>(accesses));
        std::cout << (disk ? "disk cache_pages=" +
                                 std::to_string(cache_pages)
                           : std::string("memory"))
                  << ": " << static_cast<std::uint64_t>(rate)
                  << " accesses/sec";
        if (paged) {
            const PagedDiskBackend::IoStats io = paged->ioStats();
            const double tree_bytes = static_cast<double>(
                paged->numPages() * PagedDiskBackend::kPageBytes);
            const double cache_bytes = static_cast<double>(
                cache_pages * PagedDiskBackend::kPageBytes);
            row.num("tree_bytes", tree_bytes)
                .num("tree_over_cache", tree_bytes / cache_bytes)
                .num("readv_per_access", per_access(io.readv_calls))
                .num("writev_per_access", per_access(io.writev_calls))
                .num("writev_quiet_per_access",
                     per_access(io.writev_quiet_calls))
                .num("scalar_reads_per_access",
                     per_access(io.scalar_reads))
                .num("scalar_writes_per_access",
                     per_access(io.scalar_writes))
                .num("preads_per_access", per_access(io.preads))
                .num("pwrites_per_access", per_access(io.pwrites))
                .num("fsyncs_per_access", per_access(io.fsyncs))
                .num("cache_hit_rate",
                     io.cache_hits + io.cache_misses
                         ? static_cast<double>(io.cache_hits) /
                               static_cast<double>(io.cache_hits +
                                                   io.cache_misses)
                         : 0.0)
                .count("cache_evictions", io.cache_evictions)
                .count("torn_pages_detected", io.torn_pages_detected);
            std::cout << " (tree/cache " << tree_bytes / cache_bytes
                      << "x, readv/access "
                      << per_access(io.readv_calls) << ", hit rate "
                      << (io.cache_hits + io.cache_misses
                              ? static_cast<double>(io.cache_hits) /
                                    static_cast<double>(
                                        io.cache_hits + io.cache_misses)
                              : 0.0)
                      << ")";
        }
        std::cout << "\n";
    };

    runCell(0); // in-memory anchor
    for (const unsigned pages : pages_list)
        runCell(pages);
    psoram::bench::removeBackingTree(path);
    return report.writeTo(ctx.json_path) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const psoram::bench::BenchContext ctx =
        psoram::bench::parseContext(argc, argv);
    const std::string depth_flag =
        psoram::bench::flagValue(argc, argv, "--pipeline-depth");
    const std::string disk_flag =
        psoram::bench::flagValue(argc, argv, "--disk-curve");
    bool disk_mode = !disk_flag.empty();
    for (int i = 1; !disk_mode && i < argc; ++i)
        disk_mode = std::string(argv[i]).rfind("--disk-curve", 0) == 0;
    const std::string integrity_curve_flag =
        psoram::bench::flagValue(argc, argv, "--integrity-curve");
    bool integrity_mode = false;
    for (int i = 1; !integrity_mode && i < argc; ++i)
        integrity_mode =
            std::string(argv[i]).rfind("--integrity-curve", 0) == 0;
    if (!ctx.json_path.empty() && disk_mode)
        return runDiskJsonMode(
            ctx, psoram::bench::parseDepthList(disk_flag));
    if (!ctx.json_path.empty() && integrity_mode)
        return runIntegrityJsonMode(
            ctx, parseModeList(integrity_curve_flag));
    if (!ctx.json_path.empty() && !depth_flag.empty())
        return runPipelineJsonMode(
            ctx, psoram::bench::parseDepthList(depth_flag));
    if (!ctx.json_path.empty())
        return runJsonMode(ctx);

    // The table/figure benches accept "key=value" overrides; tolerate
    // (and ignore) them here so one loop can run every bench binary.
    // The observability flags are ours, not google-benchmark's — strip
    // them (parseContext already consumed them above).
    std::vector<char *> filtered;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trace" || arg == "--metrics" ||
            arg == "--pipeline-depth" || arg == "--disk-curve" ||
            arg == "--integrity-curve" || arg == "--integrity" ||
            arg == "--backend") {
            ++i; // skip the operand too
            continue;
        }
        if (arg.rfind("--trace=", 0) == 0 ||
            arg.rfind("--metrics=", 0) == 0 ||
            arg.rfind("--pipeline-depth=", 0) == 0 ||
            arg.rfind("--disk-curve=", 0) == 0 ||
            arg.rfind("--integrity-curve=", 0) == 0 ||
            arg.rfind("--integrity=", 0) == 0 ||
            arg.rfind("--backend=", 0) == 0)
            continue;
        if (i == 0 || argv[i][0] == '-')
            filtered.push_back(argv[i]);
    }
    int filtered_argc = static_cast<int>(filtered.size());
    benchmark::Initialize(&filtered_argc, filtered.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
