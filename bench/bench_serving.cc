/**
 * @file
 * Open-loop serving benchmark: tail latency and saturation throughput
 * of the sharded PS-ORAM stack under production-shaped traffic.
 *
 * The run calibrates the stack's closed-loop capacity, then sweeps an
 * open-loop (Poisson) rate ladder around it for each key distribution,
 * with the BatchScheduler in front and — on the skewed distribution —
 * once more on the scheduler-bypass path, so the scheduler's dedupe
 * gain shows up as a saturation-throughput delta in the same artifact.
 * Closed-loop rows and a multi-key recsys batch row complete the
 * picture. Latencies are measured from the *scheduled* arrival time
 * (open loop), so queueing delay is included — see serve/harness.hh.
 *
 * With "--json <path>" the run emits BENCH_serving.json. Overrides:
 *   shards=N pipeline=D       stack shape (default 4 shards, depth 1)
 *   keys=N                    logical key space (default 65536)
 *   readfrac=F batch=K        request mix (default 0.95, batch row K=8)
 *   submitters=S depth=D      client threads / closed-loop outstanding
 *   duration=S calibseconds=S per-load-point and calibration budgets
 *   rates=a,b,c               absolute rate ladder (default: auto from
 *                             calibration x {0.4,0.8,1.2,1.6,2.0})
 *   zipfs=S                   Zipfian exponent (default 0.99)
 * plus the usual height/z/stash/wpq/cipher/seed/fetchthreads/
 * cachebuckets/cachestripes keys and --trace/--metrics.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "serve/harness.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"

namespace {

using namespace psoram;
using namespace psoram::serve;

/** Parse "a,b,c" into doubles (invalid/empty tokens skipped). */
std::vector<double>
parseRateList(const std::string &value)
{
    std::vector<double> rates;
    std::string token;
    for (std::size_t i = 0; i <= value.size(); ++i) {
        if (i < value.size() && value[i] != ',') {
            token += value[i];
            continue;
        }
        if (!token.empty()) {
            const double rate = std::strtod(token.c_str(), nullptr);
            if (rate > 0.0)
                rates.push_back(rate);
            token.clear();
        }
    }
    return rates;
}

double
us(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e3;
}

void
addLatencyFields(psoram::bench::JsonReport::Row &row,
                 const LatencySnapshot &latency)
{
    row.num("mean_us", latency.mean_ns / 1e3)
        .num("p50_us", us(latency.p50_ns))
        .num("p90_us", us(latency.p90_ns))
        .num("p99_us", us(latency.p99_ns))
        .num("p999_us", us(latency.p999_ns))
        .num("max_us", us(latency.max_ns));
}

void
addResultFields(psoram::bench::JsonReport::Row &row,
                const LoadPointResult &result)
{
    row.num("achieved_rate", result.achieved_rate)
        .num("achieved_key_rate", result.achieved_key_rate)
        .count("submitted", result.submitted_requests)
        .count("completed", result.completed_requests)
        .count("completed_keys", result.completed_keys)
        .num("wall_seconds", result.wall_seconds);
    addLatencyFields(row, result.latency);
    row.count("deduped_reads", result.deduped_reads)
        .count("forwarded_reads", result.forwarded_reads)
        .count("engine_reads", result.engine_reads)
        .count("batches", result.batches)
        .count("physical_accesses", result.physical_accesses)
        .count("engine_coalesced", result.engine_coalesced)
        .count("stash_hits", result.stash_hits)
        .count("backpressure_waits", result.backpressure_waits);
}

void
printPoint(const std::string &label, const LoadPointResult &r)
{
    std::cout << label << ": offered="
              << static_cast<std::uint64_t>(r.offered_rate)
              << " achieved="
              << static_cast<std::uint64_t>(r.achieved_rate)
              << " req/s  p50=" << us(r.latency.p50_ns)
              << "us p99=" << us(r.latency.p99_ns)
              << "us p999=" << us(r.latency.p999_ns)
              << "us dedup=" << r.deduped_reads
              << " fwd=" << r.forwarded_reads << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const psoram::bench::BenchContext ctx =
        psoram::bench::parseContext(argc, argv);

    const unsigned shards =
        static_cast<unsigned>(ctx.overrides.getUint("shards", 4));
    const unsigned pipeline_depth =
        static_cast<unsigned>(ctx.overrides.getUint("pipeline", 1));
    const std::uint64_t keys = ctx.overrides.getUint("keys", 1 << 16);
    const double read_fraction =
        ctx.overrides.getDouble("readfrac", 0.95);
    const unsigned batch_size =
        static_cast<unsigned>(ctx.overrides.getUint("batch", 8));
    const unsigned submitters =
        static_cast<unsigned>(ctx.overrides.getUint("submitters", 2));
    const unsigned closed_depth =
        static_cast<unsigned>(ctx.overrides.getUint("depth", 16));
    const double duration = ctx.overrides.getDouble("duration", 0.4);
    const double calib_seconds =
        ctx.overrides.getDouble("calibseconds", 0.3);
    const double zipf_s = ctx.overrides.getDouble("zipfs", 0.99);
    const std::uint64_t seed = ctx.overrides.getUint("seed", 1);
    std::vector<double> rates = parseRateList(
        psoram::bench::flagValue(argc, argv, "--rates").empty()
            ? ctx.overrides.getString("rates", "")
            : psoram::bench::flagValue(argc, argv, "--rates"));

    ShardedSystemConfig system_config;
    system_config.base =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    system_config.base.pipeline_depth = pipeline_depth;
    system_config.sharding.num_shards = shards;
    ShardedSystem system = buildShardedSystem(system_config);

    if (keys > system.router.totalBlocks()) {
        std::cerr << "error: keys=" << keys << " exceeds the stack's "
                  << system.router.totalBlocks() << " blocks\n";
        return 1;
    }

    ShardedEngineConfig engine_config;
    engine_config.record_completions = false;
    engine_config.pipeline_depth = pipeline_depth;
    ShardedOramEngine engine(system, engine_config);
    BatchScheduler scheduler(engine);
    ServingHarness harness(engine, &scheduler);

    psoram::bench::JsonReport report("serving");
    report.metaCount("shards", shards)
        .metaCount("pipeline_depth", pipeline_depth)
        .metaCount("tree_height", system_config.base.tree_height)
        .metaCount("keys", keys)
        .metaNum("read_fraction", read_fraction)
        .metaNum("zipf_s", zipf_s)
        .metaCount("submitters", submitters)
        .metaCount("closed_loop_depth", closed_depth)
        .metaNum("duration_s", duration)
        .metaCount("seed", seed);
    psoram::bench::addSystemMeta(report, system_config.base);

    const auto makeStream = [&](KeyDist dist, ArrivalMode mode,
                                double rate, unsigned batch) {
        StreamConfig stream;
        stream.mode = mode;
        stream.dist = dist;
        stream.num_keys = keys;
        stream.zipf_s = zipf_s;
        stream.read_fraction = read_fraction;
        stream.batch_size = batch;
        stream.offered_rate = rate;
        stream.seed = seed;
        return stream;
    };

    // Warm the trees and stashes before any measurement.
    {
        HarnessConfig warm;
        warm.stream = makeStream(KeyDist::Uniform,
                                 ArrivalMode::ClosedLoop, 0.0, 1);
        warm.submitters = submitters;
        warm.closed_loop_depth = closed_depth;
        warm.duration_s = std::min(0.2, calib_seconds);
        warm.use_scheduler = false;
        harness.run(warm);
    }

    // Calibrate closed-loop capacity on the bypass path; the open-loop
    // ladder brackets it so the sweep always crosses the knee.
    double capacity;
    {
        HarnessConfig calib;
        calib.stream = makeStream(KeyDist::Uniform,
                                  ArrivalMode::ClosedLoop, 0.0, 1);
        calib.submitters = submitters;
        calib.closed_loop_depth = closed_depth;
        calib.duration_s = calib_seconds;
        calib.use_scheduler = false;
        capacity = harness.run(calib).achieved_rate;
    }
    report.metaNum("calibrated_capacity", capacity);
    std::cout << "calibrated closed-loop capacity: "
              << static_cast<std::uint64_t>(capacity) << " req/s\n";
    if (rates.empty())
        for (const double multiplier : {0.4, 0.8, 1.2, 1.6, 2.0})
            rates.push_back(std::max(100.0, capacity * multiplier));

    struct SweepKey
    {
        KeyDist dist;
        bool use_scheduler;
    };
    // Both-distribution open-loop sweeps through the scheduler, plus
    // the Zipfian bypass sweep the scheduler is judged against.
    const std::vector<SweepKey> sweeps = {
        {KeyDist::Zipfian, true},
        {KeyDist::Uniform, true},
        {KeyDist::Zipfian, false},
    };

    struct Saturation
    {
        KeyDist dist;
        bool use_scheduler;
        double rate = 0.0;
    };
    std::vector<Saturation> saturations;

    for (const SweepKey &sweep : sweeps) {
        Saturation saturation{sweep.dist, sweep.use_scheduler, 0.0};
        for (const double rate : rates) {
            HarnessConfig point;
            point.stream = makeStream(sweep.dist, ArrivalMode::OpenLoop,
                                      rate, 1);
            point.submitters = submitters;
            point.duration_s = duration;
            point.use_scheduler = sweep.use_scheduler;
            const LoadPointResult result = harness.run(point);
            saturation.rate =
                std::max(saturation.rate, result.achieved_rate);

            auto &row = report.addRow();
            row.str("scope", "openloop")
                .str("dist", keyDistName(sweep.dist))
                .count("scheduler", sweep.use_scheduler ? 1 : 0)
                .num("offered_rate", result.offered_rate);
            addResultFields(row, result);
            printPoint(std::string("open ") +
                           keyDistName(sweep.dist) +
                           (sweep.use_scheduler ? "+sched" : " bypass"),
                       result);
        }
        saturations.push_back(saturation);
    }

    // Closed-loop rows: what a fixed client fleet observes, both key
    // distributions, scheduler on.
    for (const KeyDist dist : {KeyDist::Zipfian, KeyDist::Uniform}) {
        HarnessConfig point;
        point.stream =
            makeStream(dist, ArrivalMode::ClosedLoop, 0.0, 1);
        point.submitters = submitters;
        point.closed_loop_depth = closed_depth;
        point.duration_s = duration;
        point.use_scheduler = true;
        const LoadPointResult result = harness.run(point);
        auto &row = report.addRow();
        row.str("scope", "closedloop")
            .str("dist", keyDistName(dist))
            .count("scheduler", 1)
            .count("submitters", submitters)
            .count("outstanding", closed_depth);
        addResultFields(row, result);
        printPoint(std::string("closed ") + keyDistName(dist), result);
    }

    // Recsys-shaped multi-key batch row: Zipfian embedding lookups,
    // batch_size keys joined per request.
    if (batch_size > 1) {
        HarnessConfig point;
        point.stream = makeStream(KeyDist::Zipfian,
                                  ArrivalMode::ClosedLoop, 0.0,
                                  batch_size);
        point.submitters = submitters;
        point.closed_loop_depth =
            std::max(1u, closed_depth / batch_size);
        point.duration_s = duration;
        point.use_scheduler = true;
        const LoadPointResult result = harness.run(point);
        auto &row = report.addRow();
        row.str("scope", "batch")
            .str("dist", "zipfian")
            .count("scheduler", 1)
            .count("batch_size", batch_size);
        addResultFields(row, result);
        printPoint("batch zipfian", result);
    }

    // Saturation summary + the scheduler-vs-bypass gain on the skewed
    // workload (the number the scheduler exists to move).
    double zipf_sched = 0.0, zipf_bypass = 0.0;
    for (const Saturation &saturation : saturations) {
        report.addRow()
            .str("scope", "saturation")
            .str("dist", keyDistName(saturation.dist))
            .count("scheduler", saturation.use_scheduler ? 1 : 0)
            .num("saturation_rate", saturation.rate);
        if (saturation.dist == KeyDist::Zipfian) {
            (saturation.use_scheduler ? zipf_sched : zipf_bypass) =
                saturation.rate;
        }
    }
    if (zipf_bypass > 0.0) {
        const double gain = zipf_sched / zipf_bypass;
        report.addRow()
            .str("scope", "saturation_gain")
            .str("dist", "zipfian")
            .num("scheduler_rate", zipf_sched)
            .num("bypass_rate", zipf_bypass)
            .num("gain", gain);
        std::cout << "zipfian saturation: scheduler="
                  << static_cast<std::uint64_t>(zipf_sched)
                  << " bypass="
                  << static_cast<std::uint64_t>(zipf_bypass)
                  << " req/s (gain " << gain << "x)\n";
    }

    if (!ctx.json_path.empty())
        return report.writeTo(ctx.json_path) ? 0 : 1;
    return 0;
}
