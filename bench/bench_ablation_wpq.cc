/**
 * @file
 * Ablation (§4.2.3) — WPQ size sweep for PS-ORAM: the paper argues WPQ
 * sizes do not affect performance because the WPQs sit off the lookup
 * path; small WPQs only split evictions into more (ordered, still
 * crash-safe) rounds.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace psoram;
    using namespace psoram::bench;

    BenchContext ctx = parseContext(argc, argv);
    const SystemConfig banner =
        configFromOverrides(ctx.overrides, DesignKind::PsOram);
    printConfigBanner(std::cout, banner, ctx.instructions);

    // A representative mid-MPKI workload.
    const WorkloadSpec workload =
        ctx.workloads[std::min<std::size_t>(6,
                                            ctx.workloads.size() - 1)];
    std::cout << "\n# PS-ORAM WPQ size sweep (workload "
              << workload.name << ")\n";

    TextTable table({"WPQ entries", "cycles (norm)", "WPQ rounds",
                     "rounds/eviction", "write traffic (norm)"});
    double base_cycles = 0.0, base_writes = 0.0;
    for (const std::size_t wpq : {96, 48, 16, 8, 4}) {
        SystemConfig config =
            configFromOverrides(ctx.overrides, DesignKind::PsOram);
        config.wpq_entries = wpq;
        const WorkloadResult result =
            runWorkload(config, workload, ctx.genParams(1));
        if (base_cycles == 0.0) {
            base_cycles = static_cast<double>(result.core.cycles);
            base_writes = static_cast<double>(result.traffic.writes);
        }
        const double evictions = static_cast<double>(
            result.oram_accesses - result.stash_hits);
        table.addRow(
            {std::to_string(wpq),
             TextTable::num(static_cast<double>(result.core.cycles) /
                            base_cycles, 4),
             std::to_string(result.wpq_rounds),
             TextTable::num(static_cast<double>(result.wpq_rounds) /
                            std::max(1.0, evictions), 2),
             TextTable::num(static_cast<double>(result.traffic.writes) /
                            base_writes, 4)});
    }
    table.print(std::cout);
    std::cout << "# Paper: \"The sizes of WPQs do not affect the "
                 "performance of the proposed PS-ORAM system.\"\n";
    return 0;
}
