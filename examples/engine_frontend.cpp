/**
 * @file
 * Engine frontend demo: queue asynchronous reads/writes against the
 * OramEngine, let it coalesce back-to-back accesses to one hot block,
 * and compare the tree traffic with an uncoalesced twin.
 *
 *   $ ./example_engine_frontend
 */

#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>

#include "sim/engine.hh"
#include "sim/system.hh"

using namespace psoram;

namespace {

SystemConfig
demoConfig()
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 10;
    config.cipher = CipherKind::Aes128Ctr;
    config.seed = 99;
    return config;
}

void
submitHotLoop(OramEngine &engine, int repeats)
{
    std::uint8_t block[kBlockDataBytes] = {};
    std::memcpy(block, "hot block", 9);
    engine.submitWrite(7, block);
    for (int i = 0; i < repeats; ++i)
        engine.submitRead(7); // back-to-back: coalescable
    engine.submitRead(3);     // different block: new physical access
}

} // namespace

int
main()
{
    // 1. Build a system and put the async engine in front of it.
    System system = buildSystem(demoConfig());
    OramEngine engine(*system.controller);

    // 2. Submission never drives the controller; completions arrive via
    //    callbacks (or takeCompletions()) once the caller polls.
    engine.submitRead(
        7, [](const OramEngine::Completion &c) {
            std::cout << "  request " << c.id << " addr " << c.addr
                      << (c.coalesced ? " (coalesced)" : " (physical)")
                      << " latency " << c.latency_cycles
                      << " cycles\n";
        });
    submitHotLoop(engine, 3);
    std::cout << engine.pending()
              << " requests queued, controller untouched: "
              << system.controller->accessCount() << " accesses\n";

    std::cout << "\npolling...\n";
    engine.drain();

    const OramEngine::Stats &stats = engine.stats();
    std::cout << "\ncompleted " << stats.completed.value()
              << " requests with " << stats.physical_accesses.value()
              << " physical accesses (" << stats.coalesced.value()
              << " coalesced away)\n";
    // Reads observe the block as of their queue position: the opening
    // read predates the write, the coalesced ones see its folded value.
    for (const auto &c : engine.takeCompletions())
        if (!c.is_write && c.addr == 7)
            std::cout << "  read " << c.id
                      << (c.coalesced ? " (coalesced)" : " (physical)")
                      << " of addr 7: \""
                      << reinterpret_cast<const char *>(c.data.data())
                      << "\"\n";

    // 3. The same request stream without coalescing: every duplicate
    //    read pays a full path load + eviction.
    System twin = buildSystem(demoConfig());
    EngineConfig raw;
    raw.coalesce = false;
    OramEngine uncoalesced(*twin.controller, raw);
    uncoalesced.submitRead(7);
    submitHotLoop(uncoalesced, 3);
    uncoalesced.drain();

    const TrafficCounts fast = system.controller->traffic();
    const TrafficCounts slow = twin.controller->traffic();
    std::cout << "\nNVM line traffic (reads+writes):\n"
              << "  coalescing on:  " << std::setw(6)
              << fast.reads + fast.writes << "\n"
              << "  coalescing off: " << std::setw(6)
              << slow.reads + slow.writes << "\n";
    return 0;
}
