/**
 * @file
 * Access-pattern analyzer: plays the adversary of the paper's threat
 * model (§2.1). It records the path identifiers visible on the memory
 * bus for three very different program behaviours and shows that the
 * observed distributions are statistically indistinguishable — the
 * ORAM obfuscation at work, unchanged by PS-ORAM's persistence.
 *
 *   $ ./example_access_pattern_analyzer
 */

#include <cmath>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <vector>

#include "common/random.hh"
#include "sim/system.hh"

using namespace psoram;

namespace {

constexpr unsigned kHeight = 6; // 64 leaves for a readable histogram

std::vector<PathId>
observe(const std::string &behaviour, int accesses)
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = kHeight;
    config.num_blocks = 120;
    config.seed = 31337;
    System system = buildSystem(config);

    std::vector<PathId> leaves;
    system.controller->setPathObserver(
        [&](PathId leaf) { leaves.push_back(leaf); });

    Rng rng(11);
    std::uint8_t buf[kBlockDataBytes] = {};
    for (int op = 0; op < accesses; ++op) {
        BlockAddr addr;
        if (behaviour == "sequential")
            addr = static_cast<BlockAddr>(op) % 120;
        else if (behaviour == "hot-block")
            addr = rng.nextBelow(4); // hammer four blocks
        else
            addr = rng.nextBelow(120); // uniform
        if (op % 3 == 0)
            system.controller->write(addr, buf);
        else
            system.controller->read(addr, buf);
    }
    return leaves;
}

double
chiSquare(const std::vector<PathId> &leaves)
{
    std::vector<double> histogram(1ULL << kHeight, 0.0);
    for (const PathId leaf : leaves)
        histogram[leaf] += 1.0;
    const double expected =
        static_cast<double>(leaves.size()) / histogram.size();
    double chi2 = 0.0;
    for (const double count : histogram)
        chi2 += (count - expected) * (count - expected) / expected;
    return chi2;
}

void
sparkline(const std::vector<PathId> &leaves)
{
    std::vector<int> histogram(16, 0);
    for (const PathId leaf : leaves)
        ++histogram[leaf / 4]; // 4 leaves per bin
    int max = 1;
    for (const int count : histogram)
        max = std::max(max, count);
    const char *glyphs = " .:-=+*#%@";
    std::cout << "    [";
    for (const int count : histogram)
        std::cout << glyphs[(count * 9) / max];
    std::cout << "]\n";
}

} // namespace

int
main()
{
    std::cout << "What the bus adversary sees for three program "
                 "behaviours (" << (1 << kHeight) << " leaves):\n\n";

    for (const std::string behaviour :
         {"sequential", "hot-block", "uniform"}) {
        const std::vector<PathId> leaves = observe(behaviour, 4000);
        std::cout << "  " << std::left << std::setw(11) << behaviour
                  << " " << leaves.size()
                  << " path accesses, chi^2 vs uniform = " << std::fixed
                  << std::setprecision(1) << chiSquare(leaves)
                  << "  (63 dof, ~103 is the 99.9th pct)\n";
        sparkline(leaves);
    }

    std::cout << "\nAll three leaf distributions are uniform: the "
                 "adversary cannot tell a\nsequential scan from four "
                 "hammered blocks — with persistence enabled.\n";
    return 0;
}
