/**
 * @file
 * Crash-recovery walkthrough: injects a power failure at every protocol
 * site of the PS-ORAM access (the paper's §3.3 case studies) and shows
 * the recovery outcome — then does the same for the Baseline design to
 * demonstrate why crash consistency needs PS-ORAM in the first place.
 *
 *   $ ./example_crash_recovery_demo
 */

#include <cstring>
#include <iostream>
#include <map>

#include "common/random.hh"
#include "psoram/recovery.hh"
#include "sim/system.hh"

using namespace psoram;

namespace {

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t v = 0;
    std::memcpy(&v, data + 8, sizeof(v));
    return v;
}

struct Outcome
{
    std::size_t checked = 0;
    std::size_t intact = 0; // last-committed-or-newer recovered
    std::size_t lost = 0;
    std::size_t stale = 0; // recovered something older than written
};

Outcome
crashAndRecover(DesignKind design, CrashSite site)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 8;
    config.num_blocks = 200;
    config.seed = 4242;
    System system = buildSystem(config);

    std::map<BlockAddr, std::uint32_t> durable, latest;
    system.controller->setCommitObserver(
        [&](BlockAddr addr, const auto &data) {
            durable[addr] =
                std::max(durable[addr], versionOf(data.data()));
        });
    CrashAtOccurrence policy(site, 40);
    system.controller->setCrashPolicy(&policy);

    Rng rng(7);
    std::uint8_t buf[kBlockDataBytes];
    for (int op = 0; op < 600; ++op) {
        const BlockAddr addr = rng.nextBelow(200);
        payload(addr, static_cast<std::uint32_t>(op + 1), buf);
        try {
            system.controller->write(addr, buf);
            latest[addr] = static_cast<std::uint32_t>(op + 1);
        } catch (const CrashEvent &) {
            // The in-flight write may or may not have become durable.
            latest[addr] = static_cast<std::uint32_t>(op + 1);
            break;
        }
    }

    system.recoverController();

    Outcome outcome;
    for (const auto &[addr, version] : latest) {
        system.controller->read(addr, buf);
        const std::uint32_t v = versionOf(buf);
        ++outcome.checked;
        if (v >= durable[addr] && v <= version)
            ++outcome.intact;
        else
            ++outcome.lost;
        if (v != version)
            ++outcome.stale;
    }
    return outcome;
}

} // namespace

int
main()
{
    const CrashSite sites[] = {
        CrashSite::AfterRemap,      CrashSite::DuringLoad,
        CrashSite::AfterStashUpdate, CrashSite::BeforeCommit,
        CrashSite::AfterCommit,     CrashSite::BetweenAccesses,
    };

    std::cout << "PS-ORAM: power failure at each protocol site\n";
    std::cout << "  (blocks 'intact' recover their last durable or a "
                 "newer committed version)\n\n";
    for (const CrashSite site : sites) {
        const Outcome outcome =
            crashAndRecover(DesignKind::PsOram, site);
        std::cout << "  " << crashSiteName(site) << ": "
                  << outcome.intact << "/" << outcome.checked
                  << " blocks intact, " << outcome.lost << " lost\n";
    }

    std::cout << "\nBaseline (no persistence support): the same "
                 "failure destroys the mapping\n\n";
    // The Baseline never commits anything durably (no WPQ bracket), so
    // its oracle is trivial; count how many blocks still hold their
    // last written value after the failure instead.
    const Outcome baseline = crashAndRecover(
        DesignKind::Baseline, CrashSite::DuringDirectEviction);
    std::cout << "  " << crashSiteName(CrashSite::DuringDirectEviction)
              << ": " << (baseline.checked - baseline.stale) << "/"
              << baseline.checked << " blocks kept their data, "
              << baseline.stale
              << " lost  <-- the problem PS-ORAM solves\n";
    return 0;
}
