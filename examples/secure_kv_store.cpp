/**
 * @file
 * A crash-consistent, access-pattern-oblivious key/value store built on
 * the PS-ORAM public API — the collaborative-editing style application
 * the paper's introduction motivates (Dropbox-like services that need
 * both obliviousness and durability).
 *
 * Keys are hashed to fixed-size records; each record stores the key,
 * a value and a version counter inside one ORAM block. The memory bus
 * never reveals which key is touched, how often, or whether an access
 * is a read or an update.
 *
 *   $ ./example_secure_kv_store
 */

#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "psoram/recovery.hh"
#include "sim/system.hh"

using namespace psoram;

namespace {

/** A fixed-size record in one 64-byte ORAM block. */
struct Record
{
    char key[24] = {};
    char value[32] = {};
    std::uint32_t version = 0;
    std::uint32_t used = 0;
};
static_assert(sizeof(Record) <= kBlockDataBytes);

class ObliviousKvStore
{
  public:
    explicit ObliviousKvStore(System &system)
        : system_(system), slots_(system.params.num_blocks)
    {
    }

    void
    put(const std::string &key, const std::string &value)
    {
        const BlockAddr addr = probe(key, true);
        Record record = load(addr);
        std::strncpy(record.key, key.c_str(), sizeof(record.key) - 1);
        std::strncpy(record.value, value.c_str(),
                     sizeof(record.value) - 1);
        record.used = 1;
        ++record.version;
        store(addr, record);
    }

    std::optional<std::string>
    get(const std::string &key)
    {
        const BlockAddr addr = probe(key, false);
        const Record record = load(addr);
        if (!record.used || key != record.key)
            return std::nullopt;
        return std::string(record.value);
    }

  private:
    /** Linear-probed hash over the ORAM block space. */
    BlockAddr
    probe(const std::string &key, bool inserting)
    {
        std::uint64_t h = 1469598103934665603ULL;
        for (const char c : key)
            h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ULL;
        for (std::uint64_t i = 0; i < 16; ++i) {
            const BlockAddr addr = (h + i) % slots_;
            const Record record = load(addr);
            if (!record.used || key == record.key)
                return addr;
            if (!inserting)
                return addr; // miss: still one indistinguishable access
        }
        return h % slots_; // table effectively full: overwrite
    }

    Record
    load(BlockAddr addr)
    {
        std::uint8_t block[kBlockDataBytes] = {};
        system_.controller->read(addr, block);
        Record record;
        std::memcpy(&record, block, sizeof(record));
        return record;
    }

    void
    store(BlockAddr addr, const Record &record)
    {
        std::uint8_t block[kBlockDataBytes] = {};
        std::memcpy(block, &record, sizeof(record));
        system_.controller->write(addr, block);
    }

    System &system_;
    std::uint64_t slots_;
};

} // namespace

int
main()
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 10;
    config.cipher = CipherKind::Aes128Ctr;
    config.seed = 99;
    System system = buildSystem(config);

    ObliviousKvStore store(system);

    std::cout << "Populating the oblivious KV store...\n";
    store.put("alice", "draft-v1");
    store.put("bob", "draft-v2");
    store.put("carol", "reviewing");
    store.put("alice", "draft-v3"); // update in place

    std::cout << "alice -> " << store.get("alice").value_or("<miss>")
              << "\n";
    std::cout << "bob   -> " << store.get("bob").value_or("<miss>")
              << "\n";
    std::cout << "mallory-> "
              << store.get("mallory").value_or("<miss>") << "\n";

    std::cout << "\n-- power failure mid-session --\n";
    system.recoverController();
    ObliviousKvStore recovered(system);
    std::cout << "after recovery:\n";
    std::cout << "alice -> "
              << recovered.get("alice").value_or("<miss>") << "\n";
    std::cout << "bob   -> "
              << recovered.get("bob").value_or("<miss>") << "\n";
    std::cout << "carol -> "
              << recovered.get("carol").value_or("<miss>") << "\n";

    const TrafficCounts traffic = system.controller->traffic();
    std::cout << "\nEvery get/put above cost one indistinguishable "
                 "path access;\ntotal NVM traffic: "
              << traffic.reads << " reads / " << traffic.writes
              << " writes\n";
    return 0;
}
