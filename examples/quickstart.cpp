/**
 * @file
 * Quickstart: build a crash-consistent PS-ORAM system, store and load a
 * few blocks, then survive a simulated power failure.
 *
 *   $ ./example_quickstart
 */

#include <cstring>
#include <iostream>
#include <string>

#include "psoram/recovery.hh"
#include "sim/system.hh"

using namespace psoram;

namespace {

void
putString(PsOramController &oram, BlockAddr addr, const std::string &s)
{
    std::uint8_t block[kBlockDataBytes] = {};
    std::memcpy(block, s.data(), std::min(s.size(), kBlockDataBytes));
    oram.write(addr, block);
}

std::string
getString(PsOramController &oram, BlockAddr addr)
{
    std::uint8_t block[kBlockDataBytes] = {};
    oram.read(addr, block);
    return std::string(reinterpret_cast<char *>(block));
}

} // namespace

int
main()
{
    // 1. Configure a PS-ORAM system: a small tree keeps the demo fast;
    //    Table 3's configuration would be tree_height=23.
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 10;             // 2^10 leaves
    config.cipher = CipherKind::Aes128Ctr;
    config.seed = 2024;

    System system = buildSystem(config);
    std::cout << "Built " << designName(config.design) << " with "
              << system.params.num_blocks << " logical 64B blocks, "
              << "WPQs of " << system.params.design.wpq_entries
              << " entries\n";

    // 2. Store some data. Every access is obfuscated: the memory bus
    //    only ever sees uniformly random tree paths.
    putString(*system.controller, 0, "hello, oblivious world");
    putString(*system.controller, 1, "persisted through the WPQs");
    putString(*system.controller, 2, "and recoverable after a crash");

    std::cout << "block 0: " << getString(*system.controller, 0)
              << "\n";

    // 3. Simulate a power failure. The stash, PosMap and temporary
    //    PosMap are volatile and vanish; the ADR domain flushes the
    //    committed WPQ rounds; recovery rebuilds a controller over the
    //    same NVM.
    std::cout << "\n-- power failure --\n\n";
    system.recoverController();

    for (BlockAddr addr = 0; addr < 3; ++addr)
        std::cout << "recovered block " << addr << ": "
                  << getString(*system.controller, addr) << "\n";

    // 4. Some statistics.
    const TrafficCounts traffic = system.controller->traffic();
    std::cout << "\nNVM traffic: " << traffic.reads << " reads, "
              << traffic.writes << " writes ("
              << system.params.data_layout.geometry.blocksPerPath()
              << " blocks per path)\n";
    return 0;
}
