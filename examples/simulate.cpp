/**
 * @file
 * Command-line simulator driver: run any design variant on any
 * workload (published SPEC roster, custom MPKI, or a trace file) and
 * print the full metrics — the downstream user's entry point for
 * evaluating PS-ORAM on their own configurations.
 *
 *   $ ./example_simulate design=PS-ORAM workload=429.mcf \
 *         instructions=1000000 channels=2 wpq=96
 *   $ ./example_simulate design=Rcr-PS-ORAM mpki=30
 *   $ ./example_simulate trace=mytrace.txt design=Baseline
 */

#include <iostream>

#include "common/config.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "sim/designs.hh"
#include "sim/experiment.hh"
#include "trace/trace_file.hh"

using namespace psoram;

namespace {

DesignKind
designByName(const std::string &name)
{
    for (const DesignKind kind : allDesigns())
        if (designName(kind) == name)
            return kind;
    PSORAM_FATAL("unknown design '", name, "' (try: Baseline, FullNVM, "
                 "FullNVM(STT), Naive-PS-ORAM, PS-ORAM, Rcr-Baseline, "
                 "Rcr-PS-ORAM)");
}

} // namespace

int
main(int argc, char **argv)
{
    Config options;
    options.parseArgs(argc, argv);

    const DesignKind design =
        designByName(options.getString("design", "PS-ORAM"));
    SystemConfig config = configFromOverrides(options, design);

    GeneratorParams gen;
    gen.instructions = options.getUint("instructions", 500'000);
    gen.seed = options.getUint("seed", 1);

    WorkloadSpec workload{"custom", options.getDouble("mpki", 20.0)};
    if (options.has("workload")) {
        const auto found =
            findWorkload(options.getString("workload", ""));
        if (!found)
            PSORAM_FATAL("unknown workload; see Table 4 names like "
                         "429.mcf");
        workload = *found;
    }

    printConfigBanner(std::cout, config, gen.instructions);

    WorkloadResult result;
    if (options.has("trace")) {
        // Replay an external trace file through the full system.
        VectorTrace trace =
            loadTraceFile(options.getString("trace", ""));
        System system = buildSystem(config);
        CacheHierarchy hierarchy;
        InOrderCore core(hierarchy);
        std::uint8_t buf[kBlockDataBytes] = {};
        const MemRequestHandler handler =
            [&](const MemRequest &request) -> CpuCycle {
            const BlockAddr line =
                request.line % system.params.num_blocks;
            const OramAccessInfo info = request.is_write
                ? system.controller->write(line, buf)
                : system.controller->read(line, buf);
            return info.nvm_cycles * kCpuCyclesPerNvmCycle +
                   kControllerOverheadCpuCycles;
        };
        result.workload = options.getString("trace", "");
        result.design = designName(design);
        result.core = core.run(trace, handler);
        result.traffic = system.controller->traffic();
        result.oram_accesses = system.controller->accessCount();
        result.stash_hits = system.controller->stashHits();
        result.stash_peak = system.controller->stash().peakSize();
        result.stash_mean_occupancy =
            system.controller->stash().occupancy().mean();
    } else {
        result = runWorkload(config, workload, gen);
    }

    std::cout << "\n";
    TextTable table({"Metric", "Value"});
    table.addRow({"design", result.design});
    table.addRow({"workload", result.workload});
    table.addRow({"instructions",
                  std::to_string(result.core.instructions)});
    table.addRow({"cycles", std::to_string(result.core.cycles)});
    table.addRow({"IPC", TextTable::num(result.core.ipc(), 4)});
    table.addRow({"MPKI", TextTable::num(result.core.mpki())});
    table.addRow({"ORAM accesses",
                  std::to_string(result.oram_accesses)});
    table.addRow({"stash hits", std::to_string(result.stash_hits)});
    table.addRow({"stash mean occupancy",
                  TextTable::num(result.stash_mean_occupancy)});
    table.addRow({"stash peak", std::to_string(result.stash_peak)});
    table.addRow({"NVM reads", std::to_string(result.traffic.reads)});
    table.addRow({"NVM writes", std::to_string(result.traffic.writes)});
    table.addRow({"WPQ rounds", std::to_string(result.wpq_rounds)});
    table.addRow({"backups created", std::to_string(result.backups)});
    table.print(std::cout);
    return 0;
}
