#include "crypto/aes128.hh"

#include <cstring>

#include "crypto/aes128_ni.hh"

namespace psoram {

bool Aes128::force_scalar_ = false;

static_assert(sizeof(Aes128::Block) == Aes128::kBlockBytes,
              "blocks must be contiguous when batched in an array");

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

constexpr std::uint8_t kRcon[11] = {
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
};

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

void
subBytes(std::uint8_t *s)
{
    for (int i = 0; i < 16; ++i)
        s[i] = kSbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c.
void
shiftRows(std::uint8_t *s)
{
    std::uint8_t t;
    // Row 1: rotate left by 1.
    t = s[1];
    s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    // Row 2: rotate left by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: rotate left by 3 (== right by 1).
    t = s[15];
    s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void
mixColumns(std::uint8_t *s)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
        col[0] ^= all ^ xtime(static_cast<std::uint8_t>(a0 ^ a1));
        col[1] ^= all ^ xtime(static_cast<std::uint8_t>(a1 ^ a2));
        col[2] ^= all ^ xtime(static_cast<std::uint8_t>(a2 ^ a3));
        col[3] ^= all ^ xtime(static_cast<std::uint8_t>(a3 ^ a0));
    }
}

void
addRoundKey(std::uint8_t *s, const std::uint8_t *rk)
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

} // namespace

Aes128::Aes128(const Key &key)
{
    // Key schedule per FIPS-197 section 5.2.
    std::memcpy(roundKeys_.data(), key.data(), kKeyBytes);
    for (int i = 4; i < 4 * (kRounds + 1); ++i) {
        std::uint8_t temp[4];
        std::memcpy(temp, roundKeys_.data() + 4 * (i - 1), 4);
        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            const std::uint8_t t0 = temp[0];
            temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^
                                                kRcon[i / 4]);
            temp[1] = kSbox[temp[2]];
            temp[2] = kSbox[temp[3]];
            temp[3] = kSbox[t0];
        }
        for (int b = 0; b < 4; ++b)
            roundKeys_[4 * i + b] =
                roundKeys_[4 * (i - 4) + b] ^ temp[b];
    }
}

bool
Aes128::aesniAvailable()
{
    static const bool supported = aesni::supported();
    return supported;
}

bool
Aes128::useAesni()
{
    return aesniAvailable() && !force_scalar_;
}

void
Aes128::encryptBlock(Block &block) const
{
    if (useAesni()) {
        aesni::encryptBlocks(roundKeys_.data(), block.data(), 1);
        return;
    }
    encryptBlockScalar(block);
}

void
Aes128::encryptBlocks(Block *blocks, std::size_t count) const
{
    if (useAesni()) {
        aesni::encryptBlocks(roundKeys_.data(), blocks[0].data(), count);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        encryptBlockScalar(blocks[i]);
}

void
Aes128::encryptBlockScalar(Block &block) const
{
    std::uint8_t *s = block.data();
    addRoundKey(s, roundKeys_.data());
    for (int round = 1; round < kRounds; ++round) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, roundKeys_.data() + 16 * round);
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, roundKeys_.data() + 16 * kRounds);
}

Aes128::Block
Aes128::encrypt(const Block &in) const
{
    Block out = in;
    encryptBlock(out);
    return out;
}

} // namespace psoram
