/**
 * @file
 * AES-128-GCM (NIST SP 800-38D) over the existing AES-128 backends.
 *
 * GHASH is a software carry-less GF(2^128) multiply, so the tag bytes
 * are identical on the AES-NI and scalar AES paths (the KATs cover
 * both). The integrity subsystem uses the GMAC form — authentication
 * over AAD only — to tag bucket records that the slot codec already
 * CTR-encrypts; full seal/open is provided for completeness and for
 * the NIST known-answer tests.
 *
 * IV discipline: GCM's security collapses under a repeated (key, IV)
 * pair. Callers must derive the 96-bit IV from a value that never
 * repeats for the key — the integrity layer uses its monotonically
 * increasing record version counter, resumed past the persisted
 * watermark at recovery (oram/integrity.hh).
 */

#ifndef PSORAM_CRYPTO_GCM_HH
#define PSORAM_CRYPTO_GCM_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/aes128.hh"

namespace psoram {

class Gcm
{
  public:
    static constexpr std::size_t kTagBytes = 16;
    static constexpr std::size_t kIvBytes = 12;

    using Tag = std::array<std::uint8_t, kTagBytes>;
    using Iv = std::array<std::uint8_t, kIvBytes>;

    explicit Gcm(const Aes128::Key &key);

    /**
     * Authenticated encryption: CTR-encrypt @p len bytes of @p pt into
     * @p ct (the buffers may alias) and return the tag over @p aad and
     * the ciphertext.
     */
    Tag seal(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len,
             const std::uint8_t *pt, std::uint8_t *ct,
             std::size_t len) const;

    /**
     * Verify-then-decrypt. The tag comparison runs before any
     * plaintext is produced; on mismatch @p pt is left untouched.
     * @return false on tag mismatch
     */
    bool open(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len,
              const std::uint8_t *ct, std::uint8_t *pt, std::size_t len,
              const Tag &tag) const;

    /** GMAC: the GCM tag over AAD only (no payload). */
    Tag mac(const Iv &iv, const std::uint8_t *aad,
            std::size_t aad_len) const;

    /** Constant-time tag comparison. */
    static bool tagsEqual(const Tag &a, const Tag &b);

  private:
    struct U128
    {
        std::uint64_t hi = 0;
        std::uint64_t lo = 0;
    };

    static U128 gfMul(const U128 &x, const U128 &y);

    /** GHASH over aad-blocks || payload-blocks || length block. */
    U128 ghash(const std::uint8_t *aad, std::size_t aad_len,
               const std::uint8_t *payload, std::size_t payload_len) const;

    /** Tag = GHASH(...) xor E_K(J0), J0 = IV || 0^31 || 1. */
    Tag tagFor(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len,
               const std::uint8_t *ct, std::size_t len) const;

    /** CTR keystream application starting at inc32(J0). */
    void ctr(const Iv &iv, const std::uint8_t *in, std::uint8_t *out,
             std::size_t len) const;

    Aes128 aes_;
    U128 h_; // GHASH subkey E_K(0^128)
};

} // namespace psoram

#endif // PSORAM_CRYPTO_GCM_HH
