/**
 * @file
 * AES-NI backend for Aes128 (internal).
 *
 * Kept in its own translation unit so the AES instructions can be
 * enabled per-function with target attributes while the rest of the
 * build stays baseline-portable. Callers go through Aes128, which
 * dispatches here only when supported() says the CPU has the
 * extension (and the scalar path is not force-selected for tests).
 */

#ifndef PSORAM_CRYPTO_AES128_NI_HH
#define PSORAM_CRYPTO_AES128_NI_HH

#include <cstddef>
#include <cstdint>

namespace psoram {
namespace aesni {

/** True when this build has an AES-NI path and the CPU supports it. */
bool supported();

/**
 * Encrypt @p count contiguous 16-byte blocks in place with the
 * expanded FIPS-197 round-key schedule (11 x 16 bytes). Blocks are
 * pipelined four at a time through the AES rounds; output is
 * bit-identical to the scalar implementation.
 *
 * @pre supported() returned true.
 */
void encryptBlocks(const std::uint8_t *round_keys, std::uint8_t *blocks,
                   std::size_t count);

} // namespace aesni
} // namespace psoram

#endif // PSORAM_CRYPTO_AES128_NI_HH
