#include "crypto/gcm.hh"

#include <cstring>

namespace psoram {

namespace {

Gcm::Tag
toTag(std::uint64_t hi, std::uint64_t lo)
{
    Gcm::Tag tag;
    for (unsigned i = 0; i < 8; ++i) {
        tag[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
        tag[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return tag;
}

std::uint64_t
loadBe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

Gcm::Gcm(const Aes128::Key &key) : aes_(key)
{
    Aes128::Block zero{};
    aes_.encryptBlock(zero);
    h_.hi = loadBe64(zero.data());
    h_.lo = loadBe64(zero.data() + 8);
}

Gcm::U128
Gcm::gfMul(const U128 &x, const U128 &y)
{
    // Shift-and-add multiply in GF(2^128) with the GCM bit order
    // (bit 0 = MSB of byte 0) and reduction polynomial R = 0xE1 << 120.
    U128 z;
    U128 v = y;
    for (unsigned i = 0; i < 128; ++i) {
        const std::uint64_t bit =
            i < 64 ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
        if (bit) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        const std::uint64_t lsb = v.lo & 1;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ULL;
    }
    return z;
}

Gcm::U128
Gcm::ghash(const std::uint8_t *aad, std::size_t aad_len,
           const std::uint8_t *payload, std::size_t payload_len) const
{
    U128 y;
    const auto absorb = [&](const std::uint8_t *data, std::size_t len) {
        while (len != 0) {
            std::uint8_t block[16] = {};
            const std::size_t take = len < 16 ? len : 16;
            std::memcpy(block, data, take);
            y.hi ^= loadBe64(block);
            y.lo ^= loadBe64(block + 8);
            y = gfMul(y, h_);
            data += take;
            len -= take;
        }
    };
    absorb(aad, aad_len);
    absorb(payload, payload_len);

    y.hi ^= static_cast<std::uint64_t>(aad_len) * 8;
    y.lo ^= static_cast<std::uint64_t>(payload_len) * 8;
    return gfMul(y, h_);
}

void
Gcm::ctr(const Iv &iv, const std::uint8_t *in, std::uint8_t *out,
         std::size_t len) const
{
    std::uint32_t counter = 2; // inc32(J0) with a 96-bit IV
    std::size_t off = 0;
    while (off < len) {
        Aes128::Block block;
        std::memcpy(block.data(), iv.data(), kIvBytes);
        block[12] = static_cast<std::uint8_t>(counter >> 24);
        block[13] = static_cast<std::uint8_t>(counter >> 16);
        block[14] = static_cast<std::uint8_t>(counter >> 8);
        block[15] = static_cast<std::uint8_t>(counter);
        aes_.encryptBlock(block);
        const std::size_t take =
            len - off < Aes128::kBlockBytes ? len - off
                                            : Aes128::kBlockBytes;
        for (std::size_t i = 0; i < take; ++i)
            out[off + i] = in[off + i] ^ block[i];
        off += take;
        ++counter;
    }
}

Gcm::Tag
Gcm::tagFor(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len,
            const std::uint8_t *ct, std::size_t len) const
{
    const U128 s = ghash(aad, aad_len, ct, len);
    Aes128::Block j0;
    std::memcpy(j0.data(), iv.data(), kIvBytes);
    j0[12] = j0[13] = j0[14] = 0;
    j0[15] = 1;
    aes_.encryptBlock(j0);
    return toTag(s.hi ^ loadBe64(j0.data()),
                 s.lo ^ loadBe64(j0.data() + 8));
}

Gcm::Tag
Gcm::seal(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len,
          const std::uint8_t *pt, std::uint8_t *ct, std::size_t len) const
{
    ctr(iv, pt, ct, len);
    return tagFor(iv, aad, aad_len, ct, len);
}

bool
Gcm::open(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len,
          const std::uint8_t *ct, std::uint8_t *pt, std::size_t len,
          const Tag &tag) const
{
    if (!tagsEqual(tagFor(iv, aad, aad_len, ct, len), tag))
        return false;
    ctr(iv, ct, pt, len);
    return true;
}

Gcm::Tag
Gcm::mac(const Iv &iv, const std::uint8_t *aad, std::size_t aad_len) const
{
    return tagFor(iv, aad, aad_len, nullptr, 0);
}

bool
Gcm::tagsEqual(const Tag &a, const Tag &b)
{
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < kTagBytes; ++i)
        diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

} // namespace psoram
