#include "crypto/aes128_ni.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace psoram {
namespace aesni {

bool
supported()
{
    return __builtin_cpu_supports("aes") != 0;
}

namespace {

__attribute__((target("aes,sse2"))) inline __m128i
encryptOne(__m128i block, const __m128i *keys)
{
    block = _mm_xor_si128(block, keys[0]);
    for (int round = 1; round < 10; ++round)
        block = _mm_aesenc_si128(block, keys[round]);
    return _mm_aesenclast_si128(block, keys[10]);
}

} // namespace

__attribute__((target("aes,sse2"))) void
encryptBlocks(const std::uint8_t *round_keys, std::uint8_t *blocks,
              std::size_t count)
{
    __m128i keys[11];
    for (int i = 0; i < 11; ++i)
        keys[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(round_keys + 16 * i));

    std::size_t i = 0;
    // Four blocks ride the AES pipeline together: aesenc has multi-cycle
    // latency but single-cycle throughput, so interleaving independent
    // blocks hides it.
    for (; i + 4 <= count; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(blocks + 16 * i);
        __m128i b0 = _mm_loadu_si128(p + 0);
        __m128i b1 = _mm_loadu_si128(p + 1);
        __m128i b2 = _mm_loadu_si128(p + 2);
        __m128i b3 = _mm_loadu_si128(p + 3);
        b0 = _mm_xor_si128(b0, keys[0]);
        b1 = _mm_xor_si128(b1, keys[0]);
        b2 = _mm_xor_si128(b2, keys[0]);
        b3 = _mm_xor_si128(b3, keys[0]);
        for (int round = 1; round < 10; ++round) {
            b0 = _mm_aesenc_si128(b0, keys[round]);
            b1 = _mm_aesenc_si128(b1, keys[round]);
            b2 = _mm_aesenc_si128(b2, keys[round]);
            b3 = _mm_aesenc_si128(b3, keys[round]);
        }
        b0 = _mm_aesenclast_si128(b0, keys[10]);
        b1 = _mm_aesenclast_si128(b1, keys[10]);
        b2 = _mm_aesenclast_si128(b2, keys[10]);
        b3 = _mm_aesenclast_si128(b3, keys[10]);
        _mm_storeu_si128(p + 0, b0);
        _mm_storeu_si128(p + 1, b1);
        _mm_storeu_si128(p + 2, b2);
        _mm_storeu_si128(p + 3, b3);
    }
    for (; i < count; ++i) {
        __m128i *p = reinterpret_cast<__m128i *>(blocks + 16 * i);
        _mm_storeu_si128(p, encryptOne(_mm_loadu_si128(p), keys));
    }
}

} // namespace aesni
} // namespace psoram

#else // non-x86: no AES-NI path

namespace psoram {
namespace aesni {

bool
supported()
{
    return false;
}

void
encryptBlocks(const std::uint8_t *, std::uint8_t *, std::size_t)
{
}

} // namespace aesni
} // namespace psoram

#endif
