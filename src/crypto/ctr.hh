/**
 * @file
 * AES-128 counter-mode encryption for ORAM blocks.
 *
 * Following Fletcher et al. (the paper's [20]), each ORAM block carries two
 * initialization vectors: IV1 encrypts the block header (program address +
 * path id) and IV2 encrypts the 64-byte data payload. Re-encrypting a block
 * on eviction bumps the IVs, so identical plaintexts never produce
 * identical ciphertexts on the memory bus.
 */

#ifndef PSORAM_CRYPTO_CTR_HH
#define PSORAM_CRYPTO_CTR_HH

#include <cstdint>
#include <cstddef>

#include "crypto/aes128.hh"

namespace psoram {

/**
 * Stateless CTR-mode encryptor bound to one AES key.
 *
 * The keystream for (iv, i) is AES_K(iv || i); XORing is its own inverse,
 * so encrypt() and decrypt() are the same operation.
 */
class CtrCipher
{
  public:
    explicit CtrCipher(const Aes128::Key &key);

    /**
     * XOR @p len bytes of @p data with the keystream derived from @p iv.
     * @param iv per-use initialization vector (must not repeat per key)
     */
    void apply(std::uint64_t iv, std::uint8_t *data, std::size_t len) const;

    /** Convenience overload for std::array / C-array payloads. */
    template <std::size_t N>
    void
    apply(std::uint64_t iv, std::uint8_t (&data)[N]) const
    {
        apply(iv, data, N);
    }

  private:
    Aes128 aes_;
};

} // namespace psoram

#endif // PSORAM_CRYPTO_CTR_HH
