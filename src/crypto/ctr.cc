#include "crypto/ctr.hh"

#include <cstring>

namespace psoram {

CtrCipher::CtrCipher(const Aes128::Key &key) : aes_(key)
{
}

void
CtrCipher::apply(std::uint64_t iv, std::uint8_t *data, std::size_t len) const
{
    std::uint64_t counter = 0;
    std::size_t off = 0;
    while (off < len) {
        Aes128::Block ctr_block{};
        std::memcpy(ctr_block.data(), &iv, sizeof(iv));
        std::memcpy(ctr_block.data() + sizeof(iv), &counter,
                    sizeof(counter));
        aes_.encryptBlock(ctr_block);

        const std::size_t chunk =
            std::min(len - off, Aes128::kBlockBytes);
        for (std::size_t i = 0; i < chunk; ++i)
            data[off + i] ^= ctr_block[i];
        off += chunk;
        ++counter;
    }
}

} // namespace psoram
