#include "crypto/ctr.hh"

#include <algorithm>
#include <cstring>

namespace psoram {

CtrCipher::CtrCipher(const Aes128::Key &key) : aes_(key)
{
}

void
CtrCipher::apply(std::uint64_t iv, std::uint8_t *data, std::size_t len) const
{
    // Generate the keystream for up to 8 counter blocks per cipher
    // dispatch, so the AES-NI backend can pipeline them. Block i of the
    // keystream is AES_K(iv || i), exactly as the one-at-a-time loop
    // produced it, so ciphertexts are unchanged.
    constexpr std::size_t kMaxBatch = 8;
    Aes128::Block keystream[kMaxBatch];

    std::uint64_t counter = 0;
    std::size_t off = 0;
    while (off < len) {
        const std::size_t blocks =
            std::min(kMaxBatch, (len - off + Aes128::kBlockBytes - 1) /
                                    Aes128::kBlockBytes);
        for (std::size_t b = 0; b < blocks; ++b) {
            const std::uint64_t ctr = counter + b;
            std::memcpy(keystream[b].data(), &iv, sizeof(iv));
            std::memcpy(keystream[b].data() + sizeof(iv), &ctr,
                        sizeof(ctr));
        }
        aes_.encryptBlocks(keystream, blocks);

        for (std::size_t b = 0; b < blocks; ++b) {
            const std::size_t chunk =
                std::min(len - off, Aes128::kBlockBytes);
            for (std::size_t i = 0; i < chunk; ++i)
                data[off + i] ^= keystream[b][i];
            off += chunk;
        }
        counter += blocks;
    }
}

} // namespace psoram
