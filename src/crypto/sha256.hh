/**
 * @file
 * SHA-256 (FIPS 180-4) for the integrity subsystem's Merkle tree.
 *
 * The Merkle tree hashes persisted bucket records, so the hash must be
 * deterministic across builds and safe to compute over attacker-visible
 * data (unlike a keyed GHASH, whose key would leak from known
 * plaintext/tag pairs if it were used as an unkeyed hash). Plain
 * portable implementation; the integrity tree hashes a handful of
 * 32-160 byte nodes per eviction, so this is nowhere near a hot path.
 */

#ifndef PSORAM_CRYPTO_SHA256_HH
#define PSORAM_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace psoram {

class Sha256
{
  public:
    static constexpr std::size_t kDigestBytes = 32;
    using Digest = std::array<std::uint8_t, kDigestBytes>;

    Sha256() { reset(); }

    /** Back to the initial state (reusable across messages). */
    void reset();

    void update(const std::uint8_t *data, std::size_t len);

    /** Finish the message and return the digest (call reset() to reuse). */
    Digest finish();

    /** One-shot convenience. */
    static Digest
    digest(const std::uint8_t *data, std::size_t len)
    {
        Sha256 h;
        h.update(data, len);
        return h.finish();
    }

  private:
    void compress(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_;
    std::uint64_t total_len_ = 0;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
};

} // namespace psoram

#endif // PSORAM_CRYPTO_SHA256_HH
