#include "crypto/sha256.hh"

#include <cstring>

namespace psoram {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

inline std::uint32_t
rotr(std::uint32_t x, unsigned n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace

void
Sha256::reset()
{
    std::memcpy(state_.data(), kInit, sizeof(kInit));
    total_len_ = 0;
    buffered_ = 0;
}

void
Sha256::compress(const std::uint8_t block[64])
{
    std::uint32_t w[64];
    for (unsigned i = 0; i < 16; ++i)
        w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
               (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    for (unsigned i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^
                                 rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^
                                 rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                  d = state_[3], e = state_[4], f = state_[5],
                  g = state_[6], h = state_[7];
    for (unsigned i = 0; i < 64; ++i) {
        const std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
        const std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::update(const std::uint8_t *data, std::size_t len)
{
    total_len_ += len;
    if (buffered_ != 0) {
        const std::size_t take =
            std::min(len, buffer_.size() - buffered_);
        std::memcpy(buffer_.data() + buffered_, data, take);
        buffered_ += take;
        data += take;
        len -= take;
        if (buffered_ == buffer_.size()) {
            compress(buffer_.data());
            buffered_ = 0;
        }
    }
    while (len >= 64) {
        compress(data);
        data += 64;
        len -= 64;
    }
    if (len != 0) {
        std::memcpy(buffer_.data(), data, len);
        buffered_ = len;
    }
}

Sha256::Digest
Sha256::finish()
{
    const std::uint64_t bit_len = total_len_ * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (buffered_ != 56)
        update(&zero, 1);
    std::uint8_t len_be[8];
    for (unsigned i = 0; i < 8; ++i)
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // update() counts the padding into total_len_, but the length block
    // below completes the final 64-byte block, so no further padding
    // decisions depend on it.
    update(len_be, 8);

    Digest out;
    for (unsigned i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
}

} // namespace psoram
