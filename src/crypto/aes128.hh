/**
 * @file
 * AES-128 block cipher (FIPS-197), encrypt direction only.
 *
 * CTR mode (crypto/ctr.hh) only needs the forward cipher. This is a plain
 * table-free implementation: the simulator models the 32-cycle hardware
 * AES latency separately (Table 3), so software speed is not critical —
 * correctness and freedom from external dependencies are.
 */

#ifndef PSORAM_CRYPTO_AES128_HH
#define PSORAM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace psoram {

class Aes128
{
  public:
    static constexpr std::size_t kBlockBytes = 16;
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    using Block = std::array<std::uint8_t, kBlockBytes>;
    using Key = std::array<std::uint8_t, kKeyBytes>;

    /** Expand @p key into the round-key schedule. */
    explicit Aes128(const Key &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(Block &block) const;

    /** Encrypt @p in into @p out (may alias). */
    Block encrypt(const Block &in) const;

  private:
    // 11 round keys of 16 bytes each.
    std::array<std::uint8_t, kBlockBytes * (kRounds + 1)> roundKeys_;
};

} // namespace psoram

#endif // PSORAM_CRYPTO_AES128_HH
