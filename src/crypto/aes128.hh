/**
 * @file
 * AES-128 block cipher (FIPS-197), encrypt direction only.
 *
 * CTR mode (crypto/ctr.hh) only needs the forward cipher. Two backends
 * share one key schedule: a table-free scalar implementation (the
 * reference, and the fallback on CPUs without AES instructions) and an
 * AES-NI path (crypto/aes128_ni.cc) selected at runtime via CPUID. Both
 * produce bit-identical ciphertext; the simulator models the 32-cycle
 * hardware AES latency separately (Table 3), but the host-side AES cost
 * sits on every slot of every simulated path access, so the batched
 * encryptBlocks() entry point matters for simulation throughput.
 */

#ifndef PSORAM_CRYPTO_AES128_HH
#define PSORAM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

namespace psoram {

class Aes128
{
  public:
    static constexpr std::size_t kBlockBytes = 16;
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    using Block = std::array<std::uint8_t, kBlockBytes>;
    using Key = std::array<std::uint8_t, kKeyBytes>;

    /** Expand @p key into the round-key schedule. */
    explicit Aes128(const Key &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(Block &block) const;

    /** Encrypt @p in into @p out (may alias). */
    Block encrypt(const Block &in) const;

    /**
     * Encrypt @p count contiguous blocks in place. Dispatches to the
     * pipelined AES-NI backend when available; output is identical on
     * both paths.
     */
    void encryptBlocks(Block *blocks, std::size_t count) const;

    /** True when the AES-NI backend is compiled in and the CPU has it. */
    static bool aesniAvailable();

    /**
     * Test hook: when @p force is true every Aes128 uses the scalar
     * path even on AES-NI hardware (lets the KATs cover both backends).
     */
    static void forceScalar(bool force) { force_scalar_ = force; }

  private:
    void encryptBlockScalar(Block &block) const;
    static bool useAesni();

    // 11 round keys of 16 bytes each.
    std::array<std::uint8_t, kBlockBytes * (kRounds + 1)> roundKeys_;

    static bool force_scalar_;
};

} // namespace psoram

#endif // PSORAM_CRYPTO_AES128_HH
