/**
 * @file
 * PhaseEnv: the shared-subsystem view the protocol phase components
 * operate on.
 *
 * The controller owns the stash, position maps, WPQ drainer, codec and
 * so on; the phases borrow them through this struct. Tests assemble a
 * PhaseEnv from stand-alone subsystems to exercise one phase in
 * isolation — no controller required.
 *
 * Everything here is a non-owning reference/pointer; the env must not
 * outlive the subsystems it points at.
 */

#ifndef PSORAM_PSORAM_PHASE_ENV_HH
#define PSORAM_PSORAM_PHASE_ENV_HH

#include <functional>

#include "common/random.hh"
#include "common/stats.hh"
#include "mem/backend.hh"
#include "oram/block.hh"
#include "oram/posmap.hh"
#include "oram/recursive_posmap.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"
#include "psoram/crash.hh"
#include "psoram/drainer.hh"
#include "psoram/params.hh"
#include "psoram/shadow_stash.hh"
#include "psoram/temp_posmap.hh"

namespace psoram {

class NvmDevice;

/** Protocol statistics the phases maintain (owned by the controller). */
struct ProtocolCounters
{
    Counter stash_hits;
    Counter backups;
    Counter stale_dropped;
    Counter forced_merges;
    Counter unplaced_carried;

    /** Plain-value copy for merged per-shard reporting. Counters are
     *  relaxed-atomic, so this is safe while the owning shard's worker
     *  is running. */
    struct Snapshot
    {
        std::uint64_t stash_hits = 0;
        std::uint64_t backups = 0;
        std::uint64_t stale_dropped = 0;
        std::uint64_t forced_merges = 0;
        std::uint64_t unplaced_carried = 0;
    };

    Snapshot
    snapshot() const
    {
        return Snapshot{stash_hits.value(), backups.value(),
                        stale_dropped.value(), forced_merges.value(),
                        unplaced_carried.value()};
    }
};

struct PhaseEnv
{
    /** @{ Configuration and geometry. */
    const PsOramParams &params;
    const TreeGeometry &geo;
    /** @} */

    /** @{ Shared machinery. */
    MemoryBackend &device;
    BlockCodec &codec;
    Rng &rng;
    Stash &stash;
    TempPosMap &temp;
    PosMap &volatile_posmap;
    PersistentPosMap &persistent_posmap;
    ProtocolCounters &counters;
    /** @} */

    /** @{ Optional subsystems (design dependent; may be null). */
    PosMapTreeLevel *pom = nullptr;
    ShadowStashRegion *shadow_data = nullptr;
    ShadowStashRegion *shadow_pom = nullptr;
    PersistentPosMap *pom_pos_region = nullptr;
    Drainer *drainer = nullptr;
    /** On-chip NVM buffer (FullNVM designs). */
    NvmDevice *onchip = nullptr;
    /** @} */

    /** @{ Controller callbacks (empty-safe). */
    std::function<void(CrashSite)> maybe_crash;
    /** Points at the controller's observer slot so setCommitObserver()
     *  takes effect without rebuilding the env. */
    const CommitObserver *commit_observer = nullptr;
    /** @} */

    /** Rotating line offset for the on-chip buffer's bank spread. */
    Cycle onchip_clock_skew = 0;

    /** @{ Pipelined-engine state (null/identity when synchronous).
     *  current_ticket stamps temp-PosMap entries with the recording
     *  access; temp_horizon bounds which pending remaps the evictor may
     *  treat as committed-in-this-access (see TempPosMap::getVisible).
     *  The controller sets these around each stage; phase components
     *  only read them. */
    class SubtreeCache *subtree_cache = nullptr;
    std::uint64_t current_ticket = 0;
    std::uint64_t temp_horizon = ~std::uint64_t{0};
    /** @} */

    /** Authenticated-record layer (oram/integrity.hh); the loader
     *  verifies and the evictor seals through it when set. Assigned
     *  after construction, like subtree_cache. */
    class IntegrityManager *integrity = nullptr;

    /** @{ Design predicates. */
    bool persistent() const
    {
        return params.design.persist != PersistMode::None;
    }
    bool recursive() const { return params.design.recursive_posmap; }
    bool usesBackups() const { return persistent() && !recursive(); }
    /** @} */

    void
    crashCheck(CrashSite site) const
    {
        if (maybe_crash)
            maybe_crash(site);
    }

    void
    notifyCommit(BlockAddr addr,
                 const std::array<std::uint8_t, kBlockDataBytes> &data)
        const
    {
        if (commit_observer && *commit_observer)
            (*commit_observer)(addr, data);
    }

    /** Committed (persistent) position of @p addr. */
    PathId committedPath(BlockAddr addr) const;

    /** @{ On-chip NVM buffer timing (no-ops without a buffer). */
    Cycle onChipRead(Cycle earliest);
    Cycle onChipWrite(Cycle earliest);
    /** @} */
};

} // namespace psoram

#endif // PSORAM_PSORAM_PHASE_ENV_HH
