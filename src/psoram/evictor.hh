/**
 * @file
 * Evictor: protocol step 5 — PS-ORAM eviction (paper §4.2.1/§4.2.3).
 *
 * Non-recursive persistent designs use *safe placement*: backups return
 * to their load slot (identity rewrite of the committed value), stash
 * blocks only fill previously-dummy slots, and writes are emitted
 * dummy-slots-first — so any committed prefix of WPQ rounds leaves the
 * tree recoverable. Recursive designs commit the whole eviction (data
 * path + PoM path + stash shadows) in one atomic bracket; non-persistent
 * designs do a classic greedy write-back with no crash guarantees.
 */

#ifndef PSORAM_PSORAM_EVICTOR_HH
#define PSORAM_PSORAM_EVICTOR_HH

#include "psoram/access_context.hh"
#include "psoram/phase_env.hh"

namespace psoram {

class Evictor
{
  public:
    explicit Evictor(PhaseEnv &env) : env_(env) {}

    /**
     * Place stash blocks onto ctx.leaf's path, emit the re-encrypted
     * path (and metadata) into ctx.bundle, and persist it — atomically
     * through the WPQ drainer for the PS designs, directly otherwise.
     * Advances ctx.t to the completion cycle and notifies the commit
     * observer of every block that became durable.
     */
    void run(AccessContext &ctx);

  private:
    PhaseEnv &env_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_EVICTOR_HH
