/**
 * @file
 * Evictor: protocol step 5 — PS-ORAM eviction (paper §4.2.1/§4.2.3).
 *
 * Non-recursive persistent designs use *safe placement*: backups return
 * to their load slot (identity rewrite of the committed value), stash
 * blocks only fill previously-dummy slots, and writes are emitted
 * dummy-slots-first — so any committed prefix of WPQ rounds leaves the
 * tree recoverable. Recursive designs commit the whole eviction (data
 * path + PoM path + stash shadows) in one atomic bracket; non-persistent
 * designs do a classic greedy write-back with no crash guarantees.
 */

#ifndef PSORAM_PSORAM_EVICTOR_HH
#define PSORAM_PSORAM_EVICTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "nvm/wpq.hh"
#include "oram/block.hh"
#include "psoram/access_context.hh"
#include "psoram/phase_env.hh"

namespace psoram {

class Evictor
{
  public:
    explicit Evictor(PhaseEnv &env) : env_(env) {}

    /**
     * Place stash blocks onto ctx.leaf's path, emit the re-encrypted
     * path (and metadata) into ctx.bundle, and persist it — atomically
     * through the WPQ drainer for the PS designs, directly otherwise.
     * Advances ctx.t to the completion cycle and notifies the commit
     * observer of every block that became durable.
     */
    void run(AccessContext &ctx);

  private:
    /** Record of one placement (for commit bookkeeping). */
    struct Placed
    {
        BlockAddr addr;
        PathId path;
        std::uint32_t epoch;
        std::array<std::uint8_t, kBlockDataBytes> data;
        bool is_backup;
        std::size_t write_index; // filled when writes are emitted
        unsigned level, slot;
    };

    /** Pass-A sink candidate: a live stash entry and its max depth. */
    struct Cand
    {
        BlockAddr addr;
        unsigned max_level;
    };

    /**
     * Per-access working set, preallocated and reused across run()
     * calls (clearing keeps vector capacity) so the eviction performs
     * no heap allocation in steady state. Path-indexed vectors use
     * [level * bucket_slots + slot].
     */
    struct EvictScratch
    {
        std::vector<PlainBlock> plan;
        std::vector<std::uint8_t> used;
        std::vector<std::uint8_t> prev_live;
        /** Slot -> 1 + index into placed (0 = path dummy). */
        std::vector<std::uint32_t> slot_writer;
        std::vector<Placed> placed;
        std::vector<Cand> cands;
        /** Per-level ascending free-slot lists with fill/consume marks. */
        std::vector<std::uint32_t> free_slots;
        std::vector<std::uint32_t> free_count;
        std::vector<std::uint32_t> free_cursor;
        /** Greedy eviction: cached commonLevel per stash position,
         *  mirrored through the stash's swap-with-last removals. */
        std::vector<unsigned> depths;
        /** Data-write index -> 1 + index into placed (0 = dummy). */
        std::vector<std::uint32_t> write_placed;
        std::vector<WpqEntry> data_writes;
    };

    PhaseEnv &env_;
    EvictScratch scratch_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_EVICTOR_HH
