/**
 * @file
 * Design-variant options for the crash-consistency evaluation (§5.1).
 *
 * One configurable controller implements every scheme the paper
 * evaluates; the option combinations below reproduce the six designs:
 *
 *   Baseline       — Path ORAM on NVM, volatile stash/PosMap, no
 *                    persistence support.
 *   FullNVM        — stash and PosMap built from on-chip PCM (FullNVM) or
 *                    STT-RAM (FullNVM-STT); not crash consistent (data
 *                    and metadata writes are not atomic).
 *   Naïve-PS-ORAM  — PS-ORAM protocol, but persists *all* Z(L+1) PosMap
 *                    entries of the path on every eviction.
 *   PS-ORAM        — the paper's design: temporary PosMap, backup
 *                    blocks, dual WPQs, dirty-entry-only persistence.
 *   Rcr-Baseline   — recursive PosMap (Freecursive-style) in untrusted
 *                    NVM, no stash persistence.
 *   Rcr-PS-ORAM    — recursive PosMap plus PS-ORAM stash persistence.
 */

#ifndef PSORAM_PSORAM_DESIGN_HH
#define PSORAM_PSORAM_DESIGN_HH

#include <cstdint>
#include <string>

namespace psoram {

/** What gets persisted at eviction time. */
enum class PersistMode
{
    /** Nothing: volatile stash/PosMap (Baseline / FullNVM). */
    None,
    /** All Z(L+1) PosMap entries per eviction (Naïve-PS-ORAM). */
    NaiveAll,
    /** Only dirty PosMap entries (PS-ORAM). */
    DirtyOnly,
};

/** Technology of the on-chip stash/PosMap buffers. */
enum class StashTech
{
    SRAM,   // volatile, fast (Baseline and PS variants)
    PCM,    // FullNVM
    STTRAM, // FullNVM (STT)
};

struct DesignOptions
{
    PersistMode persist = PersistMode::None;
    StashTech stash_tech = StashTech::SRAM;
    /** Recursive PosMap in untrusted NVM instead of on-chip + trusted
     *  region. */
    bool recursive_posmap = false;
    /** PS-ORAM backup blocks (step 4). Implied by persist != None. */
    bool backup_blocks = false;
    /** Entries per WPQ (96 in the default config, 4 for the ablation). */
    std::size_t wpq_entries = 96;
    /** Temporary PosMap capacity (Table 3b). */
    std::size_t temp_posmap_entries = 96;

    bool usesWpq() const { return persist != PersistMode::None; }
};

/** The six named designs of §5.1. */
enum class DesignKind
{
    Baseline,
    FullNvm,
    FullNvmStt,
    NaivePsOram,
    PsOram,
    RcrBaseline,
    RcrPsOram,
};

/** Canonical option set for a named design. */
DesignOptions designOptions(DesignKind kind);

/** Display name matching the paper ("PS-ORAM", "Rcr-Baseline", ...). */
std::string designName(DesignKind kind);

} // namespace psoram

#endif // PSORAM_PSORAM_DESIGN_HH
