#include "psoram/phase_env.hh"

#include <cstring>

#include "nvm/device.hh"

namespace psoram {

PathId
PhaseEnv::committedPath(BlockAddr addr) const
{
    if (recursive()) {
        // For recursive designs the PosMap entry is written through at
        // access time; the effective value is the committed one up to
        // the in-flight bracket. Resolve via the PoM level.
        const std::uint64_t b = addr / kEntriesPerPosBlock;
        const unsigned offset =
            static_cast<unsigned>(addr % kEntriesPerPosBlock);
        std::uint32_t word = 0;
        if (const StashEntry *entry = pom->stash().find(b)) {
            std::memcpy(&word,
                        entry->data.data() + offset * sizeof(word),
                        sizeof(word));
        } else {
            // Walk the block's path in the NVM image.
            const PathId pos = pom->blockPosition(b);
            const TreeGeometry &pg = pom->params().layout.geometry;
            for (unsigned level = 0; level <= pg.height && word == 0;
                 ++level) {
                const BucketId bucket = pg.bucketAt(pos, level);
                for (unsigned s = 0; s < pg.bucket_slots; ++s) {
                    SlotBytes raw{};
                    device.readBytes(
                        pom->params().layout.slotAddr(bucket, s),
                        raw.data(), kSlotBytes);
                    const PlainBlock block = codec.decode(raw);
                    if (!block.isDummy() && block.addr == b) {
                        std::memcpy(
                            &word,
                            block.data.data() + offset * sizeof(word),
                            sizeof(word));
                        break;
                    }
                }
            }
        }
        if (word & kPosEntryValid)
            return static_cast<PathId>(word & ~kPosEntryValid);
        return initialPath(params.seed, addr, geo.numLeaves());
    }
    if (persistent())
        return persistent_posmap.readEntry(device, addr);
    return volatile_posmap.get(addr);
}

Cycle
PhaseEnv::onChipRead(Cycle earliest)
{
    if (!onchip)
        return earliest;
    // Round-robin the on-chip buffer's lines to exercise its banks.
    static constexpr Addr kStride = kBlockDataBytes;
    onchip_clock_skew = (onchip_clock_skew + kStride) & 0xffff;
    return onchip->accessOne(onchip_clock_skew, false, earliest);
}

Cycle
PhaseEnv::onChipWrite(Cycle earliest)
{
    if (!onchip)
        return earliest;
    static constexpr Addr kStride = kBlockDataBytes;
    onchip_clock_skew = (onchip_clock_skew + kStride) & 0xffff;
    return onchip->accessOne(onchip_clock_skew, true, earliest);
}

} // namespace psoram
