#include "psoram/remapper.hh"

#include <algorithm>

namespace psoram {

void
Remapper::run(AccessContext &ctx)
{
    const BlockAddr addr = ctx.addr;
    PathId new_leaf = env_.rng.nextPath(env_.geo.numLeaves());

    if (!env_.recursive()) {
        PathId leaf;
        if (env_.persistent()) {
            leaf = env_.committedPath(addr);
            // Remap to a *different* leaf: if the new label equaled the
            // old one, the backup block and the re-labeled live block
            // would carry identical header paths and the staleness rule
            // (footnote 1) could no longer tell them apart.
            while (new_leaf == leaf && env_.geo.numLeaves() > 1)
                new_leaf = env_.rng.nextPath(env_.geo.numLeaves());
            // Stage the remap; the main PosMap keeps the old mapping
            // until the block's eviction round commits.
            if (env_.temp.full())
                ++env_.counters.forced_merges;
            env_.temp.put(addr, new_leaf, env_.current_ticket);
        } else {
            leaf = env_.volatile_posmap.get(addr);
            env_.volatile_posmap.set(addr, new_leaf);
            if (env_.onchip) {
                // FullNVM: the PosMap lives in on-chip NVM.
                ctx.t = env_.onChipRead(ctx.t);
                ctx.t = env_.onChipWrite(ctx.t);
            }
        }
        ctx.leaf = leaf;
        ctx.new_leaf = new_leaf;
        return;
    }

    // Recursive: one PosMap ORAM access, write-through with the new
    // label (the recursive baseline's inherent persistence).
    Cycle read_chain = ctx.t;
    const auto read_hook = [&](Addr a) {
        read_chain = std::max(
            env_.device.accessOne(a, false, ctx.t),
            read_chain + env_.params.controller_block_cycles);
    };
    const std::uint32_t new_word =
        PersistentPosMap::encodeEntry(new_leaf);
    PosMapTreeLevel::AccessOutcome outcome =
        env_.pom->accessEntry(addr, new_word, read_hook);
    ctx.t = read_chain;

    if (env_.persistent()) {
        // Rcr-PS-ORAM: the PoM path write joins the atomic bracket.
        // Its ordering constraint (not before the data/shadow write of
        // the accessed block) is filled in by the Evictor.
        for (const auto &write : outcome.writes) {
            PosmapWrite pw;
            pw.entry.addr = write.addr;
            pw.entry.data.assign(write.data.begin(), write.data.end());
            ctx.bundle.posmap_writes.push_back(std::move(pw));
        }
        // Position entries for dirty entry blocks that returned to the
        // tree in this eviction.
        for (const auto &[idx, pos] : outcome.placed) {
            if (!env_.pom->isPositionDirty(idx))
                continue;
            PosmapWrite pw;
            pw.entry.addr = env_.pom_pos_region->entryAddr(idx);
            const auto record = PersistentPosMap::encodeRecord(pos, 0);
            pw.entry.data.assign(record.begin(), record.end());
            ctx.bundle.posmap_writes.push_back(std::move(pw));
            env_.pom->clearPositionDirty(idx);
        }
        ctx.pom_after_data = ctx.bundle.posmap_writes.size();
    } else {
        // Rcr-Baseline: direct, non-atomic writes to the PoM tree.
        Cycle wdone = ctx.t;
        for (const auto &write : outcome.writes) {
            env_.device.writeBytes(write.addr, write.data.data(),
                                   write.data.size());
            wdone = std::max(
                wdone, env_.device.accessOne(write.addr, true, ctx.t));
        }
        ctx.t = wdone;
    }

    const std::uint32_t old_word = outcome.old_word;
    ctx.leaf = (old_word & kPosEntryValid)
        ? static_cast<PathId>(old_word & ~kPosEntryValid)
        : initialPath(env_.params.seed, addr, env_.geo.numLeaves());
    ctx.new_leaf = new_leaf;
}

} // namespace psoram
