/**
 * @file
 * Crash-injection framework.
 *
 * The controller calls CrashPolicy::site() at every protocol point where
 * the paper's case studies (§3.3) place a failure. When the policy
 * trips, a CrashEvent unwinds the access: all volatile state (stash,
 * PosMap, temporary PosMap, caches) is considered lost, the ADR domain
 * flushes committed WPQ rounds, and the harness rebuilds a controller
 * from the NVM image to exercise recovery (§4.3).
 */

#ifndef PSORAM_PSORAM_CRASH_HH
#define PSORAM_PSORAM_CRASH_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace psoram {

/** Protocol points where a power failure can be injected. */
enum class CrashSite
{
    /** After the PosMap lookup / temp-PosMap backup (end of step 2). */
    AfterRemap,
    /** During the path load, after some slots were read (step 3). */
    DuringLoad,
    /** After the stash update and data-block backup (end of step 4). */
    AfterStashUpdate,
    /** After entries were pushed into the WPQs, before "end" (5-B). */
    BeforeCommit,
    /** After the "end" signal, before the drain finished (5-C). */
    AfterCommit,
    /** Between two eviction rounds (limited-WPQ configurations). */
    BetweenRounds,
    /** During a direct (non-WPQ) eviction write — Baseline/FullNVM. */
    DuringDirectEviction,
    /** After the access completed, before the next one. */
    BetweenAccesses,
};

std::string crashSiteName(CrashSite site);

/** Thrown when the configured crash point is reached. */
class CrashEvent : public std::runtime_error
{
  public:
    CrashEvent(CrashSite site, std::uint64_t access_index)
        : std::runtime_error("simulated power failure at " +
                             crashSiteName(site)),
          site_(site), access_index_(access_index)
    {
    }

    CrashSite site() const { return site_; }
    std::uint64_t accessIndex() const { return access_index_; }

  private:
    CrashSite site_;
    std::uint64_t access_index_;
};

/**
 * Decides when to trip. The default policy never crashes; tests arm it
 * with (site, access index, occurrence) triples.
 */
class CrashPolicy
{
  public:
    virtual ~CrashPolicy() = default;

    /**
     * @param site the protocol point being passed
     * @param access_index index of the in-flight ORAM access
     * @return true to crash here
     */
    virtual bool shouldCrash(CrashSite site, std::uint64_t access_index)
    {
        (void)site;
        (void)access_index;
        return false;
    }
};

/** Crash exactly once at the n-th occurrence of one site. */
class CrashAtOccurrence : public CrashPolicy
{
  public:
    CrashAtOccurrence(CrashSite site, std::uint64_t occurrence)
        : site_(site), target_(occurrence)
    {
    }

    bool
    shouldCrash(CrashSite site, std::uint64_t) override
    {
        if (site != site_ || fired_)
            return false;
        if (++seen_ == target_) {
            fired_ = true;
            return true;
        }
        return false;
    }

    bool fired() const { return fired_; }

  private:
    CrashSite site_;
    std::uint64_t target_;
    std::uint64_t seen_ = 0;
    bool fired_ = false;
};

} // namespace psoram

#endif // PSORAM_PSORAM_CRASH_HH
