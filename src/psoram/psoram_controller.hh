/**
 * @file
 * PS-ORAM controller: the paper's crash-consistent ORAM controller
 * (Figure 4), configurable to every design variant of §5.1.
 *
 * The controller is a thin orchestrator over the protocol phase
 * components (paper §4.2.1), which communicate through an explicit
 * AccessContext:
 *
 *   1. Check Stash                      (orchestrator fast path)
 *   2. Access PosMap and Backup Label   (Remapper — remap staged in the
 *                                        temporary PosMap)
 *   3. Load Path                        (PathLoader)
 *   4. Update Stash and Backup Data     (orchestrator + BackupPlanner —
 *                                        backup under the old path id)
 *   5. PS-ORAM Eviction                 (Evictor — atomic WPQ bracket
 *                                        via the drainer)
 *
 * Eviction uses *safe placement*: loaded blocks are rewritten in place
 * (identity), backups land in the slot their block was loaded from, and
 * stash-carried blocks only fill dummy slots. Every eviction write
 * therefore overwrites a dummy, a stale copy, or the block itself, so
 * any committed prefix of WPQ rounds leaves the tree recoverable — this
 * realizes the write-ordering requirement of §4.2.3 by construction.
 *
 * Crash model: the stash, PosMap mirror, temporary PosMap and PoM
 * position tables are volatile; the NVM image plus committed WPQ rounds
 * survive. CrashPolicy hooks at each protocol site throw CrashEvent; the
 * harness then calls powerFailureFlush(), discards the controller, and
 * rebuilds one with recoverFromNvm().
 */

#ifndef PSORAM_PSORAM_PSORAM_CONTROLLER_HH
#define PSORAM_PSORAM_PSORAM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"
#include "nvm/device.hh"
#include "nvm/write_behind.hh"
#include "oram/block.hh"
#include "oram/controller.hh"
#include "oram/integrity.hh"
#include "oram/posmap.hh"
#include "oram/recursive_posmap.hh"
#include "oram/stash.hh"
#include "oram/subtree_cache.hh"
#include "oram/tree.hh"
#include "psoram/access_context.hh"
#include "psoram/backup_planner.hh"
#include "psoram/crash.hh"
#include "psoram/design.hh"
#include "psoram/drainer.hh"
#include "psoram/evictor.hh"
#include "psoram/params.hh"
#include "psoram/path_loader.hh"
#include "psoram/phase_env.hh"
#include "psoram/remapper.hh"
#include "psoram/shadow_stash.hh"
#include "psoram/temp_posmap.hh"

namespace psoram {

class PsOramController
{
  public:
    PsOramController(const PsOramParams &params, MemoryBackend &device);
    ~PsOramController();

    /** Read block @p addr into @p out (64 bytes). */
    OramAccessInfo read(BlockAddr addr, std::uint8_t *out);

    /** Write 64 bytes from @p in to block @p addr. */
    OramAccessInfo write(BlockAddr addr, const std::uint8_t *in);

    /**
     * @{ Staged access API (DESIGN.md §12). The pipelined engine splits
     * one access() into three resumable stages over a StagedAccess:
     *
     *   stageBegin  (drive thread, ticket order) — stash check + remap,
     *               consumes the RNG draws and fires AfterRemap;
     *   stageFetch  (fetch-pool thread) — pin + fill the path's buckets
     *               in the subtree cache; no shared mutable state;
     *   stageFinish (drive thread, strict ticket order) — integrate the
     *               cached path, stash update/backup, eviction and the
     *               WPQ bracket.
     *
     * Available only when pipelineSupported(): the controller was built
     * with pipeline.depth > 1 and a design using backup blocks
     * (persistent, non-recursive). Recursive designs shadow-snapshot
     * the whole stash per eviction and non-persistent designs classify
     * against an eagerly updated PosMap — neither tolerates a remapped-
     * but-not-yet-evicted access in flight, so they stay synchronous.
     */
    struct StagedAccess
    {
        AccessContext ctx;
        BlockAddr addr = 0;
        bool is_write = false;
        /** Write payload in; read result out (after finish). */
        std::array<std::uint8_t, kBlockDataBytes> data{};
        bool stash_hit = false;
        std::uint64_t ticket = 0;
        /** @{ Phase-breakdown boundary timestamps (begin window). */
        std::uint64_t h0 = 0, h1 = 0;
        Cycle c0 = 0, c1 = 0;
        /** @} */
    };

    /** True when the staged API is live (depth > 1, backup design). */
    bool pipelineSupported() const { return write_behind_ != nullptr; }

    /**
     * Stages 1+2 of a pipelined access. On a stash hit the access
     * completes here: sa.stash_hit is set, sa.ctx.info is final and
     * sa.data holds the read value — skip fetch and finish.
     */
    void stageBegin(StagedAccess &sa);

    /** Stage "fetch": thread-safe path load into the subtree cache. */
    void stageFetch(const StagedAccess &sa);

    /** Stages 3-5; returns the access's final info. */
    OramAccessInfo stageFinish(StagedAccess &sa);

    /** Subtree cache observability (null when not pipelined). */
    const SubtreeCache *subtreeCache() const
    {
        return subtree_cache_.get();
    }
    /** Write-behind retirer observability (null when not pipelined). */
    const WriteBehindNvm *writeBehind() const
    {
        return write_behind_.get();
    }
    /** @} */

    /** @{ Crash-injection plumbing. */
    void setCrashPolicy(CrashPolicy *policy) { crash_policy_ = policy; }

    /**
     * Report this controller's WPQ start/end signals as persist
     * boundaries (nvm/fault_injector.hh). Pass the same injector the
     * device reports to so the boundary numbering forms one sequence;
     * null detaches. No-op for designs without a persistence domain.
     */
    void attachFaultInjector(FaultInjector *injector)
    {
        if (drainer_)
            drainer_->domain().setFaultInjector(injector);
    }

    /** What the power-failure flush delivered (recovery accounting). */
    struct FlushOutcome
    {
        /** WPQ entries the ADR crash flush redelivered to the NVM. */
        std::size_t redelivered_entries = 0;
        /** Committed rounds the write-behind retirer replayed. */
        std::uint64_t replayed_rounds = 0;
        /** Host timestamp between the write-behind replay and the ADR
         *  redelivery (phase attribution; 0 when not requested). */
        std::uint64_t split_ns = 0;
    };

    /** ADR semantics at power failure: flush committed WPQ rounds.
     *  @param timed stamp FlushOutcome::split_ns (recovery stats) */
    FlushOutcome powerFailureFlush(bool timed = false);

    /** Adjacent-window timestamps recoverFromNvm() fills for the
     *  recovery phase breakdown (all hostNowNs; see common/stats.hh
     *  RecoveryStats for the identity they feed). */
    struct RecoveryTimings
    {
        /** Volatile-state rebuild (stash/PosMap/shadow restore) done. */
        std::uint64_t rebuild_done_ns = 0;
        /** Integrity record scan + root check done (== rebuild_done_ns
         *  when integrity is off). */
        std::uint64_t verify_done_ns = 0;
        /** Function exit (after interior-node repair + IV resume). */
        std::uint64_t end_ns = 0;
        std::uint64_t records_verified = 0;
        std::uint64_t nodes_repaired = 0;
    };

    /**
     * Rebuild volatile state from the persistent NVM image: reload the
     * shadow stashes and resume the region sequence counters. For the
     * non-recursive designs the committed PosMap lives in the trusted
     * NVM region and needs no eager rebuild.
     */
    void recoverFromNvm(RecoveryTimings *timings = nullptr);
    /** @} */

    /**
     * Black-box the protocol's round brackets + retirement batches
     * (nvm/flight_recorder.hh): wires @p recorder through the drainer
     * and the write-behind retirer. Null detaches. The recorder must
     * outlive this controller.
     */
    void attachFlightRecorder(FlightRecorder *recorder);

    /** @{ FullNVM designs: the on-chip buffers are non-volatile. */
    struct OnChipNvState
    {
        std::vector<StashEntry> stash;
        std::unordered_map<BlockAddr, PathId> posmap;
    };
    OnChipNvState exportOnChipNvState() const;
    void importOnChipNvState(const OnChipNvState &state);
    /** @} */

    /** @{ Observers. */
    void setPathObserver(PathObserver observer)
    {
        observer_ = std::move(observer);
    }
    void setCommitObserver(CommitObserver observer)
    {
        commit_observer_ = std::move(observer);
    }
    /** @} */

    /** Committed (persistent) position of @p addr. */
    PathId committedPath(BlockAddr addr) const;

    /** Effective position: pending temporary-PosMap entry, else
     *  committed. */
    PathId effectivePath(BlockAddr addr) const;

    /** @{ Accessors for tests, benches and stats. */
    const PsOramParams &params() const { return params_; }
    const Stash &stash() const { return stash_; }
    const TempPosMap &tempPosMap() const { return temp_; }
    const Drainer *drainer() const { return drainer_.get(); }
    /** Integrity subsystem (null when params.integrity == Off). */
    const IntegrityManager *integrity() const
    {
        return integrity_.get();
    }
    const PosMapTreeLevel *pomLevel() const { return pom_.get(); }
    NvmDevice *onChipDevice() { return onchip_.get(); }

    std::uint64_t accessCount() const { return accesses_.value(); }
    std::uint64_t stashHits() const
    {
        return counters_.stash_hits.value();
    }
    std::uint64_t backupsCreated() const
    {
        return counters_.backups.value();
    }
    std::uint64_t staleDropped() const
    {
        return counters_.stale_dropped.value();
    }
    std::uint64_t forcedMerges() const
    {
        return counters_.forced_merges.value();
    }
    /** Cumulative live stash residue after evictions. */
    std::uint64_t unplacedCarried() const
    {
        return counters_.unplaced_carried.value();
    }
    /** Snapshot of every protocol counter (safe mid-run; the counters
     *  are relaxed-atomic). Sharded reporting merges these per shard. */
    ProtocolCounters::Snapshot protocolSnapshot() const
    {
        return counters_.snapshot();
    }
    Cycle nowCycles() const { return now_; }

    /** @{ Per-phase latency breakdown (remap/load/backup/evict/drain),
     *  maintained for every full (non-stash-hit) access. Host wall time
     *  attributes simulator CPU cost; sim cycles attribute modeled NVM
     *  time. Reading mid-run is safe (mutex-guarded distributions). */
    const PhaseLatencyStats &phaseHostNs() const { return phase_ns_; }
    const PhaseLatencyStats &phaseSimCycles() const
    {
        return phase_cycles_;
    }
    /** @} */

    /**
     * Correlation id for the *next* access (consumed by it; 0 restores
     * the per-controller automatic sequence). The engine frontends pass
     * their request id so one access is traceable from submit through
     * its phase events to completion.
     */
    void setNextAccessId(std::uint64_t id) { pending_access_id_ = id; }

    /** Register this controller's counters and phase latencies with
     *  @p group (metrics export; pointers remain owned here). */
    void registerStats(StatGroup &group) const;

    /** Total NVM traffic: main device plus on-chip NVM buffer writes
     *  (the FullNVM designs' dominant cost, counted as in Fig. 6). */
    TrafficCounts traffic() const;
    /** @} */

    /**
     * Test helper: walk @p addr's committed path in the NVM image and
     * return its committed data (what recovery would find).
     * @return false if no committed copy exists (never-persisted block)
     */
    bool committedDataInTree(BlockAddr addr, std::uint8_t *out) const;

  private:
    OramAccessInfo access(BlockAddr addr, bool is_write,
                          std::uint8_t *read_out,
                          const std::uint8_t *write_in);

    void maybeCrash(CrashSite site);

    /** The device the protocol sees: the write-behind decorator when
     *  pipelined (read-your-writes over queued rounds), else the raw
     *  backend. */
    MemoryBackend &
    dev() const
    {
        return write_behind_ ? *write_behind_ : device_;
    }

    bool persistent() const
    {
        return params_.design.persist != PersistMode::None;
    }
    bool recursive() const { return params_.design.recursive_posmap; }
    bool usesBackups() const
    {
        return persistent() && !recursive();
    }

    PsOramParams params_;
    MemoryBackend &device_;
    TreeGeometry geo_;
    BlockCodec codec_;
    Rng rng_;

    Stash stash_;
    TempPosMap temp_;
    /** Volatile PosMap (Baseline / FullNVM designs). */
    PosMap volatile_posmap_;
    /** Trusted-region persistent PosMap (non-recursive PS designs). */
    PersistentPosMap persistent_posmap_;

    /** Recursive machinery (null for non-recursive designs). */
    std::unique_ptr<PosMapTreeLevel> pom_;
    std::unique_ptr<ShadowStashRegion> shadow_data_;
    std::unique_ptr<ShadowStashRegion> shadow_pom_;
    /** Persisted PoM-block position region (Rcr-PS). */
    std::unique_ptr<PersistentPosMap> pom_pos_region_;

    std::unique_ptr<Drainer> drainer_;
    /** Authenticated records + Merkle tree (params.integrity != Off). */
    std::unique_ptr<IntegrityManager> integrity_;
    /** On-chip NVM buffer for FullNVM stash/PosMap. */
    std::unique_ptr<NvmDevice> onchip_;

    /** @{ Pipelined-engine machinery (null when pipeline.depth == 1:
     *  the synchronous protocol then runs with zero new code on its
     *  path, keeping depth-1 traffic byte-identical). Declared before
     *  env_, which binds dev() — the decorator when present. */
    std::unique_ptr<WriteBehindNvm> write_behind_;
    std::unique_ptr<SubtreeCache> subtree_cache_;
    /** @} */

    CrashPolicy *crash_policy_ = nullptr;
    PathObserver observer_;
    CommitObserver commit_observer_;

    Cycle now_ = 0;

    Counter accesses_;
    ProtocolCounters counters_;

    /** @{ Per-phase latency breakdowns (host ns / simulated cycles). */
    PhaseLatencyStats phase_ns_;
    PhaseLatencyStats phase_cycles_;
    /** @} */

    /** Engine-supplied id for the next access (0 = automatic). */
    std::uint64_t pending_access_id_ = 0;

    /** Ticket sequence for staged accesses (1-based; 0 = synchronous). */
    std::uint64_t next_ticket_ = 1;

    /** Reused per-access context (reset() keeps vector capacity). */
    AccessContext ctx_;

    /** @{ Protocol phases (constructed over env_ after all state). */
    std::unique_ptr<PhaseEnv> env_;
    std::unique_ptr<Remapper> remapper_;
    std::unique_ptr<PathLoader> loader_;
    std::unique_ptr<BackupPlanner> backup_planner_;
    std::unique_ptr<Evictor> evictor_;
    /** @} */
};

} // namespace psoram

#endif // PSORAM_PSORAM_PSORAM_CONTROLLER_HH
