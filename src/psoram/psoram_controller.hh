/**
 * @file
 * PS-ORAM controller: the paper's crash-consistent ORAM controller
 * (Figure 4), configurable to every design variant of §5.1.
 *
 * The controller implements the PS-ORAM access protocol (§4.2.1):
 *
 *   1. Check Stash
 *   2. Access PosMap and Backup Label   (remap staged in the temporary
 *                                        PosMap, not committed)
 *   3. Load Path
 *   4. Update Stash and Backup Data     (backup block under the old
 *                                        path id)
 *   5. PS-ORAM Eviction                 (atomic WPQ bracket via the
 *                                        drainer; dirty-only metadata)
 *
 * Eviction uses *safe placement*: loaded blocks are rewritten in place
 * (identity), backups land in the slot their block was loaded from, and
 * stash-carried blocks only fill dummy slots. Every eviction write
 * therefore overwrites a dummy, a stale copy, or the block itself, so
 * any committed prefix of WPQ rounds leaves the tree recoverable — this
 * realizes the write-ordering requirement of §4.2.3 by construction.
 *
 * Crash model: the stash, PosMap mirror, temporary PosMap and PoM
 * position tables are volatile; the NVM image plus committed WPQ rounds
 * survive. CrashPolicy hooks at each protocol site throw CrashEvent; the
 * harness then calls powerFailureFlush(), discards the controller, and
 * rebuilds one with recoverFromNvm().
 */

#ifndef PSORAM_PSORAM_PSORAM_CONTROLLER_HH
#define PSORAM_PSORAM_PSORAM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvm/device.hh"
#include "oram/block.hh"
#include "oram/controller.hh"
#include "oram/posmap.hh"
#include "oram/recursive_posmap.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"
#include "psoram/crash.hh"
#include "psoram/design.hh"
#include "psoram/drainer.hh"
#include "psoram/shadow_stash.hh"
#include "psoram/temp_posmap.hh"

namespace psoram {

struct PsOramParams
{
    TreeLayout data_layout;
    /** Logical block address space. */
    std::uint64_t num_blocks;
    std::size_t stash_capacity = 200;
    Aes128::Key key{};
    CipherKind cipher = CipherKind::FastStream;
    std::uint64_t seed = 1;
    DesignOptions design;

    /** @{ NVM region bases; sim::SystemBuilder lays these out. */
    Addr posmap_region_base = 0;  ///< trusted PosMap region (non-rcr)
    Addr pom_tree_base = 0;       ///< PosMap ORAM tree (recursive)
    Addr pom_pos_region_base = 0; ///< persisted PoM positions (Rcr-PS)
    Addr shadow_data_base = 0;    ///< data stash shadow (Rcr-PS)
    Addr shadow_pom_base = 0;     ///< PoM stash shadow (Rcr-PS)
    Addr naive_scratch_base = 0;  ///< Naive all-entry metadata scratch
    /** @} */

    /** PoM tree height; 0 derives it from num_blocks (recursive). */
    unsigned pom_height = 0;
    std::size_t pom_stash_capacity = 64;

    /** Banks of the on-chip NVM buffer (FullNVM designs). */
    unsigned onchip_banks = 8;
    /** Controller pipeline occupancy per block (decrypt/steer). */
    Cycle controller_block_cycles = 2;
};

/** Traffic as the paper counts it: NVM transactions (Fig. 6). */
struct TrafficCounts
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/**
 * Observer for durable commits: invoked once a block's data has become
 * crash-recoverable (placed on the tree in a committed round, or written
 * to the shadow region). Test oracles use this to track the expected
 * post-recovery value of every address.
 */
using CommitObserver =
    std::function<void(BlockAddr, const std::array<std::uint8_t,
                                                   kBlockDataBytes> &)>;

class PsOramController
{
  public:
    PsOramController(const PsOramParams &params, NvmDevice &device);
    ~PsOramController();

    /** Read block @p addr into @p out (64 bytes). */
    OramAccessInfo read(BlockAddr addr, std::uint8_t *out);

    /** Write 64 bytes from @p in to block @p addr. */
    OramAccessInfo write(BlockAddr addr, const std::uint8_t *in);

    /** @{ Crash-injection plumbing. */
    void setCrashPolicy(CrashPolicy *policy) { crash_policy_ = policy; }

    /** ADR semantics at power failure: flush committed WPQ rounds. */
    void powerFailureFlush();

    /**
     * Rebuild volatile state from the persistent NVM image: reload the
     * shadow stashes and resume the region sequence counters. For the
     * non-recursive designs the committed PosMap lives in the trusted
     * NVM region and needs no eager rebuild.
     */
    void recoverFromNvm();
    /** @} */

    /** @{ FullNVM designs: the on-chip buffers are non-volatile. */
    struct OnChipNvState
    {
        std::vector<StashEntry> stash;
        std::unordered_map<BlockAddr, PathId> posmap;
    };
    OnChipNvState exportOnChipNvState() const;
    void importOnChipNvState(const OnChipNvState &state);
    /** @} */

    /** @{ Observers. */
    void setPathObserver(PathObserver observer)
    {
        observer_ = std::move(observer);
    }
    void setCommitObserver(CommitObserver observer)
    {
        commit_observer_ = std::move(observer);
    }
    /** @} */

    /** Committed (persistent) position of @p addr. */
    PathId committedPath(BlockAddr addr) const;

    /** Effective position: pending temporary-PosMap entry, else
     *  committed. */
    PathId effectivePath(BlockAddr addr) const;

    /** @{ Accessors for tests, benches and stats. */
    const PsOramParams &params() const { return params_; }
    const Stash &stash() const { return stash_; }
    const TempPosMap &tempPosMap() const { return temp_; }
    const Drainer *drainer() const { return drainer_.get(); }
    const PosMapTreeLevel *pomLevel() const { return pom_.get(); }
    NvmDevice *onChipDevice() { return onchip_.get(); }

    std::uint64_t accessCount() const { return accesses_.value(); }
    std::uint64_t stashHits() const { return stash_hits_.value(); }
    std::uint64_t backupsCreated() const { return backups_.value(); }
    std::uint64_t staleDropped() const { return stale_dropped_.value(); }
    std::uint64_t forcedMerges() const { return forced_merges_.value(); }
    /** Cumulative live stash residue after evictions. */
    std::uint64_t unplacedCarried() const
    {
        return unplaced_carried_.value();
    }
    Cycle nowCycles() const { return now_; }

    /** Total NVM traffic: main device plus on-chip NVM buffer writes
     *  (the FullNVM designs' dominant cost, counted as in Fig. 6). */
    TrafficCounts traffic() const;
    /** @} */

    /**
     * Test helper: walk @p addr's committed path in the NVM image and
     * return its committed data (what recovery would find).
     * @return false if no committed copy exists (never-persisted block)
     */
    bool committedDataInTree(BlockAddr addr, std::uint8_t *out) const;

  private:
    struct LoadedSlot
    {
        unsigned level;
        unsigned slot;
        BlockAddr addr;  ///< kDummyBlockAddr when free/stale/dummy
        bool is_backup_site; ///< slot where the target was found
    };

    OramAccessInfo access(BlockAddr addr, bool is_write,
                          std::uint8_t *read_out,
                          const std::uint8_t *write_in);

    void maybeCrash(CrashSite site);

    /** Steps of the protocol, factored for readability. */
    PathId stepRemap(BlockAddr addr, PathId &new_leaf, Cycle &t,
                     EvictionBundle &bundle, std::size_t &pom_after_data);
    Cycle stepLoadPath(BlockAddr addr, PathId leaf, Cycle start,
                       std::vector<LoadedSlot> &slots);
    void stepBackup(BlockAddr addr, PathId leaf, PathId new_leaf,
                    const std::vector<LoadedSlot> &slots);
    Cycle stepEvict(BlockAddr addr, PathId leaf, Cycle t,
                    std::vector<LoadedSlot> &slots,
                    EvictionBundle &bundle, std::size_t pom_after_data);

    /** Classify one decoded block during the path load. */
    void classifyLoaded(const PlainBlock &block, BlockAddr target,
                        PathId leaf, LoadedSlot &slot_info);

    /** On-chip NVM buffer timing (FullNVM designs). */
    Cycle onChipWrite(Cycle earliest);
    Cycle onChipRead(Cycle earliest);

    bool persistent() const
    {
        return params_.design.persist != PersistMode::None;
    }
    bool recursive() const { return params_.design.recursive_posmap; }
    bool usesBackups() const
    {
        return persistent() && !recursive();
    }

    PsOramParams params_;
    NvmDevice &device_;
    TreeGeometry geo_;
    BlockCodec codec_;
    Rng rng_;

    Stash stash_;
    TempPosMap temp_;
    /** Volatile PosMap (Baseline / FullNVM designs). */
    PosMap volatile_posmap_;
    /** Trusted-region persistent PosMap (non-recursive PS designs). */
    PersistentPosMap persistent_posmap_;

    /** Recursive machinery (null for non-recursive designs). */
    std::unique_ptr<PosMapTreeLevel> pom_;
    std::unique_ptr<ShadowStashRegion> shadow_data_;
    std::unique_ptr<ShadowStashRegion> shadow_pom_;
    /** Persisted PoM-block position region (Rcr-PS). */
    std::unique_ptr<PersistentPosMap> pom_pos_region_;

    std::unique_ptr<Drainer> drainer_;
    /** On-chip NVM buffer for FullNVM stash/PosMap. */
    std::unique_ptr<NvmDevice> onchip_;
    Cycle onchip_clock_skew_ = 0;

    CrashPolicy *crash_policy_ = nullptr;
    PathObserver observer_;
    CommitObserver commit_observer_;

    Cycle now_ = 0;

    Counter accesses_;
    Counter stash_hits_;
    Counter backups_;
    Counter stale_dropped_;
    Counter forced_merges_;
    Counter unplaced_carried_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_PSORAM_CONTROLLER_HH
