/**
 * @file
 * Drainer: the PS-ORAM controller component that moves eviction data and
 * metadata into the WPQ pair and issues the atomic start/end signals
 * (paper §4.1, Figure 4).
 *
 * When an eviction produces more entries than one WPQ round can hold
 * (the limited-persistence-domain configuration, §4.2.3), the drainer
 * splits it into multiple rounds under two ordering rules that keep any
 * committed prefix of rounds recoverable:
 *
 *  1. Data writes are safe in any order: PS-ORAM's safe-placement
 *     eviction only ever overwrites dummy slots, stale copies, or the
 *     same block (identity rewrite) — the §4.2.3 write-order requirement
 *     holds by construction (see DESIGN.md).
 *  2. A PosMap entry (a -> l') may not commit *before* the round that
 *     writes block a to path l'; committing it later is safe (recovery
 *     then finds a's backup under the old mapping — the access aborts
 *     atomically).
 */

#ifndef PSORAM_PSORAM_DRAINER_HH
#define PSORAM_PSORAM_DRAINER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "nvm/adr_domain.hh"
#include "psoram/crash.hh"

namespace psoram {

/** A metadata write with its ordering constraint. */
struct PosmapWrite
{
    WpqEntry entry;
    /**
     * The entry may only enter a round once the first @p after_data
     * data writes have been committed (0 = unconstrained).
     */
    std::size_t after_data = 0;
};

/** A fully assembled eviction: everything that must persist atomically. */
struct EvictionBundle
{
    std::vector<WpqEntry> data_writes;
    /** Must be sorted by after_data (the controller emits them so). */
    std::vector<PosmapWrite> posmap_writes;
};

/** Hook invoked between rounds / around commit, for crash injection. */
using DrainCrashHook = std::function<void(CrashSite)>;

/**
 * Consumer of committed rounds for asynchronous retirement. When set,
 * persist() hands each committed round's entries (data before PosMap)
 * to the sink instead of draining them synchronously; the sink owns
 * getting them to the device in submission order (WriteBehindNvm).
 */
using RoundSink = std::function<void(std::vector<WpqEntry> &&)>;

/**
 * Per-round finalizer: invoked once per WPQ round after every entry of
 * the round is staged and immediately before the "end" commit. It
 * receives the data entries of exactly this round and returns one
 * extra entry pushed last into the PosMap WPQ — inside the same ADR
 * bracket, so it commits atomically with the round it covers. The
 * integrity subsystem uses this for its per-round root record
 * (oram/integrity.hh). When set, persist() reserves one PosMap slot
 * per round for the returned entry.
 */
using RoundFinalizer =
    std::function<WpqEntry(const WpqEntry *round_data, std::size_t n)>;

class Drainer
{
  public:
    /**
     * @param data_capacity data-block WPQ entries per round
     * @param posmap_capacity PosMap WPQ entries per round
     */
    Drainer(std::size_t data_capacity, std::size_t posmap_capacity);

    /**
     * Persist @p bundle: split into WPQ-sized rounds, each bracketed by
     * start/end and drained to @p device.
     *
     * @param hook crash-injection callback (may throw CrashEvent)
     * @param earliest cycle the first round may begin draining
     * @return completion cycle of the last drain
     */
    Cycle persist(const EvictionBundle &bundle, MemoryBackend &device,
                  Cycle earliest, const DrainCrashHook &hook);

    AdrDomain &domain() { return adr_; }
    const AdrDomain &domain() const { return adr_; }

    /**
     * Route committed rounds to @p sink (deamortized drain) instead of
     * draining them inline. Pass an empty function to restore the
     * synchronous drain.
     */
    void setRoundSink(RoundSink sink) { sink_ = std::move(sink); }
    bool asyncDrain() const { return static_cast<bool>(sink_); }

    /**
     * Append a finalizer entry to every round (see RoundFinalizer).
     * @pre the PosMap WPQ capacity is at least 2 (one slot is reserved)
     */
    void setRoundFinalizer(RoundFinalizer finalizer)
    {
        finalizer_ = std::move(finalizer);
    }

    std::uint64_t roundsIssued() const { return rounds_.value(); }
    std::uint64_t entriesPersisted() const { return entries_.value(); }
    std::uint64_t splitEvictions() const { return splits_.value(); }

    /**
     * Black-box the round brackets: when set, persist() appends a
     * RoundStart/RoundCommit record per WPQ round (and a DrainWatermark
     * after each synchronous drain) through @p sink's side-write seam.
     * @p sink should be the device the controller drains through (the
     * write-behind decorator when pipelined — its writevSide takes the
     * device lock without flushing the queue). Null detaches.
     */
    void setFlightRecorder(FlightRecorder *recorder, MemoryBackend *sink)
    {
        flight_ = recorder;
        flight_sink_ = recorder ? sink : nullptr;
    }

  private:
    AdrDomain adr_;
    RoundSink sink_;
    RoundFinalizer finalizer_;
    FlightRecorder *flight_ = nullptr;
    MemoryBackend *flight_sink_ = nullptr;
    Counter rounds_;
    Counter entries_;
    Counter splits_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_DRAINER_HH
