/**
 * @file
 * PS-ORAM controller parameter block and the small shared types the
 * controller, the protocol phases, and the engine frontend all use.
 * Split out of psoram_controller.hh so the phase components do not
 * depend on the controller class.
 */

#ifndef PSORAM_PSORAM_PARAMS_HH
#define PSORAM_PSORAM_PARAMS_HH

#include <array>
#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "crypto/aes128.hh"
#include "oram/block.hh"
#include "oram/integrity.hh"
#include "oram/tree.hh"
#include "psoram/design.hh"

namespace psoram {

/**
 * Intra-shard access pipelining (DESIGN.md §12). depth == 1 keeps the
 * fully synchronous protocol — no cache, no write-behind, no extra
 * threads — and stays byte-identical to the pre-pipeline controller.
 */
struct PipelineParams
{
    /** Maximum in-flight accesses per controller. */
    unsigned depth = 1;
    /** Worker threads servicing stage-2 path fetches. */
    unsigned fetch_threads = 2;
    /** SubtreeCache capacity in buckets. The default keeps the top
     *  ~14 levels of a large tree resident (~9 MB at z=4), where every
     *  path's buckets concentrate. */
    std::size_t cache_buckets = 16384;
    /** SubtreeCache lock stripes (concurrent fetch threads filling
     *  disjoint buckets contend on 1/stripes of the locks). */
    unsigned cache_stripes = 16;
    /** Committed WPQ rounds the background retirer may queue. A deep
     *  backlog maximizes retire-side write coalescing: the top-of-tree
     *  buckets every path rewrites are skipped as stale (see
     *  nvm/write_behind.hh). The retirer batches at half this depth —
     *  it sleeps until capacity/2 rounds have accumulated, then lands
     *  the whole backlog under one device-lock hold. */
    std::size_t retire_queue_rounds = 192;
};

struct PsOramParams
{
    TreeLayout data_layout;
    /** Logical block address space. */
    std::uint64_t num_blocks;
    std::size_t stash_capacity = 200;
    Aes128::Key key{};
    CipherKind cipher = CipherKind::FastStream;
    std::uint64_t seed = 1;
    DesignOptions design;

    /** @{ NVM region bases; sim::SystemBuilder lays these out. */
    Addr posmap_region_base = 0;  ///< trusted PosMap region (non-rcr)
    Addr pom_tree_base = 0;       ///< PosMap ORAM tree (recursive)
    Addr pom_pos_region_base = 0; ///< persisted PoM positions (Rcr-PS)
    Addr shadow_data_base = 0;    ///< data stash shadow (Rcr-PS)
    Addr shadow_pom_base = 0;     ///< PoM stash shadow (Rcr-PS)
    Addr naive_scratch_base = 0;  ///< Naive all-entry metadata scratch
    /** @} */

    /** @{ Integrity subsystem (oram/integrity.hh). Non-Off requires a
     *  persistent non-recursive design at pipeline depth 1, and
     *  data_layout.record_bytes == kIntegrityRecordBytes; sim's
     *  systemParams() sets all of it consistently. */
    IntegrityMode integrity = IntegrityMode::Off;
    Addr integrity_root_base = 0; ///< per-round root record
    Addr merkle_region_base = 0;  ///< persisted interior-node array
    /** @} */

    /** @{ Persistent flight recorder (nvm/flight_recorder.hh). 0 base
     *  disables it — the reserved region is laid out last, so every
     *  other region base is identical with the recorder on or off. */
    Addr flight_recorder_base = 0;
    std::size_t flight_recorder_records = 0;
    /** @} */

    /** PoM tree height; 0 derives it from num_blocks (recursive). */
    unsigned pom_height = 0;
    std::size_t pom_stash_capacity = 64;

    /** Banks of the on-chip NVM buffer (FullNVM designs). */
    unsigned onchip_banks = 8;
    /** Controller pipeline occupancy per block (decrypt/steer). */
    Cycle controller_block_cycles = 2;

    PipelineParams pipeline;
};

/** Traffic as the paper counts it: NVM transactions (Fig. 6). */
struct TrafficCounts
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

/**
 * Observer for durable commits: invoked once a block's data has become
 * crash-recoverable (placed on the tree in a committed round, or written
 * to the shadow region). Test oracles use this to track the expected
 * post-recovery value of every address.
 */
using CommitObserver =
    std::function<void(BlockAddr, const std::array<std::uint8_t,
                                                   kBlockDataBytes> &)>;

} // namespace psoram

#endif // PSORAM_PSORAM_PARAMS_HH
