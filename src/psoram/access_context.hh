/**
 * @file
 * AccessContext: the per-access state threaded through the protocol
 * phase components (Remapper -> PathLoader -> BackupPlanner -> Evictor).
 *
 * Each phase reads the fields earlier phases produced and fills in its
 * own; the controller orchestrates the sequence and owns the context
 * for exactly one access. Keeping the hand-off explicit (rather than
 * controller member state) is what makes the phases independently
 * testable and the orchestrator thin.
 */

#ifndef PSORAM_PSORAM_ACCESS_CONTEXT_HH
#define PSORAM_PSORAM_ACCESS_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "oram/controller.hh"
#include "psoram/drainer.hh"

namespace psoram {

/** Classification of one slot read during the path load (step 3). */
struct LoadedSlot
{
    unsigned level;
    unsigned slot;
    BlockAddr addr;      ///< kDummyBlockAddr when free/stale/dummy
    bool is_backup_site; ///< slot where the target was found
};

struct AccessContext
{
    /** @{ Set by the orchestrator before any phase runs. */
    BlockAddr addr = kDummyBlockAddr;
    bool is_write = false;
    Cycle start = 0; ///< memory-side clock when the access began
    /** Correlation id carried into every trace event of this access
     *  (the engine's request id when the frontend supplied one). */
    std::uint64_t access_id = 0;
    /** @} */

    /** @{ Filled by the Evictor for the per-phase latency breakdown:
     *  the slice of the eviction spent inside Drainer::persist(), in
     *  host nanoseconds and simulated cycles. Zero for designs without
     *  a persistence domain. */
    std::uint64_t drain_host_ns = 0;
    Cycle drain_cycles = 0;
    /** @} */

    /** Running completion cycle; each phase advances it. */
    Cycle t = 0;

    /** @{ Produced by the Remapper (step 2). */
    PathId leaf = kInvalidPath;     ///< committed path being accessed
    PathId new_leaf = kInvalidPath; ///< staged remap target
    /** PoM writes collected at step 2 that the Evictor must order
     *  (count of bundle.posmap_writes filled by the Remapper). */
    std::size_t pom_after_data = 0;
    /** @} */

    /** Produced by the PathLoader (step 3). */
    std::vector<LoadedSlot> slots;

    /** Assembled across phases, consumed by the Evictor (step 5). */
    EvictionBundle bundle;

    /** Per-access outcome returned to the caller. */
    OramAccessInfo info;

    /**
     * Reset to the freshly-constructed state while keeping vector
     * capacity, so one context can be reused across accesses without
     * per-access heap allocation. Also recovers from a context left
     * mid-flight by an injected CrashEvent.
     */
    void
    reset()
    {
        addr = kDummyBlockAddr;
        is_write = false;
        start = 0;
        access_id = 0;
        drain_host_ns = 0;
        drain_cycles = 0;
        t = 0;
        leaf = kInvalidPath;
        new_leaf = kInvalidPath;
        pom_after_data = 0;
        slots.clear();
        bundle.data_writes.clear();
        bundle.posmap_writes.clear();
        info = OramAccessInfo{};
    }
};

} // namespace psoram

#endif // PSORAM_PSORAM_ACCESS_CONTEXT_HH
