#include "psoram/drainer.hh"

#include <algorithm>

#include "common/log.hh"
#include "nvm/flight_recorder.hh"

namespace psoram {

Drainer::Drainer(std::size_t data_capacity, std::size_t posmap_capacity)
    : adr_(data_capacity, posmap_capacity)
{
}

Cycle
Drainer::persist(const EvictionBundle &bundle, MemoryBackend &device,
                 Cycle earliest, const DrainCrashHook &hook)
{
    std::size_t data_idx = 0;
    std::size_t pos_idx = 0;
    /** Data writes committed in earlier (already drained) rounds. */
    std::size_t data_committed = 0;
    Cycle done = earliest;
    bool first_round = true;

    while (data_idx < bundle.data_writes.size() ||
           pos_idx < bundle.posmap_writes.size()) {
        if (!first_round) {
            ++splits_;
            if (hook)
                hook(CrashSite::BetweenRounds);
        }
        first_round = false;

        // Step 5-B: "start" opens both queues; entries stream in. With
        // a finalizer one PosMap slot stays reserved for its entry.
        adr_.start();
        const std::uint64_t round_id = rounds_.value();
        if (flight_)
            flight_->record(*flight_sink_, FlightEventKind::RoundStart,
                            round_id);
        const std::size_t pos_reserve = finalizer_ ? 1 : 0;
        const std::size_t round_first_data = data_idx;
        std::size_t in_round = 0;
        while (data_idx < bundle.data_writes.size() &&
               !adr_.dataWpq().full()) {
            adr_.dataWpq().push(bundle.data_writes[data_idx]);
            ++data_idx;
            ++in_round;
        }
        // Metadata rides in the same bracket as (or a later one than)
        // the data it describes — never an earlier one (rule 2).
        while (pos_idx < bundle.posmap_writes.size() &&
               bundle.posmap_writes[pos_idx].after_data <= data_idx &&
               adr_.posmapWpq().size() + pos_reserve <
                   adr_.posmapWpq().capacity()) {
            adr_.posmapWpq().push(bundle.posmap_writes[pos_idx].entry);
            ++pos_idx;
            ++in_round;
        }
        // Progress is measured on the *bundle* alone — a finalizer
        // entry rides every round, so counting it would let an
        // undrainable bundle spin forever.
        if (in_round == 0)
            PSORAM_PANIC("drainer made no progress (capacities ",
                         adr_.dataWpq().capacity(), "/",
                         adr_.posmapWpq().capacity(), ")");

        if (finalizer_) {
            if (!adr_.posmapWpq().push(finalizer_(
                    bundle.data_writes.data() + round_first_data,
                    data_idx - round_first_data)))
                PSORAM_PANIC("no PosMap WPQ slot for the round "
                             "finalizer entry despite the reserve");
            ++in_round;
        }

        if (hook)
            hook(CrashSite::BeforeCommit);

        // Step 5-C: "end" commits the round; ADR guarantees it reaches
        // the NVM even across a power failure from here on.
        const std::size_t committed_data = adr_.dataWpq().size();
        const std::size_t committed_pos = adr_.posmapWpq().size();
        adr_.end();
        if (flight_)
            flight_->record(*flight_sink_, FlightEventKind::RoundCommit,
                            round_id, committed_data, committed_pos);

        if (hook)
            hook(CrashSite::AfterCommit);

        if (sink_) {
            // Deamortized drain: the committed round is durable the
            // moment "end" landed (ADR); hand it to the background
            // retirer and return without paying the drain latency.
            // The modeled hardware deamortizes the same way — the WPQ
            // writes back on its own, off the access's critical path.
            sink_(adr_.takeCommittedRound());
        } else {
            done = adr_.drain(device, done);
            // The synchronous drain *is* the durable watermark: every
            // entry of the round has physically reached the NVM cells.
            // (The async path's watermark is the RetireBatch record.)
            if (flight_)
                flight_->record(*flight_sink_,
                                FlightEventKind::DrainWatermark, round_id,
                                committed_data + committed_pos);
        }
        data_committed = data_idx;
        (void)data_committed;
        entries_ += in_round;
        ++rounds_;
    }
    return done;
}

} // namespace psoram
