/**
 * @file
 * PathLoader: protocol step 3 — load every slot of the accessed path,
 * decode it, and classify each block (live copy into the stash, backup
 * of a dirty stash resident, or stale/dummy to drop).
 *
 * The classification realizes the paper's footnote-1 staleness rule: a
 * tree copy is live only if it matches the committed PosMap record
 * (path AND remap epoch); everything else is treated as a dummy.
 */

#ifndef PSORAM_PSORAM_PATH_LOADER_HH
#define PSORAM_PSORAM_PATH_LOADER_HH

#include <vector>

#include "mem/backend.hh"
#include "oram/block.hh"
#include "psoram/access_context.hh"
#include "psoram/phase_env.hh"

namespace psoram {

class SubtreeCache;

class PathLoader
{
  public:
    explicit PathLoader(PhaseEnv &env) : env_(env) {}

    /**
     * Read ctx.leaf's path, fill ctx.slots with the classification of
     * every slot, and advance ctx.t by the transfer + decrypt time.
     */
    void run(AccessContext &ctx);

    /**
     * Pipeline stage 2 (fetch-pool thread): pin every bucket of
     * ctx.leaf's path into @p cache, filling misses with device reads +
     * decode. Thread-safe: touches only const shared state (the device
     * read path, the codec decoder) and the internally locked cache —
     * no stash, PosMap, timing model or crash hook. The pins are
     * released by the controller after stage 3.
     */
    void fetch(const AccessContext &ctx, SubtreeCache &cache) const;

    /**
     * Pipeline stage 3 (drive thread): run()'s classification and
     * timing, but over the cached buckets fetch() pinned — which a
     * preceding in-flight access's eviction may have updated in place,
     * making this read coherent with all earlier write-backs.
     */
    void integrate(AccessContext &ctx, SubtreeCache &cache);

  private:
    /** Classify one decoded block during the path load. */
    void classify(const PlainBlock &block, BlockAddr target, PathId leaf,
                  LoadedSlot &slot_info);

    PhaseEnv &env_;

    /** @{ run()'s vectored-read scratch (drive thread only — fetch()
     *  is the concurrent entry point and uses locals instead). */
    std::vector<Addr> slot_addrs_;
    std::vector<SlotBytes> raw_;
    std::vector<ReadSpan> spans_;
    /** @} */
};

} // namespace psoram

#endif // PSORAM_PSORAM_PATH_LOADER_HH
