/**
 * @file
 * PathLoader: protocol step 3 — load every slot of the accessed path,
 * decode it, and classify each block (live copy into the stash, backup
 * of a dirty stash resident, or stale/dummy to drop).
 *
 * The classification realizes the paper's footnote-1 staleness rule: a
 * tree copy is live only if it matches the committed PosMap record
 * (path AND remap epoch); everything else is treated as a dummy.
 */

#ifndef PSORAM_PSORAM_PATH_LOADER_HH
#define PSORAM_PSORAM_PATH_LOADER_HH

#include "psoram/access_context.hh"
#include "psoram/phase_env.hh"

namespace psoram {

class PathLoader
{
  public:
    explicit PathLoader(PhaseEnv &env) : env_(env) {}

    /**
     * Read ctx.leaf's path, fill ctx.slots with the classification of
     * every slot, and advance ctx.t by the transfer + decrypt time.
     */
    void run(AccessContext &ctx);

  private:
    /** Classify one decoded block during the path load. */
    void classify(const PlainBlock &block, BlockAddr target, PathId leaf,
                  LoadedSlot &slot_info);

    PhaseEnv &env_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_PATH_LOADER_HH
