#include "psoram/psoram_controller.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"
#include "obs/trace.hh"

namespace psoram {

namespace {

/** Derive the PosMap ORAM tree height from the data block count. */
unsigned
derivePomHeight(std::uint64_t num_blocks, unsigned bucket_slots)
{
    const std::uint64_t entry_blocks =
        divCeil(num_blocks, kEntriesPerPosBlock);
    // Size the tree for ~50 % utilization: slots >= 2 * entry blocks.
    unsigned height = 1;
    while ((static_cast<std::uint64_t>(bucket_slots) *
            ((2ULL << height) - 1)) < 2 * entry_blocks)
        ++height;
    return height;
}

} // namespace

PsOramController::PsOramController(const PsOramParams &params,
                                   MemoryBackend &device)
    : params_(params), device_(device), geo_(params.data_layout.geometry),
      codec_(params.key, params.cipher),
      rng_(params.seed ^ 0x5ca1ab1edeadbeefULL),
      stash_(params.stash_capacity),
      temp_(params.design.temp_posmap_entries),
      volatile_posmap_(params.num_blocks, geo_.numLeaves(), params.seed),
      persistent_posmap_(params.posmap_region_base, params.num_blocks,
                         params.seed, geo_.numLeaves())
{
    if (params_.num_blocks > geo_.numSlots())
        PSORAM_FATAL("logical blocks (", params_.num_blocks,
                     ") exceed tree slots (", geo_.numSlots(), ")");

    if (recursive()) {
        PosMapTreeLevel::Params pom_params;
        const unsigned pom_height = params_.pom_height != 0
            ? params_.pom_height
            : derivePomHeight(params_.num_blocks, geo_.bucket_slots);
        pom_params.layout.geometry =
            TreeGeometry{pom_height, geo_.bucket_slots};
        pom_params.layout.base = params_.pom_tree_base;
        pom_params.num_entry_blocks =
            divCeil(params_.num_blocks, kEntriesPerPosBlock);
        pom_params.stash_capacity = params_.pom_stash_capacity;
        pom_params.seed = params_.seed ^ 0x706f6d31ULL; // "pom1"

        const std::uint64_t pom_leaves =
            pom_params.layout.geometry.numLeaves();
        const std::uint64_t pom_seed = pom_params.seed;
        PosResolver resolver;
        if (persistent()) {
            pom_pos_region_ = std::make_unique<PersistentPosMap>(
                params_.pom_pos_region_base, pom_params.num_entry_blocks,
                pom_seed, pom_leaves);
            resolver = [this](std::uint64_t idx) {
                return pom_pos_region_->readEntry(device_, idx);
            };
        } else {
            resolver = [pom_seed, pom_leaves](std::uint64_t idx) {
                return initialPath(pom_seed, idx, pom_leaves);
            };
        }
        pom_ = std::make_unique<PosMapTreeLevel>(pom_params, device_,
                                                 codec_, rng_,
                                                 std::move(resolver));
        if (persistent()) {
            shadow_data_ = std::make_unique<ShadowStashRegion>(
                params_.shadow_data_base, params_.stash_capacity);
            shadow_pom_ = std::make_unique<ShadowStashRegion>(
                params_.shadow_pom_base, params_.pom_stash_capacity);
        }
    }

    if (persistent())
        drainer_ = std::make_unique<Drainer>(
            params_.design.wpq_entries, params_.design.wpq_entries);

    if (params_.integrity != IntegrityMode::Off) {
        if (!usesBackups() || params_.pipeline.depth > 1)
            PSORAM_FATAL("integrity=",
                         integrityModeName(params_.integrity),
                         " requires a persistent non-recursive design "
                         "at pipeline depth 1");
        if (params_.design.wpq_entries < 2)
            PSORAM_FATAL("integrity needs wpq_entries >= 2 (one PosMap "
                         "slot per round is the root record's)");
        integrity_ = std::make_unique<IntegrityManager>(
            params_.key, params_.integrity, params_.data_layout,
            params_.integrity_root_base, params_.merkle_region_base);
        // Every committed round carries a root record binding exactly
        // the records that round (and its predecessors) wrote, so any
        // committed prefix verifies at recovery.
        drainer_->setRoundFinalizer(
            [this](const WpqEntry *round_data, std::size_t n) {
                for (std::size_t i = 0; i < n; ++i)
                    integrity_->noteRoundWrite(round_data[i].addr,
                                               round_data[i].data.data(),
                                               round_data[i].data.size());
                return integrity_->makeRootRecord(codec_.nextIv());
            });
    }

    if (params_.design.stash_tech != StashTech::SRAM) {
        const NvmTimingParams tech =
            params_.design.stash_tech == StashTech::PCM ? pcmTimings()
                                                        : sttramTimings();
        // On-chip buffer: one channel, a few banks, small capacity.
        onchip_ = std::make_unique<NvmDevice>(
            tech, 1, params_.onchip_banks, 16ULL << 20);
    }

    // Pipelined mode: only the backup-block designs tolerate multiple
    // remapped-but-unevicted accesses in flight (see the staged-API
    // comment in the header). Everything else silently runs depth 1.
    if (params_.pipeline.depth > 1 && usesBackups()) {
        write_behind_ = std::make_unique<WriteBehindNvm>(
            device_, params_.pipeline.retire_queue_rounds);
        subtree_cache_ = std::make_unique<SubtreeCache>(
            geo_.bucket_slots,
            SubtreeCache::Config{params_.pipeline.cache_buckets,
                                 params_.pipeline.cache_stripes});
        drainer_->setRoundSink(
            [this](std::vector<WpqEntry> &&round) {
                write_behind_->submitRound(std::move(round));
            });
    }

    // Wire the phase components over the assembled subsystems.
    env_ = std::make_unique<PhaseEnv>(PhaseEnv{
        params_, geo_, dev(), codec_, rng_, stash_, temp_,
        volatile_posmap_, persistent_posmap_, counters_, pom_.get(),
        shadow_data_.get(), shadow_pom_.get(), pom_pos_region_.get(),
        drainer_.get(), onchip_.get(),
        [this](CrashSite site) { maybeCrash(site); }, &commit_observer_,
        0});
    env_->subtree_cache = subtree_cache_.get();
    env_->integrity = integrity_.get();
    remapper_ = std::make_unique<Remapper>(*env_);
    loader_ = std::make_unique<PathLoader>(*env_);
    backup_planner_ = std::make_unique<BackupPlanner>(*env_);
    evictor_ = std::make_unique<Evictor>(*env_);
}

PsOramController::~PsOramController() = default;

OramAccessInfo
PsOramController::read(BlockAddr addr, std::uint8_t *out)
{
    return access(addr, false, out, nullptr);
}

OramAccessInfo
PsOramController::write(BlockAddr addr, const std::uint8_t *in)
{
    return access(addr, true, nullptr, in);
}

void
PsOramController::maybeCrash(CrashSite site)
{
    if (crash_policy_ &&
        crash_policy_->shouldCrash(site, accesses_.value()))
        throw CrashEvent(site, accesses_.value());
}

PathId
PsOramController::committedPath(BlockAddr addr) const
{
    return env_->committedPath(addr);
}

PathId
PsOramController::effectivePath(BlockAddr addr) const
{
    if (const auto pending = temp_.get(addr))
        return *pending;
    return committedPath(addr);
}

OramAccessInfo
PsOramController::access(BlockAddr addr, bool is_write,
                         std::uint8_t *read_out,
                         const std::uint8_t *write_in)
{
    if (addr >= params_.num_blocks)
        PSORAM_PANIC("ORAM access beyond logical capacity: ", addr);
    maybeCrash(CrashSite::BetweenAccesses);
    ++accesses_;
    const std::uint64_t access_id =
        pending_access_id_ != 0 ? pending_access_id_ : accesses_.value();
    pending_access_id_ = 0;
    const std::uint64_t host_entry = obs::hostNowNs();

    // ---- Step 1: check stash. ----
    if (StashEntry *hit = stash_.find(addr)) {
        OramAccessInfo info;
        Cycle t = now_;
        if (onchip_) {
            t = env_->onChipRead(t);
            if (is_write)
                t = env_->onChipWrite(t);
            info.nvm_cycles = t - now_;
            now_ = t;
        }
        if (is_write)
            std::memcpy(hit->data.data(), write_in, kBlockDataBytes);
        else
            std::memcpy(read_out, hit->data.data(), kBlockDataBytes);
        ++counters_.stash_hits;
        info.stash_hit = true;
        stash_.sampleOccupancy();
        PSORAM_TRACE_INSTANT("oram", "stash_hit", access_id);
        phase_ns_.stash_hit.sample(
            static_cast<double>(obs::hostNowNs() - host_entry));
        phase_cycles_.stash_hit.sample(
            static_cast<double>(info.nvm_cycles));
        return info;
    }

    PSORAM_TRACE_SCOPE("oram", "access", access_id);

    AccessContext &ctx = ctx_;
    ctx.reset();
    ctx.addr = addr;
    ctx.is_write = is_write;
    ctx.start = ctx.t = now_;
    ctx.access_id = access_id;

    // Adjacent phase windows: each boundary timestamp closes one phase
    // and opens the next, so the five phase samples sum to `total`
    // exactly (the breakdown invariant PhaseLatencyStats documents).
    const std::uint64_t h0 = obs::hostNowNs();
    const Cycle c0 = ctx.t;

    // ---- Step 2: access PosMap and backup the label. ----
    {
        PSORAM_TRACE_SCOPE("phase", "remap", access_id);
        remapper_->run(ctx);
    }
    ctx.info.leaf = ctx.leaf;
    if (observer_)
        observer_(ctx.leaf);
    maybeCrash(CrashSite::AfterRemap);
    const std::uint64_t h1 = obs::hostNowNs();
    const Cycle c1 = ctx.t;

    // ---- Step 3: load path. ----
    {
        PSORAM_TRACE_SCOPE("phase", "load", access_id);
        loader_->run(ctx);
    }
    const std::uint64_t h2 = obs::hostNowNs();
    const Cycle c2 = ctx.t;

    // ---- Step 4: update stash and backup the data block. ----
    {
        PSORAM_TRACE_SCOPE("phase", "backup", access_id);
        StashEntry *entry = stash_.find(addr);
        if (!entry) {
            // First touch: materialize an all-zero block (lazy tree
            // init).
            StashEntry fresh;
            fresh.addr = addr;
            fresh.path = ctx.leaf;
            if (usesBackups())
                fresh.epoch =
                    persistent_posmap_.readFullEntry(dev(), addr)
                        .epoch;
            stash_.insert(fresh);
            entry = stash_.find(addr);
        } else {
            backup_planner_->plan(ctx);
        }
        entry->path = ctx.new_leaf;
        ++entry->epoch; // the re-label consumes one remap epoch
        if (is_write)
            std::memcpy(entry->data.data(), write_in, kBlockDataBytes);
        else
            std::memcpy(read_out, entry->data.data(), kBlockDataBytes);
    }
    maybeCrash(CrashSite::AfterStashUpdate);
    const std::uint64_t h3 = obs::hostNowNs();
    const Cycle c3 = ctx.t;

    // ---- Step 5: PS-ORAM eviction. ----
    {
        PSORAM_TRACE_SCOPE("phase", "evict", access_id);
        evictor_->run(ctx);
    }
    const std::uint64_t h4 = obs::hostNowNs();
    const Cycle c4 = ctx.t;

    now_ = std::max(ctx.t, ctx.start);
    ctx.info.nvm_cycles = now_ - ctx.start;
    stash_.sampleOccupancy();

    // The evict window contains the WPQ drain; report it as its own
    // phase (evict excludes it) so the breakdown still sums to total.
    const std::uint64_t evict_host = h4 - h3;
    const std::uint64_t drain_host =
        std::min(ctx.drain_host_ns, evict_host);
    phase_ns_.sampleAccess(static_cast<double>(h1 - h0),
                           static_cast<double>(h2 - h1),
                           static_cast<double>(h3 - h2),
                           static_cast<double>(evict_host - drain_host),
                           static_cast<double>(drain_host),
                           static_cast<double>(h4 - h0));
    const Cycle evict_cycles = c4 - c3;
    const Cycle drain_cycles = std::min(ctx.drain_cycles, evict_cycles);
    phase_cycles_.sampleAccess(
        static_cast<double>(c1 - c0), static_cast<double>(c2 - c1),
        static_cast<double>(c3 - c2),
        static_cast<double>(evict_cycles - drain_cycles),
        static_cast<double>(drain_cycles),
        static_cast<double>(c4 - c0));
    return ctx.info;
}

void
PsOramController::stageBegin(StagedAccess &sa)
{
    if (!pipelineSupported())
        PSORAM_PANIC("stageBegin without pipeline support");
    if (sa.addr >= params_.num_blocks)
        PSORAM_PANIC("ORAM access beyond logical capacity: ", sa.addr);
    maybeCrash(CrashSite::BetweenAccesses);
    ++accesses_;
    const std::uint64_t access_id =
        pending_access_id_ != 0 ? pending_access_id_ : accesses_.value();
    pending_access_id_ = 0;
    sa.ticket = next_ticket_++;
    sa.stash_hit = false;
    sa.h0 = obs::hostNowNs();

    // ---- Step 1: check stash. The hit fast path completes here (the
    // engine skips fetch/finish): the stash is the newest value and no
    // eviction runs, exactly as in the synchronous protocol. ----
    if (StashEntry *hit = stash_.find(sa.addr)) {
        OramAccessInfo info;
        Cycle t = now_;
        if (onchip_) {
            t = env_->onChipRead(t);
            if (sa.is_write)
                t = env_->onChipWrite(t);
            info.nvm_cycles = t - now_;
            now_ = t;
        }
        if (sa.is_write)
            std::memcpy(hit->data.data(), sa.data.data(),
                        kBlockDataBytes);
        else
            std::memcpy(sa.data.data(), hit->data.data(),
                        kBlockDataBytes);
        ++counters_.stash_hits;
        info.stash_hit = true;
        stash_.sampleOccupancy();
        PSORAM_TRACE_INSTANT("oram", "stash_hit", access_id);
        phase_ns_.stash_hit.sample(
            static_cast<double>(obs::hostNowNs() - sa.h0));
        phase_cycles_.stash_hit.sample(
            static_cast<double>(info.nvm_cycles));
        sa.stash_hit = true;
        sa.ctx.info = info;
        return;
    }

    AccessContext &ctx = sa.ctx;
    ctx.reset();
    ctx.addr = sa.addr;
    ctx.is_write = sa.is_write;
    ctx.start = ctx.t = now_;
    ctx.access_id = access_id;
    sa.c0 = ctx.t;

    // ---- Step 2: access PosMap and backup the label. All RNG draws
    // happen here, on the drive thread, in ticket order — the source of
    // the pipelined engine's determinism. ----
    env_->current_ticket = sa.ticket;
    {
        PSORAM_TRACE_SCOPE("phase", "remap", access_id);
        remapper_->run(ctx);
    }
    ctx.info.leaf = ctx.leaf;
    if (observer_)
        observer_(ctx.leaf);
    maybeCrash(CrashSite::AfterRemap);
    sa.h1 = obs::hostNowNs();
    sa.c1 = ctx.t;
}

void
PsOramController::stageFetch(const StagedAccess &sa)
{
    loader_->fetch(sa.ctx, *subtree_cache_);
}

OramAccessInfo
PsOramController::stageFinish(StagedAccess &sa)
{
    AccessContext &ctx = sa.ctx;
    PSORAM_TRACE_SCOPE("oram", "access", ctx.access_id);

    // The evictor may persist/merge only remaps recorded by this or an
    // earlier ticket; later in-flight tickets' data has not been
    // written yet (TempPosMap::getVisible). Restored on success; after
    // a crash/fault the controller is discarded, so leaving it set is
    // moot.
    env_->temp_horizon = sa.ticket;

    // ---- Step 3: integrate the cached path. ----
    const std::uint64_t h1 = obs::hostNowNs();
    const Cycle c1 = ctx.t;
    {
        PSORAM_TRACE_SCOPE("phase", "load", ctx.access_id);
        loader_->integrate(ctx, *subtree_cache_);
    }
    const std::uint64_t h2 = obs::hostNowNs();
    const Cycle c2 = ctx.t;

    // ---- Step 4: update stash and backup the data block. ----
    {
        PSORAM_TRACE_SCOPE("phase", "backup", ctx.access_id);
        StashEntry *entry = stash_.find(ctx.addr);
        if (!entry) {
            StashEntry fresh;
            fresh.addr = ctx.addr;
            fresh.path = ctx.leaf;
            if (usesBackups())
                fresh.epoch =
                    persistent_posmap_.readFullEntry(dev(), ctx.addr)
                        .epoch;
            stash_.insert(fresh);
            entry = stash_.find(ctx.addr);
        } else {
            backup_planner_->plan(ctx);
        }
        entry->path = ctx.new_leaf;
        ++entry->epoch;
        if (sa.is_write)
            std::memcpy(entry->data.data(), sa.data.data(),
                        kBlockDataBytes);
        else
            std::memcpy(sa.data.data(), entry->data.data(),
                        kBlockDataBytes);
    }
    maybeCrash(CrashSite::AfterStashUpdate);
    const std::uint64_t h3 = obs::hostNowNs();
    const Cycle c3 = ctx.t;

    // ---- Step 5: PS-ORAM eviction (WPQ bracket; rounds retire via
    // the write-behind queue). ----
    {
        PSORAM_TRACE_SCOPE("phase", "evict", ctx.access_id);
        evictor_->run(ctx);
    }
    const std::uint64_t h4 = obs::hostNowNs();
    const Cycle c4 = ctx.t;

    env_->temp_horizon = ~std::uint64_t{0};

    // Release this access's path pins (the buckets were repinned by
    // any later in-flight access that shares them).
    for (unsigned level = 0; level <= geo_.height; ++level)
        subtree_cache_->unpin(geo_.bucketAt(ctx.leaf, level));

    const Cycle end = std::max(ctx.t, ctx.start);
    now_ = std::max(now_, end);
    ctx.info.nvm_cycles = end - ctx.start;
    stash_.sampleOccupancy();

    const std::uint64_t remap_host = sa.h1 - sa.h0;
    const std::uint64_t evict_host = h4 - h3;
    const std::uint64_t drain_host =
        std::min(ctx.drain_host_ns, evict_host);
    phase_ns_.sampleAccess(
        static_cast<double>(remap_host), static_cast<double>(h2 - h1),
        static_cast<double>(h3 - h2),
        static_cast<double>(evict_host - drain_host),
        static_cast<double>(drain_host),
        static_cast<double>(remap_host + (h4 - h1)));
    const Cycle remap_cycles = sa.c1 - sa.c0;
    const Cycle evict_cycles = c4 - c3;
    const Cycle drain_cycles = std::min(ctx.drain_cycles, evict_cycles);
    phase_cycles_.sampleAccess(
        static_cast<double>(remap_cycles), static_cast<double>(c2 - c1),
        static_cast<double>(c3 - c2),
        static_cast<double>(evict_cycles - drain_cycles),
        static_cast<double>(drain_cycles),
        static_cast<double>(remap_cycles + (c4 - c1)));
    return ctx.info;
}

PsOramController::FlushOutcome
PsOramController::powerFailureFlush(bool timed)
{
    FlushOutcome outcome;
    // Committed rounds queued behind the background retirer are part of
    // the ADR domain: land them before (and in order with) whatever is
    // still inside the WPQs.
    {
        // Span emitted even without a retire queue (zero-length): the
        // recovery timeline has the same shape in every build.
        PSORAM_TRACE_SCOPE("recovery", "wpq_replay", 0);
        if (write_behind_) {
            const std::uint64_t retired_before =
                write_behind_->roundsRetired();
            write_behind_->flushQueued();
            outcome.replayed_rounds =
                write_behind_->roundsRetired() - retired_before;
        }
    }
    if (timed)
        outcome.split_ns = obs::hostNowNs();
    {
        PSORAM_TRACE_SCOPE("recovery", "adr_redeliver", 0);
        if (drainer_)
            outcome.redelivered_entries =
                drainer_->domain().crashFlush(dev());
    }
    return outcome;
}

void
PsOramController::attachFlightRecorder(FlightRecorder *recorder)
{
    // The drainer records through dev() — the write-behind decorator
    // when pipelined, whose writevSide takes the device lock without
    // flushing the retire queue (a black-box append must not perturb
    // the batching it observes).
    if (drainer_)
        drainer_->setFlightRecorder(recorder, &dev());
    if (write_behind_)
        write_behind_->setFlightRecorder(recorder);
}

void
PsOramController::registerStats(StatGroup &group) const
{
    group.addCounter("accesses", &accesses_,
                     "controller accesses served (stash hits included)");
    group.addCounter("stash_hits", &counters_.stash_hits,
                     "accesses served from the stash (step-1 fast path)");
    group.addCounter("backups", &counters_.backups,
                     "backup blocks created (step 4)");
    group.addCounter("stale_dropped", &counters_.stale_dropped,
                     "stale tree copies dropped during path loads");
    group.addCounter("forced_merges", &counters_.forced_merges,
                     "temporary-PosMap overflows forcing a merge");
    group.addCounter("unplaced_carried", &counters_.unplaced_carried,
                     "live stash residue carried across evictions");
    if (subtree_cache_)
        subtree_cache_->registerStats(group, "subtree_cache");
    phase_ns_.registerWith(group, "phase_ns");
    phase_cycles_.registerWith(group, "phase_cycles");
}

void
PsOramController::recoverFromNvm(RecoveryTimings *timings)
{
    PSORAM_TRACE_SCOPE("recovery", "recover_from_nvm", 0);
    {
        PSORAM_TRACE_SCOPE("recovery", "posmap_rebuild", 0);
        stash_.clear();
        temp_.clear();
        volatile_posmap_.clear();
        if (subtree_cache_)
            subtree_cache_->clear();
        if (recursive()) {
            pom_->loseVolatileState();
            if (persistent()) {
                shadow_data_->resumeFrom(device_);
                shadow_pom_->resumeFrom(device_);
                for (const StashEntry &entry :
                     shadow_data_->recover(device_, codec_))
                    stash_.insert(entry);
                for (const StashEntry &entry :
                     shadow_pom_->recover(device_, codec_))
                    pom_->restoreStashEntry(entry);
            }
        }
    }
    if (timings)
        timings->rebuild_done_ns = obs::hostNowNs();
    if (integrity_) {
        // Verify every record against its tag (and, in tree mode, the
        // recomputed Merkle root against the committed root record)
        // before serving a single access; throws IntegrityError rather
        // than accept a tampered or torn node. Also resumes the slot
        // codec past the persisted IV watermark so re-encryption never
        // reuses a CTR keystream.
        const IntegrityManager::RecoveryStats stats =
            integrity_->recoverFromDevice(device_);
        codec_.resumeIvsAfter(stats.slot_iv_floor);
        if (timings) {
            timings->verify_done_ns = stats.verify_done_ns;
            timings->records_verified = stats.records_verified;
            timings->nodes_repaired = stats.nodes_repaired;
        }
    }
    if (timings) {
        timings->end_ns = obs::hostNowNs();
        if (!integrity_)
            timings->verify_done_ns = timings->rebuild_done_ns;
    }
}

PsOramController::OnChipNvState
PsOramController::exportOnChipNvState() const
{
    OnChipNvState state;
    for (std::size_t i = 0; i < stash_.size(); ++i)
        state.stash.push_back(stash_.at(i));
    state.posmap = volatile_posmap_.entries();
    return state;
}

void
PsOramController::importOnChipNvState(const OnChipNvState &state)
{
    stash_.clear();
    for (const StashEntry &entry : state.stash)
        stash_.insert(entry);
    volatile_posmap_.clear();
    for (const auto &[a, p] : state.posmap)
        volatile_posmap_.set(a, p);
}

TrafficCounts
PsOramController::traffic() const
{
    TrafficCounts counts;
    counts.reads = device_.totalReads();
    counts.writes = device_.totalWrites();
    if (onchip_)
        counts.writes += onchip_->totalWrites();
    return counts;
}

bool
PsOramController::committedDataInTree(BlockAddr addr,
                                      std::uint8_t *out) const
{
    const PathId leaf = committedPath(addr);
    const bool check_epoch = usesBackups();
    const std::uint32_t epoch = check_epoch
        ? persistent_posmap_.readFullEntry(dev(), addr).epoch
        : 0;
    for (unsigned level = 0; level <= geo_.height; ++level) {
        const BucketId bucket = geo_.bucketAt(leaf, level);
        for (unsigned s = 0; s < geo_.bucket_slots; ++s) {
            SlotBytes raw{};
            dev().readBytes(params_.data_layout.slotAddr(bucket, s),
                            raw.data(), kSlotBytes);
            const PlainBlock block = codec_.decode(raw);
            if (!block.isDummy() && block.addr == addr &&
                block.path == leaf &&
                (!check_epoch || block.epoch == epoch)) {
                std::memcpy(out, block.data.data(), kBlockDataBytes);
                return true;
            }
        }
    }
    return false;
}

} // namespace psoram
