#include "psoram/psoram_controller.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"

namespace psoram {

namespace {

/** Derive the PosMap ORAM tree height from the data block count. */
unsigned
derivePomHeight(std::uint64_t num_blocks, unsigned bucket_slots)
{
    const std::uint64_t entry_blocks =
        divCeil(num_blocks, kEntriesPerPosBlock);
    // Size the tree for ~50 % utilization: slots >= 2 * entry blocks.
    unsigned height = 1;
    while ((static_cast<std::uint64_t>(bucket_slots) *
            ((2ULL << height) - 1)) < 2 * entry_blocks)
        ++height;
    return height;
}

} // namespace

PsOramController::PsOramController(const PsOramParams &params,
                                   NvmDevice &device)
    : params_(params), device_(device), geo_(params.data_layout.geometry),
      codec_(params.key, params.cipher),
      rng_(params.seed ^ 0x5ca1ab1edeadbeefULL),
      stash_(params.stash_capacity),
      temp_(params.design.temp_posmap_entries),
      volatile_posmap_(params.num_blocks, geo_.numLeaves(), params.seed),
      persistent_posmap_(params.posmap_region_base, params.num_blocks,
                         params.seed, geo_.numLeaves())
{
    if (params_.num_blocks > geo_.numSlots())
        PSORAM_FATAL("logical blocks (", params_.num_blocks,
                     ") exceed tree slots (", geo_.numSlots(), ")");

    if (recursive()) {
        PosMapTreeLevel::Params pom_params;
        const unsigned pom_height = params_.pom_height != 0
            ? params_.pom_height
            : derivePomHeight(params_.num_blocks, geo_.bucket_slots);
        pom_params.layout.geometry =
            TreeGeometry{pom_height, geo_.bucket_slots};
        pom_params.layout.base = params_.pom_tree_base;
        pom_params.num_entry_blocks =
            divCeil(params_.num_blocks, kEntriesPerPosBlock);
        pom_params.stash_capacity = params_.pom_stash_capacity;
        pom_params.seed = params_.seed ^ 0x706f6d31ULL; // "pom1"

        const std::uint64_t pom_leaves =
            pom_params.layout.geometry.numLeaves();
        const std::uint64_t pom_seed = pom_params.seed;
        PosResolver resolver;
        if (persistent()) {
            pom_pos_region_ = std::make_unique<PersistentPosMap>(
                params_.pom_pos_region_base, pom_params.num_entry_blocks,
                pom_seed, pom_leaves);
            resolver = [this](std::uint64_t idx) {
                return pom_pos_region_->readEntry(device_, idx);
            };
        } else {
            resolver = [pom_seed, pom_leaves](std::uint64_t idx) {
                return initialPath(pom_seed, idx, pom_leaves);
            };
        }
        pom_ = std::make_unique<PosMapTreeLevel>(pom_params, device_,
                                                 codec_, rng_,
                                                 std::move(resolver));
        if (persistent()) {
            shadow_data_ = std::make_unique<ShadowStashRegion>(
                params_.shadow_data_base, params_.stash_capacity);
            shadow_pom_ = std::make_unique<ShadowStashRegion>(
                params_.shadow_pom_base, params_.pom_stash_capacity);
        }
    }

    if (persistent())
        drainer_ = std::make_unique<Drainer>(
            params_.design.wpq_entries, params_.design.wpq_entries);

    if (params_.design.stash_tech != StashTech::SRAM) {
        const NvmTimingParams tech =
            params_.design.stash_tech == StashTech::PCM ? pcmTimings()
                                                        : sttramTimings();
        // On-chip buffer: one channel, a few banks, small capacity.
        onchip_ = std::make_unique<NvmDevice>(
            tech, 1, params_.onchip_banks, 16ULL << 20);
    }
}

PsOramController::~PsOramController() = default;

OramAccessInfo
PsOramController::read(BlockAddr addr, std::uint8_t *out)
{
    return access(addr, false, out, nullptr);
}

OramAccessInfo
PsOramController::write(BlockAddr addr, const std::uint8_t *in)
{
    return access(addr, true, nullptr, in);
}

void
PsOramController::maybeCrash(CrashSite site)
{
    if (crash_policy_ &&
        crash_policy_->shouldCrash(site, accesses_.value()))
        throw CrashEvent(site, accesses_.value());
}

PathId
PsOramController::committedPath(BlockAddr addr) const
{
    if (recursive()) {
        // For recursive designs the PosMap entry is written through at
        // access time; the effective value is the committed one up to
        // the in-flight bracket. Resolve via the PoM level.
        const std::uint64_t b = addr / kEntriesPerPosBlock;
        const unsigned offset =
            static_cast<unsigned>(addr % kEntriesPerPosBlock);
        std::uint32_t word = 0;
        if (const StashEntry *entry = pom_->stash().find(b)) {
            std::memcpy(&word,
                        entry->data.data() + offset * sizeof(word),
                        sizeof(word));
        } else {
            // Walk the block's path in the NVM image.
            const PathId pos = pom_->blockPosition(b);
            const TreeGeometry &pg = pom_->params().layout.geometry;
            for (unsigned level = 0; level <= pg.height && word == 0;
                 ++level) {
                const BucketId bucket = pg.bucketAt(pos, level);
                for (unsigned s = 0; s < pg.bucket_slots; ++s) {
                    SlotBytes raw{};
                    device_.readBytes(
                        pom_->params().layout.slotAddr(bucket, s),
                        raw.data(), kSlotBytes);
                    const PlainBlock block = codec_.decode(raw);
                    if (!block.isDummy() && block.addr == b) {
                        std::memcpy(
                            &word,
                            block.data.data() + offset * sizeof(word),
                            sizeof(word));
                        break;
                    }
                }
            }
        }
        if (word & kPosEntryValid)
            return static_cast<PathId>(word & ~kPosEntryValid);
        return initialPath(params_.seed, addr, geo_.numLeaves());
    }
    if (persistent())
        return persistent_posmap_.readEntry(device_, addr);
    return volatile_posmap_.get(addr);
}

PathId
PsOramController::effectivePath(BlockAddr addr) const
{
    if (const auto pending = temp_.get(addr))
        return *pending;
    return committedPath(addr);
}

Cycle
PsOramController::onChipWrite(Cycle earliest)
{
    // Round-robin the on-chip buffer's lines to exercise its banks.
    static constexpr Addr kStride = kBlockDataBytes;
    onchip_clock_skew_ = (onchip_clock_skew_ + kStride) & 0xffff;
    return onchip_->accessOne(onchip_clock_skew_, true, earliest);
}

Cycle
PsOramController::onChipRead(Cycle earliest)
{
    static constexpr Addr kStride = kBlockDataBytes;
    onchip_clock_skew_ = (onchip_clock_skew_ + kStride) & 0xffff;
    return onchip_->accessOne(onchip_clock_skew_, false, earliest);
}

OramAccessInfo
PsOramController::access(BlockAddr addr, bool is_write,
                         std::uint8_t *read_out,
                         const std::uint8_t *write_in)
{
    if (addr >= params_.num_blocks)
        PSORAM_PANIC("ORAM access beyond logical capacity: ", addr);
    maybeCrash(CrashSite::BetweenAccesses);
    ++accesses_;
    OramAccessInfo info;

    // ---- Step 1: check stash. ----
    if (StashEntry *hit = stash_.find(addr)) {
        Cycle t = now_;
        if (onchip_) {
            t = onChipRead(t);
            if (is_write)
                t = onChipWrite(t);
            info.nvm_cycles = t - now_;
            now_ = t;
        }
        if (is_write)
            std::memcpy(hit->data.data(), write_in, kBlockDataBytes);
        else
            std::memcpy(read_out, hit->data.data(), kBlockDataBytes);
        ++stash_hits_;
        info.stash_hit = true;
        stash_.sampleOccupancy();
        return info;
    }

    const Cycle start = now_;
    Cycle t = start;
    EvictionBundle bundle;
    std::size_t pom_after_data = 0;

    // ---- Step 2: access PosMap and backup the label. ----
    PathId new_leaf = kInvalidPath;
    const PathId leaf = stepRemap(addr, new_leaf, t, bundle,
                                  pom_after_data);
    info.leaf = leaf;
    if (observer_)
        observer_(leaf);
    maybeCrash(CrashSite::AfterRemap);

    // ---- Step 3: load path. ----
    std::vector<LoadedSlot> slots;
    t = stepLoadPath(addr, leaf, t, slots);

    // ---- Step 4: update stash and backup the data block. ----
    StashEntry *entry = stash_.find(addr);
    if (!entry) {
        // First touch: materialize an all-zero block (lazy tree init).
        StashEntry fresh;
        fresh.addr = addr;
        fresh.path = leaf;
        if (persistent() && !recursive())
            fresh.epoch =
                persistent_posmap_.readFullEntry(device_, addr).epoch;
        stash_.insert(fresh);
        entry = stash_.find(addr);
    } else if (usesBackups()) {
        stepBackup(addr, leaf, new_leaf, slots);
    }
    entry->path = new_leaf;
    ++entry->epoch; // the re-label consumes one remap epoch
    if (is_write)
        std::memcpy(entry->data.data(), write_in, kBlockDataBytes);
    else
        std::memcpy(read_out, entry->data.data(), kBlockDataBytes);
    maybeCrash(CrashSite::AfterStashUpdate);

    // ---- Step 5: PS-ORAM eviction. ----
    t = stepEvict(addr, leaf, t, slots, bundle, pom_after_data);

    now_ = std::max(t, start);
    info.nvm_cycles = now_ - start;
    stash_.sampleOccupancy();
    return info;
}

PathId
PsOramController::stepRemap(BlockAddr addr, PathId &new_leaf, Cycle &t,
                            EvictionBundle &bundle,
                            std::size_t &pom_after_data)
{
    new_leaf = rng_.nextPath(geo_.numLeaves());

    if (!recursive()) {
        PathId leaf;
        if (persistent()) {
            leaf = committedPath(addr);
            // Remap to a *different* leaf: if the new label equaled the
            // old one, the backup block and the re-labeled live block
            // would carry identical header paths and the staleness rule
            // (footnote 1) could no longer tell them apart.
            while (new_leaf == leaf && geo_.numLeaves() > 1)
                new_leaf = rng_.nextPath(geo_.numLeaves());
            // Stage the remap; the main PosMap keeps the old mapping
            // until the block's eviction round commits.
            if (temp_.full())
                ++forced_merges_;
            temp_.put(addr, new_leaf);
        } else {
            leaf = volatile_posmap_.get(addr);
            volatile_posmap_.set(addr, new_leaf);
            if (onchip_) {
                // FullNVM: the PosMap lives in on-chip NVM.
                t = onChipRead(t);
                t = onChipWrite(t);
            }
        }
        return leaf;
    }

    // Recursive: one PosMap ORAM access, write-through with the new
    // label (the recursive baseline's inherent persistence).
    Cycle read_chain = t;
    const auto read_hook = [&](Addr a) {
        read_chain = std::max(
            device_.accessOne(a, false, t),
            read_chain + params_.controller_block_cycles);
    };
    const std::uint32_t new_word =
        PersistentPosMap::encodeEntry(new_leaf);
    PosMapTreeLevel::AccessOutcome outcome =
        pom_->accessEntry(addr, new_word, read_hook);
    t = read_chain;

    if (persistent()) {
        // Rcr-PS-ORAM: the PoM path write joins the atomic bracket.
        // Its ordering constraint (not before the data/shadow write of
        // the accessed block) is filled in by stepEvict.
        for (const auto &write : outcome.writes) {
            PosmapWrite pw;
            pw.entry.addr = write.addr;
            pw.entry.data.assign(write.data.begin(), write.data.end());
            bundle.posmap_writes.push_back(std::move(pw));
        }
        // Position entries for dirty entry blocks that returned to the
        // tree in this eviction.
        for (const auto &[idx, pos] : outcome.placed) {
            if (!pom_->isPositionDirty(idx))
                continue;
            PosmapWrite pw;
            pw.entry.addr = pom_pos_region_->entryAddr(idx);
            const auto record =
                PersistentPosMap::encodeRecord(pos, 0);
            pw.entry.data.assign(record.begin(), record.end());
            bundle.posmap_writes.push_back(std::move(pw));
            pom_->clearPositionDirty(idx);
        }
        pom_after_data = bundle.posmap_writes.size();
    } else {
        // Rcr-Baseline: direct, non-atomic writes to the PoM tree.
        Cycle wdone = t;
        for (const auto &write : outcome.writes) {
            device_.writeBytes(write.addr, write.data.data(),
                               write.data.size());
            wdone = std::max(wdone,
                             device_.accessOne(write.addr, true, t));
        }
        t = wdone;
    }

    const std::uint32_t old_word = outcome.old_word;
    if (old_word & kPosEntryValid)
        return static_cast<PathId>(old_word & ~kPosEntryValid);
    return initialPath(params_.seed, addr, geo_.numLeaves());
}

void
PsOramController::classifyLoaded(const PlainBlock &block,
                                 BlockAddr target, PathId leaf,
                                 LoadedSlot &slot_info)
{
    slot_info.addr = kDummyBlockAddr;
    slot_info.is_backup_site = false;
    if (block.isDummy())
        return;

    if (recursive()) {
        // Recursive designs never leave stale copies behind (the whole
        // path is rewritten each eviction and no backups are planted);
        // dedupe against the stash is sufficient.
        if (stash_.find(block.addr))
            return;
        StashEntry entry;
        entry.addr = block.addr;
        entry.path = block.path;
        entry.data = block.data;
        stash_.insert(entry);
        slot_info.addr = block.addr;
        return;
    }

    const PersistentPosMap::Entry committed = persistent()
        ? persistent_posmap_.readFullEntry(device_, block.addr)
        : PersistentPosMap::Entry{volatile_posmap_.get(block.addr), 0};
    const bool matches_committed = persistent()
        ? (block.path == committed.path &&
           block.epoch == committed.epoch)
        : block.path == committed.path;

    if (stash_.find(block.addr) != nullptr) {
        if (usesBackups() && matches_committed) {
            // The stash holds a newer (dirty) copy; this tree copy is
            // the block's last committed value. Keep it circulating as
            // a backup so a crash that loses the stash can recover it
            // (generalized form of the paper's step-4 backup).
            StashEntry backup;
            backup.addr = block.addr;
            backup.path = block.path;
            backup.epoch = block.epoch;
            backup.data = block.data;
            backup.is_backup = true;
            stash_.insert(backup);
            ++backups_;
            slot_info.addr = block.addr;
            slot_info.is_backup_site = true;
            return;
        }
        ++stale_dropped_;
        return;
    }

    // A live copy must match the committed PosMap record (path AND
    // remap epoch). Exception: in the non-persistent designs the PosMap
    // was already overwritten with the new label at step 2, so the
    // genuine target copy still carries the path being loaded.
    const bool is_live = (!persistent() && block.addr == target)
        ? block.path == leaf
        : matches_committed;
    if (!is_live) {
        // An invalidated backup or an old copy: treat as dummy
        // (paper footnote 1).
        ++stale_dropped_;
        return;
    }

    StashEntry entry;
    entry.addr = block.addr;
    entry.path = block.path;
    entry.epoch = block.epoch;
    entry.data = block.data;
    stash_.insert(entry);
    slot_info.addr = block.addr;
}

Cycle
PsOramController::stepLoadPath(BlockAddr addr, PathId leaf, Cycle start,
                               std::vector<LoadedSlot> &slots)
{
    const unsigned total = geo_.blocksPerPath();
    slots.reserve(total);
    Cycle proc = start;
    Cycle onchip_done = start;
    unsigned count = 0;

    for (unsigned level = 0; level <= geo_.height; ++level) {
        const BucketId bucket = geo_.bucketAt(leaf, level);
        for (unsigned s = 0; s < geo_.bucket_slots; ++s) {
            const Addr slot_addr =
                params_.data_layout.slotAddr(bucket, s);
            SlotBytes raw{};
            device_.readBytes(slot_addr, raw.data(), kSlotBytes);
            const Cycle rd = device_.accessOne(slot_addr, false, start);
            proc = std::max(rd, proc) +
                   params_.controller_block_cycles;

            LoadedSlot slot_info{level, s, kDummyBlockAddr, false};
            classifyLoaded(codec_.decode(raw), addr, leaf, slot_info);
            slots.push_back(slot_info);

            if (++count == total / 2)
                maybeCrash(CrashSite::DuringLoad);
        }
    }
    if (onchip_) {
        // FullNVM: every loaded block is written into the on-chip NVM
        // stash. The buffer's banks pipeline among themselves, but the
        // fill phase serializes against the path transfer (the single
        // controller port), which is what makes the FullNVM designs
        // pay close to one extra NVM pass per access (§5.2.1 a).
        onchip_done = proc;
        for (unsigned i = 0; i < total; ++i)
            onchip_done = std::max(onchip_done, onChipWrite(proc));
        proc = onchip_done;
    }
    return proc + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
}

void
PsOramController::stepBackup(BlockAddr addr, PathId leaf, PathId new_leaf,
                             const std::vector<LoadedSlot> &slots)
{
    (void)new_leaf;
    // The target was found on the path (it is in the stash but was not
    // there at step 1). Its loaded copy's slot becomes the backup site:
    // the pre-access data returns there under the old path id.
    const StashEntry *live = stash_.find(addr);
    if (!live)
        return;
    bool found_on_path = false;
    for (const LoadedSlot &s : slots)
        if (s.addr == addr && !s.is_backup_site)
            found_on_path = true;
    if (!found_on_path)
        return; // first touch: nothing committed to back up

    StashEntry backup;
    backup.addr = addr;
    backup.path = leaf; // the old, still-committed path
    backup.epoch = live->epoch;
    backup.data = live->data;
    backup.is_backup = true;
    stash_.insert(backup);
    ++backups_;
}

Cycle
PsOramController::stepEvict(BlockAddr addr, PathId leaf, Cycle t,
                            std::vector<LoadedSlot> &slots,
                            EvictionBundle &bundle,
                            std::size_t pom_after_data)
{
    const unsigned levels = geo_.levels();
    const unsigned z = geo_.bucket_slots;

    // Placement plan: plan[level][slot].
    std::vector<std::vector<PlainBlock>> plan(levels);
    std::vector<std::vector<bool>> used(levels);
    for (unsigned level = 0; level < levels; ++level) {
        plan[level].assign(z, PlainBlock::dummy());
        used[level].assign(z, false);
    }

    /** Record of which blocks were placed (for commit bookkeeping). */
    struct Placed
    {
        BlockAddr addr;
        PathId path;
        std::uint32_t epoch;
        std::array<std::uint8_t, kBlockDataBytes> data;
        bool is_backup;
        std::size_t write_index; // filled when writes are emitted
        unsigned level, slot;
    };
    std::vector<Placed> placed;

    const auto place = [&](const StashEntry &e, unsigned level,
                           unsigned slot) {
        plan[level][slot] = e.toBlock();
        used[level][slot] = true;
        placed.push_back(Placed{e.addr, e.path, e.epoch, e.data,
                                e.is_backup, 0, level, slot});
    };

    // Non-recursive PS designs use *safe placement* so that multi-round
    // (small-WPQ) evictions stay crash consistent. Recursive PS designs
    // commit the whole eviction in one atomic bracket (see DESIGN.md),
    // so they — like the non-persistent designs — can use classic
    // greedy placement.
    const bool safe_placement = persistent() && !recursive();

    // prev_live[level][slot]: the slot held a live block before this
    // eviction. Writes over such slots must commit after the writes
    // that relocate their contents (emission group 2 below).
    std::vector<std::vector<bool>> prev_live(levels);
    for (unsigned level = 0; level < levels; ++level)
        prev_live[level].assign(z, false);
    for (const LoadedSlot &ls : slots)
        if (ls.addr != kDummyBlockAddr)
            prev_live[ls.level][ls.slot] = true;

    if (safe_placement) {
        // Pass 0: backup copies return to the very slot their block
        // was loaded from (identity rewrite of the committed value).
        for (const LoadedSlot &ls : slots) {
            if (ls.addr == kDummyBlockAddr)
                continue;
            if (!ls.is_backup_site && ls.addr != addr)
                continue;
            StashEntry *backup = stash_.findBackup(ls.addr);
            if (!backup)
                continue;
            place(*backup, ls.level, ls.slot);
            for (std::size_t i = 0; i < stash_.size(); ++i) {
                if (stash_.at(i).is_backup &&
                    stash_.at(i).addr == ls.addr) {
                    stash_.removeAt(i);
                    break;
                }
            }
        }

        // Pass A (sink): every live stash entry — loaded, carried and
        // the target — may drop into a free slot that previously held a
        // dummy or stale block (unconditionally overwrite-safe).
        struct Cand
        {
            BlockAddr addr;
            unsigned max_level;
        };
        std::vector<Cand> cands;
        for (std::size_t i = 0; i < stash_.size(); ++i) {
            const StashEntry &e = stash_.at(i);
            if (e.is_backup)
                continue;
            cands.push_back(
                Cand{e.addr, geo_.commonLevel(e.path, leaf)});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.max_level > b.max_level;
                  });
        for (const Cand &cand : cands) {
            StashEntry *e = stash_.find(cand.addr);
            bool done = false;
            for (int level = static_cast<int>(cand.max_level);
                 level >= 0 && !done; --level) {
                for (unsigned s = 0; s < z; ++s) {
                    if (used[level][s] || prev_live[level][s])
                        continue;
                    place(*e, static_cast<unsigned>(level), s);
                    stash_.remove(cand.addr);
                    done = true;
                    break;
                }
            }
        }

        // Pass B (identity): loaded blocks that did not sink rewrite
        // their own slot.
        for (const LoadedSlot &ls : slots) {
            if (ls.addr == kDummyBlockAddr || ls.is_backup_site ||
                ls.addr == addr || used[ls.level][ls.slot])
                continue;
            StashEntry *resident = stash_.find(ls.addr);
            if (!resident || temp_.get(ls.addr))
                continue;
            place(*resident, ls.level, ls.slot);
            stash_.remove(ls.addr);
        }

        // Pass C (vacated): remaining carried blocks may take slots
        // vacated by blocks that sank in pass A — those writes are
        // emitted in group 2, after the sunk copies are durable.
        for (std::size_t i = 0; i < stash_.size();) {
            const StashEntry &e = stash_.at(i);
            if (e.is_backup) {
                ++i;
                continue;
            }
            const unsigned max_level = geo_.commonLevel(e.path, leaf);
            bool done = false;
            for (int level = static_cast<int>(max_level);
                 level >= 0 && !done; --level) {
                for (unsigned s = 0; s < z; ++s) {
                    if (used[level][s])
                        continue;
                    place(e, static_cast<unsigned>(level), s);
                    done = true;
                    break;
                }
            }
            if (done)
                stash_.removeAt(i);
            else
                ++i;
        }
    } else {
        // Classic greedy eviction, leaf-first (no crash guarantees).
        for (int level = static_cast<int>(geo_.height); level >= 0;
             --level) {
            for (unsigned s = 0; s < z; ++s) {
                // Find the deepest-eligible stash entry for this slot.
                std::size_t best = stash_.size();
                unsigned best_depth = 0;
                for (std::size_t i = 0; i < stash_.size(); ++i) {
                    const StashEntry &e = stash_.at(i);
                    const unsigned common =
                        geo_.commonLevel(e.path, leaf);
                    if (common >= static_cast<unsigned>(level) &&
                        (best == stash_.size() ||
                         common > best_depth)) {
                        best = i;
                        best_depth = common;
                    }
                }
                if (best == stash_.size())
                    break;
                place(stash_.at(best), static_cast<unsigned>(level), s);
                stash_.removeAt(best);
            }
        }
    }

    // Blocks that found no slot stay in the (volatile) stash until a
    // later eviction; their durable copy is the backup (non-recursive)
    // or the shadow region (recursive).
    unplaced_carried_ += stash_.liveSize();

    // Emit the full re-encrypted path. With safe placement the writes
    // go out in two groups: first every slot that previously held a
    // dummy/stale block (unconditionally safe), then the slots that
    // held live blocks (identity rewrites, backup sites, and slots
    // vacated by group-1 relocations). The drainer preserves push order
    // across WPQ rounds, so any committed prefix is recoverable.
    std::vector<WpqEntry> data_writes;
    data_writes.reserve(geo_.blocksPerPath());
    const auto emitGroup = [&](bool live_group) {
        for (unsigned level = 0; level < levels; ++level) {
            const BucketId bucket = geo_.bucketAt(leaf, level);
            for (unsigned s = 0; s < z; ++s) {
                if (safe_placement &&
                    prev_live[level][s] != live_group)
                    continue;
                WpqEntry write;
                write.addr = params_.data_layout.slotAddr(bucket, s);
                const SlotBytes slot_bytes =
                    codec_.encode(plan[level][s]);
                write.data.assign(slot_bytes.begin(),
                                  slot_bytes.end());
                for (Placed &p : placed)
                    if (p.level == level && p.slot == s)
                        p.write_index = data_writes.size() + 1;
                data_writes.push_back(std::move(write));
            }
        }
    };
    emitGroup(false);
    if (safe_placement)
        emitGroup(true);

    if (!persistent()) {
        // Direct (non-atomic) write-back; FullNVM reads each evicted
        // block out of its on-chip NVM stash first.
        Cycle issue = t + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
        if (onchip_) {
            // FullNVM: the eviction candidates stream out of the
            // on-chip NVM stash first (bank-pipelined phase).
            Cycle read_phase = issue;
            for (std::size_t i = 0; i < data_writes.size(); ++i)
                read_phase = std::max(read_phase, onChipRead(issue));
            issue = read_phase;
        }
        Cycle proc = issue;
        Cycle done = issue;
        std::size_t count = 0;
        for (const WpqEntry &write : data_writes) {
            proc += params_.controller_block_cycles;
            device_.writeBytes(write.addr, write.data.data(),
                               write.data.size());
            done = std::max(done, device_.accessOne(write.addr, true,
                                                    proc));
            if (++count == data_writes.size() / 2)
                maybeCrash(CrashSite::DuringDirectEviction);
        }
        return done;
    }

    // PS designs: assemble the bundle and run the atomic WPQ protocol.
    bundle.data_writes = std::move(data_writes);

    // Find where the accessed block became durable in this bundle: its
    // placed data slot, or the shadow region (recursive designs).
    std::size_t target_durable_at = 0;
    for (const Placed &p : placed)
        if (p.addr == addr && !p.is_backup)
            target_durable_at = p.write_index;

    if (!recursive()) {
        if (params_.design.persist == PersistMode::DirtyOnly) {
            // Step 5-A: only dirty temporary-PosMap entries of blocks
            // that return to the tree in this round are persisted.
            for (const Placed &p : placed) {
                if (p.is_backup)
                    continue;
                const auto pending = temp_.get(p.addr);
                if (!pending)
                    continue;
                PosmapWrite pw;
                pw.after_data = p.write_index;
                pw.entry.addr =
                    persistent_posmap_.entryAddr(p.addr);
                const auto record = PersistentPosMap::encodeRecord(
                    *pending, p.epoch);
                pw.entry.data.assign(record.begin(), record.end());
                bundle.posmap_writes.push_back(std::move(pw));
            }
        } else { // NaiveAll
            // One metadata write per path slot, real or dummy.
            for (std::size_t i = 0; i < bundle.data_writes.size();
                 ++i) {
                PosmapWrite pw;
                pw.after_data = i + 1;
                bool real = false;
                for (const Placed &p : placed) {
                    if (p.is_backup || p.write_index != i + 1)
                        continue;
                    const auto pending = temp_.get(p.addr);
                    const PathId path =
                        pending ? *pending : p.path;
                    pw.entry.addr =
                        persistent_posmap_.entryAddr(p.addr);
                    const auto record = PersistentPosMap::encodeRecord(
                        path, p.epoch);
                    pw.entry.data.assign(record.begin(), record.end());
                    real = true;
                    break;
                }
                if (!real) {
                    // Dummy slot: a scratch metadata write (the Naive
                    // design persists every entry indiscriminately).
                    pw.entry.addr = params_.naive_scratch_base +
                                    (i % geo_.blocksPerPath()) *
                                        kBlockDataBytes;
                    pw.entry.data.resize(
                        PersistentPosMap::kEntryBytes);
                }
                bundle.posmap_writes.push_back(std::move(pw));
            }
        }
    } else {
        // Recursive: the PoM writes collected at step 2 must not
        // commit before the accessed block is durable.
        std::vector<PosmapWrite> pom_writes(
            bundle.posmap_writes.begin(),
            bundle.posmap_writes.begin() +
                static_cast<std::ptrdiff_t>(pom_after_data));
        bundle.posmap_writes.clear();

        // Shadow the stash residues (data + PoM) through the data WPQ.
        for (auto &entry : shadow_data_->snapshotWrites(stash_, codec_))
            bundle.data_writes.push_back(std::move(entry));
        for (auto &entry :
             shadow_pom_->snapshotWrites(pom_->stash(), codec_))
            bundle.data_writes.push_back(std::move(entry));

        if (target_durable_at == 0) {
            // Target not placed on the tree: it is in the stash, hence
            // inside the shadow snapshot just appended. Constrain the
            // PoM metadata to commit after the whole snapshot.
            target_durable_at = bundle.data_writes.size();
        }
        for (PosmapWrite &pw : pom_writes) {
            pw.after_data = target_durable_at;
            bundle.posmap_writes.push_back(std::move(pw));
        }
    }

    // Step 5-B/5-C: one (or more) atomic WPQ rounds. Streaming the
    // eviction into the persistence domain costs ~2 entries per NVM
    // cycle on the controller's internal port.
    const Cycle issue =
        t + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle +
        (bundle.data_writes.size() + bundle.posmap_writes.size()) / 2;
    const Cycle done = drainer_->persist(
        bundle, device_, issue,
        [this](CrashSite site) { maybeCrash(site); });

    // Post-commit bookkeeping: merge committed remaps into the main
    // PosMap (functionally already durable via the drained region
    // writes) and report durable data to the test oracle.
    for (const Placed &p : placed) {
        if (p.is_backup)
            continue;
        if (!recursive()) {
            if (const auto pending = temp_.get(p.addr))
                temp_.erase(p.addr);
        }
        if (commit_observer_)
            commit_observer_(p.addr, p.data);
    }
    if (recursive() && commit_observer_) {
        // Shadowed stash blocks are durable too.
        for (std::size_t i = 0; i < stash_.size(); ++i) {
            const StashEntry &e = stash_.at(i);
            if (!e.is_backup)
                commit_observer_(e.addr, e.data);
        }
    }
    return done;
}

void
PsOramController::powerFailureFlush()
{
    if (drainer_)
        drainer_->domain().crashFlush(device_);
}

void
PsOramController::recoverFromNvm()
{
    stash_.clear();
    temp_.clear();
    volatile_posmap_.clear();
    if (recursive()) {
        pom_->loseVolatileState();
        if (persistent()) {
            shadow_data_->resumeFrom(device_);
            shadow_pom_->resumeFrom(device_);
            for (const StashEntry &entry :
                 shadow_data_->recover(device_, codec_))
                stash_.insert(entry);
            for (const StashEntry &entry :
                 shadow_pom_->recover(device_, codec_))
                pom_->restoreStashEntry(entry);
        }
    }
}

PsOramController::OnChipNvState
PsOramController::exportOnChipNvState() const
{
    OnChipNvState state;
    for (std::size_t i = 0; i < stash_.size(); ++i)
        state.stash.push_back(stash_.at(i));
    state.posmap = volatile_posmap_.entries();
    return state;
}

void
PsOramController::importOnChipNvState(const OnChipNvState &state)
{
    stash_.clear();
    for (const StashEntry &entry : state.stash)
        stash_.insert(entry);
    volatile_posmap_.clear();
    for (const auto &[a, p] : state.posmap)
        volatile_posmap_.set(a, p);
}

TrafficCounts
PsOramController::traffic() const
{
    TrafficCounts counts;
    counts.reads = device_.totalReads();
    counts.writes = device_.totalWrites();
    if (onchip_)
        counts.writes += onchip_->totalWrites();
    return counts;
}

bool
PsOramController::committedDataInTree(BlockAddr addr,
                                      std::uint8_t *out) const
{
    const PathId leaf = committedPath(addr);
    const bool check_epoch = persistent() && !recursive();
    const std::uint32_t epoch = check_epoch
        ? persistent_posmap_.readFullEntry(device_, addr).epoch
        : 0;
    for (unsigned level = 0; level <= geo_.height; ++level) {
        const BucketId bucket = geo_.bucketAt(leaf, level);
        for (unsigned s = 0; s < geo_.bucket_slots; ++s) {
            SlotBytes raw{};
            device_.readBytes(params_.data_layout.slotAddr(bucket, s),
                              raw.data(), kSlotBytes);
            const PlainBlock block = codec_.decode(raw);
            if (!block.isDummy() && block.addr == addr &&
                block.path == leaf &&
                (!check_epoch || block.epoch == epoch)) {
                std::memcpy(out, block.data.data(), kBlockDataBytes);
                return true;
            }
        }
    }
    return false;
}

} // namespace psoram
