#include "psoram/backup_planner.hh"

namespace psoram {

void
BackupPlanner::plan(const AccessContext &ctx)
{
    if (!env_.usesBackups() || !env_.params.design.backup_blocks)
        return;
    // The target was found on the path (it is in the stash but was not
    // there at step 1). Its loaded copy's slot becomes the backup site:
    // the pre-access data returns there under the old path id.
    const StashEntry *live = env_.stash.find(ctx.addr);
    if (!live)
        return;
    bool found_on_path = false;
    for (const LoadedSlot &s : ctx.slots)
        if (s.addr == ctx.addr && !s.is_backup_site)
            found_on_path = true;
    if (!found_on_path)
        return; // first touch: nothing committed to back up

    StashEntry backup;
    backup.addr = ctx.addr;
    backup.path = ctx.leaf; // the old, still-committed path
    backup.epoch = live->epoch;
    backup.data = live->data;
    backup.is_backup = true;
    env_.stash.insert(backup);
    ++env_.counters.backups;
}

} // namespace psoram
