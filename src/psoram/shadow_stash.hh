/**
 * @file
 * Shadow stash region: the NVM area where Rcr-PS-ORAM persists the
 * dirty blocks remaining in a (volatile) stash after each eviction.
 *
 * The paper's recursive design writes the PosMap through to the NVM
 * PosMap ORAM on every access, so a block whose stash copy is lost in a
 * crash would be unrecoverable (its mapping already points at the new
 * path). Rcr-PS-ORAM therefore "persist[s] the dirty blocks in the
 * stash ... for crash recoverability" (§5.1): after every eviction the
 * stash residue is serialized into a fixed NVM region through the data
 * WPQ, in the same atomic bracket as the path write. Recovery reads the
 * region back into the stash.
 *
 * The region is double-buffered: snapshots alternate between two slot
 * areas and a single-entry header (count, sequence, active area) is
 * pushed *after* all slots. Because the drainer preserves push order
 * across rounds, the header only ever commits once its area is fully
 * persistent — a crash mid-snapshot falls back to the previous area,
 * keeping recovery atomic even with 4-entry WPQs.
 */

#ifndef PSORAM_PSORAM_SHADOW_STASH_HH
#define PSORAM_PSORAM_SHADOW_STASH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/backend.hh"
#include "nvm/wpq.hh"
#include "oram/block.hh"
#include "oram/stash.hh"

namespace psoram {

class ShadowStashRegion
{
  public:
    static constexpr std::size_t kHeaderBytes = 16;

    /**
     * @param base NVM byte address of the region
     * @param capacity maximum entries (the stash capacity)
     */
    ShadowStashRegion(Addr base, std::size_t capacity);

    std::uint64_t footprintBytes() const
    {
        return kHeaderBytes + 2 * capacity_ * kSlotBytes;
    }

    /**
     * Serialize the live (non-backup) entries of @p stash into WPQ
     * entries (slots into the inactive area, then the flipping header),
     * ready to be appended to an eviction bundle.
     */
    std::vector<WpqEntry> snapshotWrites(const Stash &stash,
                                         BlockCodec &codec);

    /** Recovery: decode the active area back into stash entries. */
    std::vector<StashEntry> recover(const MemoryBackend &device,
                                    const BlockCodec &codec) const;

    /**
     * Recovery: resume the sequence counter from the persistent header
     * so the next snapshot targets the inactive area. Without this, a
     * crash during the first post-recovery snapshot could corrupt the
     * still-active area.
     */
    void resumeFrom(const MemoryBackend &device);

    Addr base() const { return base_; }
    std::size_t capacity() const { return capacity_; }

    /** Entries that did not fit in the region (should stay zero). */
    std::uint64_t droppedEntries() const { return dropped_; }

  private:
    Addr areaBase(unsigned which) const
    {
        return base_ + kHeaderBytes + which * capacity_ * kSlotBytes;
    }

    Addr base_;
    std::size_t capacity_;
    std::uint64_t seq_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace psoram

#endif // PSORAM_PSORAM_SHADOW_STASH_HH
