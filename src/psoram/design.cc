#include "psoram/design.hh"

#include "common/log.hh"

namespace psoram {

DesignOptions
designOptions(DesignKind kind)
{
    DesignOptions options;
    switch (kind) {
      case DesignKind::Baseline:
        break;
      case DesignKind::FullNvm:
        options.stash_tech = StashTech::PCM;
        break;
      case DesignKind::FullNvmStt:
        options.stash_tech = StashTech::STTRAM;
        break;
      case DesignKind::NaivePsOram:
        options.persist = PersistMode::NaiveAll;
        options.backup_blocks = true;
        break;
      case DesignKind::PsOram:
        options.persist = PersistMode::DirtyOnly;
        options.backup_blocks = true;
        break;
      case DesignKind::RcrBaseline:
        options.recursive_posmap = true;
        break;
      case DesignKind::RcrPsOram:
        options.recursive_posmap = true;
        options.persist = PersistMode::DirtyOnly;
        break;
    }
    return options;
}

std::string
designName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Baseline:
        return "Baseline";
      case DesignKind::FullNvm:
        return "FullNVM";
      case DesignKind::FullNvmStt:
        return "FullNVM(STT)";
      case DesignKind::NaivePsOram:
        return "Naive-PS-ORAM";
      case DesignKind::PsOram:
        return "PS-ORAM";
      case DesignKind::RcrBaseline:
        return "Rcr-Baseline";
      case DesignKind::RcrPsOram:
        return "Rcr-PS-ORAM";
    }
    PSORAM_PANIC("unknown design kind");
}

} // namespace psoram
