#include "psoram/evictor.hh"

#include <algorithm>

#include "oram/controller.hh"

namespace psoram {

void
Evictor::run(AccessContext &ctx)
{
    const BlockAddr addr = ctx.addr;
    const PathId leaf = ctx.leaf;
    const TreeGeometry &geo = env_.geo;
    Stash &stash = env_.stash;
    const unsigned levels = geo.levels();
    const unsigned z = geo.bucket_slots;

    // Placement plan: plan[level][slot].
    std::vector<std::vector<PlainBlock>> plan(levels);
    std::vector<std::vector<bool>> used(levels);
    for (unsigned level = 0; level < levels; ++level) {
        plan[level].assign(z, PlainBlock::dummy());
        used[level].assign(z, false);
    }

    /** Record of which blocks were placed (for commit bookkeeping). */
    struct Placed
    {
        BlockAddr addr;
        PathId path;
        std::uint32_t epoch;
        std::array<std::uint8_t, kBlockDataBytes> data;
        bool is_backup;
        std::size_t write_index; // filled when writes are emitted
        unsigned level, slot;
    };
    std::vector<Placed> placed;

    const auto place = [&](const StashEntry &e, unsigned level,
                           unsigned slot) {
        plan[level][slot] = e.toBlock();
        used[level][slot] = true;
        placed.push_back(Placed{e.addr, e.path, e.epoch, e.data,
                                e.is_backup, 0, level, slot});
    };

    // Non-recursive PS designs use *safe placement* so that multi-round
    // (small-WPQ) evictions stay crash consistent. Recursive PS designs
    // commit the whole eviction in one atomic bracket (see DESIGN.md),
    // so they — like the non-persistent designs — can use classic
    // greedy placement.
    const bool safe_placement = env_.persistent() && !env_.recursive();

    // prev_live[level][slot]: the slot held a live block before this
    // eviction. Writes over such slots must commit after the writes
    // that relocate their contents (emission group 2 below).
    std::vector<std::vector<bool>> prev_live(levels);
    for (unsigned level = 0; level < levels; ++level)
        prev_live[level].assign(z, false);
    for (const LoadedSlot &ls : ctx.slots)
        if (ls.addr != kDummyBlockAddr)
            prev_live[ls.level][ls.slot] = true;

    if (safe_placement) {
        // Pass 0: backup copies return to the very slot their block
        // was loaded from (identity rewrite of the committed value).
        for (const LoadedSlot &ls : ctx.slots) {
            if (ls.addr == kDummyBlockAddr)
                continue;
            if (!ls.is_backup_site && ls.addr != addr)
                continue;
            StashEntry *backup = stash.findBackup(ls.addr);
            if (!backup)
                continue;
            place(*backup, ls.level, ls.slot);
            for (std::size_t i = 0; i < stash.size(); ++i) {
                if (stash.at(i).is_backup &&
                    stash.at(i).addr == ls.addr) {
                    stash.removeAt(i);
                    break;
                }
            }
        }

        // Pass A (sink): every live stash entry — loaded, carried and
        // the target — may drop into a free slot that previously held a
        // dummy or stale block (unconditionally overwrite-safe).
        struct Cand
        {
            BlockAddr addr;
            unsigned max_level;
        };
        std::vector<Cand> cands;
        for (std::size_t i = 0; i < stash.size(); ++i) {
            const StashEntry &e = stash.at(i);
            if (e.is_backup)
                continue;
            cands.push_back(
                Cand{e.addr, geo.commonLevel(e.path, leaf)});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.max_level > b.max_level;
                  });
        for (const Cand &cand : cands) {
            StashEntry *e = stash.find(cand.addr);
            bool done = false;
            for (int level = static_cast<int>(cand.max_level);
                 level >= 0 && !done; --level) {
                for (unsigned s = 0; s < z; ++s) {
                    if (used[level][s] || prev_live[level][s])
                        continue;
                    place(*e, static_cast<unsigned>(level), s);
                    stash.remove(cand.addr);
                    done = true;
                    break;
                }
            }
        }

        // Pass B (identity): loaded blocks that did not sink rewrite
        // their own slot.
        for (const LoadedSlot &ls : ctx.slots) {
            if (ls.addr == kDummyBlockAddr || ls.is_backup_site ||
                ls.addr == addr || used[ls.level][ls.slot])
                continue;
            StashEntry *resident = stash.find(ls.addr);
            if (!resident || env_.temp.get(ls.addr))
                continue;
            place(*resident, ls.level, ls.slot);
            stash.remove(ls.addr);
        }

        // Pass C (vacated): remaining carried blocks may take slots
        // vacated by blocks that sank in pass A — those writes are
        // emitted in group 2, after the sunk copies are durable.
        for (std::size_t i = 0; i < stash.size();) {
            const StashEntry &e = stash.at(i);
            if (e.is_backup) {
                ++i;
                continue;
            }
            const unsigned max_level = geo.commonLevel(e.path, leaf);
            bool done = false;
            for (int level = static_cast<int>(max_level);
                 level >= 0 && !done; --level) {
                for (unsigned s = 0; s < z; ++s) {
                    if (used[level][s])
                        continue;
                    place(e, static_cast<unsigned>(level), s);
                    done = true;
                    break;
                }
            }
            if (done)
                stash.removeAt(i);
            else
                ++i;
        }
    } else {
        // Classic greedy eviction, leaf-first (no crash guarantees).
        for (int level = static_cast<int>(geo.height); level >= 0;
             --level) {
            for (unsigned s = 0; s < z; ++s) {
                // Find the deepest-eligible stash entry for this slot.
                std::size_t best = stash.size();
                unsigned best_depth = 0;
                for (std::size_t i = 0; i < stash.size(); ++i) {
                    const StashEntry &e = stash.at(i);
                    const unsigned common =
                        geo.commonLevel(e.path, leaf);
                    if (common >= static_cast<unsigned>(level) &&
                        (best == stash.size() ||
                         common > best_depth)) {
                        best = i;
                        best_depth = common;
                    }
                }
                if (best == stash.size())
                    break;
                place(stash.at(best), static_cast<unsigned>(level), s);
                stash.removeAt(best);
            }
        }
    }

    // Blocks that found no slot stay in the (volatile) stash until a
    // later eviction; their durable copy is the backup (non-recursive)
    // or the shadow region (recursive).
    env_.counters.unplaced_carried += stash.liveSize();

    // Emit the full re-encrypted path. With safe placement the writes
    // go out in two groups: first every slot that previously held a
    // dummy/stale block (unconditionally safe), then the slots that
    // held live blocks (identity rewrites, backup sites, and slots
    // vacated by group-1 relocations). The drainer preserves push order
    // across WPQ rounds, so any committed prefix is recoverable.
    std::vector<WpqEntry> data_writes;
    data_writes.reserve(geo.blocksPerPath());
    const auto emitGroup = [&](bool live_group) {
        for (unsigned level = 0; level < levels; ++level) {
            const BucketId bucket = geo.bucketAt(leaf, level);
            for (unsigned s = 0; s < z; ++s) {
                if (safe_placement &&
                    prev_live[level][s] != live_group)
                    continue;
                WpqEntry write;
                write.addr = env_.params.data_layout.slotAddr(bucket, s);
                const SlotBytes slot_bytes =
                    env_.codec.encode(plan[level][s]);
                write.data.assign(slot_bytes.begin(),
                                  slot_bytes.end());
                for (Placed &p : placed)
                    if (p.level == level && p.slot == s)
                        p.write_index = data_writes.size() + 1;
                data_writes.push_back(std::move(write));
            }
        }
    };
    emitGroup(false);
    if (safe_placement)
        emitGroup(true);

    if (!env_.persistent()) {
        // Direct (non-atomic) write-back; FullNVM reads each evicted
        // block out of its on-chip NVM stash first.
        Cycle issue =
            ctx.t + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
        if (env_.onchip) {
            // FullNVM: the eviction candidates stream out of the
            // on-chip NVM stash first (bank-pipelined phase).
            Cycle read_phase = issue;
            for (std::size_t i = 0; i < data_writes.size(); ++i)
                read_phase = std::max(read_phase,
                                      env_.onChipRead(issue));
            issue = read_phase;
        }
        Cycle proc = issue;
        Cycle done = issue;
        std::size_t count = 0;
        for (const WpqEntry &write : data_writes) {
            proc += env_.params.controller_block_cycles;
            env_.device.writeBytes(write.addr, write.data.data(),
                                   write.data.size());
            done = std::max(done, env_.device.accessOne(write.addr,
                                                        true, proc));
            if (++count == data_writes.size() / 2)
                env_.crashCheck(CrashSite::DuringDirectEviction);
        }
        ctx.t = done;
        return;
    }

    // PS designs: assemble the bundle and run the atomic WPQ protocol.
    EvictionBundle &bundle = ctx.bundle;
    bundle.data_writes = std::move(data_writes);

    // Find where the accessed block became durable in this bundle: its
    // placed data slot, or the shadow region (recursive designs).
    std::size_t target_durable_at = 0;
    for (const Placed &p : placed)
        if (p.addr == addr && !p.is_backup)
            target_durable_at = p.write_index;

    if (!env_.recursive()) {
        if (env_.params.design.persist == PersistMode::DirtyOnly) {
            // Step 5-A: only dirty temporary-PosMap entries of blocks
            // that return to the tree in this round are persisted.
            for (const Placed &p : placed) {
                if (p.is_backup)
                    continue;
                const auto pending = env_.temp.get(p.addr);
                if (!pending)
                    continue;
                PosmapWrite pw;
                pw.after_data = p.write_index;
                pw.entry.addr =
                    env_.persistent_posmap.entryAddr(p.addr);
                const auto record = PersistentPosMap::encodeRecord(
                    *pending, p.epoch);
                pw.entry.data.assign(record.begin(), record.end());
                bundle.posmap_writes.push_back(std::move(pw));
            }
        } else { // NaiveAll
            // One metadata write per path slot, real or dummy.
            for (std::size_t i = 0; i < bundle.data_writes.size();
                 ++i) {
                PosmapWrite pw;
                pw.after_data = i + 1;
                bool real = false;
                for (const Placed &p : placed) {
                    if (p.is_backup || p.write_index != i + 1)
                        continue;
                    const auto pending = env_.temp.get(p.addr);
                    const PathId path =
                        pending ? *pending : p.path;
                    pw.entry.addr =
                        env_.persistent_posmap.entryAddr(p.addr);
                    const auto record = PersistentPosMap::encodeRecord(
                        path, p.epoch);
                    pw.entry.data.assign(record.begin(), record.end());
                    real = true;
                    break;
                }
                if (!real) {
                    // Dummy slot: a scratch metadata write (the Naive
                    // design persists every entry indiscriminately).
                    pw.entry.addr = env_.params.naive_scratch_base +
                                    (i % geo.blocksPerPath()) *
                                        kBlockDataBytes;
                    pw.entry.data.resize(
                        PersistentPosMap::kEntryBytes);
                }
                bundle.posmap_writes.push_back(std::move(pw));
            }
        }
    } else {
        // Recursive: the PoM writes collected at step 2 must not
        // commit before the accessed block is durable.
        std::vector<PosmapWrite> pom_writes(
            bundle.posmap_writes.begin(),
            bundle.posmap_writes.begin() +
                static_cast<std::ptrdiff_t>(ctx.pom_after_data));
        bundle.posmap_writes.clear();

        // Shadow the stash residues (data + PoM) through the data WPQ.
        for (auto &entry :
             env_.shadow_data->snapshotWrites(stash, env_.codec))
            bundle.data_writes.push_back(std::move(entry));
        for (auto &entry : env_.shadow_pom->snapshotWrites(
                 env_.pom->stash(), env_.codec))
            bundle.data_writes.push_back(std::move(entry));

        if (target_durable_at == 0) {
            // Target not placed on the tree: it is in the stash, hence
            // inside the shadow snapshot just appended. Constrain the
            // PoM metadata to commit after the whole snapshot.
            target_durable_at = bundle.data_writes.size();
        }
        for (PosmapWrite &pw : pom_writes) {
            pw.after_data = target_durable_at;
            bundle.posmap_writes.push_back(std::move(pw));
        }
    }

    // Step 5-B/5-C: one (or more) atomic WPQ rounds. Streaming the
    // eviction into the persistence domain costs ~2 entries per NVM
    // cycle on the controller's internal port.
    const Cycle issue =
        ctx.t + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle +
        (bundle.data_writes.size() + bundle.posmap_writes.size()) / 2;
    const Cycle done = env_.drainer->persist(
        bundle, env_.device, issue,
        [this](CrashSite site) { env_.crashCheck(site); });

    // Post-commit bookkeeping: merge committed remaps into the main
    // PosMap (functionally already durable via the drained region
    // writes) and report durable data to the test oracle.
    for (const Placed &p : placed) {
        if (p.is_backup)
            continue;
        if (!env_.recursive()) {
            if (const auto pending = env_.temp.get(p.addr))
                env_.temp.erase(p.addr);
        }
        env_.notifyCommit(p.addr, p.data);
    }
    if (env_.recursive()) {
        // Shadowed stash blocks are durable too.
        for (std::size_t i = 0; i < stash.size(); ++i) {
            const StashEntry &e = stash.at(i);
            if (!e.is_backup)
                env_.notifyCommit(e.addr, e.data);
        }
    }
    ctx.t = done;
}

} // namespace psoram
