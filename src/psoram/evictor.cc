#include "psoram/evictor.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "oram/controller.hh"
#include "oram/integrity.hh"
#include "oram/subtree_cache.hh"

namespace psoram {

static_assert(kSlotBytes <= kWpqEntryBytes,
              "encrypted tree slots must fit a WPQ entry inline");
static_assert(kIntegrityRecordBytes <= kWpqEntryBytes,
              "authenticated tree records must fit a WPQ entry inline");

void
Evictor::run(AccessContext &ctx)
{
    const BlockAddr addr = ctx.addr;
    const PathId leaf = ctx.leaf;
    const TreeGeometry &geo = env_.geo;
    Stash &stash = env_.stash;
    const unsigned levels = geo.levels();
    const unsigned z = geo.bucket_slots;
    const std::size_t path_slots = static_cast<std::size_t>(levels) * z;

    // Placement plan, slot-indexed as [level * z + slot].
    EvictScratch &sc = scratch_;
    sc.plan.assign(path_slots, PlainBlock::dummy());
    sc.used.assign(path_slots, 0);
    sc.prev_live.assign(path_slots, 0);
    sc.slot_writer.assign(path_slots, 0);
    sc.placed.clear();
    sc.data_writes.clear();

    const auto slotIx = [z](unsigned level, unsigned s) {
        return static_cast<std::size_t>(level) * z + s;
    };

    const auto place = [&](const StashEntry &e, unsigned level,
                           unsigned slot) {
        const std::size_t ix = slotIx(level, slot);
        sc.plan[ix] = e.toBlock();
        sc.used[ix] = 1;
        sc.slot_writer[ix] =
            static_cast<std::uint32_t>(sc.placed.size() + 1);
        sc.placed.push_back(Placed{e.addr, e.path, e.epoch, e.data,
                                   e.is_backup, 0, level, slot});
    };

    // Non-recursive PS designs use *safe placement* so that multi-round
    // (small-WPQ) evictions stay crash consistent. Recursive PS designs
    // commit the whole eviction in one atomic bracket (see DESIGN.md),
    // so they — like the non-persistent designs — can use classic
    // greedy placement.
    const bool safe_placement = env_.persistent() && !env_.recursive();

    // prev_live[slot]: the slot held a live block before this eviction.
    // Writes over such slots must commit after the writes that relocate
    // their contents (emission group 2 below).
    for (const LoadedSlot &ls : ctx.slots)
        if (ls.addr != kDummyBlockAddr)
            sc.prev_live[slotIx(ls.level, ls.slot)] = 1;

    if (safe_placement) {
        // Pass 0: backup copies return to the very slot their block
        // was loaded from (identity rewrite of the committed value).
        for (const LoadedSlot &ls : ctx.slots) {
            if (ls.addr == kDummyBlockAddr)
                continue;
            if (!ls.is_backup_site && ls.addr != addr)
                continue;
            StashEntry *backup = stash.findBackup(ls.addr);
            if (!backup)
                continue;
            place(*backup, ls.level, ls.slot);
            stash.removeBackup(ls.addr);
        }

        // Pass A (sink): every live stash entry — loaded, carried and
        // the target — may drop into a free slot that previously held a
        // dummy or stale block (unconditionally overwrite-safe). Free
        // slots are listed per level in ascending order up front;
        // consuming them through a cursor picks exactly the slot the
        // old per-candidate rescan found.
        sc.free_slots.assign(path_slots, 0);
        sc.free_count.assign(levels, 0);
        sc.free_cursor.assign(levels, 0);
        for (unsigned level = 0; level < levels; ++level)
            for (unsigned s = 0; s < z; ++s) {
                const std::size_t ix = slotIx(level, s);
                if (!sc.used[ix] && !sc.prev_live[ix])
                    sc.free_slots[slotIx(level,
                                         sc.free_count[level]++)] = s;
            }

        sc.cands.clear();
        for (std::size_t i = 0; i < stash.size(); ++i) {
            const StashEntry &e = stash.at(i);
            if (e.is_backup)
                continue;
            sc.cands.push_back(
                Cand{e.addr, geo.commonLevel(e.path, leaf)});
        }
        std::sort(sc.cands.begin(), sc.cands.end(),
                  [](const Cand &a, const Cand &b) {
                      return a.max_level > b.max_level;
                  });
        for (const Cand &cand : sc.cands) {
            for (int level = static_cast<int>(cand.max_level);
                 level >= 0; --level) {
                std::uint32_t &cur =
                    sc.free_cursor[static_cast<unsigned>(level)];
                if (cur ==
                    sc.free_count[static_cast<unsigned>(level)])
                    continue;
                const unsigned s = sc.free_slots[slotIx(
                    static_cast<unsigned>(level), cur)];
                ++cur;
                place(*stash.find(cand.addr),
                      static_cast<unsigned>(level), s);
                stash.remove(cand.addr);
                break;
            }
        }

        // Pass B (identity): loaded blocks that did not sink rewrite
        // their own slot.
        for (const LoadedSlot &ls : ctx.slots) {
            if (ls.addr == kDummyBlockAddr || ls.is_backup_site ||
                ls.addr == addr || sc.used[slotIx(ls.level, ls.slot)])
                continue;
            StashEntry *resident = stash.find(ls.addr);
            if (!resident ||
                env_.temp.getVisible(ls.addr, env_.temp_horizon))
                continue;
            place(*resident, ls.level, ls.slot);
            stash.remove(ls.addr);
        }

        // Pass C (vacated): remaining carried blocks may take slots
        // vacated by blocks that sank in pass A — those writes are
        // emitted in group 2, after the sunk copies are durable. The
        // free lists are rebuilt over every still-unused slot.
        sc.free_count.assign(levels, 0);
        sc.free_cursor.assign(levels, 0);
        for (unsigned level = 0; level < levels; ++level)
            for (unsigned s = 0; s < z; ++s)
                if (!sc.used[slotIx(level, s)])
                    sc.free_slots[slotIx(level,
                                         sc.free_count[level]++)] = s;

        for (std::size_t i = 0; i < stash.size();) {
            const StashEntry &e = stash.at(i);
            if (e.is_backup) {
                ++i;
                continue;
            }
            const unsigned max_level = geo.commonLevel(e.path, leaf);
            bool done = false;
            for (int level = static_cast<int>(max_level);
                 level >= 0 && !done; --level) {
                std::uint32_t &cur =
                    sc.free_cursor[static_cast<unsigned>(level)];
                if (cur ==
                    sc.free_count[static_cast<unsigned>(level)])
                    continue;
                place(e, static_cast<unsigned>(level),
                      sc.free_slots[slotIx(static_cast<unsigned>(level),
                                           cur)]);
                ++cur;
                done = true;
            }
            if (done)
                stash.removeAt(i);
            else
                ++i;
        }
    } else {
        // Classic greedy eviction, leaf-first (no crash guarantees).
        // commonLevel is computed once per entry; the cache mirrors the
        // stash's swap-with-last removal so positions stay aligned and
        // the deepest-eligible tie-breaks (earliest position wins) are
        // bit-identical to the per-slot rescan this replaces.
        sc.depths.clear();
        for (std::size_t i = 0; i < stash.size(); ++i)
            sc.depths.push_back(
                geo.commonLevel(stash.at(i).path, leaf));
        for (int level = static_cast<int>(geo.height); level >= 0;
             --level) {
            for (unsigned s = 0; s < z; ++s) {
                // Find the deepest-eligible stash entry for this slot.
                std::size_t best = stash.size();
                unsigned best_depth = 0;
                for (std::size_t i = 0; i < stash.size(); ++i) {
                    const unsigned common = sc.depths[i];
                    if (common >= static_cast<unsigned>(level) &&
                        (best == stash.size() ||
                         common > best_depth)) {
                        best = i;
                        best_depth = common;
                    }
                }
                if (best == stash.size())
                    break;
                place(stash.at(best), static_cast<unsigned>(level), s);
                stash.removeAt(best);
                sc.depths[best] = sc.depths.back();
                sc.depths.pop_back();
            }
        }
    }

    // Blocks that found no slot stay in the (volatile) stash until a
    // later eviction; their durable copy is the backup (non-recursive)
    // or the shadow region (recursive).
    env_.counters.unplaced_carried += stash.liveSize();

    // Emit the full re-encrypted path. With safe placement the writes
    // go out in two groups: first every slot that previously held a
    // dummy/stale block (unconditionally safe), then the slots that
    // held live blocks (identity rewrites, backup sites, and slots
    // vacated by group-1 relocations). The drainer preserves push order
    // across WPQ rounds, so any committed prefix is recoverable.
    sc.data_writes.reserve(geo.blocksPerPath());
    const auto emitGroup = [&](bool live_group) {
        for (unsigned level = 0; level < levels; ++level) {
            const BucketId bucket = geo.bucketAt(leaf, level);
            for (unsigned s = 0; s < z; ++s) {
                const std::size_t ix = slotIx(level, s);
                if (safe_placement &&
                    (sc.prev_live[ix] != 0) != live_group)
                    continue;
                sc.data_writes.emplace_back();
                WpqEntry &write = sc.data_writes.back();
                write.addr = env_.params.data_layout.slotAddr(bucket, s);
                const SlotBytes slot_bytes =
                    env_.codec.encode(sc.plan[ix]);
                if (env_.integrity) {
                    // Authenticated record: ciphertext + fresh version
                    // + GMAC tag, one WPQ entry (the durability atom).
                    std::uint8_t record[kIntegrityRecordBytes];
                    env_.integrity->sealRecord(bucket, s, slot_bytes,
                                               record);
                    write.data.assign(record,
                                      record + kIntegrityRecordBytes);
                } else {
                    write.data.assign(slot_bytes.begin(),
                                      slot_bytes.end());
                }
                if (const std::uint32_t pi = sc.slot_writer[ix])
                    sc.placed[pi - 1].write_index =
                        sc.data_writes.size();
            }
        }
    };
    emitGroup(false);
    if (safe_placement)
        emitGroup(true);

    if (env_.subtree_cache) {
        // Publish the post-eviction path: a later in-flight access
        // whose stage-2 fetch pinned any of these buckets must see the
        // contents this write-back produces, not what the device held
        // when it fetched (the cache is the coherence point; the
        // write-behind queue makes the device itself lag).
        std::vector<PlainBlock> bucket(z);
        for (unsigned level = 0; level < levels; ++level) {
            for (unsigned s = 0; s < z; ++s)
                bucket[s] = sc.plan[slotIx(level, s)];
            env_.subtree_cache->update(geo.bucketAt(leaf, level),
                                       bucket);
        }
    }

    if (!env_.persistent()) {
        // Direct (non-atomic) write-back; FullNVM reads each evicted
        // block out of its on-chip NVM stash first.
        Cycle issue =
            ctx.t + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
        if (env_.onchip) {
            // FullNVM: the eviction candidates stream out of the
            // on-chip NVM stash first (bank-pipelined phase).
            Cycle read_phase = issue;
            for (std::size_t i = 0; i < sc.data_writes.size(); ++i)
                read_phase = std::max(read_phase,
                                      env_.onChipRead(issue));
            issue = read_phase;
        }
        // One vectored write per eviction round, split at the crash
        // hook: the first half of the path is durable when the
        // DuringDirectEviction site fires, exactly as it was with the
        // per-entry loop (each span still reports its own DirectWrite
        // boundary, in entry order). The accessOne schedule afterwards
        // runs in the same entry order against the same channel state,
        // so timing is unchanged.
        const std::size_t half = sc.data_writes.size() / 2;
        std::vector<WriteSpan> spans;
        spans.reserve(sc.data_writes.size());
        for (const WpqEntry &write : sc.data_writes)
            spans.push_back({write.addr, write.data.data(),
                             write.data.size()});
        env_.device.writev(spans.data(), half);
        if (half > 0)
            env_.crashCheck(CrashSite::DuringDirectEviction);
        env_.device.writev(spans.data() + half, spans.size() - half);

        Cycle proc = issue;
        Cycle done = issue;
        for (const WpqEntry &write : sc.data_writes) {
            proc += env_.params.controller_block_cycles;
            done = std::max(done, env_.device.accessOne(write.addr,
                                                        true, proc));
        }
        ctx.t = done;
        return;
    }

    // PS designs: assemble the bundle and run the atomic WPQ protocol.
    // Swapping (rather than moving) the write list keeps both vectors'
    // capacity alive across the ctx/scratch reuse cycle.
    EvictionBundle &bundle = ctx.bundle;
    bundle.data_writes.swap(sc.data_writes);

    // Find where the accessed block became durable in this bundle: its
    // placed data slot, or the shadow region (recursive designs).
    std::size_t target_durable_at = 0;
    for (const Placed &p : sc.placed)
        if (p.addr == addr && !p.is_backup)
            target_durable_at = p.write_index;

    if (!env_.recursive()) {
        if (env_.params.design.persist == PersistMode::DirtyOnly) {
            // Step 5-A: only dirty temporary-PosMap entries of blocks
            // that return to the tree in this round are persisted.
            for (const Placed &p : sc.placed) {
                if (p.is_backup)
                    continue;
                // Horizon-gated: a *later* in-flight access's pending
                // remap must not persist before its data (rule 2).
                const auto pending =
                    env_.temp.getVisible(p.addr, env_.temp_horizon);
                if (!pending)
                    continue;
                PosmapWrite pw;
                pw.after_data = p.write_index;
                pw.entry.addr =
                    env_.persistent_posmap.entryAddr(p.addr);
                const auto record = PersistentPosMap::encodeRecord(
                    *pending, p.epoch);
                pw.entry.data.assign(record.begin(), record.end());
                bundle.posmap_writes.push_back(std::move(pw));
            }
        } else { // NaiveAll
            // One metadata write per path slot, real or dummy. The
            // write-index -> placement map inverts slot_writer so each
            // slot costs one lookup instead of a scan over placed.
            sc.write_placed.assign(bundle.data_writes.size(), 0);
            for (std::size_t p = 0; p < sc.placed.size(); ++p)
                sc.write_placed[sc.placed[p].write_index - 1] =
                    static_cast<std::uint32_t>(p + 1);
            for (std::size_t i = 0; i < bundle.data_writes.size();
                 ++i) {
                PosmapWrite pw;
                pw.after_data = i + 1;
                const std::uint32_t pi = sc.write_placed[i];
                if (pi != 0 && !sc.placed[pi - 1].is_backup) {
                    const Placed &p = sc.placed[pi - 1];
                    const auto pending =
                        env_.temp.getVisible(p.addr, env_.temp_horizon);
                    const PathId path =
                        pending ? *pending : p.path;
                    pw.entry.addr =
                        env_.persistent_posmap.entryAddr(p.addr);
                    const auto record = PersistentPosMap::encodeRecord(
                        path, p.epoch);
                    pw.entry.data.assign(record.begin(), record.end());
                } else {
                    // Dummy slot: a scratch metadata write (the Naive
                    // design persists every entry indiscriminately).
                    pw.entry.addr = env_.params.naive_scratch_base +
                                    (i % geo.blocksPerPath()) *
                                        kBlockDataBytes;
                    pw.entry.data.resize(
                        PersistentPosMap::kEntryBytes);
                }
                bundle.posmap_writes.push_back(std::move(pw));
            }
        }
    } else {
        // Recursive: the PoM writes collected at step 2 must not
        // commit before the accessed block is durable.
        std::vector<PosmapWrite> pom_writes(
            bundle.posmap_writes.begin(),
            bundle.posmap_writes.begin() +
                static_cast<std::ptrdiff_t>(ctx.pom_after_data));
        bundle.posmap_writes.clear();

        // Shadow the stash residues (data + PoM) through the data WPQ.
        for (auto &entry :
             env_.shadow_data->snapshotWrites(stash, env_.codec))
            bundle.data_writes.push_back(std::move(entry));
        for (auto &entry : env_.shadow_pom->snapshotWrites(
                 env_.pom->stash(), env_.codec))
            bundle.data_writes.push_back(std::move(entry));

        if (target_durable_at == 0) {
            // Target not placed on the tree: it is in the stash, hence
            // inside the shadow snapshot just appended. Constrain the
            // PoM metadata to commit after the whole snapshot.
            target_durable_at = bundle.data_writes.size();
        }
        for (PosmapWrite &pw : pom_writes) {
            pw.after_data = target_durable_at;
            bundle.posmap_writes.push_back(std::move(pw));
        }
    }

    // Step 5-B/5-C: one (or more) atomic WPQ rounds. Streaming the
    // eviction into the persistence domain costs ~2 entries per NVM
    // cycle on the controller's internal port.
    const Cycle issue =
        ctx.t + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle +
        (bundle.data_writes.size() + bundle.posmap_writes.size()) / 2;
    Cycle done;
    {
        PSORAM_TRACE_SCOPE("phase", "drain", ctx.access_id);
        const std::uint64_t drain_t0 = obs::hostNowNs();
        done = env_.drainer->persist(
            bundle, env_.device, issue,
            [this](CrashSite site) { env_.crashCheck(site); });
        ctx.drain_host_ns = obs::hostNowNs() - drain_t0;
        ctx.drain_cycles = done - issue;
    }

    // Post-commit bookkeeping: merge committed remaps into the main
    // PosMap (functionally already durable via the drained region
    // writes) and report durable data to the test oracle.
    for (const Placed &p : sc.placed) {
        if (p.is_backup)
            continue;
        if (!env_.recursive()) {
            // Only this access's (or an earlier one's) remap merged;
            // a later in-flight remap stays pending for its own round.
            if (env_.temp.getVisible(p.addr, env_.temp_horizon))
                env_.temp.erase(p.addr);
        }
        env_.notifyCommit(p.addr, p.data);
    }
    if (env_.recursive()) {
        // Shadowed stash blocks are durable too.
        for (std::size_t i = 0; i < stash.size(); ++i) {
            const StashEntry &e = stash.at(i);
            if (!e.is_backup)
                env_.notifyCommit(e.addr, e.data);
        }
    }
    if (env_.integrity) {
        // Lazily persist the interior Merkle nodes the committed
        // rounds dirtied — quiet writes, off the enumerable crash
        // surface (recovery recomputes and repairs them; only the
        // root record above is load-bearing).
        env_.integrity->streamDirtyNodes(env_.device);
    }
    ctx.t = done;
}

} // namespace psoram
