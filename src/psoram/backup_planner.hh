/**
 * @file
 * BackupPlanner: protocol step 4's backup action — plant a backup copy
 * of the accessed block under its *old* path id (paper §4.2.1 step 4).
 *
 * The backup returns to the slot the block was loaded from during this
 * access, so a crash that loses the volatile stash still finds the
 * pre-access value under the still-committed old mapping.
 */

#ifndef PSORAM_PSORAM_BACKUP_PLANNER_HH
#define PSORAM_PSORAM_BACKUP_PLANNER_HH

#include "psoram/access_context.hh"
#include "psoram/phase_env.hh"

namespace psoram {

class BackupPlanner
{
  public:
    explicit BackupPlanner(PhaseEnv &env) : env_(env) {}

    /**
     * Insert the backup stash entry for ctx.addr if its live copy was
     * loaded from the tree this access (first touches have nothing
     * committed to back up). Only meaningful for designs that use
     * backups (persistent, non-recursive).
     */
    void plan(const AccessContext &ctx);

  private:
    PhaseEnv &env_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_BACKUP_PLANNER_HH
