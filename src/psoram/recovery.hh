/**
 * @file
 * Recovery orchestration (paper §4.3): rebuild a working ORAM controller
 * from the persistent NVM image after a power failure.
 *
 * The sequence a real system performs on power-up is:
 *
 *   1. ADR drains the committed WPQ rounds to the NVM (this happened at
 *      failure time — powerFailureFlush()).
 *   2. A fresh controller attaches to the NVM. Its committed PosMap is
 *      already in the trusted NVM region (non-recursive) or the PosMap
 *      ORAM trees (recursive); nothing volatile survived.
 *   3. Recursive PS designs reload the stash shadow regions.
 *
 * RecoveryManager packages that sequence for the harness and the tests,
 * and measures the recovery cost (reads performed, cycles).
 */

#ifndef PSORAM_PSORAM_RECOVERY_HH
#define PSORAM_PSORAM_RECOVERY_HH

#include <cstdint>
#include <memory>

#include "psoram/psoram_controller.hh"

namespace psoram {

class FlightRecorder;

struct RecoveryReport
{
    /** NVM reads performed during the rebuild. */
    std::uint64_t nvm_reads = 0;
    /** Stash entries restored from the shadow region. */
    std::size_t stash_restored = 0;
    /** PoM stash entries restored. */
    std::size_t pom_stash_restored = 0;
};

class RecoveryManager
{
  public:
    /**
     * Simulate the power failure on @p crashed (ADR flush), destroy it,
     * and build a recovered controller over the same device.
     *
     * For FullNVM designs the on-chip buffers are non-volatile: their
     * content is carried over (that alone does not make the design
     * crash consistent — the data/metadata updates are not atomic,
     * which the tests demonstrate).
     *
     * @param stats when set, one per-phase latency sample plus the
     *        recovery counters land here (common/stats.hh); a refused
     *        recovery (IntegrityError) bumps records_refused and
     *        rethrows without sampling the distributions.
     * @param flight when set, the persistent black box is decoded
     *        BEFORE any recovery write (counters + trace tail), and
     *        RecoveryStart/RecoveryDone records bracket the rebuild.
     */
    static std::unique_ptr<PsOramController>
    recover(std::unique_ptr<PsOramController> crashed, MemoryBackend &device,
            RecoveryReport *report = nullptr, RecoveryStats *stats = nullptr,
            FlightRecorder *flight = nullptr);
};

} // namespace psoram

#endif // PSORAM_PSORAM_RECOVERY_HH
