/**
 * @file
 * Remapper: protocol step 2 — access the PosMap and back up the label
 * (paper §4.2.1).
 *
 * Non-recursive persistent designs stage the new label in the temporary
 * PosMap (the committed mapping stays intact until the block's eviction
 * round commits); non-persistent designs overwrite the PosMap in place;
 * recursive designs perform one PosMap-ORAM access and hand the
 * resulting tree writes to the Evictor through the bundle.
 */

#ifndef PSORAM_PSORAM_REMAPPER_HH
#define PSORAM_PSORAM_REMAPPER_HH

#include "psoram/access_context.hh"
#include "psoram/phase_env.hh"

namespace psoram {

class Remapper
{
  public:
    explicit Remapper(PhaseEnv &env) : env_(env) {}

    /**
     * Resolve the committed path of ctx.addr, pick and stage a fresh
     * label, and (recursive designs) collect the PoM eviction writes
     * into ctx.bundle. Sets ctx.leaf / ctx.new_leaf / ctx.pom_after_data
     * and advances ctx.t.
     */
    void run(AccessContext &ctx);

  private:
    PhaseEnv &env_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_REMAPPER_HH
