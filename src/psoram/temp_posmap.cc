#include "psoram/temp_posmap.hh"

#include "common/log.hh"

namespace psoram {

TempPosMap::TempPosMap(std::size_t capacity) : capacity_(capacity)
{
    if (capacity_ == 0)
        PSORAM_FATAL("temporary PosMap needs capacity >= 1");
}

std::optional<PathId>
TempPosMap::get(BlockAddr addr) const
{
    const auto it = entries_.find(addr);
    if (it == entries_.end())
        return std::nullopt;
    return it->second.path;
}

std::optional<PathId>
TempPosMap::getVisible(BlockAddr addr, std::uint64_t horizon) const
{
    const auto it = entries_.find(addr);
    if (it == entries_.end() || it->second.stamp > horizon)
        return std::nullopt;
    return it->second.path;
}

void
TempPosMap::put(BlockAddr addr, PathId path, std::uint64_t stamp)
{
    const auto it = entries_.find(addr);
    if (it != entries_.end()) {
        it->second.path = path;
        it->second.stamp = stamp;
        return;
    }
    if (full())
        ++pressure_;
    order_.push_back(addr);
    entries_[addr] = Entry{path, stamp, std::prev(order_.end())};
}

bool
TempPosMap::erase(BlockAddr addr)
{
    const auto it = entries_.find(addr);
    if (it == entries_.end())
        return false;
    order_.erase(it->second.pos);
    entries_.erase(it);
    return true;
}

std::optional<BlockAddr>
TempPosMap::oldest() const
{
    if (order_.empty())
        return std::nullopt;
    return order_.front();
}

void
TempPosMap::clear()
{
    order_.clear();
    entries_.clear();
}

} // namespace psoram
