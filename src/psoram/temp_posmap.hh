/**
 * @file
 * Temporary PosMap (paper §4.1): stages the re-assigned path ids of
 * accessed blocks until their data is persisted.
 *
 * A remap (a -> l') recorded here is *pending*: the main PosMap (and its
 * persistent copy) still holds the old path, so a crash before the block
 * reaches the NVM recovers the old, consistent mapping. Entries are
 * merged into the main PosMap when the eviction round containing the
 * block commits (paper §4.2.2 step 5-C).
 */

#ifndef PSORAM_PSORAM_TEMP_POSMAP_HH
#define PSORAM_PSORAM_TEMP_POSMAP_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace psoram {

class TempPosMap
{
  public:
    /** @param capacity C_tPos, 96 entries in Table 3(b) */
    explicit TempPosMap(std::size_t capacity);

    /** Pending remap for @p addr, if any. */
    std::optional<PathId> get(BlockAddr addr) const;

    /**
     * Pending remap for @p addr, visible only if it was recorded by an
     * access with ticket <= @p horizon. The pipelined engine runs the
     * remap of access N+1 before access N's eviction retires; N's
     * evictor must not treat N+1's still-pending remap as its own (it
     * would persist — or erase — a mapping whose data has not been
     * written). Synchronous mode stamps everything 0 and reads with an
     * unbounded horizon, reproducing plain get().
     */
    std::optional<PathId> getVisible(BlockAddr addr,
                                     std::uint64_t horizon) const;

    /**
     * Record a pending remap (overwrites an existing pending entry —
     * the block was re-remapped before its first remap committed).
     * @param stamp ticket of the recording access (0 when synchronous)
     */
    void put(BlockAddr addr, PathId path, std::uint64_t stamp = 0);

    /** Remove the pending entry after it commits. */
    bool erase(BlockAddr addr);

    /** Oldest pending address (force-merge candidate), if any. */
    std::optional<BlockAddr> oldest() const;

    /** Drop everything (volatile; lost on crash). */
    void clear();

    std::size_t size() const { return order_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return size() >= capacity_; }

    /** Times put() was called while full (forced merges needed). */
    std::uint64_t pressureEvents() const { return pressure_.value(); }

  private:
    std::size_t capacity_;
    /** Insertion order for age-based force merging. */
    std::list<BlockAddr> order_;
    struct Entry
    {
        PathId path;
        std::uint64_t stamp;
        std::list<BlockAddr>::iterator pos;
    };
    std::unordered_map<BlockAddr, Entry> entries_;
    Counter pressure_;
};

} // namespace psoram

#endif // PSORAM_PSORAM_TEMP_POSMAP_HH
