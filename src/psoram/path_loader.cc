#include "psoram/path_loader.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "oram/controller.hh"
#include "oram/integrity.hh"
#include "oram/subtree_cache.hh"

namespace psoram {

void
PathLoader::classify(const PlainBlock &block, BlockAddr target,
                     PathId leaf, LoadedSlot &slot_info)
{
    slot_info.addr = kDummyBlockAddr;
    slot_info.is_backup_site = false;
    if (block.isDummy())
        return;

    if (env_.recursive()) {
        // Recursive designs never leave stale copies behind (the whole
        // path is rewritten each eviction and no backups are planted);
        // dedupe against the stash is sufficient.
        if (env_.stash.find(block.addr))
            return;
        StashEntry entry;
        entry.addr = block.addr;
        entry.path = block.path;
        entry.data = block.data;
        env_.stash.insert(entry);
        slot_info.addr = block.addr;
        return;
    }

    const PersistentPosMap::Entry committed = env_.persistent()
        ? env_.persistent_posmap.readFullEntry(env_.device, block.addr)
        : PersistentPosMap::Entry{
              env_.volatile_posmap.get(block.addr), 0};
    const bool matches_committed = env_.persistent()
        ? (block.path == committed.path &&
           block.epoch == committed.epoch)
        : block.path == committed.path;

    if (env_.stash.find(block.addr) != nullptr) {
        if (env_.usesBackups() && matches_committed) {
            // The stash holds a newer (dirty) copy; this tree copy is
            // the block's last committed value. Keep it circulating as
            // a backup so a crash that loses the stash can recover it
            // (generalized form of the paper's step-4 backup).
            StashEntry backup;
            backup.addr = block.addr;
            backup.path = block.path;
            backup.epoch = block.epoch;
            backup.data = block.data;
            backup.is_backup = true;
            env_.stash.insert(backup);
            ++env_.counters.backups;
            slot_info.addr = block.addr;
            slot_info.is_backup_site = true;
            return;
        }
        ++env_.counters.stale_dropped;
        return;
    }

    // A live copy must match the committed PosMap record (path AND
    // remap epoch). Exception: in the non-persistent designs the PosMap
    // was already overwritten with the new label at step 2, so the
    // genuine target copy still carries the path being loaded.
    const bool is_live = (!env_.persistent() && block.addr == target)
        ? block.path == leaf
        : matches_committed;
    if (!is_live) {
        // An invalidated backup or an old copy: treat as dummy
        // (paper footnote 1).
        ++env_.counters.stale_dropped;
        return;
    }

    StashEntry entry;
    entry.addr = block.addr;
    entry.path = block.path;
    entry.epoch = block.epoch;
    entry.data = block.data;
    env_.stash.insert(entry);
    slot_info.addr = block.addr;
}

void
PathLoader::run(AccessContext &ctx)
{
    const TreeGeometry &geo = env_.geo;
    const unsigned total = geo.blocksPerPath();
    const Cycle start = ctx.t;
    ctx.slots.reserve(total);
    Cycle proc = start;
    unsigned count = 0;

    if (!env_.persistent()) {
        // One vectored read carries the whole path. Classification of
        // the non-persistent and recursive designs touches only the
        // stash and the volatile PosMap — no device IO — so hoisting
        // the slot reads in front of the classify loop leaves the
        // functional device sequence bit-identical to the old per-slot
        // interleave (the golden traffic digests pin this). Timing is
        // unchanged too: the accessOne schedule below runs in the same
        // slot order against the same channel state.
        slot_addrs_.clear();
        raw_.assign(total, SlotBytes{});
        spans_.clear();
        spans_.reserve(total);
        for (unsigned level = 0; level <= geo.height; ++level) {
            const BucketId bucket = geo.bucketAt(ctx.leaf, level);
            for (unsigned s = 0; s < geo.bucket_slots; ++s) {
                const Addr slot_addr =
                    env_.params.data_layout.slotAddr(bucket, s);
                slot_addrs_.push_back(slot_addr);
                spans_.push_back({slot_addr, raw_[spans_.size()].data(),
                                  kSlotBytes});
            }
        }
        env_.device.readv(spans_);

        for (unsigned level = 0; level <= geo.height; ++level) {
            for (unsigned s = 0; s < geo.bucket_slots; ++s) {
                const unsigned i = count;
                const Addr slot_addr = slot_addrs_[i];
                const Cycle rd = env_.device.accessOne(slot_addr, false,
                                                       start);
                proc = std::max(rd, proc) +
                       env_.params.controller_block_cycles;

                LoadedSlot slot_info{level, s, kDummyBlockAddr, false};
                classify(env_.codec.decode(raw_[i]), ctx.addr, ctx.leaf,
                         slot_info);
                ctx.slots.push_back(slot_info);

                if (++count == total / 2)
                    env_.crashCheck(CrashSite::DuringLoad);
            }
        }
    } else {
        // Persistent designs verify each non-dummy slot against the
        // committed PosMap record *as it is classified*, so the bus
        // sequence interleaves slot reads with PosMap entry reads.
        // That interleave is part of the pinned protocol sequence the
        // golden digests capture — keep it at per-slot granularity
        // here; bulk path IO for these designs goes through fetch()
        // (the pipelined stage), which batches without reordering any
        // pinned sequence.
        for (unsigned level = 0; level <= geo.height; ++level) {
            const BucketId bucket = geo.bucketAt(ctx.leaf, level);
            for (unsigned s = 0; s < geo.bucket_slots; ++s) {
                const Addr slot_addr =
                    env_.params.data_layout.slotAddr(bucket, s);
                SlotBytes raw{};
                if (env_.integrity) {
                    // Read the whole authenticated record and refuse
                    // it before a single byte is decrypted.
                    std::uint8_t record[kIntegrityRecordBytes];
                    env_.device.readBytes(slot_addr, record,
                                          kIntegrityRecordBytes);
                    env_.integrity->verifyRecord(bucket, s, record);
                    std::memcpy(raw.data(), record, kSlotBytes);
                } else {
                    env_.device.readBytes(slot_addr, raw.data(),
                                          kSlotBytes);
                }
                const Cycle rd = env_.device.accessOne(slot_addr, false,
                                                       start);
                proc = std::max(rd, proc) +
                       env_.params.controller_block_cycles;

                LoadedSlot slot_info{level, s, kDummyBlockAddr, false};
                classify(env_.codec.decode(raw), ctx.addr, ctx.leaf,
                         slot_info);
                ctx.slots.push_back(slot_info);

                if (++count == total / 2)
                    env_.crashCheck(CrashSite::DuringLoad);
            }
        }
    }
    if (env_.onchip) {
        // FullNVM: every loaded block is written into the on-chip NVM
        // stash. The buffer's banks pipeline among themselves, but the
        // fill phase serializes against the path transfer (the single
        // controller port), which is what makes the FullNVM designs
        // pay close to one extra NVM pass per access (§5.2.1 a).
        Cycle onchip_done = proc;
        for (unsigned i = 0; i < total; ++i)
            onchip_done = std::max(onchip_done, env_.onChipWrite(proc));
        proc = onchip_done;
    }
    ctx.t = proc + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
}

void
PathLoader::fetch(const AccessContext &ctx, SubtreeCache &cache) const
{
    const TreeGeometry &geo = env_.geo;
    const unsigned levels = geo.height + 1;

    // Probe which buckets of the path are resident, then issue ONE
    // vectored read for every slot of every missing bucket — the whole
    // path crosses the seam as a single readv (one batched pread pass
    // on a disk backend, one round trip on a future RPC backend)
    // instead of blocksPerPath() scalar calls. The probe is advisory:
    // a bucket evicted (or filled) between the probe and the pinFill
    // below falls back to a scalar per-slot fill, which is rare and
    // merely costs the old IO pattern. Device IO happens outside any
    // stripe lock — the fill callbacks below only decode.
    std::vector<BucketId> path(levels);
    std::vector<char> prefetched(levels, 0);
    std::vector<SlotBytes> raw;
    // Spans point into `raw`: reserve the worst case up front so the
    // incremental resizes below can never reallocate under them.
    raw.reserve(static_cast<std::size_t>(levels) * geo.bucket_slots);
    std::vector<std::size_t> raw_base(levels, 0);
    std::vector<ReadSpan> spans;
    for (unsigned level = 0; level < levels; ++level) {
        path[level] = geo.bucketAt(ctx.leaf, level);
        if (cache.contains(path[level]))
            continue;
        prefetched[level] = 1;
        raw_base[level] = raw.size();
        raw.resize(raw.size() + geo.bucket_slots);
        for (unsigned s = 0; s < geo.bucket_slots; ++s)
            spans.push_back(
                {env_.params.data_layout.slotAddr(path[level], s),
                 raw[raw_base[level] + s].data(), kSlotBytes});
    }
    if (!spans.empty())
        env_.device.readv(spans);

    for (unsigned level = 0; level < levels; ++level) {
        cache.pinFill(path[level], [&, level](
                                       BucketId b,
                                       std::vector<PlainBlock> &slots) {
            for (unsigned s = 0;
                 s < static_cast<unsigned>(slots.size()); ++s) {
                if (prefetched[level]) {
                    slots[s] =
                        env_.codec.decode(raw[raw_base[level] + s]);
                } else {
                    const Addr slot_addr =
                        env_.params.data_layout.slotAddr(b, s);
                    SlotBytes scalar{};
                    env_.device.readBytes(slot_addr, scalar.data(),
                                          kSlotBytes);
                    slots[s] = env_.codec.decode(scalar);
                }
            }
        });
    }
}

void
PathLoader::integrate(AccessContext &ctx, SubtreeCache &cache)
{
    const TreeGeometry &geo = env_.geo;
    const unsigned total = geo.blocksPerPath();
    const Cycle start = ctx.t;
    ctx.slots.reserve(total);
    Cycle proc = start;
    unsigned count = 0;
    std::vector<PlainBlock> blocks;

    for (unsigned level = 0; level <= geo.height; ++level) {
        const BucketId bucket = geo.bucketAt(ctx.leaf, level);
        if (!cache.read(bucket, blocks)) {
            // Pinned buckets cannot be capacity-evicted; refill
            // defensively anyway so a cache bug degrades to a reload
            // instead of corrupting the protocol.
            blocks.assign(geo.bucket_slots, PlainBlock::dummy());
            std::vector<SlotBytes> raw(geo.bucket_slots);
            std::vector<ReadSpan> spans(geo.bucket_slots);
            for (unsigned s = 0; s < geo.bucket_slots; ++s)
                spans[s] = {env_.params.data_layout.slotAddr(bucket, s),
                            raw[s].data(), kSlotBytes};
            env_.device.readv(spans);
            for (unsigned s = 0; s < geo.bucket_slots; ++s)
                blocks[s] = env_.codec.decode(raw[s]);
        }
        for (unsigned s = 0; s < geo.bucket_slots; ++s) {
            const Addr slot_addr =
                env_.params.data_layout.slotAddr(bucket, s);
            const Cycle rd = env_.device.accessOne(slot_addr, false,
                                                   start);
            proc = std::max(rd, proc) +
                   env_.params.controller_block_cycles;

            LoadedSlot slot_info{level, s, kDummyBlockAddr, false};
            classify(blocks[s], ctx.addr, ctx.leaf, slot_info);
            ctx.slots.push_back(slot_info);

            if (++count == total / 2)
                env_.crashCheck(CrashSite::DuringLoad);
        }
    }
    if (env_.onchip) {
        Cycle onchip_done = proc;
        for (unsigned i = 0; i < total; ++i)
            onchip_done = std::max(onchip_done, env_.onChipWrite(proc));
        proc = onchip_done;
    }
    ctx.t = proc + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
}

} // namespace psoram
