#include "psoram/recovery.hh"

#include "obs/trace.hh"

namespace psoram {

std::unique_ptr<PsOramController>
RecoveryManager::recover(std::unique_ptr<PsOramController> crashed,
                         MemoryBackend &device, RecoveryReport *report)
{
    PSORAM_TRACE_SCOPE("recovery", "recover", 0);
    const PsOramParams params = crashed->params();
    const bool onchip_nv =
        params.design.stash_tech != StashTech::SRAM;

    // The ADR domain drains committed rounds as the power fails.
    crashed->powerFailureFlush();

    PsOramController::OnChipNvState nv_state;
    if (onchip_nv)
        nv_state = crashed->exportOnChipNvState();

    const std::uint64_t reads_before = device.totalReads();
    crashed.reset(); // volatile state dies with the controller

    auto recovered = std::make_unique<PsOramController>(params, device);
    recovered->recoverFromNvm();
    if (onchip_nv)
        recovered->importOnChipNvState(nv_state);

    if (report) {
        report->nvm_reads = device.totalReads() - reads_before;
        report->stash_restored = recovered->stash().size();
        if (recovered->pomLevel())
            report->pom_stash_restored =
                recovered->pomLevel()->stash().size();
    }
    return recovered;
}

} // namespace psoram
