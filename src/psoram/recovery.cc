#include "psoram/recovery.hh"

#include "nvm/flight_recorder.hh"
#include "obs/trace.hh"

namespace psoram {

std::unique_ptr<PsOramController>
RecoveryManager::recover(std::unique_ptr<PsOramController> crashed,
                         MemoryBackend &device, RecoveryReport *report,
                         RecoveryStats *stats, FlightRecorder *flight)
{
    PSORAM_TRACE_SCOPE("recovery", "recover", 0);
    const PsOramParams params = crashed->params();
    const bool onchip_nv =
        params.design.stash_tech != StashTech::SRAM;

    // Decode the black box FIRST: the ring still holds exactly what the
    // dying run recorded, before any recovery-era append lands in it.
    FlightRecorder::Decoded box;
    if (flight) {
        box = flight->decode(device);
        if (stats) {
            stats->blackbox_events += box.events.size();
            stats->blackbox_torn += box.torn_records;
        }
        if (const FlightEvent *tail = box.tail())
            PSORAM_TRACE_INSTANT_ARG(
                "recovery", "blackbox_tail", 0, "seq",
                static_cast<std::int64_t>(tail->seq));
        flight->record(device, FlightEventKind::RecoveryStart,
                       box.events.size(), box.torn_records);
    }

    const std::uint64_t h0 = obs::hostNowNs();

    // The ADR domain drains committed rounds as the power fails.
    const PsOramController::FlushOutcome flush =
        crashed->powerFailureFlush(/*timed=*/true);
    const std::uint64_t h2 = obs::hostNowNs();

    PsOramController::OnChipNvState nv_state;
    if (onchip_nv)
        nv_state = crashed->exportOnChipNvState();

    const std::uint64_t reads_before = device.totalReads();
    std::unique_ptr<PsOramController> recovered;
    {
        PSORAM_TRACE_SCOPE("recovery", "image_reload", 0);
        crashed.reset(); // volatile state dies with the controller
        recovered = std::make_unique<PsOramController>(params, device);
    }
    const std::uint64_t h3 = obs::hostNowNs();

    PsOramController::RecoveryTimings t;
    try {
        recovered->recoverFromNvm(stats ? &t : nullptr);
    } catch (const IntegrityError &) {
        if (stats)
            ++stats->records_refused;
        throw;
    }
    if (onchip_nv)
        recovered->importOnChipNvState(nv_state);

    if (report) {
        report->nvm_reads = device.totalReads() - reads_before;
        report->stash_restored = recovered->stash().size();
        if (recovered->pomLevel())
            report->pom_stash_restored =
                recovered->pomLevel()->stash().size();
    }

    if (stats) {
        // Adjacent host-ns windows (common/stats.hh RecoveryStats):
        // posmap_rebuild absorbs the recoverFromNvm volatile rebuild
        // plus the on-chip-state import/report tail, so the six phases
        // sum to total exactly.
        const std::uint64_t hend = obs::hostNowNs();
        stats->sampleRecovery(
            static_cast<double>(flush.split_ns - h0),
            static_cast<double>(h2 - flush.split_ns),
            static_cast<double>(h3 - h2),
            static_cast<double>(t.rebuild_done_ns - h3) +
                static_cast<double>(hend - t.end_ns),
            static_cast<double>(t.verify_done_ns - t.rebuild_done_ns),
            static_cast<double>(t.end_ns - t.verify_done_ns),
            static_cast<double>(hend - h0));
        stats->redelivered_entries += flush.redelivered_entries;
        stats->replayed_rounds += flush.replayed_rounds;
        stats->records_verified += t.records_verified;
        stats->nodes_repaired += t.nodes_repaired;
    }
    if (flight)
        flight->record(device, FlightEventKind::RecoveryDone,
                       flush.redelivered_entries, t.records_verified,
                       t.nodes_repaired);
    return recovered;
}

} // namespace psoram
