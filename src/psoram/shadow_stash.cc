#include "psoram/shadow_stash.hh"

#include <cstring>

#include "common/log.hh"

namespace psoram {

ShadowStashRegion::ShadowStashRegion(Addr base, std::size_t capacity)
    : base_(base), capacity_(capacity)
{
}

std::vector<WpqEntry>
ShadowStashRegion::snapshotWrites(const Stash &stash, BlockCodec &codec)
{
    std::vector<WpqEntry> writes;

    // Write into the area the current header does NOT point at.
    ++seq_;
    const unsigned area = static_cast<unsigned>(seq_ % 2);

    std::uint32_t count = 0;
    for (std::size_t i = 0; i < stash.size(); ++i) {
        const StashEntry &entry = stash.at(i);
        if (entry.is_backup)
            continue; // backups live in the tree, not the shadow
        if (count >= capacity_) {
            ++dropped_;
            continue;
        }
        WpqEntry write;
        write.addr = areaBase(area) + count * kSlotBytes;
        const SlotBytes slot = codec.encode(entry.toBlock());
        write.data.assign(slot.begin(), slot.end());
        writes.push_back(std::move(write));
        ++count;
    }

    // The header flips the active area; it is pushed last, so it can
    // only commit after every slot above is durable.
    WpqEntry header;
    header.addr = base_;
    header.data.resize(kHeaderBytes);
    std::memcpy(header.data.data(), &count, sizeof(count));
    std::memcpy(header.data.data() + 4, &area, sizeof(area));
    std::memcpy(header.data.data() + 8, &seq_, sizeof(seq_));
    writes.push_back(std::move(header));
    return writes;
}

std::vector<StashEntry>
ShadowStashRegion::recover(const MemoryBackend &device,
                           const BlockCodec &codec) const
{
    std::uint8_t raw[kHeaderBytes] = {};
    device.readBytes(base_, raw, kHeaderBytes);
    std::uint32_t count = 0;
    unsigned area = 0;
    std::memcpy(&count, raw, sizeof(count));
    std::memcpy(&area, raw + 4, sizeof(area));
    if (count > capacity_ || area > 1)
        PSORAM_PANIC("corrupt shadow stash header: count=", count,
                     " area=", area);

    std::vector<StashEntry> entries;
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        SlotBytes slot{};
        device.readBytes(areaBase(area) + i * kSlotBytes, slot.data(),
                         kSlotBytes);
        const PlainBlock block = codec.decode(slot);
        if (block.isDummy())
            PSORAM_PANIC("corrupt shadow stash slot ", i);
        StashEntry entry;
        entry.addr = block.addr;
        entry.path = block.path;
        entry.data = block.data;
        entries.push_back(entry);
    }
    return entries;
}

void
ShadowStashRegion::resumeFrom(const MemoryBackend &device)
{
    std::uint8_t raw[kHeaderBytes] = {};
    device.readBytes(base_, raw, kHeaderBytes);
    std::memcpy(&seq_, raw + 8, sizeof(seq_));
}

} // namespace psoram
