#include "psoram/crash.hh"

#include "common/log.hh"

namespace psoram {

std::string
crashSiteName(CrashSite site)
{
    switch (site) {
      case CrashSite::AfterRemap:
        return "after-remap (step 2)";
      case CrashSite::DuringLoad:
        return "during-load (step 3)";
      case CrashSite::AfterStashUpdate:
        return "after-stash-update (step 4)";
      case CrashSite::BeforeCommit:
        return "before-commit (step 5-B)";
      case CrashSite::AfterCommit:
        return "after-commit (step 5-C)";
      case CrashSite::BetweenRounds:
        return "between-eviction-rounds";
      case CrashSite::DuringDirectEviction:
        return "during-direct-eviction";
      case CrashSite::BetweenAccesses:
        return "between-accesses";
    }
    PSORAM_PANIC("unknown crash site");
}

} // namespace psoram
