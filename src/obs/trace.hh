/**
 * @file
 * Low-overhead tracing layer emitting Chrome trace_event JSON.
 *
 * One process-wide TraceRecorder owns a registry of per-thread ring
 * buffers; threads append events lock-light (one uncontended per-buffer
 * mutex acquisition per event, taken only so a concurrent snapshot /
 * JSON dump is race-free), and the buffers survive thread exit so a
 * worker pool's tracks are still present when the trace is written.
 *
 * Overhead contract:
 *  - tracing *disabled* (the default): every instrumentation site is a
 *    single relaxed atomic load — no clock read, no allocation, no lock.
 *  - tracing *enabled*: one steady_clock read per instant event, two per
 *    scope, plus the ring append. Rings are fixed-capacity and overwrite
 *    the oldest events (dropped counts are reported), so a run can never
 *    grow without bound.
 *  - compiled out entirely with -DPSORAM_TRACE_DISABLED (the macros
 *    below expand to nothing).
 *
 * The emitted file is the Chrome trace-event JSON object format
 * ({"traceEvents": [...]}); open it at https://ui.perfetto.dev or
 * chrome://tracing. Each registered thread is one track, named via
 * setThreadName() ("shard3.worker", "completions.drain", ...). Duration
 * events are complete events (ph "X"); correlation ids (the engine's
 * request ids) ride in args.id so one access can be followed from the
 * submitting thread through its shard worker's phase events.
 *
 * Event name/category strings must be string literals (or otherwise
 * outlive the recorder): events store the pointers, not copies.
 */

#ifndef PSORAM_OBS_TRACE_HH
#define PSORAM_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psoram::obs {

/** One recorded event (complete or instant). */
struct TraceEvent
{
    const char *name = nullptr;
    const char *category = nullptr;
    /** 'X' = complete (ts + dur), 'i' = instant. */
    char phase = 'i';
    /** Nanoseconds since the recorder epoch (enable() / clear()). */
    std::uint64_t ts_ns = 0;
    /** Complete events only. */
    std::uint64_t dur_ns = 0;
    /** Recorder-assigned track id of the emitting thread. */
    std::uint32_t tid = 0;
    /** Correlation id (args.id); 0 = none. */
    std::uint64_t id = 0;
    /** Optional extra numeric argument (args.<arg_name>). */
    const char *arg_name = nullptr;
    std::int64_t arg = 0;
};

/** Host monotonic clock, nanoseconds (no recorder dependency). */
inline std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class TraceRecorder
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 1u << 16;

    /** The process-wide recorder (never destroyed). */
    static TraceRecorder &instance();

    /** Cheapest possible site check: one relaxed atomic load. */
    static bool
    enabled()
    {
        return enabled_flag_.load(std::memory_order_relaxed);
    }

    /** Start recording; resets the epoch and drops prior events.
     *  @p ring_capacity is events retained *per thread*. */
    void enable(std::size_t ring_capacity = kDefaultRingCapacity);

    /** Stop recording; buffered events remain snapshottable. */
    void disable();

    /** Drop every recorded event and restart the epoch (enabled state
     *  is unchanged). Safe while other threads record. */
    void clear();

    /** Name the calling thread's track (idempotent; works before
     *  enable(), so worker threads can name themselves at startup). */
    static void setThreadName(const std::string &name);

    /** @{ Event emission (no-ops while disabled). */
    static void instant(const char *category, const char *name,
                        std::uint64_t id = 0,
                        const char *arg_name = nullptr,
                        std::int64_t arg = 0);
    /** Record a complete event spanning [start_ns, now]. */
    static void complete(const char *category, const char *name,
                         std::uint64_t start_ns, std::uint64_t id = 0);
    /** @} */

    /** Nanoseconds since the recorder epoch. */
    static std::uint64_t nowNs();

    /** All buffered events, merged across threads, sorted by ts. */
    std::vector<TraceEvent> snapshot() const;

    /** (tid, name) for every thread that named its track. */
    std::vector<std::pair<std::uint32_t, std::string>>
    threadNames() const;

    /** Events lost to ring overwrites since the last clear(). */
    std::uint64_t droppedEvents() const;

    /** Write {"traceEvents": [...]} Chrome trace JSON.
     *  @return false (with a warning on stderr) on I/O failure */
    bool writeTo(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        mutable std::mutex mutex;
        std::uint32_t tid = 0;
        std::string name;
        /** Ring storage (allocated lazily on the first event). */
        std::vector<TraceEvent> ring;
        std::size_t head = 0;      ///< next overwrite position
        std::uint64_t recorded = 0; ///< events ever pushed
    };

    TraceRecorder() = default;

    ThreadBuffer &threadBuffer();
    void push(const TraceEvent &event);

    static inline std::atomic<bool> enabled_flag_{false};
    /** Cache of the calling thread's buffer; the buffer is owned by
     *  (and lives as long as) the recorder, so it never dangles. */
    static thread_local ThreadBuffer *tls_buffer_;

    mutable std::mutex registry_mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::uint32_t next_tid_ = 1;
    std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};
    std::atomic<std::uint64_t> epoch_ns_{0};
};

/** RAII duration event: records one complete event on destruction. */
class TraceScope
{
  public:
    TraceScope(const char *category, const char *name,
               std::uint64_t id = 0)
        : category_(category), name_(name), id_(id),
          start_ns_(TraceRecorder::enabled() ? TraceRecorder::nowNs()
                                             : kInactive)
    {
    }

    ~TraceScope()
    {
        if (start_ns_ != kInactive && TraceRecorder::enabled())
            TraceRecorder::complete(category_, name_, start_ns_, id_);
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    static constexpr std::uint64_t kInactive =
        ~static_cast<std::uint64_t>(0);

    const char *category_;
    const char *name_;
    std::uint64_t id_;
    std::uint64_t start_ns_;
};

} // namespace psoram::obs

#define PSORAM_OBS_CONCAT2(a, b) a##b
#define PSORAM_OBS_CONCAT(a, b) PSORAM_OBS_CONCAT2(a, b)

#ifndef PSORAM_TRACE_DISABLED
/** Duration event covering the enclosing scope. */
#define PSORAM_TRACE_SCOPE(category, name, id)                           \
    ::psoram::obs::TraceScope PSORAM_OBS_CONCAT(psoram_trace_scope_,     \
                                                __LINE__)(category,      \
                                                          name, id)
/** Zero-duration marker event. */
#define PSORAM_TRACE_INSTANT(category, name, id)                         \
    ::psoram::obs::TraceRecorder::instant(category, name, id)
/** Marker event with one extra numeric argument. */
#define PSORAM_TRACE_INSTANT_ARG(category, name, id, arg_name, arg)      \
    ::psoram::obs::TraceRecorder::instant(category, name, id, arg_name,  \
                                          arg)
#else
#define PSORAM_TRACE_SCOPE(category, name, id) ((void)0)
#define PSORAM_TRACE_INSTANT(category, name, id) ((void)0)
#define PSORAM_TRACE_INSTANT_ARG(category, name, id, arg_name, arg)      \
    ((void)0)
#endif

#endif // PSORAM_OBS_TRACE_HH
