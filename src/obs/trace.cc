#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

namespace psoram::obs {

thread_local TraceRecorder::ThreadBuffer *TraceRecorder::tls_buffer_ =
    nullptr;

TraceRecorder &
TraceRecorder::instance()
{
    // Leaked singleton: worker threads may record during static
    // destruction of the harness; the recorder must outlive them all.
    static TraceRecorder *recorder = new TraceRecorder();
    return *recorder;
}

TraceRecorder::ThreadBuffer &
TraceRecorder::threadBuffer()
{
    if (tls_buffer_)
        return *tls_buffer_;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = next_tid_++;
    tls_buffer_ = buffer.get();
    buffers_.push_back(std::move(buffer));
    return *tls_buffer_;
}

void
TraceRecorder::enable(std::size_t ring_capacity)
{
    ring_capacity_.store(ring_capacity == 0 ? 1 : ring_capacity,
                         std::memory_order_relaxed);
    clear();
    enabled_flag_.store(true, std::memory_order_relaxed);
}

void
TraceRecorder::disable()
{
    enabled_flag_.store(false, std::memory_order_relaxed);
}

void
TraceRecorder::clear()
{
    epoch_ns_.store(hostNowNs(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->ring.clear();
        buffer->head = 0;
        buffer->recorded = 0;
    }
}

void
TraceRecorder::setThreadName(const std::string &name)
{
    ThreadBuffer &buffer = instance().threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.name = name;
}

std::uint64_t
TraceRecorder::nowNs()
{
    return hostNowNs() -
           instance().epoch_ns_.load(std::memory_order_relaxed);
}

void
TraceRecorder::push(const TraceEvent &event)
{
    ThreadBuffer &buffer = threadBuffer();
    const std::size_t capacity =
        ring_capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buffer.mutex);
    TraceEvent stamped = event;
    stamped.tid = buffer.tid;
    if (buffer.ring.size() < capacity) {
        buffer.ring.push_back(stamped);
    } else {
        buffer.ring[buffer.head] = stamped;
        buffer.head = (buffer.head + 1) % capacity;
    }
    ++buffer.recorded;
}

void
TraceRecorder::instant(const char *category, const char *name,
                       std::uint64_t id, const char *arg_name,
                       std::int64_t arg)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'i';
    event.ts_ns = nowNs();
    event.id = id;
    event.arg_name = arg_name;
    event.arg = arg;
    instance().push(event);
}

void
TraceRecorder::complete(const char *category, const char *name,
                        std::uint64_t start_ns, std::uint64_t id)
{
    if (!enabled())
        return;
    const std::uint64_t end_ns = nowNs();
    TraceEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.ts_ns = start_ns;
    event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
    event.id = id;
    instance().push(event);
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            events.insert(events.end(), buffer->ring.begin(),
                          buffer->ring.end());
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.ts_ns < b.ts_ns;
              });
    return events;
}

std::vector<std::pair<std::uint32_t, std::string>>
TraceRecorder::threadNames() const
{
    std::vector<std::pair<std::uint32_t, std::string>> names;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        if (!buffer->name.empty())
            names.emplace_back(buffer->tid, buffer->name);
    }
    return names;
}

std::uint64_t
TraceRecorder::droppedEvents() const
{
    std::uint64_t dropped = 0;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        if (buffer->recorded > buffer->ring.size())
            dropped += buffer->recorded - buffer->ring.size();
    }
    return dropped;
}

bool
TraceRecorder::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write trace to " << path << "\n";
        return false;
    }

    const auto escape = [](const std::string &s) {
        std::string quoted;
        for (const char c : s) {
            if (c == '"' || c == '\\')
                quoted += '\\';
            quoted += c;
        }
        return quoted;
    };

    // Every recording thread gets a named track so Perfetto never shows
    // a bare numeric tid; threads that never called setThreadName()
    // fall back to "thread-N".
    std::vector<std::pair<std::uint32_t, std::string>> tracks;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            tracks.emplace_back(buffer->tid,
                                buffer->name.empty()
                                    ? "thread-" +
                                          std::to_string(buffer->tid)
                                    : buffer->name);
        }
    }

    out << "{\"traceEvents\": [\n";
    bool first = true;
    // Track-name metadata events first (Perfetto reads them anywhere,
    // but leading with them keeps the file skimmable).
    for (const auto &[tid, name] : tracks) {
        if (!first)
            out << ",\n";
        first = false;
        out << "  {\"name\": \"thread_name\", \"ph\": \"M\", "
               "\"pid\": 1, \"tid\": " << tid
            << ", \"args\": {\"name\": \"" << escape(name) << "\"}}";
    }
    char buf[64];
    for (const TraceEvent &event : snapshot()) {
        if (!first)
            out << ",\n";
        first = false;
        out << "  {\"name\": \"" << event.name << "\", \"cat\": \""
            << event.category << "\", \"ph\": \"" << event.phase
            << "\", \"pid\": 1, \"tid\": " << event.tid;
        // Chrome trace timestamps are microseconds; keep ns precision.
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(event.ts_ns) / 1000.0);
        out << ", \"ts\": " << buf;
        if (event.phase == 'X') {
            std::snprintf(buf, sizeof(buf), "%.3f",
                          static_cast<double>(event.dur_ns) / 1000.0);
            out << ", \"dur\": " << buf;
        }
        if (event.phase == 'i')
            out << ", \"s\": \"t\"";
        if (event.id != 0 || event.arg_name) {
            out << ", \"args\": {";
            bool first_arg = true;
            if (event.id != 0) {
                out << "\"id\": " << event.id;
                first_arg = false;
            }
            if (event.arg_name) {
                if (!first_arg)
                    out << ", ";
                out << "\"" << event.arg_name << "\": " << event.arg;
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n]}\n";
    return out.good();
}

} // namespace psoram::obs
