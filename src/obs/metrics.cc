#include "obs/metrics.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace psoram::obs {

namespace {

/** Path for the atexit dump (set once per program; last call wins). */
std::string &
atexitPath()
{
    static std::string *path = new std::string();
    return *path;
}

void
atexitDump()
{
    if (!atexitPath().empty())
        MetricsExporter::global().writeTo(atexitPath());
}

std::string
jsonQuote(const std::string &s)
{
    std::string quoted = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            quoted += '\\';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Prometheus metric names allow [a-zA-Z0-9_:] only. */
std::string
promSanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s)
        out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
                   ? c
                   : '_';
    return out;
}

} // namespace

MetricsExporter::~MetricsExporter()
{
    stopPeriodic();
}

MetricsExporter &
MetricsExporter::global()
{
    // Leaked: atexit dumps run during static destruction.
    static MetricsExporter *exporter = new MetricsExporter();
    return *exporter;
}

void
MetricsExporter::addGroup(const StatGroup *group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::find(groups_.begin(), groups_.end(), group) ==
        groups_.end())
        groups_.push_back(group);
}

void
MetricsExporter::removeAllGroups()
{
    std::lock_guard<std::mutex> lock(mutex_);
    groups_.clear();
}

std::size_t
MetricsExporter::numGroups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return groups_.size();
}

std::vector<StatGroup::Snapshot>
MetricsExporter::collect() const
{
    std::vector<const StatGroup *> groups;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        groups = groups_;
    }
    std::vector<StatGroup::Snapshot> snapshots;
    snapshots.reserve(groups.size());
    for (const StatGroup *group : groups)
        snapshots.push_back(group->snapshot());
    return snapshots;
}

void
MetricsExporter::writeJson(std::ostream &os) const
{
    const auto snapshots = collect();
    os << "{\"groups\": [\n";
    for (std::size_t g = 0; g < snapshots.size(); ++g) {
        const StatGroup::Snapshot &snap = snapshots[g];
        os << "  {\"name\": " << jsonQuote(snap.name)
           << ", \"counters\": {";
        for (std::size_t i = 0; i < snap.counters.size(); ++i)
            os << (i ? ", " : "") << jsonQuote(snap.counters[i].name)
               << ": " << snap.counters[i].value;
        os << "}, \"distributions\": {";
        for (std::size_t i = 0; i < snap.dists.size(); ++i) {
            const auto &d = snap.dists[i];
            os << (i ? ", " : "") << jsonQuote(d.name) << ": {"
               << "\"count\": " << d.stats.count
               << ", \"sum\": " << fmtDouble(d.stats.sum)
               << ", \"min\": " << fmtDouble(d.stats.min)
               << ", \"max\": " << fmtDouble(d.stats.max)
               << ", \"mean\": " << fmtDouble(d.stats.mean()) << "}";
        }
        os << "}}" << (g + 1 < snapshots.size() ? "," : "") << "\n";
    }
    os << "]}\n";
}

void
MetricsExporter::writePrometheus(std::ostream &os) const
{
    const auto snapshots = collect();
    if (snapshots.empty()) {
        // A zero-byte exposition file is indistinguishable from a
        // failed write; say explicitly that nothing was registered.
        os << "# psoram metrics: no stat groups registered\n";
        return;
    }
    for (const StatGroup::Snapshot &snap : snapshots) {
        const std::string prefix =
            "psoram_" + promSanitize(snap.name) + "_";
        for (const auto &c : snap.counters) {
            const std::string metric = prefix + promSanitize(c.name);
            os << "# HELP " << metric << " " << c.desc << "\n";
            os << "# TYPE " << metric << " counter\n";
            os << metric << " " << c.value << "\n";
        }
        for (const auto &d : snap.dists) {
            const std::string metric = prefix + promSanitize(d.name);
            os << "# HELP " << metric << " " << d.desc << "\n";
            os << "# TYPE " << metric << " summary\n";
            os << metric << "_count " << d.stats.count << "\n";
            os << metric << "_sum " << fmtDouble(d.stats.sum) << "\n";
            os << metric << "_min " << fmtDouble(d.stats.min) << "\n";
            os << metric << "_max " << fmtDouble(d.stats.max) << "\n";
        }
    }
}

bool
MetricsExporter::writeTo(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "warning: cannot write metrics to " << path
                  << "\n";
        return false;
    }
    const bool prom =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
    const bool txt =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
    if (prom || txt)
        writePrometheus(out);
    else
        writeJson(out);
    return out.good();
}

void
MetricsExporter::startPeriodic(const std::string &path,
                               std::chrono::milliseconds every)
{
    stopPeriodic();
    {
        std::lock_guard<std::mutex> lock(periodic_mutex_);
        periodic_stop_ = false;
    }
    periodic_thread_ = std::thread([this, path, every] {
        std::unique_lock<std::mutex> lock(periodic_mutex_);
        for (;;) {
            if (periodic_cv_.wait_for(lock, every,
                                      [&] { return periodic_stop_; }))
                return;
            lock.unlock();
            writeTo(path);
            lock.lock();
        }
    });
}

void
MetricsExporter::stopPeriodic()
{
    {
        std::lock_guard<std::mutex> lock(periodic_mutex_);
        periodic_stop_ = true;
    }
    periodic_cv_.notify_all();
    if (periodic_thread_.joinable())
        periodic_thread_.join();
}

void
MetricsExporter::dumpAtExit(const std::string &path)
{
    static bool registered = false;
    atexitPath() = path;
    if (!registered) {
        registered = true;
        std::atexit(atexitDump);
    }
}

} // namespace psoram::obs
