/**
 * @file
 * MetricsExporter: on-demand snapshots of registered StatGroups to JSON
 * or Prometheus text exposition format.
 *
 * Components register their StatGroup (non-owning pointer; the group
 * must outlive its registration — call removeAllGroups() before tearing
 * a registered component down). A snapshot walks every group under the
 * group's own locking, so exporting is safe while engine workers keep
 * mutating the underlying counters and distributions.
 *
 * Output selection is by extension: a path ending in ".prom" or ".txt"
 * gets the Prometheus text format, anything else the JSON document
 *
 *   {"groups": [{"name": ..., "counters": {...},
 *                "distributions": {"x": {"count","sum","min","max",
 *                                         "mean"}}}]}
 *
 * Two push modes exist for harnesses that cannot call writeTo() at a
 * convenient time: startPeriodic() runs a background dump thread, and
 * dumpAtExit() registers a std::atexit hook on the global() exporter
 * (benches and torture_crash use it so even an aborted run leaves a
 * metrics file behind). Groups registered for either must effectively
 * live for the program's remaining lifetime.
 */

#ifndef PSORAM_OBS_METRICS_HH
#define PSORAM_OBS_METRICS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hh"

namespace psoram::obs {

class MetricsExporter
{
  public:
    MetricsExporter() = default;
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /** Process-wide exporter (never destroyed; for atexit dumps). */
    static MetricsExporter &global();

    /** Register @p group (non-owning; must outlive registration). */
    void addGroup(const StatGroup *group);

    /** Drop every registration (before owners are destroyed). */
    void removeAllGroups();

    std::size_t numGroups() const;

    /** @{ Serialize a snapshot of every registered group. */
    void writeJson(std::ostream &os) const;
    void writePrometheus(std::ostream &os) const;
    /** Format by extension: ".prom"/".txt" -> Prometheus, else JSON.
     *  @return false (with a warning on stderr) on I/O failure */
    bool writeTo(const std::string &path) const;
    /** @} */

    /** Dump to @p path every @p every until stopPeriodic() (or
     *  destruction). Restarting replaces the previous schedule. */
    void startPeriodic(const std::string &path,
                       std::chrono::milliseconds every);
    void stopPeriodic();

    /** Register a std::atexit dump of global() to @p path (last call
     *  wins). Groups registered on global() must stay alive to exit. */
    static void dumpAtExit(const std::string &path);

  private:
    std::vector<StatGroup::Snapshot> collect() const;

    mutable std::mutex mutex_;
    std::vector<const StatGroup *> groups_;

    /** @{ Periodic dump thread. */
    std::mutex periodic_mutex_;
    std::condition_variable periodic_cv_;
    bool periodic_stop_ = false;
    std::thread periodic_thread_;
    /** @} */
};

} // namespace psoram::obs

#endif // PSORAM_OBS_METRICS_HH
