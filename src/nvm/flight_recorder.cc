#include "nvm/flight_recorder.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/crc32.hh"
#include "obs/trace.hh"

namespace psoram {

namespace {

std::uint64_t
loadLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
storeLe64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
loadLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

void
storeLe32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

bool
allZero(const std::uint8_t *p, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        if (p[i] != 0)
            return false;
    return true;
}

} // namespace

const char *
flightEventKindName(FlightEventKind kind)
{
    switch (kind) {
      case FlightEventKind::RoundStart:
        return "round-start";
      case FlightEventKind::RoundCommit:
        return "round-commit";
      case FlightEventKind::DrainWatermark:
        return "drain-watermark";
      case FlightEventKind::RetireBatch:
        return "retire-batch";
      case FlightEventKind::Checkpoint:
        return "checkpoint";
      case FlightEventKind::RecoveryStart:
        return "recovery-start";
      case FlightEventKind::RecoveryDone:
        return "recovery-done";
    }
    return "?";
}

FlightRecorder::FlightRecorder(Addr base, std::size_t num_records)
    : base_(base), num_records_(num_records)
{
}

void
FlightRecorder::attach(MemoryBackend &device)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Decoded prior = decode(device, base_, num_records_);
    if (prior.header_valid) {
        // Reopen: keep the previous run's ring intact (it is the crash
        // evidence) and append after its tail. Torn slots advance the
        // counter too — their seq is unknown, so never reuse it.
        next_seq_ = prior.events.empty()
            ? prior.torn_records
            : prior.events.back().seq + 1 + prior.torn_records;
        return;
    }
    std::uint8_t header[kHeaderBytes] = {};
    storeLe64(header, kMagic);
    storeLe32(header + 8, static_cast<std::uint32_t>(num_records_));
    storeLe32(header + 12, static_cast<std::uint32_t>(kRecordBytes));
    const std::uint8_t zero[kRecordBytes] = {};
    std::vector<WriteSpan> spans;
    spans.push_back(WriteSpan{base_, header, kHeaderBytes});
    for (std::size_t i = 0; i < num_records_; ++i)
        spans.push_back(WriteSpan{base_ + kHeaderBytes + i * kRecordBytes,
                                  zero, kRecordBytes});
    device.writevQuiet(spans);
    next_seq_ = 0;
}

void
FlightRecorder::record(MemoryBackend &device, FlightEventKind kind,
                       std::uint64_t arg0, std::uint64_t arg1,
                       std::uint64_t arg2)
{
    std::uint8_t rec[kRecordBytes] = {};
    std::uint64_t seq;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        seq = next_seq_++;
    }
    storeLe32(rec + 4, static_cast<std::uint32_t>(kind));
    storeLe64(rec + 8, seq);
    storeLe64(rec + 16, obs::hostNowNs());
    storeLe64(rec + 24, arg0);
    storeLe64(rec + 32, arg1);
    storeLe64(rec + 40, arg2);
    storeLe32(rec, crc32(rec + 4, kCrcCoverBytes - 4));
    const Addr slot =
        base_ + kHeaderBytes + (seq % num_records_) * kRecordBytes;
    const WriteSpan span{slot, rec, kRecordBytes};
    device.writevSide(&span, 1);
}

std::uint64_t
FlightRecorder::nextSeq() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_seq_;
}

FlightRecorder::Decoded
FlightRecorder::decode(const MemoryBackend &device, Addr base,
                       std::size_t num_records)
{
    Decoded out;
    std::uint8_t header[kHeaderBytes];
    device.readBytes(base, header, sizeof(header));
    out.header_valid =
        loadLe64(header) == kMagic &&
        loadLe32(header + 8) == num_records &&
        loadLe32(header + 12) == kRecordBytes;
    if (!out.header_valid)
        return out;

    std::uint8_t rec[kRecordBytes];
    for (std::size_t i = 0; i < num_records; ++i) {
        device.readBytes(base + kHeaderBytes + i * kRecordBytes, rec,
                         sizeof(rec));
        if (allZero(rec, sizeof(rec)))
            continue; // never written
        if (loadLe32(rec) != crc32(rec + 4, kCrcCoverBytes - 4)) {
            ++out.torn_records;
            continue;
        }
        FlightEvent ev;
        ev.kind = static_cast<FlightEventKind>(loadLe32(rec + 4));
        ev.seq = loadLe64(rec + 8);
        ev.host_ns = loadLe64(rec + 16);
        ev.arg0 = loadLe64(rec + 24);
        ev.arg1 = loadLe64(rec + 32);
        ev.arg2 = loadLe64(rec + 40);
        out.events.push_back(ev);
    }
    std::sort(out.events.begin(), out.events.end(),
              [](const FlightEvent &a, const FlightEvent &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::string
FlightRecorder::format(const Decoded &decoded)
{
    std::ostringstream os;
    if (!decoded.header_valid) {
        os << "flight recorder: no valid ring header (region virgin or "
              "overwritten)\n";
        return os.str();
    }
    os << "flight recorder: " << decoded.events.size()
       << " event(s) decoded, " << decoded.torn_records
       << " torn record(s) skipped\n";
    const std::uint64_t t0 =
        decoded.events.empty() ? 0 : decoded.events.front().host_ns;
    for (const FlightEvent &ev : decoded.events) {
        os << "  seq=" << ev.seq << " +"
           << (ev.host_ns >= t0 ? (ev.host_ns - t0) / 1000 : 0) << "us "
           << flightEventKindName(ev.kind) << " args=[" << ev.arg0
           << ", " << ev.arg1 << ", " << ev.arg2 << "]\n";
    }
    return os.str();
}

} // namespace psoram
