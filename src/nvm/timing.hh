/**
 * @file
 * NVM device timing parameters (NVMain-2.0 style).
 *
 * All values are in NVM controller clock cycles at 400 MHz, matching
 * Table 3(c) of the paper:
 *   PCM    : tRCD/tWP/tCWD/tWTR/tRP/tCCD = 48/60/4/3/1/2
 *   STT-RAM: tRCD/tWP/tCWD/tWTR/tRP/tCCD = 14/14/10/5/1/2
 */

#ifndef PSORAM_NVM_TIMING_HH
#define PSORAM_NVM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace psoram {

/** Memory technology selector. */
enum class NvmTech { PCM, STTRAM };

/** Returns "PCM" / "STTRAM". */
std::string nvmTechName(NvmTech tech);

struct NvmTimingParams
{
    /** Row activate to column command delay (array read latency). */
    Cycle tRCD;
    /** Write pulse: cell programming time, charged after data transfer. */
    Cycle tWP;
    /** Column write delay: command to first data beat. */
    Cycle tCWD;
    /** Write-to-read turnaround on the same bank. */
    Cycle tWTR;
    /** Precharge (row close). */
    Cycle tRP;
    /** Column-to-column delay between bursts. */
    Cycle tCCD;
    /** Data-bus occupancy of one 64-byte burst. */
    Cycle tBURST;
    /** Controller/bus clock in MHz. */
    std::uint32_t clockMHz;

    /** Read latency from command issue to last data beat. */
    Cycle readLatency() const { return tRCD + tBURST; }
    /** Write occupancy of the bank from command issue to cell-stable. */
    Cycle writeOccupancy() const { return tCWD + tBURST + tWP; }
};

/** PCM timing preset (Table 3c). */
NvmTimingParams pcmTimings();

/** STT-RAM timing preset (Table 3c). */
NvmTimingParams sttramTimings();

/** Preset lookup by technology. */
NvmTimingParams timingsFor(NvmTech tech);

} // namespace psoram

#endif // PSORAM_NVM_TIMING_HH
