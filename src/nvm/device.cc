#include "nvm/device.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"

namespace psoram {

NvmDevice::NvmDevice(const NvmTimingParams &params, unsigned num_channels,
                     unsigned banks_per_channel,
                     std::uint64_t capacity_bytes)
    : params_(params), capacity_(capacity_bytes)
{
    if (num_channels == 0)
        PSORAM_FATAL("device needs at least one channel");
    channels_.reserve(num_channels);
    for (unsigned i = 0; i < num_channels; ++i)
        channels_.emplace_back(params, banks_per_channel);
}

void
NvmDevice::decode(Addr line_addr, unsigned &channel, unsigned &bank) const
{
    // Row-granular (4 KiB) channel interleaving with line-granular bank
    // interleaving inside a channel. Coarse channel interleaving is
    // what commodity controllers do, and it reproduces the paper's
    // observation that "it is hard to allocate the memory accesses to
    // each channel equally" (§5.2.3): a path's buckets do not spread
    // perfectly, so channel scaling saturates beyond two channels.
    constexpr Addr kLinesPerRow = 64; // 4 KiB rows
    channel = static_cast<unsigned>((line_addr / kLinesPerRow) %
                                    channels_.size());
    bank = static_cast<unsigned>(line_addr %
                                 channels_[channel].numBanks());
}

void
NvmDevice::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    // Overflow-safe bounds check: `addr + len > capacity_` can wrap for
    // addresses near the top of the 64-bit space.
    if (addr > capacity_ || len > capacity_ - addr)
        PSORAM_PANIC("NVM read past capacity: addr=", addr, " len=", len);
    std::size_t off = 0;
    while (off < len) {
        const Addr cur = addr + off;
        const Addr line = cur / kBlockDataBytes;
        const std::size_t in_line = cur % kBlockDataBytes;
        const std::size_t chunk =
            std::min(len - off, kBlockDataBytes - in_line);
        const auto it = store_.find(line);
        if (it == store_.end())
            std::memset(out + off, 0, chunk);
        else
            std::memcpy(out + off, it->second.data() + in_line, chunk);
        off += chunk;
    }
}

void
NvmDevice::writeBytes(Addr addr, const std::uint8_t *in, std::size_t len)
{
    if (addr > capacity_ || len > capacity_ - addr)
        PSORAM_PANIC("NVM write past capacity: addr=", addr, " len=", len);
    std::size_t off = 0;
    while (off < len) {
        const Addr cur = addr + off;
        const Addr line = cur / kBlockDataBytes;
        const std::size_t in_line = cur % kBlockDataBytes;
        const std::size_t chunk =
            std::min(len - off, kBlockDataBytes - in_line);
        auto &cell = store_[line]; // zero-initialized on first touch
        std::memcpy(cell.data() + in_line, in + off, chunk);

        const auto writes = ++wear_[line];
        max_line_writes_ = std::max<std::uint64_t>(max_line_writes_,
                                                   writes);
        off += chunk;
    }
}

Cycle
NvmDevice::access(Addr addr, std::size_t len, bool is_write, Cycle earliest)
{
    const Addr first_line = addr / kBlockDataBytes;
    const Addr last_line = (addr + len - 1) / kBlockDataBytes;
    Cycle done = earliest;
    for (Addr line = first_line; line <= last_line; ++line) {
        unsigned channel, bank;
        decode(line, channel, bank);
        done = std::max(done,
                        channels_[channel].access(bank, earliest,
                                                  is_write));
    }
    return done;
}

Cycle
NvmDevice::accessOne(Addr addr, bool is_write, Cycle earliest)
{
    unsigned channel, bank;
    decode(addr / kBlockDataBytes, channel, bank);
    return channels_[channel].access(bank, earliest, is_write);
}

std::uint64_t
NvmDevice::totalReads() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.readCount();
    return total;
}

std::uint64_t
NvmDevice::totalWrites() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.writeCount();
    return total;
}

double
NvmDevice::meanLineWrites() const
{
    if (wear_.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (const auto &[line, count] : wear_)
        total += count;
    return static_cast<double>(total) / static_cast<double>(wear_.size());
}

void
NvmDevice::resetStats()
{
    for (auto &channel : channels_)
        channel.resetStats();
    wear_.clear();
    max_line_writes_ = 0;
}

} // namespace psoram
