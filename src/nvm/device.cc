#include "nvm/device.hh"

#include <algorithm>
#include <cstring>

#include "common/bitops.hh"
#include "common/log.hh"
#include "nvm/fault_injector.hh"

namespace psoram {

NvmDevice::NvmDevice(const NvmTimingParams &params, unsigned num_channels,
                     unsigned banks_per_channel,
                     std::uint64_t capacity_bytes)
    : params_(params), capacity_(capacity_bytes)
{
    if (num_channels == 0)
        PSORAM_FATAL("device needs at least one channel");
    channels_.reserve(num_channels);
    for (unsigned i = 0; i < num_channels; ++i)
        channels_.emplace_back(params, banks_per_channel);
    pages_.resize((capacity_bytes + kPageBytes - 1) / kPageBytes);
}

void
NvmDevice::decode(Addr line_addr, unsigned &channel, unsigned &bank) const
{
    // Row-granular (4 KiB) channel interleaving with line-granular bank
    // interleaving inside a channel. Coarse channel interleaving is
    // what commodity controllers do, and it reproduces the paper's
    // observation that "it is hard to allocate the memory accesses to
    // each channel equally" (§5.2.3): a path's buckets do not spread
    // perfectly, so channel scaling saturates beyond two channels.
    constexpr Addr kLinesPerRow = 64; // 4 KiB rows
    channel = static_cast<unsigned>((line_addr / kLinesPerRow) %
                                    channels_.size());
    bank = static_cast<unsigned>(line_addr %
                                 channels_[channel].numBanks());
}

void
NvmDevice::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    // Overflow-safe bounds check: `addr + len > capacity_` can wrap for
    // addresses near the top of the 64-bit space.
    if (addr > capacity_ || len > capacity_ - addr)
        PSORAM_PANIC("NVM read past capacity: addr=", addr, " len=", len);
    std::size_t off = 0;
    while (off < len) {
        const Addr cur = addr + off;
        const std::size_t in_page =
            static_cast<std::size_t>(cur % kPageBytes);
        const std::size_t chunk =
            std::min(len - off, kPageBytes - in_page);
        const NvmPage *page = pages_[cur / kPageBytes].get();
        if (page == nullptr)
            std::memset(out + off, 0, chunk);
        else
            std::memcpy(out + off, page->bytes.data() + in_page, chunk);
        off += chunk;
    }
}

void
NvmDevice::writeBytes(Addr addr, const std::uint8_t *in, std::size_t len)
{
    // Persist boundary: the durable image is about to change. A fault
    // raised here aborts *before* the write applies; for writes inside
    // a committed WPQ drain the entry stays queued and the ADR flush
    // still delivers it, preserving the committed-round guarantee.
    if (fault_injector_)
        fault_injector_->boundary(fault_injector_->inDrain()
                                      ? PersistBoundary::DrainWrite
                                      : PersistBoundary::DirectWrite);
    writeBytesQuiet(addr, in, len);
}

void
NvmDevice::writeBytesQuiet(Addr addr, const std::uint8_t *in,
                           std::size_t len)
{
    if (addr > capacity_ || len > capacity_ - addr)
        PSORAM_PANIC("NVM write past capacity: addr=", addr, " len=", len);
    std::size_t off = 0;
    while (off < len) {
        const Addr cur = addr + off;
        const std::size_t in_page =
            static_cast<std::size_t>(cur % kPageBytes);
        const std::size_t chunk =
            std::min(len - off, kPageBytes - in_page);
        auto &slot = pages_[cur / kPageBytes];
        if (!slot)
            slot = std::make_unique<NvmPage>();
        std::memcpy(slot->bytes.data() + in_page, in + off, chunk);

        const std::size_t first_line = in_page / kBlockDataBytes;
        const std::size_t last_line =
            (in_page + chunk - 1) / kBlockDataBytes;
        for (std::size_t l = first_line; l <= last_line; ++l) {
            const std::uint32_t writes = ++slot->wear[l];
            if (writes == 1)
                ++distinct_lines_written_;
            ++total_line_writes_;
            if (writes > max_line_writes_)
                max_line_writes_ = writes;
        }
        off += chunk;
    }
}

Cycle
NvmDevice::access(Addr addr, std::size_t len, bool is_write, Cycle earliest)
{
    const Addr first_line = addr / kBlockDataBytes;
    const Addr last_line = (addr + len - 1) / kBlockDataBytes;
    Cycle done = earliest;
    for (Addr line = first_line; line <= last_line; ++line) {
        unsigned channel, bank;
        decode(line, channel, bank);
        done = std::max(done,
                        channels_[channel].access(bank, earliest,
                                                  is_write));
    }
    return done;
}

Cycle
NvmDevice::accessOne(Addr addr, bool is_write, Cycle earliest)
{
    unsigned channel, bank;
    decode(addr / kBlockDataBytes, channel, bank);
    return channels_[channel].access(bank, earliest, is_write);
}

std::uint64_t
NvmDevice::totalReads() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.readCount();
    return total;
}

std::uint64_t
NvmDevice::totalWrites() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.writeCount();
    return total;
}

double
NvmDevice::meanLineWrites() const
{
    if (distinct_lines_written_ == 0)
        return 0.0;
    return static_cast<double>(total_line_writes_) /
           static_cast<double>(distinct_lines_written_);
}

void
NvmDevice::resetStats()
{
    for (auto &channel : channels_)
        channel.resetStats();
    for (auto &slot : pages_)
        if (slot)
            slot->wear.fill(0);
    distinct_lines_written_ = 0;
    total_line_writes_ = 0;
    max_line_writes_ = 0;
}

MemoryImage
NvmDevice::image() const
{
    // Materialize the sparse line map the snapshot interface promises.
    // All-zero lines are elided: restoring them is indistinguishable
    // from never having written them (unwritten lines read as zero).
    static const NvmLine kZeroLine{};
    MemoryImage img;
    for (std::size_t p = 0; p < pages_.size(); ++p) {
        const NvmPage *page = pages_[p].get();
        if (page == nullptr)
            continue;
        for (std::size_t l = 0; l < kLinesPerPage; ++l) {
            const std::uint8_t *src =
                page->bytes.data() + l * kBlockDataBytes;
            if (std::memcmp(src, kZeroLine.data(), kBlockDataBytes) == 0)
                continue;
            NvmLine line;
            std::memcpy(line.data(), src, kBlockDataBytes);
            img.emplace(static_cast<Addr>(p) * kLinesPerPage + l, line);
        }
    }
    return img;
}

void
NvmDevice::restoreImage(const MemoryImage &img)
{
    // Data is restored; wear survives a snapshot/restore cycle (the
    // cells were physically written regardless of what a crash rolls
    // back), matching the previous line-map behaviour.
    for (auto &slot : pages_)
        if (slot)
            slot->bytes.fill(0);
    for (const auto &[line, data] : img) {
        if (line >= pages_.size() * kLinesPerPage)
            PSORAM_FATAL("image line ", line, " beyond device capacity ",
                         capacity_);
        auto &slot = pages_[line / kLinesPerPage];
        if (!slot)
            slot = std::make_unique<NvmPage>();
        std::memcpy(slot->bytes.data() +
                        (line % kLinesPerPage) * kBlockDataBytes,
                    data.data(), kBlockDataBytes);
    }
}

} // namespace psoram
