#include "nvm/paged_disk.hh"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/log.hh"
#include "nvm/fault_injector.hh"
#include "obs/trace.hh"

namespace psoram {

namespace {

constexpr std::uint64_t kHeaderMagic = 0x3130534b49445350ULL; // "PSDISK01"
constexpr std::uint64_t kPageMagic = 0x0000314750445350ULL;   // "PSDPG1"

struct DiskHeader
{
    std::uint64_t magic;
    std::uint64_t capacity;
    std::uint64_t page_bytes;
    std::uint64_t record_bytes;
};

struct PageTrailer
{
    std::uint64_t magic;
    std::uint64_t page_index;
    std::uint32_t crc;
    std::uint32_t reserved;
};

void
packU64(std::uint8_t *out, std::uint64_t v)
{
    std::memcpy(out, &v, sizeof(v));
}

void
packU32(std::uint8_t *out, std::uint32_t v)
{
    std::memcpy(out, &v, sizeof(v));
}

std::uint64_t
unpackU64(const std::uint8_t *in)
{
    std::uint64_t v;
    std::memcpy(&v, in, sizeof(v));
    return v;
}

std::uint32_t
unpackU32(const std::uint8_t *in)
{
    std::uint32_t v;
    std::memcpy(&v, in, sizeof(v));
    return v;
}

} // namespace

std::uint32_t
PagedDiskBackend::crc32(const std::uint8_t *data, std::size_t len)
{
    return psoram::crc32(data, len);
}

PagedDiskBackend::PagedDiskBackend(const NvmTimingParams &params,
                                   unsigned num_channels,
                                   unsigned banks_per_channel,
                                   std::uint64_t capacity_bytes,
                                   PagedDiskConfig config)
    : params_(params), capacity_(capacity_bytes),
      num_pages_((capacity_bytes + kPageBytes - 1) / kPageBytes),
      config_(std::move(config))
{
    PSORAM_TRACE_SCOPE("recovery", "disk_open", 0);
    if (num_channels == 0)
        PSORAM_FATAL("paged disk backend needs at least one channel");
    if (config_.path.empty())
        PSORAM_FATAL("paged disk backend needs a backing file path");
    if (config_.cache_pages == 0)
        config_.cache_pages = 1;
    channels_.reserve(num_channels);
    for (unsigned i = 0; i < num_channels; ++i)
        channels_.emplace_back(params, banks_per_channel);

    fd_ = ::open(config_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        PSORAM_FATAL("cannot open disk tree '", config_.path,
                     "': ", std::strerror(errno));

    const off_t size = ::lseek(fd_, 0, SEEK_END);
    std::uint8_t header[kHeaderBytes] = {};
    if (size >= static_cast<off_t>(sizeof(DiskHeader))) {
        bool eof = false;
        preadFully(header, sizeof(DiskHeader), 0, eof);
        if (unpackU64(header) != kHeaderMagic ||
            unpackU64(header + 16) != kPageBytes ||
            unpackU64(header + 24) != kRecordBytes)
            PSORAM_FATAL("'", config_.path,
                         "' is not a paged disk tree (bad header)");
        if (unpackU64(header + 8) != capacity_)
            PSORAM_FATAL("disk tree '", config_.path, "' capacity ",
                         unpackU64(header + 8),
                         " does not match configured ", capacity_);
    } else {
        packU64(header, kHeaderMagic);
        packU64(header + 8, capacity_);
        packU64(header + 16, kPageBytes);
        packU64(header + 24, kRecordBytes);
        pwriteFully(header, kHeaderBytes, 0);
        fsyncFile();
    }
}

PagedDiskBackend::~PagedDiskBackend()
{
    if (fd_ >= 0) {
        // Orderly shutdown persists the write-back cache; a simulated
        // crash goes through dropVolatile() instead and loses it.
        persistBarrier();
        ::close(fd_);
    }
}

void
PagedDiskBackend::preadFully(std::uint8_t *buf, std::size_t len,
                             std::uint64_t offset, bool &hit_eof) const
{
    hit_eof = false;
    std::size_t done = 0;
    while (done < len) {
        const ssize_t got =
            ::pread(fd_, buf + done, len - done,
                    static_cast<off_t>(offset + done));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            PSORAM_FATAL("pread(", config_.path,
                         ") failed: ", std::strerror(errno));
        }
        if (got == 0) {
            // Sparse tail: pages past EOF read as zero.
            std::memset(buf + done, 0, len - done);
            hit_eof = true;
            return;
        }
        done += static_cast<std::size_t>(got);
    }
}

void
PagedDiskBackend::pwriteFully(const std::uint8_t *buf, std::size_t len,
                              std::uint64_t offset) const
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t put =
            ::pwrite(fd_, buf + done, len - done,
                     static_cast<off_t>(offset + done));
        if (put < 0) {
            if (errno == EINTR)
                continue;
            PSORAM_FATAL("pwrite(", config_.path,
                         ") failed: ", std::strerror(errno));
        }
        done += static_cast<std::size_t>(put);
    }
}

void
PagedDiskBackend::fsyncFile() const
{
    if (::fsync(fd_) != 0)
        PSORAM_FATAL("fsync(", config_.path,
                     ") failed: ", std::strerror(errno));
    ++stats_.fsyncs;
}

void
PagedDiskBackend::loadPage(std::uint64_t page, std::uint8_t *out) const
{
    std::uint8_t record[kRecordBytes] = {};
    bool eof = false;
    preadFully(record, kRecordBytes,
               kHeaderBytes + page * kRecordBytes, eof);
    ++stats_.preads;

    const std::uint8_t *trailer = record + kPageBytes;
    PageTrailer t;
    t.magic = unpackU64(trailer);
    t.page_index = unpackU64(trailer + 8);
    t.crc = unpackU32(trailer + 16);

    if (t.magic == 0) {
        // Never-written page (sparse hole / short file): zero-fill. A
        // *torn* first write of a page also lands here (payload bytes
        // without a trailer) — the payload is still delivered so ADR
        // redelivery can heal the lines it covers.
        const bool has_payload = [&] {
            for (std::size_t i = 0; i < kPageBytes; ++i)
                if (record[i] != 0)
                    return true;
            return false;
        }();
        if (has_payload) {
            ++stats_.torn_pages_detected;
            warn("disk tree '", config_.path, "' page ", page,
                 " has payload but no trailer (torn first write)");
            if (config_.strict_torn)
                PSORAM_FATAL("torn page ", page, " in '", config_.path,
                             "' (strict mode)");
        }
        std::memcpy(out, record, kPageBytes);
        return;
    }

    const bool bad = t.magic != kPageMagic || t.page_index != page ||
                     t.crc != crc32(record, kPageBytes);
    if (bad) {
        ++stats_.torn_pages_detected;
        warn("disk tree '", config_.path, "' page ", page,
             " failed trailer verification (torn/misdirected write)");
        if (config_.strict_torn)
            PSORAM_FATAL("torn page ", page, " in '", config_.path,
                         "' (strict mode)");
    }
    std::memcpy(out, record, kPageBytes);
}

void
PagedDiskBackend::storePage(std::uint64_t page, const std::uint8_t *bytes,
                            bool tearable, bool noisy)
{
    std::uint8_t record[kRecordBytes];
    std::memcpy(record, bytes, kPageBytes);
    std::uint8_t *trailer = record + kPageBytes;
    std::memset(trailer, 0, kTrailerBytes);
    packU64(trailer, kPageMagic);
    packU64(trailer + 8, page);
    packU32(trailer + 16, crc32(record, kPageBytes));

    const std::uint64_t offset = kHeaderBytes + page * kRecordBytes;
    FaultInjector *injector = noisy ? fault_injector_ : nullptr;
    if (injector && tearable) {
        // Torn-page crash point: half the payload lands, then the
        // boundary may abort before the rest and the fresh trailer do —
        // leaving on-disk bytes that no longer match the stored CRC.
        constexpr std::size_t kHalf = kPageBytes / 2;
        pwriteFully(record, kHalf, offset);
        ++stats_.pwrites;
        injector->boundary(PersistBoundary::PageWrite);
        pwriteFully(record + kHalf, kRecordBytes - kHalf,
                    offset + kHalf);
        ++stats_.pwrites;
    } else {
        // Atomic-old semantics outside a drain: the boundary aborts
        // before any byte of the page changes.
        if (injector)
            injector->boundary(PersistBoundary::PageWrite);
        pwriteFully(record, kRecordBytes, offset);
        ++stats_.pwrites;
    }
    ++stats_.pages_flushed;
}

PagedDiskBackend::Frame &
PagedDiskBackend::frameFor(std::uint64_t page) const
{
    const auto it = frames_.find(page);
    if (it != frames_.end()) {
        ++stats_.cache_hits;
        Frame &frame = it->second;
        if (!frame.pinned) {
            lru_.splice(lru_.end(), lru_, frame.lru_pos);
            frame.lru_pos = std::prev(lru_.end());
        }
        return frame;
    }

    ++stats_.cache_misses;
    Frame frame;
    frame.bytes.resize(kPageBytes);
    loadPage(page, frame.bytes.data());
    frame.pinned = page < config_.pinned_pages;
    auto [pos, inserted] = frames_.emplace(page, std::move(frame));
    Frame &resident = pos->second;
    if (!resident.pinned) {
        lru_.push_back(page);
        resident.lru_pos = std::prev(lru_.end());
        ++unpinned_resident_;
        enforceCapacity();
    }
    return resident;
}

void
PagedDiskBackend::enforceCapacity() const
{
    while (unpinned_resident_ > config_.cache_pages && !lru_.empty()) {
        const std::uint64_t victim = lru_.front();
        auto it = frames_.find(victim);
        if (it == frames_.end())
            PSORAM_PANIC("page cache LRU desync on page ", victim);
        if (it->second.dirty)
            flushFrameQuiet(victim, it->second);
        lru_.pop_front();
        frames_.erase(it);
        --unpinned_resident_;
        ++stats_.cache_evictions;
    }
}

void
PagedDiskBackend::flushFrameQuiet(std::uint64_t page, Frame &frame) const
{
    // Quiet write-back (eviction / barrier): whole-record pwrite, no
    // persist boundary — this path runs under reader locks and on the
    // background retire thread, where the single-threaded injector
    // must never be touched.
    auto *self = const_cast<PagedDiskBackend *>(this);
    self->storePage(page, frame.bytes.data(), /*tearable=*/false,
                    /*noisy=*/false);
    frame.dirty = false;
}

void
PagedDiskBackend::readBytes(Addr addr, std::uint8_t *out,
                            std::size_t len) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.scalar_reads;
    if (addr > capacity_ || len > capacity_ - addr)
        PSORAM_PANIC("disk read past capacity: addr=", addr,
                     " len=", len);
    std::size_t off = 0;
    while (off < len) {
        const Addr cur = addr + off;
        const std::size_t in_page =
            static_cast<std::size_t>(cur % kPageBytes);
        const std::size_t chunk =
            std::min(len - off, kPageBytes - in_page);
        const Frame &frame = frameFor(cur / kPageBytes);
        std::memcpy(out + off, frame.bytes.data() + in_page, chunk);
        off += chunk;
    }
}

void
PagedDiskBackend::readv(const ReadSpan *spans, std::size_t n) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.readv_calls;
    stats_.spans_read += n;
    for (std::size_t i = 0; i < n; ++i) {
        const ReadSpan &span = spans[i];
        if (span.addr > capacity_ || span.len > capacity_ - span.addr)
            PSORAM_PANIC("disk readv past capacity: addr=", span.addr,
                         " len=", span.len);
        std::size_t off = 0;
        while (off < span.len) {
            const Addr cur = span.addr + off;
            const std::size_t in_page =
                static_cast<std::size_t>(cur % kPageBytes);
            const std::size_t chunk =
                std::min(span.len - off, kPageBytes - in_page);
            const Frame &frame = frameFor(cur / kPageBytes);
            std::memcpy(span.data + off, frame.bytes.data() + in_page,
                        chunk);
            off += chunk;
        }
    }
}

void
PagedDiskBackend::applySpan(Addr addr, const std::uint8_t *in,
                            std::size_t len,
                            std::vector<std::uint64_t> &touched)
{
    if (addr > capacity_ || len > capacity_ - addr)
        PSORAM_PANIC("disk write past capacity: addr=", addr,
                     " len=", len);
    std::size_t off = 0;
    while (off < len) {
        const Addr cur = addr + off;
        const std::size_t in_page =
            static_cast<std::size_t>(cur % kPageBytes);
        const std::size_t chunk =
            std::min(len - off, kPageBytes - in_page);
        Frame &frame = frameFor(cur / kPageBytes);
        std::memcpy(frame.bytes.data() + in_page, in + off, chunk);
        frame.dirty = true;
        touched.push_back(cur / kPageBytes);
        off += chunk;
    }
}

void
PagedDiskBackend::writevLocked(const WriteSpan *spans, std::size_t n,
                               bool noisy)
{
    // Stage 1: land every span in the page cache. Noisy spans report
    // their DrainWrite/DirectWrite boundary *before* applying, exactly
    // like NvmDevice — a fault here leaves this span (and the rest of
    // the batch) unapplied, and earlier spans dirty-but-unflushed,
    // which dropVolatile() then discards: nothing of this call is
    // durable. The callers that batch multiple noisy spans are the WPQ
    // drain (ADR redelivers the whole round) and the non-persistent
    // direct eviction (no durability claim), so the all-or-nothing
    // visibility is sound.
    std::vector<std::uint64_t> touched;
    touched.reserve(n);
    const bool in_drain =
        fault_injector_ != nullptr && fault_injector_->inDrain();
    for (std::size_t i = 0; i < n; ++i) {
        if (noisy && fault_injector_)
            fault_injector_->boundary(in_drain
                                          ? PersistBoundary::DrainWrite
                                          : PersistBoundary::DirectWrite);
        applySpan(spans[i].addr, spans[i].data, spans[i].len, touched);
    }
    if (!noisy)
        return;

    // Stage 2 (noisy only — write-through): flush each touched page
    // once, then fsync. Inside a drain the page flush is tearable (the
    // PageWrite boundary fires mid-pwrite); outside, atomic-old.
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (const std::uint64_t page : touched) {
        const auto it = frames_.find(page);
        if (it == frames_.end() || !it->second.dirty)
            continue; // evicted meanwhile: the eviction flushed it
        storePage(page, it->second.bytes.data(), /*tearable=*/in_drain,
                  /*noisy=*/true);
        it->second.dirty = false;
    }
    if (config_.fsync_noisy) {
        if (fault_injector_)
            fault_injector_->boundary(PersistBoundary::Sync);
        fsyncFile();
    }
}

void
PagedDiskBackend::writeBytes(Addr addr, const std::uint8_t *in,
                             std::size_t len)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.scalar_writes;
    const WriteSpan span{addr, in, len};
    writevLocked(&span, 1, /*noisy=*/true);
}

void
PagedDiskBackend::writeBytesQuiet(Addr addr, const std::uint8_t *in,
                                  std::size_t len)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.scalar_writes;
    const WriteSpan span{addr, in, len};
    writevLocked(&span, 1, /*noisy=*/false);
}

void
PagedDiskBackend::writev(const WriteSpan *spans, std::size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writev_calls;
    stats_.spans_written += n;
    writevLocked(spans, n, /*noisy=*/true);
}

void
PagedDiskBackend::writevQuiet(const WriteSpan *spans, std::size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.writev_quiet_calls;
    stats_.spans_written += n;
    writevLocked(spans, n, /*noisy=*/false);
}

void
PagedDiskBackend::persistBarrier()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[page, frame] : frames_)
        if (frame.dirty)
            flushFrameQuiet(page, frame);
    fsyncFile();
}

void
PagedDiskBackend::dropVolatile()
{
    std::lock_guard<std::mutex> lock(mutex_);
    frames_.clear();
    lru_.clear();
    unpinned_resident_ = 0;
}

Cycle
PagedDiskBackend::access(Addr addr, std::size_t len, bool is_write,
                         Cycle earliest)
{
    const Addr first_line = addr / kBlockDataBytes;
    const Addr last_line = (addr + len - 1) / kBlockDataBytes;
    Cycle done = earliest;
    for (Addr line = first_line; line <= last_line; ++line) {
        unsigned channel, bank;
        decode(line, channel, bank);
        done = std::max(done, channels_[channel].access(bank, earliest,
                                                        is_write));
    }
    return done;
}

Cycle
PagedDiskBackend::accessOne(Addr addr, bool is_write, Cycle earliest)
{
    unsigned channel, bank;
    decode(addr / kBlockDataBytes, channel, bank);
    return channels_[channel].access(bank, earliest, is_write);
}

void
PagedDiskBackend::decode(Addr line_addr, unsigned &channel,
                         unsigned &bank) const
{
    constexpr Addr kLinesPerRow = 64; // 4 KiB rows, as NvmDevice
    channel = static_cast<unsigned>((line_addr / kLinesPerRow) %
                                    channels_.size());
    bank = static_cast<unsigned>(line_addr %
                                 channels_[channel].numBanks());
}

std::uint64_t
PagedDiskBackend::totalReads() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.readCount();
    return total;
}

std::uint64_t
PagedDiskBackend::totalWrites() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel.writeCount();
    return total;
}

void
PagedDiskBackend::resetStats()
{
    for (auto &channel : channels_)
        channel.resetStats();
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = IoStats{};
}

MemoryImage
PagedDiskBackend::image() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    static const NvmLine kZeroLine{};
    MemoryImage img;
    std::vector<std::uint8_t> page_buf(kPageBytes);
    for (std::uint64_t p = 0; p < num_pages_; ++p) {
        const std::uint8_t *bytes;
        const auto it = frames_.find(p);
        if (it != frames_.end()) {
            bytes = it->second.bytes.data();
        } else {
            loadPage(p, page_buf.data());
            bytes = page_buf.data();
        }
        for (std::size_t l = 0; l < kLinesPerPage; ++l) {
            const std::uint8_t *src = bytes + l * kBlockDataBytes;
            if (std::memcmp(src, kZeroLine.data(), kBlockDataBytes) == 0)
                continue;
            NvmLine line;
            std::memcpy(line.data(), src, kBlockDataBytes);
            img.emplace(static_cast<Addr>(p) * kLinesPerPage + l, line);
        }
    }
    return img;
}

void
PagedDiskBackend::restoreImage(const MemoryImage &img)
{
    std::lock_guard<std::mutex> lock(mutex_);
    frames_.clear();
    lru_.clear();
    unpinned_resident_ = 0;
    if (::ftruncate(fd_, static_cast<off_t>(kHeaderBytes)) != 0)
        PSORAM_FATAL("ftruncate(", config_.path,
                     ") failed: ", std::strerror(errno));

    // Group the sparse line map into pages, then store each page with
    // a fresh trailer (no boundaries: restore runs under suspension).
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages;
    for (const auto &[line, data] : img) {
        const std::uint64_t page = line / kLinesPerPage;
        if (page >= num_pages_)
            PSORAM_FATAL("image line ", line, " beyond disk capacity ",
                         capacity_);
        auto &bytes = pages[page];
        if (bytes.empty())
            bytes.resize(kPageBytes, 0);
        std::memcpy(bytes.data() +
                        (line % kLinesPerPage) * kBlockDataBytes,
                    data.data(), kBlockDataBytes);
    }
    for (const auto &[page, bytes] : pages)
        storePage(page, bytes.data(), /*tearable=*/false,
                  /*noisy=*/false);
    fsyncFile();
}

PagedDiskBackend::IoStats
PagedDiskBackend::ioStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::uint64_t
PagedDiskBackend::tornPagesDetected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_.torn_pages_detected;
}

std::size_t
PagedDiskBackend::residentPages() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return frames_.size();
}

} // namespace psoram
