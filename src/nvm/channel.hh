/**
 * @file
 * NVM channel: a set of banks sharing one data bus.
 *
 * The channel serializes burst transfers on the bus (tBURST per 64-byte
 * line) and dispatches array timing to the addressed bank. This captures
 * the two first-order constraints of ORAM path accesses: bus bandwidth
 * (reads) and bank write occupancy (evictions).
 */

#ifndef PSORAM_NVM_CHANNEL_HH
#define PSORAM_NVM_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "nvm/bank.hh"
#include "nvm/timing.hh"

namespace psoram {

class Channel
{
  public:
    Channel(const NvmTimingParams &params, unsigned num_banks);

    /**
     * Schedule one 64-byte access.
     *
     * @param bank index of the addressed bank (caller decodes addresses)
     * @param earliest arrival cycle of the request at the channel
     * @param is_write operation direction
     * @return completion cycle of the data transfer
     */
    Cycle access(unsigned bank, Cycle earliest, bool is_write);

    unsigned numBanks() const
    {
        return static_cast<unsigned>(banks_.size());
    }

    std::uint64_t readCount() const { return reads_.value(); }
    std::uint64_t writeCount() const { return writes_.value(); }

    /** Cycle at which the data bus is next free. */
    Cycle busFreeAt() const { return bus_free_; }

    void resetStats();

  private:
    NvmTimingParams params_;
    std::vector<Bank> banks_;
    Cycle bus_free_ = 0;
    Counter reads_;
    Counter writes_;
};

} // namespace psoram

#endif // PSORAM_NVM_CHANNEL_HH
