/**
 * @file
 * NVM main-memory device: functional byte store + channel/bank timing.
 *
 * The device plays the role NVMain 2.0 plays for the paper: it holds the
 * persistent contents of the ORAM tree and PosMap region, schedules
 * accesses through per-channel bank models, and counts read/write traffic
 * and per-line wear (NVM lifetime).
 *
 * The functional store is a demand-allocated page table: 4 KiB pages in a
 * flat vector indexed directly by address (the device capacity is fixed at
 * construction), each page carrying its 64 lines of contiguous bytes plus
 * per-line wear counters. Pages that were never written read as zero. A
 * slot-sized read or write inside one page is a single memcpy with no
 * hashing — this store sits under every bucket of every path access, and
 * the per-line hash-map layout it replaces dominated the access-loop
 * profile (~60% of host time between lookups, rehashes and wear updates).
 */

#ifndef PSORAM_NVM_DEVICE_HH
#define PSORAM_NVM_DEVICE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"
#include "nvm/channel.hh"
#include "nvm/timing.hh"

namespace psoram {

class NvmDevice : public MemoryBackend
{
  public:
    /**
     * @param params device timing preset (PCM or STT-RAM)
     * @param num_channels independent channels (Fig. 7 sweeps 1/2/4)
     * @param banks_per_channel banks sharing each channel bus
     * @param capacity_bytes addressable capacity (bounds checking only)
     */
    NvmDevice(const NvmTimingParams &params, unsigned num_channels,
              unsigned banks_per_channel, std::uint64_t capacity_bytes);

    /** @{ Functional access (no timing). Reads of unwritten lines are 0. */
    void readBytes(Addr addr, std::uint8_t *out,
                   std::size_t len) const override;
    void writeBytes(Addr addr, const std::uint8_t *in,
                    std::size_t len) override;
    /** Write without reporting a persist boundary (see MemoryBackend). */
    void writeBytesQuiet(Addr addr, const std::uint8_t *in,
                         std::size_t len) override;
    /** @} */

    /**
     * Timing-only access: schedule @p len bytes starting at @p addr as
     * 64-byte line transfers across the channels.
     *
     * @param earliest cycle the request arrives at the memory controller
     * @return completion cycle of the last line transfer
     */
    Cycle access(Addr addr, std::size_t len, bool is_write,
                 Cycle earliest) override;

    /**
     * Timing-only access of exactly one transaction (one burst) at the
     * line containing @p addr. ORAM block slots are a little larger than
     * a cache line (data + header + IV); the paper counts each block as
     * one read/write, which this models.
     */
    Cycle accessOne(Addr addr, bool is_write, Cycle earliest) override;

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }
    std::uint64_t capacity() const override { return capacity_; }
    const NvmTimingParams &timings() const { return params_; }

    /** @{ Aggregate traffic statistics across all channels. */
    std::uint64_t totalReads() const override;
    std::uint64_t totalWrites() const override;
    /** @} */

    /** @{ Wear statistics (NVM lifetime proxy). */
    std::uint64_t distinctLinesWritten() const override
    {
        return distinct_lines_written_;
    }
    std::uint64_t maxLineWrites() const override
    {
        return max_line_writes_;
    }
    double meanLineWrites() const override;
    /** @} */

    void resetStats() override;

    /** Crash snapshot/restore (see MemoryBackend). */
    using Image = MemoryImage;
    Image image() const override;
    void restoreImage(const Image &img) override;

    /** @{ Functional-store page geometry. */
    static constexpr std::size_t kPageBytes = 4096;
    static constexpr std::size_t kLinesPerPage =
        kPageBytes / kBlockDataBytes;
    /** @} */

  private:
    /** One 4 KiB page: contiguous line bytes plus per-line wear. */
    struct NvmPage
    {
        std::array<std::uint8_t, kPageBytes> bytes{};
        std::array<std::uint32_t, kLinesPerPage> wear{};
    };

    /** Decode a line address into (channel, bank). */
    void decode(Addr line_addr, unsigned &channel, unsigned &bank) const;

    NvmTimingParams params_;
    std::uint64_t capacity_;
    std::vector<Channel> channels_;
    /** Page table: index = byte address / kPageBytes; null = all-zero. */
    std::vector<std::unique_ptr<NvmPage>> pages_;

    std::uint64_t distinct_lines_written_ = 0;
    std::uint64_t total_line_writes_ = 0;
    std::uint64_t max_line_writes_ = 0;
};

} // namespace psoram

#endif // PSORAM_NVM_DEVICE_HH
