/**
 * @file
 * Deterministic fault injection at NVM persist boundaries.
 *
 * A *persist boundary* is a point in execution where the durable NVM
 * state is about to change: a WPQ round opening ("start" signal), a WPQ
 * round committing ("end" signal — the ADR durability point), an
 * individual entry draining out of a committed round, a direct
 * (non-WPQ) functional write, or a file-backed image checkpoint. The
 * injector counts every boundary it passes; when armed at boundary k it
 * throws InjectedFault the moment the k-th boundary is reached — i.e.
 * *before* that boundary's durable effect applies.
 *
 * Because the simulator is deterministic for a fixed seed and trace,
 * the boundary sequence is reproducible: a probe run counts the total
 * boundary population B, and replaying the same trace armed at each
 * k in [1, B] crashes the system at every distinct persist point it
 * ever crosses. The crash-point enumerator (sim/crash_enumerator) and
 * the torture harness (tests/torture_crash) are built on exactly that.
 *
 * ADR semantics are preserved under injection: a fault thrown mid-drain
 * leaves the committed entries in their queue, and the subsequent
 * power-failure flush still writes them — a committed round reaches the
 * NVM no matter where inside the drain the fault lands.
 */

#ifndef PSORAM_NVM_FAULT_INJECTOR_HH
#define PSORAM_NVM_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace psoram {

/** The kinds of persist boundary the injector distinguishes. */
enum class PersistBoundary
{
    /** ADR bracket opened ("start" signal, both WPQs). */
    RoundStart,
    /** ADR bracket committed ("end" signal — the durability point). */
    RoundCommit,
    /** One committed WPQ entry reaching the NVM during a drain. */
    DrainWrite,
    /** A functional write outside any WPQ drain (non-persistent
     *  designs' eviction writes, recovery-era region writes). */
    DirectWrite,
    /** FileBackedNvm image checkpoint (cross-process persistence). */
    ImagePersist,
    /** PagedDiskBackend flushing one dirty page to the file. Inside a
     *  WPQ drain the boundary fires *mid-page* — after the first half
     *  of the pwrite, before the rest and the checksum trailer — so the
     *  enumerator exercises genuinely torn pages on the medium. */
    PageWrite,
    /** PagedDiskBackend fsync: the file-durability point that makes
     *  all preceding page writes survive an OS/power crash. */
    Sync,
};

inline constexpr std::size_t kNumPersistBoundaryKinds = 7;

const char *persistBoundaryName(PersistBoundary kind);

/** Thrown when the armed boundary index is reached. */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(PersistBoundary kind, std::uint64_t boundary_index)
        : std::runtime_error(
              "injected fault at persist boundary #" +
              std::to_string(boundary_index) + " (" +
              persistBoundaryName(kind) + ")"),
          kind_(kind), boundary_index_(boundary_index)
    {
    }

    PersistBoundary kind() const { return kind_; }
    std::uint64_t boundaryIndex() const { return boundary_index_; }

  private:
    PersistBoundary kind_;
    std::uint64_t boundary_index_;
};

class FaultInjector
{
  public:
    /**
     * Count a boundary crossing; throws InjectedFault exactly once when
     * the armed index is reached. Suspended injectors neither count nor
     * throw (recovery code runs under a suspension scope so its flush
     * writes don't perturb the deterministic boundary numbering).
     */
    void
    boundary(PersistBoundary kind)
    {
        if (suspended_ != 0)
            return;
        ++count_;
        ++kind_counts_[static_cast<std::size_t>(kind)];
        if (observer_)
            observer_(kind, count_);
        if (armed_ && count_ == target_) {
            armed_ = false;
            fired_ = true;
            fired_kind_ = kind;
            fired_index_ = count_;
            throw InjectedFault(kind, count_);
        }
    }

    /** Arm the injector to fault at the @p boundary_index-th boundary
     *  (1-based) counted from the last reset(). */
    void
    armAt(std::uint64_t boundary_index)
    {
        armed_ = true;
        target_ = boundary_index;
    }

    void disarm() { armed_ = false; }

    /** Counter back to zero, disarmed, nothing fired. */
    void
    reset()
    {
        count_ = 0;
        armed_ = false;
        fired_ = false;
        target_ = 0;
        suspended_ = 0;
        kind_counts_.fill(0);
    }

    std::uint64_t boundariesSeen() const { return count_; }
    bool armed() const { return armed_; }
    bool fired() const { return fired_; }
    PersistBoundary firedKind() const { return fired_kind_; }
    std::uint64_t firedIndex() const { return fired_index_; }

    /** Boundaries seen per kind since the last reset(). */
    std::uint64_t
    kindCount(PersistBoundary kind) const
    {
        return kind_counts_[static_cast<std::size_t>(kind)];
    }

    /**
     * Boundary observer: called for every counted boundary, after the
     * count advances and *before* an armed fault throws — so an
     * observer armed at the same index as the fault mutates durable
     * state at exactly the crash point. The tamper-injection framework
     * (sim/tamper_injector.hh) is the intended client. Survives
     * reset(); pass an empty function to detach.
     */
    using Observer =
        std::function<void(PersistBoundary, std::uint64_t)>;

    void setObserver(Observer observer)
    {
        observer_ = std::move(observer);
    }

    /** @{ Drain bracket: writes issued inside count as DrainWrite. */
    bool inDrain() const { return drain_depth_ != 0; }

    class ScopedDrain
    {
      public:
        explicit ScopedDrain(FaultInjector *injector) : injector_(injector)
        {
            if (injector_)
                ++injector_->drain_depth_;
        }
        ~ScopedDrain()
        {
            if (injector_)
                --injector_->drain_depth_;
        }
        ScopedDrain(const ScopedDrain &) = delete;
        ScopedDrain &operator=(const ScopedDrain &) = delete;

      private:
        FaultInjector *injector_;
    };
    /** @} */

    /** @{ Suspension (recovery code): boundaries pass uncounted. */
    class ScopedSuspend
    {
      public:
        explicit ScopedSuspend(FaultInjector *injector)
            : injector_(injector)
        {
            if (injector_)
                ++injector_->suspended_;
        }
        ~ScopedSuspend()
        {
            if (injector_)
                --injector_->suspended_;
        }
        ScopedSuspend(const ScopedSuspend &) = delete;
        ScopedSuspend &operator=(const ScopedSuspend &) = delete;

      private:
        FaultInjector *injector_;
    };
    /** @} */

  private:
    std::uint64_t count_ = 0;
    std::uint64_t target_ = 0;
    bool armed_ = false;
    bool fired_ = false;
    PersistBoundary fired_kind_ = PersistBoundary::RoundCommit;
    std::uint64_t fired_index_ = 0;
    unsigned drain_depth_ = 0;
    unsigned suspended_ = 0;
    Observer observer_;
    std::array<std::uint64_t, kNumPersistBoundaryKinds> kind_counts_{};
};

} // namespace psoram

#endif // PSORAM_NVM_FAULT_INJECTOR_HH
