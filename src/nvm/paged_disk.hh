/**
 * @file
 * PagedDiskBackend: out-of-core storage backend — the ORAM tree lives
 * in a real file, fronted by a bounded RAM page cache.
 *
 * Where NvmDevice models byte-addressable NVM (the whole store is
 * durable by definition), this backend models the tiered-storage
 * deployment the ROADMAP targets: a tree far larger than RAM, served
 * from disk through pread/pwrite with an explicit fsync durability
 * point. The file layout is page-aligned and level-ordered — the
 * address space is the same level-order slot layout data_layout uses,
 * so low addresses are the top of the tree: pinning the first
 * `pinned_pages` pages of the file keeps the hottest O(log N) levels
 * permanently resident (FEDORA's layout observation), and the buckets
 * of one path occupy at most height+1 distinct pages.
 *
 * Each on-disk page record carries a 64-byte trailer (magic, page
 * index, CRC32 of the payload). The trailer is what makes *torn pages*
 * detectable: a crash between the two halves of a page pwrite leaves
 * payload bytes that no longer match the stored CRC, which recovery
 * observes when the page is next loaded. Torn lines are healed by the
 * ADR redelivery argument — every line a torn in-drain page could have
 * corrupted is still sitting in the committed WPQ round that the
 * power-failure flush rewrites — so detection is counted (and can be
 * made fatal via `strict_torn`) rather than failing the load.
 *
 * Durability model at the seam:
 *   - noisy writes (writeBytes/writev — the protocol's enumerable
 *     persist points) are write-through: each span reports its
 *     DrainWrite/DirectWrite boundary exactly like NvmDevice, the
 *     touched pages flush with a PageWrite boundary each (fired
 *     mid-pwrite inside a WPQ drain — the torn-page crash point), and
 *     the call ends with a Sync boundary + fsync;
 *   - quiet writes (committed-round retirement) are write-back: they
 *     dirty cached pages and reach the file on eviction, on
 *     persistBarrier() (the retire batch's durability point) or at
 *     destruction;
 *   - dropVolatile() discards the whole cache un-flushed — the crash
 *     framework's model of losing RAM — so post-crash reads observe
 *     only what pwrite actually landed.
 *
 * Thread safety: functional ops and the cache are guarded by one
 * internal mutex (pipelined fetch threads read concurrently with the
 * retire thread). The timing model (access/accessOne) keeps NvmDevice's
 * drive-thread-only contract.
 */

#ifndef PSORAM_NVM_PAGED_DISK_HH
#define PSORAM_NVM_PAGED_DISK_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "mem/backend.hh"
#include "nvm/channel.hh"
#include "nvm/timing.hh"

namespace psoram {

struct PagedDiskConfig
{
    /** Backing file path (created if absent). */
    std::string path;
    /** RAM page-cache capacity in *unpinned* 4 KiB pages. */
    std::size_t cache_pages = 1024;
    /** Lowest-addressed pages (top tree levels + metadata head) held
     *  resident for the backend's lifetime, outside the cache budget. */
    std::size_t pinned_pages = 64;
    /** fsync after every noisy write call (the protocol durability
     *  points). persistBarrier() always fsyncs regardless. */
    bool fsync_noisy = true;
    /** Fail hard (PSORAM_FATAL) when a torn/corrupt page is loaded
     *  instead of counting it and trusting ADR redelivery. */
    bool strict_torn = false;
};

class PagedDiskBackend final : public MemoryBackend
{
  public:
    PagedDiskBackend(const NvmTimingParams &params, unsigned num_channels,
                     unsigned banks_per_channel,
                     std::uint64_t capacity_bytes, PagedDiskConfig config);
    ~PagedDiskBackend() override;

    PagedDiskBackend(const PagedDiskBackend &) = delete;
    PagedDiskBackend &operator=(const PagedDiskBackend &) = delete;

    /** @{ Functional access (thread-safe). */
    void readBytes(Addr addr, std::uint8_t *out,
                   std::size_t len) const override;
    void writeBytes(Addr addr, const std::uint8_t *in,
                    std::size_t len) override;
    void writeBytesQuiet(Addr addr, const std::uint8_t *in,
                         std::size_t len) override;
    using MemoryBackend::readv;
    using MemoryBackend::writev;
    using MemoryBackend::writevQuiet;
    void readv(const ReadSpan *spans, std::size_t n) const override;
    void writev(const WriteSpan *spans, std::size_t n) override;
    void writevQuiet(const WriteSpan *spans, std::size_t n) override;
    /** @} */

    /** Flush every dirty page and fsync (no persist boundaries —
     *  called from the background retirer). */
    void persistBarrier() override;

    /** Discard the page cache without flushing (crash model). */
    void dropVolatile() override;

    /** @{ Timing model: identical channel/bank scheduling to NvmDevice
     *  (the simulated cycle cost models the NVM-tier protocol; the
     *  disk tier's cost shows up as host time and IO counters). */
    Cycle access(Addr addr, std::size_t len, bool is_write,
                 Cycle earliest) override;
    Cycle accessOne(Addr addr, bool is_write, Cycle earliest) override;
    /** @} */

    std::uint64_t capacity() const override { return capacity_; }
    std::uint64_t totalReads() const override;
    std::uint64_t totalWrites() const override;

    /** Wear is an NVM-cell lifetime proxy; a disk tier has no
     *  per-line wear model, so these report zero. */
    std::uint64_t distinctLinesWritten() const override { return 0; }
    std::uint64_t maxLineWrites() const override { return 0; }
    double meanLineWrites() const override { return 0.0; }

    void resetStats() override;

    MemoryImage image() const override;
    void restoreImage(const MemoryImage &img) override;

    /** @{ On-disk geometry. */
    static constexpr std::size_t kPageBytes = 4096;
    static constexpr std::size_t kLinesPerPage =
        kPageBytes / kBlockDataBytes;
    static constexpr std::size_t kTrailerBytes = 64;
    static constexpr std::size_t kRecordBytes =
        kPageBytes + kTrailerBytes;
    static constexpr std::size_t kHeaderBytes = 4096;
    /** @} */

    /** @{ IO / cache observability (thread-safe). */
    struct IoStats
    {
        std::uint64_t readv_calls = 0;
        std::uint64_t writev_calls = 0;
        std::uint64_t writev_quiet_calls = 0;
        std::uint64_t scalar_reads = 0;
        std::uint64_t scalar_writes = 0;
        std::uint64_t spans_read = 0;
        std::uint64_t spans_written = 0;
        std::uint64_t preads = 0;
        std::uint64_t pwrites = 0;
        std::uint64_t fsyncs = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;
        std::uint64_t cache_evictions = 0;
        std::uint64_t pages_flushed = 0;
        std::uint64_t torn_pages_detected = 0;
    };
    IoStats ioStats() const;
    std::uint64_t tornPagesDetected() const;
    /** @} */

    std::uint64_t numPages() const { return num_pages_; }
    std::size_t residentPages() const;
    const PagedDiskConfig &config() const { return config_; }

    /** CRC32 (IEEE 802.3, reflected) — exposed for tests that forge
     *  or validate page trailers out-of-band. */
    static std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

  private:
    struct Frame
    {
        std::vector<std::uint8_t> bytes; // kPageBytes
        bool dirty = false;
        bool pinned = false;
        /** Position in lru_ (unpinned frames only). */
        std::list<std::uint64_t>::iterator lru_pos;
    };

    /** @{ File IO (no locking — callers hold mutex_). */
    void preadFully(std::uint8_t *buf, std::size_t len,
                    std::uint64_t offset, bool &hit_eof) const;
    void pwriteFully(const std::uint8_t *buf, std::size_t len,
                     std::uint64_t offset) const;
    void fsyncFile() const;
    /** @} */

    /** Load a page record from disk into @p out, verifying the
     *  trailer; counts torn pages. */
    void loadPage(std::uint64_t page, std::uint8_t *out) const;

    /** Write one page record (payload + fresh trailer). When
     *  @p tearable, the PageWrite boundary fires between the two
     *  halves of the payload pwrite (the torn-page crash point);
     *  otherwise it fires before any byte lands. Quiet flushes pass a
     *  null injector. */
    void storePage(std::uint64_t page, const std::uint8_t *bytes,
                   bool tearable, bool noisy);

    /** Get (load if absent) the frame for @p page, evicting if needed. */
    Frame &frameFor(std::uint64_t page) const;

    /** Evict LRU unpinned frames until the cache fits its budget. */
    void enforceCapacity() const;

    /** Flush one dirty frame quietly (eviction / barrier path). */
    void flushFrameQuiet(std::uint64_t page, Frame &frame) const;

    void applySpan(Addr addr, const std::uint8_t *in, std::size_t len,
                   std::vector<std::uint64_t> &touched);
    void writevLocked(const WriteSpan *spans, std::size_t n, bool noisy);

    void decode(Addr line_addr, unsigned &channel, unsigned &bank) const;

    NvmTimingParams params_;
    std::uint64_t capacity_;
    std::uint64_t num_pages_;
    PagedDiskConfig config_;
    std::vector<Channel> channels_;

    int fd_ = -1;

    mutable std::mutex mutex_;
    /** Page -> frame; pinned frames never leave, unpinned ones cycle
     *  through lru_ (front = coldest). */
    mutable std::unordered_map<std::uint64_t, Frame> frames_;
    mutable std::list<std::uint64_t> lru_;
    mutable std::size_t unpinned_resident_ = 0;

    mutable IoStats stats_;
};

} // namespace psoram

#endif // PSORAM_NVM_PAGED_DISK_HH
