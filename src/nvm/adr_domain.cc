#include "nvm/adr_domain.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace psoram {

AdrDomain::AdrDomain(std::size_t data_capacity, std::size_t posmap_capacity)
    : data_wpq_("data_wpq", data_capacity),
      posmap_wpq_("posmap_wpq", posmap_capacity)
{
}

void
AdrDomain::start()
{
    // Boundary *before* the signal takes effect: a fault here leaves
    // the previous round's durable state untouched.
    if (fault_injector_)
        fault_injector_->boundary(PersistBoundary::RoundStart);
    PSORAM_TRACE_INSTANT("nvm", "adr.round_start", 0);
    data_wpq_.start();
    posmap_wpq_.start();
}

void
AdrDomain::end()
{
    // The durability point: a fault raised before the commit drops the
    // whole open round (ADR discards uncommitted entries), a fault any
    // later still delivers it through crashFlush().
    if (fault_injector_)
        fault_injector_->boundary(PersistBoundary::RoundCommit);
    PSORAM_TRACE_INSTANT_ARG(
        "nvm", "adr.round_commit", 0, "entries",
        static_cast<std::int64_t>(data_wpq_.size() +
                                  posmap_wpq_.size()));
    bytes_persisted_ += data_wpq_.queuedBytes() +
                        posmap_wpq_.queuedBytes();
    data_wpq_.end();
    posmap_wpq_.end();
}

Cycle
AdrDomain::drain(MemoryBackend &device, Cycle earliest)
{
    // In-order persistence without coalescing (§4.2.3): the metadata
    // entries drain strictly after the data blocks of their round.
    const FaultInjector::ScopedDrain drain_scope(fault_injector_);
    const Cycle data_done = data_wpq_.drainTo(device, earliest);
    return posmap_wpq_.drainTo(device, data_done);
}

std::vector<WpqEntry>
AdrDomain::takeCommittedRound()
{
    std::vector<WpqEntry> round = data_wpq_.takeCommitted();
    std::vector<WpqEntry> posmap = posmap_wpq_.takeCommitted();
    round.reserve(round.size() + posmap.size());
    for (auto &entry : posmap)
        round.push_back(std::move(entry));
    return round;
}

std::size_t
AdrDomain::crashFlush(MemoryBackend &device)
{
    return data_wpq_.crashFlush(device) + posmap_wpq_.crashFlush(device);
}

} // namespace psoram
