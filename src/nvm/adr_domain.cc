#include "nvm/adr_domain.hh"

#include <algorithm>

namespace psoram {

AdrDomain::AdrDomain(std::size_t data_capacity, std::size_t posmap_capacity)
    : data_wpq_("data_wpq", data_capacity),
      posmap_wpq_("posmap_wpq", posmap_capacity)
{
}

void
AdrDomain::start()
{
    data_wpq_.start();
    posmap_wpq_.start();
}

void
AdrDomain::end()
{
    bytes_persisted_ += data_wpq_.queuedBytes() +
                        posmap_wpq_.queuedBytes();
    data_wpq_.end();
    posmap_wpq_.end();
}

Cycle
AdrDomain::drain(MemoryBackend &device, Cycle earliest)
{
    // In-order persistence without coalescing (§4.2.3): the metadata
    // entries drain strictly after the data blocks of their round.
    const Cycle data_done = data_wpq_.drainTo(device, earliest);
    return posmap_wpq_.drainTo(device, data_done);
}

std::size_t
AdrDomain::crashFlush(MemoryBackend &device)
{
    return data_wpq_.crashFlush(device) + posmap_wpq_.crashFlush(device);
}

} // namespace psoram
