/**
 * @file
 * ADR persistence domain: the pair of WPQs plus the drainer-facing
 * atomic start/end bracket spanning both queues.
 *
 * The paper's drainer issues one "start" and one "end" signal that control
 * *both* WPQs (data blocks and PosMap entries), which is what makes an
 * eviction round's data + metadata persistence atomic (§4.2.2 step 5-B).
 */

#ifndef PSORAM_NVM_ADR_DOMAIN_HH
#define PSORAM_NVM_ADR_DOMAIN_HH

#include <cstdint>

#include "common/stats.hh"
#include "nvm/fault_injector.hh"
#include "nvm/wpq.hh"

namespace psoram {

class AdrDomain
{
  public:
    /**
     * @param data_capacity entries in the data-block WPQ (96 or 4)
     * @param posmap_capacity entries in the PosMap WPQ (96 or 4)
     */
    AdrDomain(std::size_t data_capacity, std::size_t posmap_capacity);

    /** Open a round on both WPQs atomically ("start"). */
    void start();

    /** Commit both WPQs atomically ("end"). */
    void end();

    /** Drain both WPQs to @p device; returns last completion cycle. */
    Cycle drain(MemoryBackend &device, Cycle earliest);

    /**
     * Move the committed round out of both WPQs for asynchronous
     * retirement, data entries strictly before PosMap entries (the
     * §4.2.3 in-order persistence rule). The caller must apply the
     * entries to the device in the returned order. @pre round committed.
     */
    std::vector<WpqEntry> takeCommittedRound();

    /**
     * Power-failure flush: committed rounds persist, uncommitted rounds
     * are dropped — on both queues, consistently.
     *
     * @return entries that reached NVM
     */
    std::size_t crashFlush(MemoryBackend &device);

    Wpq &dataWpq() { return data_wpq_; }
    Wpq &posmapWpq() { return posmap_wpq_; }
    const Wpq &dataWpq() const { return data_wpq_; }
    const Wpq &posmapWpq() const { return posmap_wpq_; }

    /** Total bytes pushed through the domain (drain energy accounting). */
    std::uint64_t bytesPersisted() const { return bytes_persisted_; }
    void noteBytes(std::size_t n) { bytes_persisted_ += n; }

    /**
     * Report the start/end signals (and bracket the drains) of this
     * domain as persist boundaries on @p injector. The injector must be
     * the same instance the backing device reports its writes to, so
     * the boundary numbering is one global sequence.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        fault_injector_ = injector;
    }

  private:
    Wpq data_wpq_;
    Wpq posmap_wpq_;
    std::uint64_t bytes_persisted_ = 0;
    FaultInjector *fault_injector_ = nullptr;
};

} // namespace psoram

#endif // PSORAM_NVM_ADR_DOMAIN_HH
