/**
 * @file
 * Write-behind NVM decorator: retires committed WPQ rounds on a
 * background thread, deamortizing the drain cost that PR 5's phase
 * breakdown measured at 49 % of every access.
 *
 * Crash-consistency argument (DESIGN.md §12): a round handed to this
 * decorator is *committed* — under ADR it is durable the moment the
 * "end" signal lands, regardless of when its entries physically reach
 * the NVM cells. Retiring it later (or flushing it synchronously at
 * power failure) is therefore indistinguishable from the synchronous
 * drain, as long as
 *
 *   (1) rounds retire in commit order (a per-round sequence number and
 *       a FIFO queue enforce this — the ADR round-ordering invariant);
 *   (2) within a round, data entries retire strictly before PosMap
 *       entries (the queue preserves the order AdrDomain::
 *       takeCommittedRound produced);
 *   (3) readers observe their own queued writes (read-your-writes: a
 *       pending map shadows the inner device until retirement); and
 *   (4) any *direct* write (outside the WPQ bracket: shadow regions,
 *       recovery rewrites) orders after every queued round
 *       (writeBytes flushes the queue first).
 *
 * Retirement uses writeBytesQuiet, so the background thread never
 * touches the (single-threaded) fault injector: committed-round writes
 * are not enumerable crash points — a crash mid-retirement is
 * equivalent to a crash just before it, and both are recovered by the
 * power-failure flush.
 *
 * Because no crash point is enumerable *inside* a quiet retirement, the
 * intermediate device states it passes through are unobservable, and
 * the retirer is free to optimize the committed backlog the way a
 * hardware WPQ does:
 *
 *   - *Write coalescing*: an entry whose address was re-queued by a
 *     newer committed round is stale — its cells are about to be
 *     overwritten, readers already see the newer pending value, and a
 *     crash flushes the newer round too. Stale entries are skipped
 *     (wear savings the paper attributes to the WPQ absorbing
 *     rewrites; hot top-of-tree buckets benefit most).
 *   - *Write combining*: surviving entries at adjacent addresses (the
 *     slots of one bucket are contiguous) merge into one device
 *     transaction, amortizing the per-write bookkeeping.
 *   - *Batch retirement*: the retire thread sleeps until half the
 *     queue capacity has accumulated (or a flush / shutdown forces its
 *     hand), then swaps the entire backlog at once. Deep batches are
 *     what make the stale-skip pay off — a round's top-of-tree entries
 *     are re-queued within the next few rounds, so most of them only
 *     become skippable once many rounds retire together.
 */

#ifndef PSORAM_NVM_WRITE_BEHIND_HH
#define PSORAM_NVM_WRITE_BEHIND_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mem/backend.hh"
#include "nvm/wpq.hh"

namespace psoram {

class WriteBehindNvm : public MemoryBackend
{
  public:
    /**
     * @param inner the real device; must outlive this decorator
     * @param max_queued_rounds backpressure bound: submitRound blocks
     *        once this many rounds are waiting to retire
     */
    WriteBehindNvm(MemoryBackend &inner, std::size_t max_queued_rounds);

    /** Flushes the queue and joins the retire thread. */
    ~WriteBehindNvm() override;

    /**
     * Hand a committed round to the retire thread (drive thread only).
     * Entries must already be in persist order (data before PosMap).
     * Blocks while the queue is at max_queued_rounds.
     */
    void submitRound(std::vector<WpqEntry> entries);

    /** Block until every queued round has reached the inner device. */
    void flushQueued();

    /**
     * Functional reads see pending rounds (read-your-writes); reads of
     * addresses with no pending entry go to the inner device under a
     * shared lock, so they run concurrently with other readers.
     */
    void readBytes(Addr addr, std::uint8_t *out,
                   std::size_t len) const override;

    /**
     * Direct (non-WPQ) write: flushes every queued round first so the
     * inner device applies writes in program order, then writes through.
     */
    void writeBytes(Addr addr, const std::uint8_t *in,
                    std::size_t len) override;
    void writeBytesQuiet(Addr addr, const std::uint8_t *in,
                         std::size_t len) override;

    /**
     * @{ Vectored ops: one queue-lock pass resolves the whole span list
     * against the pending map (readv), and writes flush the queue once
     * then land as one inner vectored call. persistBarrier() and
     * dropVolatile() forward to the inner backend so a write-back
     * medium underneath this decorator keeps its durability contract.
     */
    using MemoryBackend::readv;
    using MemoryBackend::writev;
    using MemoryBackend::writevQuiet;
    void readv(const ReadSpan *spans, std::size_t n) const override;
    void writev(const WriteSpan *spans, std::size_t n) override;
    void writevQuiet(const WriteSpan *spans, std::size_t n) override;
    void persistBarrier() override;
    void dropVolatile() override;
    /** @} */

    /**
     * Side-region append (flight-recorder ring): takes only the device
     * lock — deliberately NO queue flush, so a black-box record on the
     * drive thread cannot force an early retirement and perturb the
     * write-behind batching it is there to observe.
     */
    void writevSide(const WriteSpan *spans, std::size_t n) override;

    /** @{ Timing model: forwarded unlocked (drive thread only). */
    Cycle access(Addr addr, std::size_t len, bool is_write,
                 Cycle earliest) override;
    Cycle accessOne(Addr addr, bool is_write, Cycle earliest) override;
    /** @} */

    std::uint64_t capacity() const override;
    std::uint64_t totalReads() const override;
    std::uint64_t totalWrites() const override;
    std::uint64_t distinctLinesWritten() const override;
    std::uint64_t maxLineWrites() const override;
    double meanLineWrites() const override;
    void resetStats() override;

    /** Image of the *durable* state: flushes queued rounds first. */
    MemoryImage image() const override;
    void restoreImage(const MemoryImage &img) override;

    /** Rounds retired by the background thread so far. */
    std::uint64_t roundsRetired() const;

    /** Stale entries skipped because a newer round re-queued them. */
    std::uint64_t writesCoalesced() const;

    /** Inner-device transactions issued by the retirer (post-merge). */
    std::uint64_t retireTransactions() const;

    MemoryBackend &inner() { return inner_; }

  private:
    /**
     * The newest queued value for an address. Points into the owning
     * Round's entry vector instead of copying the payload: rounds are
     * only destroyed after their surviving pending references are
     * erased (retireBatch does both under one lock hold), so the
     * pointer never dangles.
     */
    struct PendingWrite
    {
        const WpqEntry *entry;
        std::uint64_t seq; // round that queued this value
    };

    struct Round
    {
        std::vector<WpqEntry> entries;
        std::uint64_t seq;
    };

    void retireLoop();
    void retireBatch(std::deque<Round> &batch);
    void flushQueuedLocked(std::unique_lock<std::mutex> &lock);

    MemoryBackend &inner_;
    const std::size_t max_queued_rounds_;

    /**
     * queue_mutex_ guards the round queue, the pending map and the
     * counters below; device_mutex_ serializes writers against readers
     * of the inner device (readers share it). Lock order when both are
     * held: queue_mutex_ is never held across an inner-device
     * operation — the retire loop drops it while writing.
     */
    mutable std::mutex queue_mutex_;
    std::condition_variable rounds_cv_; // retire thread wakeup
    std::condition_variable space_cv_;  // submit/flush wakeup
    mutable std::shared_mutex device_mutex_;

    std::deque<Round> queue_;
    /** Exact-address pending values (protocol reads/writes align). */
    std::unordered_map<Addr, PendingWrite> pending_;
    bool retiring_ = false; // a batch is being applied right now
    bool stop_ = false;
    /** Retire wakes only once this many rounds queue up (or on flush /
     *  shutdown): deep batches are what make the stale-skip coalescing
     *  bite — the top-of-tree buckets a round rewrites are re-queued
     *  within the next few rounds, so a shallow batch retires them all
     *  while a deep one skips most of them. */
    std::size_t wake_threshold_;
    unsigned flush_waiters_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t rounds_retired_ = 0;
    std::uint64_t writes_coalesced_ = 0;
    std::uint64_t retire_transactions_ = 0;

    std::thread retire_thread_;
};

} // namespace psoram

#endif // PSORAM_NVM_WRITE_BEHIND_HH
