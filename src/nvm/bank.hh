/**
 * @file
 * Single NVM bank timing model.
 *
 * A bank serializes its own commands: a read occupies the array for
 * tRCD (+tCCD spacing); a write occupies it for tCWD + tBURST + tWP and
 * imposes tWTR before a following read. Row-buffer behaviour is modeled
 * closed-page (every access pays tRCD/tRP) — ORAM path accesses have no
 * row locality by construction, since consecutive buckets are spread
 * across banks.
 */

#ifndef PSORAM_NVM_BANK_HH
#define PSORAM_NVM_BANK_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "nvm/timing.hh"

namespace psoram {

class Bank
{
  public:
    explicit Bank(const NvmTimingParams &params);

    /**
     * Schedule one 64-byte access on this bank.
     *
     * @param earliest first cycle the command may issue (bus/arrival)
     * @param is_write true for a write, false for a read
     * @return cycle at which the data transfer completes (read: data
     *         available; write: data accepted — cell programming continues
     *         in the background and blocks later commands)
     */
    Cycle access(Cycle earliest, bool is_write);

    /** First cycle at which a new command could issue. */
    Cycle nextFree() const { return next_free_; }

    std::uint64_t readCount() const { return reads_.value(); }
    std::uint64_t writeCount() const { return writes_.value(); }

    void resetStats();

  private:
    NvmTimingParams params_;
    Cycle next_free_ = 0;
    bool last_was_write_ = false;
    Counter reads_;
    Counter writes_;
};

} // namespace psoram

#endif // PSORAM_NVM_BANK_HH
