/**
 * @file
 * File-backed NVM device: the channel/bank model of NvmDevice with the
 * functional image persisted to a disk file, so crash recovery can be
 * demonstrated across *process* restarts, not just controller rebuilds.
 *
 * The sparse image (64-byte lines keyed by line address) is serialized
 * as a flat record file. persist() writes atomically (temp file +
 * rename), modelling the ADR flush boundary: everything persisted
 * before the "crash" survives, everything after does not. The
 * destructor persists as a convenience for clean shutdowns.
 *
 * File format (little-endian, host byte order — the image is a local
 * simulation artifact, not an interchange format):
 *
 *   [0..7]   magic "PSNVM\0\0\1"
 *   [8..15]  line count N
 *   N records of { u64 line_address, 64 bytes line data }
 */

#ifndef PSORAM_NVM_FILE_BACKED_HH
#define PSORAM_NVM_FILE_BACKED_HH

#include <string>

#include "nvm/device.hh"

namespace psoram {

class FileBackedNvm : public NvmDevice
{
  public:
    /**
     * @param path backing file; loaded if it exists, created on the
     *             first persist() otherwise
     */
    FileBackedNvm(const NvmTimingParams &params, unsigned num_channels,
                  unsigned banks_per_channel, std::uint64_t capacity_bytes,
                  std::string path);

    /** Persists on clean shutdown (best effort; persist() to be sure). */
    ~FileBackedNvm() override;

    /**
     * Write the current image to the backing file (atomic replace).
     * @return false if the file could not be written
     */
    bool persist();

    /** Discard the backing file (test cleanup / reset). */
    void discardBackingFile();

    const std::string &path() const { return path_; }

    /** Lines restored from the backing file at construction. */
    std::uint64_t linesLoaded() const { return lines_loaded_; }

  private:
    void loadFromFile();

    std::string path_;
    std::uint64_t lines_loaded_ = 0;
    /** Set by discardBackingFile(); suppresses the destructor persist. */
    bool discarded_ = false;
};

} // namespace psoram

#endif // PSORAM_NVM_FILE_BACKED_HH
