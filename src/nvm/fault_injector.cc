#include "nvm/fault_injector.hh"

#include "common/log.hh"

namespace psoram {

const char *
persistBoundaryName(PersistBoundary kind)
{
    switch (kind) {
      case PersistBoundary::RoundStart:
        return "round-start";
      case PersistBoundary::RoundCommit:
        return "round-commit";
      case PersistBoundary::DrainWrite:
        return "drain-write";
      case PersistBoundary::DirectWrite:
        return "direct-write";
      case PersistBoundary::ImagePersist:
        return "image-persist";
      case PersistBoundary::PageWrite:
        return "page-write";
      case PersistBoundary::Sync:
        return "sync";
    }
    PSORAM_PANIC("unknown persist boundary kind");
}

} // namespace psoram
