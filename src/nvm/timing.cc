#include "nvm/timing.hh"

#include "common/log.hh"

namespace psoram {

std::string
nvmTechName(NvmTech tech)
{
    switch (tech) {
      case NvmTech::PCM:
        return "PCM";
      case NvmTech::STTRAM:
        return "STTRAM";
    }
    PSORAM_PANIC("unknown NvmTech");
}

NvmTimingParams
pcmTimings()
{
    // 64B over an 8-byte DDR bus: 8 beats = 4 clock edges pairs -> 4 cycles.
    return NvmTimingParams{48, 60, 4, 3, 1, 2, 4, 400};
}

NvmTimingParams
sttramTimings()
{
    return NvmTimingParams{14, 14, 10, 5, 1, 2, 4, 400};
}

NvmTimingParams
timingsFor(NvmTech tech)
{
    return tech == NvmTech::PCM ? pcmTimings() : sttramTimings();
}

} // namespace psoram
