#include "nvm/wpq.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/trace.hh"

namespace psoram {

Wpq::Wpq(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    if (capacity_ == 0)
        PSORAM_FATAL("WPQ '", name_, "' needs capacity >= 1");
}

void
Wpq::start()
{
    if (open_)
        PSORAM_PANIC("WPQ '", name_, "': start() while a round is open");
    if (!entries_.empty())
        PSORAM_PANIC("WPQ '", name_, "': start() with undrained entries");
    open_ = true;
    committed_ = false;
    ++rounds_;
}

bool
Wpq::push(WpqEntry entry)
{
    if (!open_)
        PSORAM_PANIC("WPQ '", name_, "': push() without start()");
    if (full())
        return false;
    entries_.push_back(std::move(entry));
    ++pushed_;
    return true;
}

void
Wpq::end()
{
    if (!open_)
        PSORAM_PANIC("WPQ '", name_, "': end() without start()");
    open_ = false;
    committed_ = true;
}

Cycle
Wpq::drainTo(MemoryBackend &device, Cycle earliest)
{
    if (open_)
        PSORAM_PANIC("WPQ '", name_, "': drain before end()");
    // One vectored write carries the whole round; each entry is still
    // its own span (the ADR durability atom), so a fault mid-writev
    // leaves every entry queued and the power-failure flush redelivers
    // the full round — same final bytes, write idempotency intact.
    std::vector<WriteSpan> spans;
    spans.reserve(entries_.size());
    for (const WpqEntry &entry : entries_)
        spans.push_back({entry.addr, entry.data.data(),
                         entry.data.size()});
    device.writev(spans);
    Cycle done = earliest;
    while (!entries_.empty()) {
        const WpqEntry &entry = entries_.front();
        // Each entry is one NVM transaction (a block or a PosMap entry).
        done = std::max(done,
                        device.accessOne(entry.addr, true, earliest));
        PSORAM_TRACE_INSTANT_ARG("nvm", "wpq.drain_entry", 0, "addr",
                                 static_cast<std::int64_t>(entry.addr));
        ++drained_;
        entries_.pop_front();
    }
    committed_ = false;
    return done;
}

std::size_t
Wpq::crashFlush(MemoryBackend &device)
{
    std::size_t flushed = 0;
    if (committed_) {
        // ADR: a committed round always reaches the NVM.
        std::vector<WriteSpan> spans;
        spans.reserve(entries_.size());
        for (const WpqEntry &entry : entries_)
            spans.push_back({entry.addr, entry.data.data(),
                             entry.data.size()});
        device.writev(spans);
        flushed = entries_.size();
    }
    entries_.clear();
    open_ = false;
    committed_ = false;
    return flushed;
}

std::vector<WpqEntry>
Wpq::takeCommitted()
{
    if (open_)
        PSORAM_PANIC("WPQ '", name_, "': takeCommitted() before end()");
    std::vector<WpqEntry> round;
    round.reserve(entries_.size());
    while (!entries_.empty()) {
        round.push_back(std::move(entries_.front()));
        entries_.pop_front();
        ++drained_;
    }
    committed_ = false;
    return round;
}

std::size_t
Wpq::queuedBytes() const
{
    std::size_t bytes = 0;
    for (const auto &entry : entries_)
        bytes += entry.data.size();
    return bytes;
}

} // namespace psoram
