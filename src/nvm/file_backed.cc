#include "nvm/file_backed.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/log.hh"
#include "nvm/fault_injector.hh"
#include "nvm/flight_recorder.hh"
#include "obs/trace.hh"

namespace psoram {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'N', 'V', 'M', '\0', '\0', '\1'};

} // namespace

FileBackedNvm::FileBackedNvm(const NvmTimingParams &params,
                             unsigned num_channels,
                             unsigned banks_per_channel,
                             std::uint64_t capacity_bytes,
                             std::string path)
    : NvmDevice(params, num_channels, banks_per_channel, capacity_bytes),
      path_(std::move(path))
{
    if (path_.empty())
        PSORAM_FATAL("FileBackedNvm needs a backing file path");
    loadFromFile();
}

FileBackedNvm::~FileBackedNvm()
{
    // Never let an armed injector throw out of a destructor.
    const FaultInjector::ScopedSuspend suspend(fault_injector_);
    if (!discarded_)
        persist();
}

void
FileBackedNvm::loadFromFile()
{
    PSORAM_TRACE_SCOPE("recovery", "image_reload", 0);
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return; // fresh image: first persist() creates the file

    char magic[8] = {};
    std::uint64_t count = 0;
    in.read(magic, sizeof(magic));
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        PSORAM_FATAL("corrupt NVM image file: ", path_);

    MemoryImage img;
    img.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr line = 0;
        NvmLine data{};
        in.read(reinterpret_cast<char *>(&line), sizeof(line));
        in.read(reinterpret_cast<char *>(data.data()), data.size());
        if (!in)
            PSORAM_FATAL("truncated NVM image file: ", path_,
                         " (record ", i, " of ", count, ")");
        img.emplace(line, data);
    }

    // Replay through the vectored quiet seam (the image map is line-
    // ordered, so contiguous lines coalesce into single spans). Quiet:
    // a reload reconstructs state that is already durable in the file,
    // so it is not an enumerable crash point — and not wear either,
    // hence the stats reset: the cells were written by the process
    // that persisted the image, not by this reopen.
    std::vector<std::vector<std::uint8_t>> runs;
    std::vector<WriteSpan> spans;
    Addr next_line = 0;
    for (const auto &[line, data] : img) {
        if (runs.empty() || line != next_line) {
            runs.emplace_back();
            runs.back().reserve(kBlockDataBytes * 16);
        }
        runs.back().insert(runs.back().end(), data.begin(), data.end());
        next_line = line + 1;
    }
    std::size_t run = 0;
    next_line = 0;
    for (const auto &[line, data] : img) {
        if (spans.empty() || line != next_line)
            spans.push_back({line * kBlockDataBytes,
                             runs[run++].data(), 0});
        spans.back().len += kBlockDataBytes;
        next_line = line + 1;
    }
    writevQuiet(spans);
    resetStats();
    lines_loaded_ = count;
}

bool
FileBackedNvm::persist()
{
    // Checkpoint boundary: a fault here models a crash *before* the
    // image reaches disk — the previous on-disk image stays valid
    // (persist is atomic via temp file + rename).
    if (fault_injector_)
        fault_injector_->boundary(PersistBoundary::ImagePersist);
    PSORAM_TRACE_SCOPE("recovery", "image_persist", 0);
    // Black-box the checkpoint *before* snapshotting, so the marker is
    // part of the image it marks (a reopen decodes it as the tail).
    if (flight_recorder_)
        flight_recorder_->record(*this, FlightEventKind::Checkpoint,
                                 image().size());
    discarded_ = false;
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("cannot write NVM image file: ", tmp);
            return false;
        }
        const MemoryImage &img = image();
        const std::uint64_t count = img.size();
        out.write(kMagic, sizeof(kMagic));
        out.write(reinterpret_cast<const char *>(&count), sizeof(count));
        for (const auto &[line, data] : img) {
            out.write(reinterpret_cast<const char *>(&line),
                      sizeof(line));
            out.write(reinterpret_cast<const char *>(data.data()),
                      data.size());
        }
        out.flush();
        if (!out) {
            warn("failed writing NVM image file: ", tmp);
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        warn("cannot replace NVM image file: ", path_);
        return false;
    }
    return true;
}

void
FileBackedNvm::discardBackingFile()
{
    discarded_ = true;
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
}

} // namespace psoram
