#include "nvm/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace psoram {

Channel::Channel(const NvmTimingParams &params, unsigned num_banks)
    : params_(params)
{
    if (num_banks == 0)
        PSORAM_FATAL("channel needs at least one bank");
    banks_.reserve(num_banks);
    for (unsigned i = 0; i < num_banks; ++i)
        banks_.emplace_back(params);
}

Cycle
Channel::access(unsigned bank, Cycle earliest, bool is_write)
{
    if (bank >= banks_.size())
        PSORAM_PANIC("bank index ", bank, " out of range");

    Cycle done = banks_[bank].access(earliest, is_write);

    // The data burst occupies the shared bus for its final tBURST cycles;
    // if that slot overlaps the previous burst, the transfer slips. (The
    // slip is not fed back into the bank's array timing — a small
    // optimism that matches FR-FCFS controllers overlapping array access
    // with bus contention.)
    const Cycle burst_start =
        done > params_.tBURST ? done - params_.tBURST : 0;
    if (burst_start < bus_free_)
        done += bus_free_ - burst_start;
    bus_free_ = done;

    if (is_write)
        ++writes_;
    else
        ++reads_;
    return done;
}

void
Channel::resetStats()
{
    reads_.reset();
    writes_.reset();
    for (auto &bank : banks_)
        bank.resetStats();
}

} // namespace psoram
