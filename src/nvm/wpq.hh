/**
 * @file
 * Write Pending Queue (WPQ) inside the ADR persistence domain.
 *
 * PS-ORAM brackets each eviction round with a "start" signal (the WPQ
 * begins accepting entries) and an "end" signal (the round commits). On a
 * power failure, ADR guarantees that *committed* entries reach the NVM;
 * entries of a round that never saw its "end" signal are discarded, so the
 * original data in the NVM is never partially overwritten (paper §4.2.2,
 * step 5-B/5-C).
 */

#ifndef PSORAM_NVM_WPQ_HH
#define PSORAM_NVM_WPQ_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"

namespace psoram {

/** One pending persistent write (an evicted block or a PosMap entry). */
struct WpqEntry
{
    Addr addr;
    std::vector<std::uint8_t> data;
};

class Wpq
{
  public:
    /**
     * @param name stat prefix ("data_wpq" / "posmap_wpq")
     * @param capacity maximum entries per round (96 or 4 in the paper)
     */
    Wpq(std::string name, std::size_t capacity);

    /** Open a new round ("start" signal). @pre queue drained and closed */
    void start();

    /**
     * Push an entry into the open round.
     * @return false if the round is full (caller must split rounds)
     */
    bool push(WpqEntry entry);

    /** Commit the round ("end" signal): entries become crash-durable. */
    void end();

    /**
     * Flush all committed entries to the device: functional writes plus
     * timing. Leaves the queue empty and closed.
     *
     * @return completion cycle of the last write
     */
    Cycle drainTo(MemoryBackend &device, Cycle earliest);

    /**
     * Power-failure semantics: committed entries are functionally written
     * (ADR flush); an uncommitted round is discarded.
     *
     * @return number of entries that reached the NVM
     */
    std::size_t crashFlush(MemoryBackend &device);

    bool open() const { return open_; }
    bool committed() const { return committed_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return entries_.size() >= capacity_; }

    /** Total payload bytes currently queued (drain energy accounting). */
    std::size_t queuedBytes() const;

    std::uint64_t totalPushed() const { return pushed_.value(); }
    std::uint64_t totalDrained() const { return drained_.value(); }
    std::uint64_t totalRounds() const { return rounds_.value(); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::size_t capacity_;
    std::deque<WpqEntry> entries_;
    bool open_ = false;
    bool committed_ = false;

    Counter pushed_;
    Counter drained_;
    Counter rounds_;
};

} // namespace psoram

#endif // PSORAM_NVM_WPQ_HH
