/**
 * @file
 * Write Pending Queue (WPQ) inside the ADR persistence domain.
 *
 * PS-ORAM brackets each eviction round with a "start" signal (the WPQ
 * begins accepting entries) and an "end" signal (the round commits). On a
 * power failure, ADR guarantees that *committed* entries reach the NVM;
 * entries of a round that never saw its "end" signal are discarded, so the
 * original data in the NVM is never partially overwritten (paper §4.2.2,
 * step 5-B/5-C).
 */

#ifndef PSORAM_NVM_WPQ_HH
#define PSORAM_NVM_WPQ_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iterator>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"

namespace psoram {

/**
 * Inline payload capacity of one WPQ entry. The largest thing ever
 * queued is an authenticated tree record (kSlotBytes = 96 of slot
 * ciphertext plus the 32-byte integrity trailer — tag and version,
 * oram/integrity.hh); PosMap records and shadow headers are smaller.
 */
inline constexpr std::size_t kWpqEntryBytes = 128;

/**
 * Fixed-capacity inline byte buffer with the slice of the std::vector
 * interface the WPQ paths use. An eviction queues roughly one entry
 * per path slot, so a heap-allocated payload per entry used to put an
 * allocate/free pair on the hot loop for every slot of every access;
 * inline storage makes a WpqEntry trivially movable plain data.
 */
class WpqBytes
{
  public:
    using value_type = std::uint8_t;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::uint8_t *data() { return bytes_.data(); }
    const std::uint8_t *data() const { return bytes_.data(); }
    std::uint8_t *begin() { return bytes_.data(); }
    std::uint8_t *end() { return bytes_.data() + size_; }
    const std::uint8_t *begin() const { return bytes_.data(); }
    const std::uint8_t *end() const { return bytes_.data() + size_; }
    std::uint8_t &operator[](std::size_t i) { return bytes_[i]; }
    std::uint8_t operator[](std::size_t i) const { return bytes_[i]; }

    /** Grow/shrink; grown bytes read as zero (vector semantics). */
    void
    resize(std::size_t n)
    {
        checkFit(n);
        if (n > size_)
            std::memset(bytes_.data() + size_, 0, n - size_);
        size_ = static_cast<std::uint32_t>(n);
    }

    void
    assign(std::size_t n, std::uint8_t value)
    {
        checkFit(n);
        std::memset(bytes_.data(), value, n);
        size_ = static_cast<std::uint32_t>(n);
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        const auto n =
            static_cast<std::size_t>(std::distance(first, last));
        checkFit(n);
        std::copy(first, last, bytes_.data());
        size_ = static_cast<std::uint32_t>(n);
    }

  private:
    void
    checkFit(std::size_t n) const
    {
        if (n > kWpqEntryBytes)
            PSORAM_PANIC("WPQ entry payload of ", n,
                         " bytes exceeds the inline capacity of ",
                         kWpqEntryBytes);
    }

    std::array<std::uint8_t, kWpqEntryBytes> bytes_{};
    std::uint32_t size_ = 0;
};

/** One pending persistent write (an evicted block or a PosMap entry). */
struct WpqEntry
{
    Addr addr = 0;
    WpqBytes data;
};

class Wpq
{
  public:
    /**
     * @param name stat prefix ("data_wpq" / "posmap_wpq")
     * @param capacity maximum entries per round (96 or 4 in the paper)
     */
    Wpq(std::string name, std::size_t capacity);

    /** Open a new round ("start" signal). @pre queue drained and closed */
    void start();

    /**
     * Push an entry into the open round.
     * @return false if the round is full (caller must split rounds)
     */
    bool push(WpqEntry entry);

    /** Commit the round ("end" signal): entries become crash-durable. */
    void end();

    /**
     * Flush all committed entries to the device: functional writes plus
     * timing. Leaves the queue empty and closed.
     *
     * @return completion cycle of the last write
     */
    Cycle drainTo(MemoryBackend &device, Cycle earliest);

    /**
     * Power-failure semantics: committed entries are functionally written
     * (ADR flush); an uncommitted round is discarded.
     *
     * @return number of entries that reached the NVM
     */
    std::size_t crashFlush(MemoryBackend &device);

    /**
     * Move the committed round out of the queue (async retirement):
     * the caller takes responsibility for writing the entries to the
     * device in order. Leaves the queue empty and closed, exactly like
     * drainTo. @pre the round is committed (end() was called).
     */
    std::vector<WpqEntry> takeCommitted();

    bool open() const { return open_; }
    bool committed() const { return committed_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return entries_.size() >= capacity_; }

    /** Total payload bytes currently queued (drain energy accounting). */
    std::size_t queuedBytes() const;

    std::uint64_t totalPushed() const { return pushed_.value(); }
    std::uint64_t totalDrained() const { return drained_.value(); }
    std::uint64_t totalRounds() const { return rounds_.value(); }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::size_t capacity_;
    std::deque<WpqEntry> entries_;
    bool open_ = false;
    bool committed_ = false;

    Counter pushed_;
    Counter drained_;
    Counter rounds_;
};

} // namespace psoram

#endif // PSORAM_NVM_WPQ_HH
