#include "nvm/bank.hh"

#include <algorithm>

namespace psoram {

Bank::Bank(const NvmTimingParams &params) : params_(params)
{
}

Cycle
Bank::access(Cycle earliest, bool is_write)
{
    Cycle start = std::max(earliest, next_free_);
    if (last_was_write_ && !is_write)
        start += params_.tWTR;

    Cycle done;
    if (is_write) {
        // Data is on the bus after tCWD; the write pulse programs cells
        // afterwards and keeps the bank busy.
        done = start + params_.tCWD + params_.tBURST;
        next_free_ = done + params_.tWP + params_.tRP;
        ++writes_;
    } else {
        done = start + params_.tRCD + params_.tBURST;
        next_free_ = start + params_.tRCD + params_.tCCD + params_.tRP;
        ++reads_;
    }
    last_was_write_ = is_write;
    return done;
}

void
Bank::resetStats()
{
    reads_.reset();
    writes_.reset();
}

} // namespace psoram
