/**
 * @file
 * Persistent flight recorder ("black box"): a small fixed-size ring of
 * CRC-stamped operational event records living in a reserved region of
 * the NVM address space, so a crash postmortem can see what the dying
 * run was doing at the persist boundary that killed it.
 *
 * What gets recorded — and why it is oblivious to record it — is
 * strictly limited to events the untrusted memory already observes as
 * NVM traffic shape: ADR round brackets (round ids), drain watermarks,
 * write-behind retirement batches, and image-checkpoint markers. No
 * block addresses, leaf labels, stash contents or payload bytes ever
 * enter a record; the recorder adds a constant-size append per event
 * that is independent of the access pattern (pinned by the
 * transparency differential in tests/test_recovery_obs.cc).
 *
 * Durability model: records are appended through writevSide — a side
 * seam with quiet (boundary-free) semantics that is additionally
 * exempt from ordering against queued protocol traffic — so the
 * recorder adds **zero** enumerable persist boundaries and cannot
 * perturb the crash-point population. The price is that the tail
 * record may be torn by a crash mid-append; decode() tolerates that by
 * CRC-checking every slot and skipping (while counting) corrupt ones.
 *
 * Ring layout (all little-endian, one 64-byte header + N 64-byte
 * records — record size matches the backend line size so one record is
 * one line write):
 *
 *   header:  u64 magic "PSFR0001" | u32 num_records | u32 record_bytes
 *   record:  u32 crc | u32 kind | u64 seq | u64 host_ns
 *            | u64 arg0 | u64 arg1 | u64 arg2  (zero-padded to 64)
 *
 * crc covers bytes [4, 48) — everything meaningful after the stamp.
 * Slot for seq s is s % num_records; the live tail is the maximum
 * valid seq. An all-zero slot is "never written" (backends zero-fill).
 */

#ifndef PSORAM_NVM_FLIGHT_RECORDER_HH
#define PSORAM_NVM_FLIGHT_RECORDER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mem/backend.hh"

namespace psoram {

/** Operational event kinds a backend's black box can hold. */
enum class FlightEventKind : std::uint16_t
{
    /** ADR bracket opened: arg0 = round id. */
    RoundStart = 1,
    /** ADR bracket committed: arg0 = round id, arg1 = data entries,
     *  arg2 = posmap entries. */
    RoundCommit = 2,
    /** Synchronous WPQ drain finished: arg0 = round id,
     *  arg1 = entries drained (the durable watermark). */
    DrainWatermark = 3,
    /** Write-behind retirement batch landed: arg0 = first round id,
     *  arg1 = rounds in batch, arg2 = device transactions. */
    RetireBatch = 4,
    /** Backend image checkpoint persisted: arg0 = image lines. */
    Checkpoint = 5,
    /** Recovery began: arg0 = prior events decoded,
     *  arg1 = torn records skipped. */
    RecoveryStart = 6,
    /** Recovery finished: arg0 = redelivered WPQ entries,
     *  arg1 = records verified, arg2 = nodes repaired. */
    RecoveryDone = 7,
};

const char *flightEventKindName(FlightEventKind kind);

/** One decoded black-box event. */
struct FlightEvent
{
    std::uint64_t seq = 0;
    std::uint64_t host_ns = 0;
    FlightEventKind kind = FlightEventKind::RoundStart;
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
};

class FlightRecorder
{
  public:
    static constexpr std::uint64_t kMagic = 0x3130303052465350ULL; // "PSFR0001"
    static constexpr std::size_t kHeaderBytes = 64;
    static constexpr std::size_t kRecordBytes = 64;
    /** Default ring capacity (events); ~4 KiB + header per backend. */
    static constexpr std::size_t kDefaultRecords = 64;
    /** Byte offset the record CRC covers up to. */
    static constexpr std::size_t kCrcCoverBytes = 48;

    /** Reserved-region footprint for a ring of @p num_records. */
    static constexpr std::size_t
    regionBytes(std::size_t num_records)
    {
        return kHeaderBytes + num_records * kRecordBytes;
    }

    FlightRecorder(Addr base, std::size_t num_records);

    /**
     * Bind to @p device: decode whatever the region already holds (a
     * reopen finds the previous run's ring) and resume the sequence
     * counter past its tail; a virgin or unrecognizable region gets a
     * fresh header and a zeroed ring. Call once before record().
     */
    void attach(MemoryBackend &device);

    /**
     * Append one event. Thread-safe (drive thread + write-behind
     * retirer); the append is a single quiet line write.
     */
    void record(MemoryBackend &device, FlightEventKind kind,
                std::uint64_t arg0 = 0, std::uint64_t arg1 = 0,
                std::uint64_t arg2 = 0);

    /** decode() result: surviving events plus degradation counters. */
    struct Decoded
    {
        /** Valid events, sequence-ascending (oldest surviving first). */
        std::vector<FlightEvent> events;
        /** Non-empty slots whose CRC failed (torn tail, scribbles). */
        std::uint64_t torn_records = 0;
        /** Header magic/geometry recognized. */
        bool header_valid = false;

        /** The decoded tail event, or null when the ring is empty. */
        const FlightEvent *tail() const
        {
            return events.empty() ? nullptr : &events.back();
        }
    };

    /** Read-only decode of the ring at @p base on @p device. */
    static Decoded decode(const MemoryBackend &device, Addr base,
                          std::size_t num_records);
    Decoded decode(const MemoryBackend &device) const
    {
        return decode(device, base_, num_records_);
    }

    /** Human-readable multi-line dump (failure reports, artifacts). */
    static std::string format(const Decoded &decoded);

    Addr base() const { return base_; }
    std::size_t numRecords() const { return num_records_; }
    std::uint64_t nextSeq() const;

  private:
    Addr base_;
    std::size_t num_records_;
    mutable std::mutex mutex_;
    std::uint64_t next_seq_ = 0;
};

} // namespace psoram

#endif // PSORAM_NVM_FLIGHT_RECORDER_HH
