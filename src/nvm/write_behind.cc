#include "nvm/write_behind.hh"

#include <cstring>

#include "common/log.hh"
#include "nvm/flight_recorder.hh"
#include "obs/trace.hh"

namespace psoram {

WriteBehindNvm::WriteBehindNvm(MemoryBackend &inner,
                               std::size_t max_queued_rounds)
    : inner_(inner),
      max_queued_rounds_(max_queued_rounds == 0 ? 1 : max_queued_rounds)
{
    wake_threshold_ = std::max<std::size_t>(1, max_queued_rounds_ / 2);
    pending_.reserve(max_queued_rounds_ * 128);
    retire_thread_ = std::thread([this] { retireLoop(); });
}

WriteBehindNvm::~WriteBehindNvm()
{
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        stop_ = true;
    }
    rounds_cv_.notify_all();
    if (retire_thread_.joinable())
        retire_thread_.join();
    // Whatever the thread did not get to is still committed state:
    // apply it synchronously (same ordering, same writer — us), as one
    // vectored quiet write, then let the medium catch up.
    std::vector<WriteSpan> spans;
    for (const Round &round : queue_)
        for (const WpqEntry &entry : round.entries)
            spans.push_back({entry.addr, entry.data.data(),
                             entry.data.size()});
    if (!spans.empty())
        inner_.writevQuiet(spans);
    inner_.persistBarrier();
}

void
WriteBehindNvm::submitRound(std::vector<WpqEntry> entries)
{
    if (entries.empty())
        return;
    std::unique_lock<std::mutex> lock(queue_mutex_);
    space_cv_.wait(lock, [this] {
        return queue_.size() < max_queued_rounds_;
    });
    const std::uint64_t seq = next_seq_++;
    // Pointer, not copy: the entry vector's buffer survives the move
    // into the queue (and the later swap into a retire batch) intact.
    for (const WpqEntry &entry : entries) {
        PendingWrite &pw = pending_[entry.addr];
        pw.entry = &entry;
        pw.seq = seq;
    }
    queue_.push_back(Round{std::move(entries), seq});
    const bool wake = queue_.size() >= wake_threshold_;
    lock.unlock();
    if (wake)
        rounds_cv_.notify_one();
}

void
WriteBehindNvm::flushQueuedLocked(std::unique_lock<std::mutex> &lock)
{
    // A flush overrides the batching watermark: wake the retirer even
    // if the backlog is shallow.
    ++flush_waiters_;
    rounds_cv_.notify_one();
    space_cv_.wait(lock, [this] {
        return queue_.empty() && !retiring_;
    });
    --flush_waiters_;
}

void
WriteBehindNvm::flushQueued()
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    flushQueuedLocked(lock);
}

void
WriteBehindNvm::retireLoop()
{
    for (;;) {
        std::deque<Round> batch;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            rounds_cv_.wait(lock, [this] {
                return stop_ ||
                       (!queue_.empty() &&
                        (flush_waiters_ > 0 ||
                         queue_.size() >= wake_threshold_));
            });
            if (queue_.empty()) // stop_ and nothing left
                return;
            // Swap the whole backlog: one wakeup retires every round
            // committed so far, and submitters refill the (now empty)
            // queue while the batch lands.
            batch.swap(queue_);
            retiring_ = true;
        }
        space_cv_.notify_all(); // queue space freed by the swap

        retireBatch(batch);

        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            retiring_ = false;
            rounds_retired_ += batch.size();
        }
        space_cv_.notify_all();
    }
}

void
WriteBehindNvm::retireBatch(std::deque<Round> &batch)
{
    // One hold of each lock for the WHOLE batch. Per-round (or
    // per-entry) holds look friendlier to concurrent readers, but on a
    // loaded host they turn every hold boundary into a potential
    // context switch: the drive thread blocks on the device lock, the
    // scheduler flips back and forth, and the ping-pong costs far more
    // than the stall. With one exclusive hold the drive thread blocks
    // at most once per batch, the retirer runs the batch to completion
    // cache-hot, and the stall amortizes over every round in it.
    //
    // Under the queue lock, one pass decides per entry whether it is
    // still the newest committed value for its address AND unshadows it
    // in the same probe. An entry whose pending-map sequence moved on
    // is stale — a newer committed round (queued behind us, or inside
    // this very batch) will overwrite its cells, readers already
    // resolve the address from the pending map, and a power failure
    // flushes the newer round too. Skipping it is the WPQ write
    // coalescing described in the header. Erasing a *live* entry before
    // its bytes land is safe only because the exclusive device lock is
    // already held: a reader that now misses the pending map blocks on
    // the device lock until the whole batch has been applied.
    //
    // With the queue lock released again (it is never held across an
    // inner-device operation), survivors at adjacent addresses (the
    // slots of one bucket are contiguous) merge into single device
    // transactions. Quiet writes keep the fault injector
    // single-threaded; entry order (data before PosMap, rounds in
    // sequence order) is preserved, though nothing can observe it — no
    // crash point is enumerable inside a quiet retirement.
    std::uint64_t coalesced = 0;
    std::uint64_t transactions = 0;
    std::vector<std::vector<char>> live(batch.size());

    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        for (std::size_t r = 0; r < batch.size(); ++r) {
            const Round &round = batch[r];
            live[r].assign(round.entries.size(), 0);
            for (std::size_t e = 0; e < round.entries.size(); ++e) {
                const auto it = pending_.find(round.entries[e].addr);
                if (it != pending_.end() &&
                    it->second.seq == round.seq) {
                    live[r][e] = 1;
                    pending_.erase(it);
                }
            }
        }
    }

    // Survivors at adjacent addresses still merge into single runs, but
    // the runs now accumulate into ONE vectored quiet write for the
    // whole batch: the inner backend sees a single call per retirement
    // (a disk backend turns it into one page-cache pass + one barrier;
    // a future RPC backend into one round trip). Runs live in separate
    // vectors so their buffers stay put while the span list is built.
    std::vector<std::vector<std::uint8_t>> runs;
    std::vector<Addr> run_bases;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const Round &round = batch[r];
        for (std::size_t e = 0; e < round.entries.size(); ++e) {
            if (!live[r][e]) {
                ++coalesced;
                continue;
            }
            const WpqEntry &entry = round.entries[e];
            if (runs.empty() ||
                run_bases.back() + runs.back().size() != entry.addr) {
                runs.emplace_back();
                run_bases.push_back(entry.addr);
            }
            runs.back().insert(runs.back().end(), entry.data.begin(),
                               entry.data.end());
        }
    }
    std::vector<WriteSpan> spans;
    spans.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        spans.push_back({run_bases[i], runs[i].data(), runs[i].size()});
    if (!spans.empty()) {
        inner_.writevQuiet(spans);
        transactions += spans.size();
    }
    // The batch is the write-back unit: one barrier makes the landed
    // rounds durable on media that defer quiet writes.
    inner_.persistBarrier();
    if (flight_recorder_ && !batch.empty())
        flight_recorder_->record(inner_, FlightEventKind::RetireBatch,
                                 batch.front().seq, batch.size(),
                                 transactions);
    dev.unlock();

    std::unique_lock<std::mutex> lock(queue_mutex_);
    writes_coalesced_ += coalesced;
    retire_transactions_ += transactions;
}

void
WriteBehindNvm::readBytes(Addr addr, std::uint8_t *out,
                          std::size_t len) const
{
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        const auto it = pending_.find(addr);
        if (it != pending_.end() &&
            it->second.entry->data.size() >= len) {
            std::memcpy(out, it->second.entry->data.data(), len);
            return;
        }
    }
    // Miss (or partial entry, which the aligned protocol granules never
    // produce): read the durable image. Shared lock: concurrent fetch
    // threads read in parallel; the retire thread excludes them only
    // while a round lands.
    std::shared_lock<std::shared_mutex> dev(device_mutex_);
    inner_.readBytes(addr, out, len);
}

void
WriteBehindNvm::readv(const ReadSpan *spans, std::size_t n) const
{
    // One queue-lock hold resolves every span against the pending map;
    // the misses go to the durable image as one inner vectored read.
    std::vector<ReadSpan> misses;
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        for (std::size_t i = 0; i < n; ++i) {
            const auto it = pending_.find(spans[i].addr);
            if (it != pending_.end() &&
                it->second.entry->data.size() >= spans[i].len) {
                std::memcpy(spans[i].data,
                            it->second.entry->data.data(), spans[i].len);
            } else {
                misses.push_back(spans[i]);
            }
        }
    }
    if (misses.empty())
        return;
    std::shared_lock<std::shared_mutex> dev(device_mutex_);
    inner_.readv(misses.data(), misses.size());
}

void
WriteBehindNvm::writeBytes(Addr addr, const std::uint8_t *in,
                           std::size_t len)
{
    // Direct writes (shadow regions, recovery, naive scratch) must land
    // after every queued round to preserve program order on the image.
    flushQueued();
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.writeBytes(addr, in, len);
}

void
WriteBehindNvm::writeBytesQuiet(Addr addr, const std::uint8_t *in,
                                std::size_t len)
{
    flushQueued();
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.writeBytesQuiet(addr, in, len);
}

void
WriteBehindNvm::writev(const WriteSpan *spans, std::size_t n)
{
    flushQueued();
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.writev(spans, n);
}

void
WriteBehindNvm::writevSide(const WriteSpan *spans, std::size_t n)
{
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.writevSide(spans, n);
}

void
WriteBehindNvm::writevQuiet(const WriteSpan *spans, std::size_t n)
{
    flushQueued();
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.writevQuiet(spans, n);
}

void
WriteBehindNvm::persistBarrier()
{
    flushQueued();
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.persistBarrier();
}

void
WriteBehindNvm::dropVolatile()
{
    // Committed rounds still queued here are ADR-covered: the crash
    // framework flushes them through the destructor path, so only the
    // inner backend's cache is volatile state to discard.
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.dropVolatile();
}

Cycle
WriteBehindNvm::access(Addr addr, std::size_t len, bool is_write,
                       Cycle earliest)
{
    return inner_.access(addr, len, is_write, earliest);
}

Cycle
WriteBehindNvm::accessOne(Addr addr, bool is_write, Cycle earliest)
{
    return inner_.accessOne(addr, is_write, earliest);
}

std::uint64_t
WriteBehindNvm::capacity() const
{
    return inner_.capacity();
}

std::uint64_t
WriteBehindNvm::totalReads() const
{
    return inner_.totalReads();
}

std::uint64_t
WriteBehindNvm::totalWrites() const
{
    return inner_.totalWrites();
}

std::uint64_t
WriteBehindNvm::distinctLinesWritten() const
{
    return inner_.distinctLinesWritten();
}

std::uint64_t
WriteBehindNvm::maxLineWrites() const
{
    return inner_.maxLineWrites();
}

double
WriteBehindNvm::meanLineWrites() const
{
    return inner_.meanLineWrites();
}

void
WriteBehindNvm::resetStats()
{
    inner_.resetStats();
}

MemoryImage
WriteBehindNvm::image() const
{
    // The image must reflect every committed round (it feeds the
    // crash-replay snapshot): drain the queue first.
    const_cast<WriteBehindNvm *>(this)->flushQueued();
    std::shared_lock<std::shared_mutex> dev(device_mutex_);
    return inner_.image();
}

void
WriteBehindNvm::restoreImage(const MemoryImage &img)
{
    flushQueued();
    std::unique_lock<std::shared_mutex> dev(device_mutex_);
    inner_.restoreImage(img);
}

std::uint64_t
WriteBehindNvm::roundsRetired() const
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    return rounds_retired_;
}

std::uint64_t
WriteBehindNvm::writesCoalesced() const
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    return writes_coalesced_;
}

std::uint64_t
WriteBehindNvm::retireTransactions() const
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    return retire_transactions_;
}

} // namespace psoram
