/**
 * @file
 * Two-level data-cache hierarchy (Table 3a): 32 KB 2-way L1D in front of
 * a 1 MB 8-way shared L2. An L2 miss (or an L2 dirty eviction) becomes a
 * main-memory request, which the ORAM frontend services.
 */

#ifndef PSORAM_MEM_HIERARCHY_HH
#define PSORAM_MEM_HIERARCHY_HH

#include <functional>
#include <memory>

#include "mem/cache.hh"

namespace psoram {

/** A request leaving the LLC toward main memory. */
struct MemRequest
{
    BlockAddr line;
    bool is_write;
};

/**
 * Callback the hierarchy invokes for each memory request.
 * @return request latency in CPU cycles
 */
using MemRequestHandler = std::function<CpuCycle(const MemRequest &)>;

struct HierarchyParams
{
    CacheParams l1d{"l1d", 32 * 1024, 2, 64, 2};
    CacheParams l2{"l2", 1024 * 1024, 8, 64, 20};
};

class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params = {});

    /**
     * Access one data line through L1D then L2.
     * @return latency in CPU cycles, including memory for L2 misses
     */
    CpuCycle access(BlockAddr line, bool is_write,
                    const MemRequestHandler &memory);

    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }

    /** L2 (LLC) misses — the MPKI numerator of Table 4. */
    std::uint64_t llcMisses() const { return l2_.misses(); }

    /** Drop all cached state (crash modeling: caches are volatile). */
    void flush();

    void resetStats();

  private:
    Cache l1d_;
    Cache l2_;
};

} // namespace psoram

#endif // PSORAM_MEM_HIERARCHY_HH
