/**
 * @file
 * In-order core timing model (gem5 "in-order core at 3.2 GHz" stand-in).
 *
 * The core retires one instruction per cycle and blocks on every data
 * access until the hierarchy (and, on LLC misses, the ORAM-protected
 * memory) returns. The paper notes that in-order vs out-of-order does not
 * change the memory-system conclusions, and this model preserves exactly
 * the quantity the figures report: execution time as a function of memory
 * latency and traffic.
 */

#ifndef PSORAM_MEM_CORE_HH
#define PSORAM_MEM_CORE_HH

#include <cstdint>

#include "common/stats.hh"
#include "mem/hierarchy.hh"
#include "trace/generator.hh"

namespace psoram {

/** Aggregate outcome of running a trace on the core. */
struct CoreRunStats
{
    std::uint64_t instructions = 0;
    std::uint64_t mem_accesses = 0;
    CpuCycle cycles = 0;
    std::uint64_t llc_misses = 0;

    /** Misses per kilo-instruction — Table 4's metric. */
    double mpki() const
    {
        return instructions == 0
            ? 0.0
            : 1000.0 * static_cast<double>(llc_misses) /
                  static_cast<double>(instructions);
    }

    double ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(instructions) /
                  static_cast<double>(cycles);
    }
};

class InOrderCore
{
  public:
    explicit InOrderCore(CacheHierarchy &hierarchy);

    /**
     * Run @p trace to completion, sending LLC misses to @p memory.
     * @return run statistics (cycles, MPKI, ...)
     */
    CoreRunStats run(TraceStream &trace, const MemRequestHandler &memory);

  private:
    CacheHierarchy &hierarchy_;
};

} // namespace psoram

#endif // PSORAM_MEM_CORE_HH
