#include "mem/hierarchy.hh"

namespace psoram {

CacheHierarchy::CacheHierarchy(const HierarchyParams &params)
    : l1d_(params.l1d), l2_(params.l2)
{
}

CpuCycle
CacheHierarchy::access(BlockAddr line, bool is_write,
                       const MemRequestHandler &memory)
{
    CpuCycle latency = l1d_.params().latency;
    const CacheAccessResult l1 = l1d_.access(line, is_write);
    if (l1.hit)
        return latency;

    // L1 victim writebacks are absorbed by the L2 (write-allocate); mark
    // the line dirty there.
    if (l1.writeback_line)
        l2_.access(*l1.writeback_line, true);

    latency += l2_.params().latency;
    const CacheAccessResult l2 = l2_.access(line, is_write);
    if (l2.hit)
        return latency;

    // L2 dirty victim becomes a main-memory (ORAM) write.
    if (l2.writeback_line)
        latency += memory(MemRequest{*l2.writeback_line, true});

    // Fill the missing line from main memory.
    latency += memory(MemRequest{line, false});
    return latency;
}

void
CacheHierarchy::flush()
{
    l1d_.flush();
    l2_.flush();
}

void
CacheHierarchy::resetStats()
{
    l1d_.resetStats();
    l2_.resetStats();
}

} // namespace psoram
