/**
 * @file
 * Classic set-associative write-back, write-allocate cache model.
 *
 * Functional contents are not tracked (the ORAM layer owns data); the
 * cache model only decides hit/miss and produces dirty victims, which is
 * all the MPKI-driven evaluation needs.
 */

#ifndef PSORAM_MEM_CACHE_HH
#define PSORAM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace psoram {

struct CacheParams
{
    std::string name;
    std::uint64_t size_bytes;
    unsigned associativity;
    unsigned line_bytes = 64;
    /** Access latency in CPU cycles (Table 3a: L1 = 2, L2 = 20). */
    CpuCycle latency = 1;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit;
    /** Set when a dirty line was evicted to make room. */
    std::optional<BlockAddr> writeback_line;
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access one line (LRU replacement, write-allocate).
     * @param line cache-line address (byte address / line size)
     */
    CacheAccessResult access(BlockAddr line, bool is_write);

    /** True if the line is currently resident (no state change). */
    bool probe(BlockAddr line) const;

    /** Invalidate everything (used by crash modeling). */
    void flush();

    const CacheParams &params() const { return params_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }

    void resetStats();

  private:
    struct Line
    {
        BlockAddr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    std::size_t setIndex(BlockAddr line) const;

    CacheParams params_;
    std::size_t num_sets_;
    std::vector<Line> lines_; // num_sets_ * associativity, set-major
    std::uint64_t lru_clock_ = 0;

    Counter hits_;
    Counter misses_;
    Counter writebacks_;
};

} // namespace psoram

#endif // PSORAM_MEM_CACHE_HH
