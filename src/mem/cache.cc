#include "mem/cache.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace psoram {

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (params_.associativity == 0 || params_.line_bytes == 0)
        PSORAM_FATAL("cache '", params_.name, "': bad geometry");
    const std::uint64_t num_lines =
        params_.size_bytes / params_.line_bytes;
    if (num_lines == 0 || num_lines % params_.associativity != 0)
        PSORAM_FATAL("cache '", params_.name,
                     "': size must be a multiple of assoc * line");
    num_sets_ = num_lines / params_.associativity;
    if (!isPowerOfTwo(num_sets_))
        PSORAM_FATAL("cache '", params_.name,
                     "': set count must be a power of two");
    lines_.resize(num_lines);
}

std::size_t
Cache::setIndex(BlockAddr line) const
{
    return static_cast<std::size_t>(line & (num_sets_ - 1));
}

CacheAccessResult
Cache::access(BlockAddr line, bool is_write)
{
    Line *set = &lines_[setIndex(line) * params_.associativity];
    ++lru_clock_;

    Line *victim = &set[0];
    for (unsigned way = 0; way < params_.associativity; ++way) {
        Line &entry = set[way];
        if (entry.valid && entry.tag == line) {
            entry.lru = lru_clock_;
            entry.dirty |= is_write;
            ++hits_;
            return CacheAccessResult{true, std::nullopt};
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lru < victim->lru) {
            victim = &entry;
        }
    }

    ++misses_;
    std::optional<BlockAddr> writeback;
    if (victim->valid && victim->dirty) {
        writeback = victim->tag;
        ++writebacks_;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = lru_clock_;
    return CacheAccessResult{false, writeback};
}

bool
Cache::probe(BlockAddr line) const
{
    const Line *set = &lines_[setIndex(line) * params_.associativity];
    for (unsigned way = 0; way < params_.associativity; ++way)
        if (set[way].valid && set[way].tag == line)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &entry : lines_)
        entry = Line{};
}

void
Cache::resetStats()
{
    hits_.reset();
    misses_.reset();
    writebacks_.reset();
}

} // namespace psoram
