#include "mem/core.hh"

namespace psoram {

InOrderCore::InOrderCore(CacheHierarchy &hierarchy)
    : hierarchy_(hierarchy)
{
}

CoreRunStats
InOrderCore::run(TraceStream &trace, const MemRequestHandler &memory)
{
    CoreRunStats stats;
    const std::uint64_t misses_before = hierarchy_.llcMisses();

    TraceRecord record;
    while (trace.next(record)) {
        // One cycle per retired instruction, then block on the access.
        stats.instructions += record.gap;
        stats.cycles += record.gap;
        stats.cycles += hierarchy_.access(record.line, record.is_write,
                                          memory);
        ++stats.mem_accesses;
    }

    stats.llc_misses = hierarchy_.llcMisses() - misses_before;
    return stats;
}

} // namespace psoram
