/**
 * @file
 * Storage backend abstraction: the seam between the ORAM protocol stack
 * and the concrete memory model beneath it.
 *
 * Every component that used to hold a concrete NvmDevice reference —
 * controllers, WPQs, PosMap regions, shadow stashes — talks to this
 * interface instead. A backend provides three facets:
 *
 *   - a *functional* byte store (readBytes/writeBytes), sparse with
 *     zero-fill semantics for never-written lines;
 *   - *vectored* batch variants (readv/writev/writevQuiet) taking a
 *     span list, so a whole ORAM path or WPQ round crosses the seam as
 *     ONE operation — the unit a disk pread/pwrite batch or a future
 *     RPC round trip can be amortized over;
 *   - a *timing* model (access/accessOne) that schedules line transfers
 *     and returns completion cycles;
 *   - *observability*: traffic counters, wear statistics, and a
 *     snapshot/restore image used by the crash-injection framework.
 *
 * The vectored defaults forward span-by-span to the scalar ops, which
 * pins two invariants for backends that do not override them: the
 * functional byte sequence (and hence the golden traffic digests) is
 * identical to issuing the scalar calls one by one, and every span of a
 * noisy writev reports exactly one persist boundary in span order, so
 * the crash-point enumeration is unchanged.
 *
 * Implementations: NvmDevice (in-memory channel/bank model, the
 * default; keeps the scalar-forwarding defaults), FileBackedNvm (same
 * model, image persisted to disk across process restarts), and
 * PagedDiskBackend (out-of-core page-cached tree on a real file, with
 * genuinely batched vectored IO).
 */

#ifndef PSORAM_MEM_BACKEND_HH
#define PSORAM_MEM_BACKEND_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace psoram {

class FaultInjector;
class FlightRecorder;

/** One 64-byte backend line. */
using NvmLine = std::array<std::uint8_t, kBlockDataBytes>;

/** Sparse functional contents: line address -> line bytes. */
using MemoryImage = std::unordered_map<Addr, NvmLine>;

/**
 * One contiguous destination range of a vectored read: fill
 * @c data[0..len) from backend bytes starting at @c addr.
 */
struct ReadSpan
{
    Addr addr = 0;
    std::uint8_t *data = nullptr;
    std::size_t len = 0;
};

/** One contiguous source range of a vectored write. */
struct WriteSpan
{
    Addr addr = 0;
    const std::uint8_t *data = nullptr;
    std::size_t len = 0;
};

class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** @{ Functional access (no timing). Reads of unwritten lines are 0. */
    virtual void readBytes(Addr addr, std::uint8_t *out,
                           std::size_t len) const = 0;
    virtual void writeBytes(Addr addr, const std::uint8_t *in,
                            std::size_t len) = 0;
    /** @} */

    /**
     * Functional write that does NOT report a persist boundary. Used by
     * the background WPQ retirer: entries of a *committed* round are
     * already durable under ADR semantics (a crash anywhere during their
     * retirement is recovered by the power-failure flush), so their
     * landing in the image is not a distinct enumerable crash point.
     * Default: forwards to writeBytes (backends without an injector
     * behave identically either way).
     */
    virtual void
    writeBytesQuiet(Addr addr, const std::uint8_t *in, std::size_t len)
    {
        writeBytes(addr, in, len);
    }

    /**
     * @{ Vectored batch access: one call carries a whole path load, WPQ
     * round, or retire batch across the seam. The defaults forward
     * span-by-span to the scalar virtual ops, which makes them
     * *contractually equivalent* to a loop of scalar calls: the same
     * bytes move in the same order, and a noisy writev reports exactly
     * one persist boundary per span (the span is the durability atom —
     * a WPQ entry or an eviction slot — not the whole batch, so the
     * crash-point enumeration keeps per-entry granularity). Backends
     * with expensive per-call costs (disk seeks, RPC round trips)
     * override these to batch the physical IO; they must preserve both
     * properties. Timing stays a caller concern: callers schedule the
     * constituent line transfers through access/accessOne exactly as
     * they did around scalar calls.
     */
    virtual void
    readv(const ReadSpan *spans, std::size_t n) const
    {
        for (std::size_t i = 0; i < n; ++i)
            readBytes(spans[i].addr, spans[i].data, spans[i].len);
    }

    virtual void
    writev(const WriteSpan *spans, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            writeBytes(spans[i].addr, spans[i].data, spans[i].len);
    }

    virtual void
    writevQuiet(const WriteSpan *spans, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            writeBytesQuiet(spans[i].addr, spans[i].data, spans[i].len);
    }

    /**
     * Quiet write to a *side region*: a reserved address range (the
     * flight-recorder ring) that never aliases protocol traffic. Like
     * writevQuiet — no persist boundaries, not an enumerable crash
     * point — but additionally exempt from program-order guarantees
     * against pending protocol writes: a decorator that queues or
     * reorders protocol traffic (WriteBehindNvm) lands side writes on
     * the durable medium directly, WITHOUT flushing its queue, since
     * no read or recovery path can observe an ordering between a side
     * record and tree traffic. Default: forwards to writevQuiet.
     */
    virtual void
    writevSide(const WriteSpan *spans, std::size_t n)
    {
        writevQuiet(spans, n);
    }

    void
    readv(const std::vector<ReadSpan> &spans) const
    {
        readv(spans.data(), spans.size());
    }
    void
    writev(const std::vector<WriteSpan> &spans)
    {
        writev(spans.data(), spans.size());
    }
    void
    writevQuiet(const std::vector<WriteSpan> &spans)
    {
        writevQuiet(spans.data(), spans.size());
    }
    /** @} */

    /**
     * Durability barrier for *quiet* writes. Quiet writes model data
     * that is already durable at the protocol level (ADR-covered WPQ
     * entries being retired), so in-memory backends need nothing here;
     * a write-back backend (PagedDiskBackend) flushes its dirty page
     * cache and fsyncs so the physical medium catches up. Never reports
     * persist boundaries — it is called from background retire threads
     * outside the enumerable protocol sequence.
     */
    virtual void persistBarrier() {}

    /**
     * Crash model hook: discard any *volatile* state the backend holds
     * in front of its durable medium (e.g. a RAM page cache). The crash
     * framework calls this at the simulated power-failure point, before
     * the ADR flush replays in-flight WPQ entries, so recovery reads
     * observe only what had physically reached the medium. In-memory
     * backends, whose whole store models durable NVM, lose nothing.
     */
    virtual void dropVolatile() {}

    /**
     * Timing-only access: schedule @p len bytes starting at @p addr as
     * 64-byte line transfers.
     *
     * @param earliest cycle the request arrives at the memory controller
     * @return completion cycle of the last line transfer
     */
    virtual Cycle access(Addr addr, std::size_t len, bool is_write,
                         Cycle earliest) = 0;

    /**
     * Timing-only access of exactly one transaction (one burst) at the
     * line containing @p addr.
     */
    virtual Cycle accessOne(Addr addr, bool is_write, Cycle earliest) = 0;

    /** @{ Functional + timing in one call. */
    Cycle
    readTimed(Addr addr, std::uint8_t *out, std::size_t len,
              Cycle earliest)
    {
        readBytes(addr, out, len);
        return access(addr, len, false, earliest);
    }
    Cycle
    writeTimed(Addr addr, const std::uint8_t *in, std::size_t len,
               Cycle earliest)
    {
        writeBytes(addr, in, len);
        return access(addr, len, true, earliest);
    }
    /** @} */

    /** Addressable capacity in bytes (bounds checking only). */
    virtual std::uint64_t capacity() const = 0;

    /** @{ Aggregate traffic statistics. */
    virtual std::uint64_t totalReads() const = 0;
    virtual std::uint64_t totalWrites() const = 0;
    /** @} */

    /** @{ Wear statistics (NVM lifetime proxy). */
    virtual std::uint64_t distinctLinesWritten() const = 0;
    virtual std::uint64_t maxLineWrites() const = 0;
    virtual double meanLineWrites() const = 0;
    /** @} */

    virtual void resetStats() = 0;

    /**
     * @{ Snapshot / restore of the functional contents; the
     * crash-injection framework uses this to model "persistent state
     * survives, volatile state is lost". The image is materialized on
     * demand (backends are free to store contents in a different
     * layout internally); all-zero lines may be elided.
     */
    virtual MemoryImage image() const = 0;
    virtual void restoreImage(const MemoryImage &img) = 0;
    /** @} */

    /**
     * @{ Fault injection (nvm/fault_injector.hh). When set, the backend
     * reports every functional write as a persist boundary so the
     * crash-point enumerator can abort execution at any of them. Null
     * (the default) costs one branch per write.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        fault_injector_ = injector;
    }
    FaultInjector *faultInjector() const { return fault_injector_; }
    /** @} */

    /**
     * @{ Flight recorder (nvm/flight_recorder.hh). When set, backends
     * with a checkpoint notion (FileBackedNvm) stamp a black-box marker
     * per image persist. Non-owning; the owner must outlive the
     * backend's last write (sim::System orders its members so).
     */
    void setFlightRecorder(FlightRecorder *recorder)
    {
        flight_recorder_ = recorder;
    }
    FlightRecorder *flightRecorder() const { return flight_recorder_; }
    /** @} */

  protected:
    FaultInjector *fault_injector_ = nullptr;
    FlightRecorder *flight_recorder_ = nullptr;
};

} // namespace psoram

#endif // PSORAM_MEM_BACKEND_HH
