/**
 * @file
 * Storage backend abstraction: the seam between the ORAM protocol stack
 * and the concrete memory model beneath it.
 *
 * Every component that used to hold a concrete NvmDevice reference —
 * controllers, WPQs, PosMap regions, shadow stashes — talks to this
 * interface instead. A backend provides three facets:
 *
 *   - a *functional* byte store (readBytes/writeBytes), sparse with
 *     zero-fill semantics for never-written lines;
 *   - a *timing* model (access/accessOne) that schedules line transfers
 *     and returns completion cycles;
 *   - *observability*: traffic counters, wear statistics, and a
 *     snapshot/restore image used by the crash-injection framework.
 *
 * Implementations: NvmDevice (in-memory channel/bank model, the default)
 * and FileBackedNvm (same model, with the image persisted to disk so
 * crash recovery can be demonstrated across process restarts).
 */

#ifndef PSORAM_MEM_BACKEND_HH
#define PSORAM_MEM_BACKEND_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace psoram {

class FaultInjector;

/** One 64-byte backend line. */
using NvmLine = std::array<std::uint8_t, kBlockDataBytes>;

/** Sparse functional contents: line address -> line bytes. */
using MemoryImage = std::unordered_map<Addr, NvmLine>;

class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /** @{ Functional access (no timing). Reads of unwritten lines are 0. */
    virtual void readBytes(Addr addr, std::uint8_t *out,
                           std::size_t len) const = 0;
    virtual void writeBytes(Addr addr, const std::uint8_t *in,
                            std::size_t len) = 0;
    /** @} */

    /**
     * Functional write that does NOT report a persist boundary. Used by
     * the background WPQ retirer: entries of a *committed* round are
     * already durable under ADR semantics (a crash anywhere during their
     * retirement is recovered by the power-failure flush), so their
     * landing in the image is not a distinct enumerable crash point.
     * Default: forwards to writeBytes (backends without an injector
     * behave identically either way).
     */
    virtual void
    writeBytesQuiet(Addr addr, const std::uint8_t *in, std::size_t len)
    {
        writeBytes(addr, in, len);
    }

    /**
     * Timing-only access: schedule @p len bytes starting at @p addr as
     * 64-byte line transfers.
     *
     * @param earliest cycle the request arrives at the memory controller
     * @return completion cycle of the last line transfer
     */
    virtual Cycle access(Addr addr, std::size_t len, bool is_write,
                         Cycle earliest) = 0;

    /**
     * Timing-only access of exactly one transaction (one burst) at the
     * line containing @p addr.
     */
    virtual Cycle accessOne(Addr addr, bool is_write, Cycle earliest) = 0;

    /** @{ Functional + timing in one call. */
    Cycle
    readTimed(Addr addr, std::uint8_t *out, std::size_t len,
              Cycle earliest)
    {
        readBytes(addr, out, len);
        return access(addr, len, false, earliest);
    }
    Cycle
    writeTimed(Addr addr, const std::uint8_t *in, std::size_t len,
               Cycle earliest)
    {
        writeBytes(addr, in, len);
        return access(addr, len, true, earliest);
    }
    /** @} */

    /** Addressable capacity in bytes (bounds checking only). */
    virtual std::uint64_t capacity() const = 0;

    /** @{ Aggregate traffic statistics. */
    virtual std::uint64_t totalReads() const = 0;
    virtual std::uint64_t totalWrites() const = 0;
    /** @} */

    /** @{ Wear statistics (NVM lifetime proxy). */
    virtual std::uint64_t distinctLinesWritten() const = 0;
    virtual std::uint64_t maxLineWrites() const = 0;
    virtual double meanLineWrites() const = 0;
    /** @} */

    virtual void resetStats() = 0;

    /**
     * @{ Snapshot / restore of the functional contents; the
     * crash-injection framework uses this to model "persistent state
     * survives, volatile state is lost". The image is materialized on
     * demand (backends are free to store contents in a different
     * layout internally); all-zero lines may be elided.
     */
    virtual MemoryImage image() const = 0;
    virtual void restoreImage(const MemoryImage &img) = 0;
    /** @} */

    /**
     * @{ Fault injection (nvm/fault_injector.hh). When set, the backend
     * reports every functional write as a persist boundary so the
     * crash-point enumerator can abort execution at any of them. Null
     * (the default) costs one branch per write.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        fault_injector_ = injector;
    }
    FaultInjector *faultInjector() const { return fault_injector_; }
    /** @} */

  protected:
    FaultInjector *fault_injector_ = nullptr;
};

} // namespace psoram

#endif // PSORAM_MEM_BACKEND_HH
