/**
 * @file
 * File-backed trace streams.
 *
 * Besides the synthetic generator, the library can replay externally
 * captured memory traces (e.g., converted pin/simpoint dumps) from a
 * simple text format — one record per line:
 *
 *     <gap> <R|W> <hex line address>
 *
 * Lines starting with '#' are comments. This gives downstream users a
 * way to evaluate PS-ORAM on their own workloads without touching the
 * generator.
 */

#ifndef PSORAM_TRACE_TRACE_FILE_HH
#define PSORAM_TRACE_TRACE_FILE_HH

#include <string>
#include <vector>

#include "trace/generator.hh"

namespace psoram {

/** In-memory replayable trace. */
class VectorTrace : public TraceStream
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {
    }

    void
    append(const TraceRecord &record)
    {
        records_.push_back(record);
    }

    bool next(TraceRecord &out) override;
    void reset() override { cursor_ = 0; }

    std::size_t size() const { return records_.size(); }

  private:
    std::vector<TraceRecord> records_;
    std::size_t cursor_ = 0;
};

/**
 * Parse the text trace format.
 * Fatal on malformed input (user error).
 */
VectorTrace loadTraceFile(const std::string &path);

/** Parse trace records from an already-loaded string (testing). */
VectorTrace parseTrace(const std::string &text);

/** Serialize a trace back to the text format. */
std::string formatTrace(VectorTrace &trace);

} // namespace psoram

#endif // PSORAM_TRACE_TRACE_FILE_HH
