#include "trace/workloads.hh"

namespace psoram {

const std::vector<WorkloadSpec> &
spec2006Workloads()
{
    // Table 4 of the paper. The mem/write fractions are generator
    // parameters, not published values; they only set the density of
    // cache-hitting accesses around the calibrated miss stream.
    static const std::vector<WorkloadSpec> workloads = {
        {"401.bzip2", 61.16},
        {"403.gcc", 1.19},
        {"429.mcf", 4.66},
        {"445.gobmk", 29.60},
        {"456.hmmer", 4.53},
        {"458.sjeng", 110.99},
        {"462.libquantum", 18.27},
        {"464.h264ref", 19.74},
        {"471.omnetpp", 7.84},
        {"483.xalancbmk", 8.99},
        {"444.namd", 8.08},
        {"453.povray", 6.12},
        {"470.lbm", 18.38},
        {"482.sphinx3", 17.51},
    };
    return workloads;
}

std::optional<WorkloadSpec>
findWorkload(const std::string &name)
{
    for (const auto &workload : spec2006Workloads())
        if (workload.name == name)
            return workload;
    return std::nullopt;
}

} // namespace psoram
