#include "trace/trace_file.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace psoram {

bool
VectorTrace::next(TraceRecord &out)
{
    if (cursor_ >= records_.size())
        return false;
    out = records_[cursor_++];
    return true;
}

VectorTrace
parseTrace(const std::string &text)
{
    VectorTrace trace;
    std::istringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        TraceRecord record{};
        std::string op, addr;
        if (!(fields >> record.gap >> op >> addr))
            PSORAM_FATAL("trace line ", line_no, ": expected '<gap> "
                         "<R|W> <hex addr>', got '", line, "'");
        if (op == "R" || op == "r")
            record.is_write = false;
        else if (op == "W" || op == "w")
            record.is_write = true;
        else
            PSORAM_FATAL("trace line ", line_no, ": bad op '", op, "'");
        char *end = nullptr;
        record.line = std::strtoull(addr.c_str(), &end, 16);
        if (end == addr.c_str() || *end != '\0')
            PSORAM_FATAL("trace line ", line_no, ": bad address '",
                         addr, "'");
        if (record.gap == 0)
            record.gap = 1;
        trace.append(record);
    }
    return trace;
}

VectorTrace
loadTraceFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        PSORAM_FATAL("cannot open trace file '", path, "'");
    std::stringstream buffer;
    buffer << file.rdbuf();
    return parseTrace(buffer.str());
}

std::string
formatTrace(VectorTrace &trace)
{
    std::ostringstream out;
    out << "# psoram trace: <gap> <R|W> <hex line address>\n";
    trace.reset();
    TraceRecord record{};
    while (trace.next(record)) {
        out << record.gap << " " << (record.is_write ? "W" : "R")
            << " " << std::hex << record.line << std::dec << "\n";
    }
    trace.reset();
    return out.str();
}

} // namespace psoram
