#include "trace/generator.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace psoram {

SyntheticTrace::SyntheticTrace(const WorkloadSpec &workload,
                               const GeneratorParams &params)
    : workload_(workload), params_(params), rng_(params.seed)
{
    if (workload_.mem_fraction <= 0.0 || workload_.mem_fraction > 1.0)
        PSORAM_FATAL("workload '", workload_.name,
                     "': mem_fraction out of range");

    // Per kilo-instruction we emit mem_fraction * 1000 data accesses, of
    // which `mpki` must be misses. The hot set contributes its own cold
    // misses (one per line over the whole run); compensate so the
    // *measured* MPKI lands on the target.
    const double cold_mpki =
        1000.0 * static_cast<double>(params_.hot_lines) /
        static_cast<double>(std::max<std::uint64_t>(params_.instructions,
                                                    1));
    mean_gap_ = 1000.0 / (workload_.mem_fraction * 1000.0);
    // The emitted gap is 1 + floor(X) with X ~ Exp(mean_gap - 1), whose
    // true mean is 1 + 1/(e^(1/lambda) - 1); calibrate the miss
    // probability against that actual access rate so the measured MPKI
    // lands on the Table 4 target.
    const double lambda = mean_gap_ - 1.0;
    const double actual_mean_gap =
        lambda < 1e-9 ? 1.0
                      : 1.0 + 1.0 / (std::exp(1.0 / lambda) - 1.0);
    miss_fraction_ = std::max(0.0, workload_.mpki - cold_mpki) *
                     actual_mean_gap / 1000.0;
    if (miss_fraction_ > 1.0)
        PSORAM_FATAL("workload '", workload_.name,
                     "': MPKI exceeds access rate; raise mem_fraction");

    // Spread the regions deterministically through the logical address
    // space so different workloads touch different ORAM blocks. Small
    // address spaces (unit tests) clamp the regions to fit.
    Rng layout(params_.seed ^ 0xabcdef12345678ULL);
    const std::uint64_t span =
        std::max<std::uint64_t>(params_.address_space_lines, 4);
    const std::uint64_t half = span / 2;
    params_.hot_lines = std::min(params_.hot_lines, half);
    params_.stream_lines = std::min(params_.stream_lines, half);
    hot_base_ = layout.nextBelow(
        std::max<std::uint64_t>(1, half - params_.hot_lines + 1));
    stream_base_ = half + layout.nextBelow(std::max<std::uint64_t>(
        1, half - params_.stream_lines + 1));
}

BlockAddr
SyntheticTrace::hotLine()
{
    // Skewed hot-set distribution: 80 % of accesses go to 20 % of the
    // set, approximating real working-set locality.
    const std::uint64_t hot = params_.hot_lines;
    if (rng_.nextBool(0.8))
        return hot_base_ + rng_.nextBelow(std::max<std::uint64_t>(1,
                                                                  hot / 5));
    return hot_base_ + rng_.nextBelow(hot);
}

BlockAddr
SyntheticTrace::streamLine()
{
    // Strided walk over a region much larger than the LLC: every visit
    // touches a line whose previous use is at least stream_lines accesses
    // in the past, so it always misses.
    const BlockAddr line = stream_base_ + stream_cursor_;
    stream_cursor_ = (stream_cursor_ + 1) % params_.stream_lines;
    return line;
}

bool
SyntheticTrace::next(TraceRecord &out)
{
    if (instr_emitted_ >= params_.instructions)
        return false;

    // Geometric gap with the calibrated mean (>= 1 instruction: the
    // access itself).
    const double u = std::max(rng_.nextDouble(), 1e-12);
    auto gap = static_cast<std::uint32_t>(
        1.0 + (-std::log(u) * (mean_gap_ - 1.0)));
    gap = std::max<std::uint32_t>(gap, 1);

    const std::uint64_t remaining = params_.instructions - instr_emitted_;
    gap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(gap, remaining));
    instr_emitted_ += gap;

    out.gap = gap;
    out.is_write = rng_.nextBool(workload_.write_fraction);
    out.line = rng_.nextBool(miss_fraction_) ? streamLine() : hotLine();
    return true;
}

void
SyntheticTrace::reset()
{
    rng_ = Rng(params_.seed);
    instr_emitted_ = 0;
    stream_cursor_ = 0;
}

} // namespace psoram
