/**
 * @file
 * SPEC CPU2006 workload roster with the MPKIs published in Table 4.
 *
 * The paper drives its evaluation with simpoint traces of 14 SPEC 2006
 * benchmarks; those traces are not redistributable, so this repository
 * substitutes synthetic traces calibrated to the same per-workload MPKI
 * (see trace/generator.hh and DESIGN.md's substitution table).
 */

#ifndef PSORAM_TRACE_WORKLOADS_HH
#define PSORAM_TRACE_WORKLOADS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace psoram {

struct WorkloadSpec
{
    std::string name;
    /** Target LLC misses per kilo-instruction (Table 4). */
    double mpki;
    /** Fraction of instructions that access data memory. */
    double mem_fraction = 0.30;
    /** Fraction of data accesses that are stores. */
    double write_fraction = 0.30;
};

/** The 14 SPEC 2006 workloads of Table 4 with their published MPKIs. */
const std::vector<WorkloadSpec> &spec2006Workloads();

/** Find a workload by name; nullopt if unknown. */
std::optional<WorkloadSpec> findWorkload(const std::string &name);

} // namespace psoram

#endif // PSORAM_TRACE_WORKLOADS_HH
