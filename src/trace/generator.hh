/**
 * @file
 * Synthetic memory-trace generation calibrated to a target MPKI.
 *
 * Each trace record is a data access annotated with the number of
 * non-memory instructions since the previous access. The generator mixes
 * two address streams:
 *
 *  - a *hot set* sized to fit comfortably in the L2 (these accesses hit
 *    in cache and only shape the instruction mix), and
 *  - a *miss stream* that walks fresh cache lines over a large region
 *    with a reuse distance far beyond the L2 capacity (these accesses
 *    are guaranteed LLC misses).
 *
 * Dialing the ratio of miss-stream accesses to instructions reproduces a
 * workload's published MPKI without needing the original SPEC binaries.
 */

#ifndef PSORAM_TRACE_GENERATOR_HH
#define PSORAM_TRACE_GENERATOR_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"
#include "trace/workloads.hh"

namespace psoram {

/** One data access in a trace. */
struct TraceRecord
{
    /** Instructions retired since the previous record (>= 1). */
    std::uint32_t gap;
    /** Accessed cache-line address (logical block address). */
    BlockAddr line;
    bool is_write;
};

/** Abstract pull-based trace source. */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** @return false when the trace is exhausted. */
    virtual bool next(TraceRecord &out) = 0;

    /** Restart from the beginning (same sequence). */
    virtual void reset() = 0;
};

struct GeneratorParams
{
    /** Total instructions to emit (the paper samples 5M per trace). */
    std::uint64_t instructions = 5'000'000;
    /**
     * Hot-set size in lines. Kept within the L1 capacity so the hot
     * set's recency stays visible to the L1 and the miss stream's L2
     * pollution cannot silently evict it (which would distort the MPKI
     * calibration).
     */
    std::uint64_t hot_lines = 256;
    /** Miss-stream region size in lines (reuse distance >> L2). */
    std::uint64_t stream_lines = 1 << 20;
    /** Number of logical lines addressable (ORAM data capacity). */
    std::uint64_t address_space_lines = 1ULL << 25;
    std::uint64_t seed = 1;
};

/**
 * MPKI-calibrated synthetic trace.
 *
 * Deterministic: the same (workload, params) pair always yields the same
 * sequence, which the crash-consistency tests rely on.
 */
class SyntheticTrace : public TraceStream
{
  public:
    SyntheticTrace(const WorkloadSpec &workload,
                   const GeneratorParams &params = {});

    bool next(TraceRecord &out) override;
    void reset() override;

    const WorkloadSpec &workload() const { return workload_; }
    std::uint64_t emittedInstructions() const { return instr_emitted_; }

  private:
    BlockAddr hotLine();
    BlockAddr streamLine();

    WorkloadSpec workload_;
    GeneratorParams params_;
    Rng rng_;

    /** Probability that a data access belongs to the miss stream. */
    double miss_fraction_;
    /** Mean instruction gap between consecutive data accesses. */
    double mean_gap_;

    std::uint64_t instr_emitted_ = 0;
    std::uint64_t stream_cursor_ = 0;
    /** Base line address of the hot set (derived from the seed). */
    BlockAddr hot_base_ = 0;
    BlockAddr stream_base_ = 0;
};

} // namespace psoram

#endif // PSORAM_TRACE_GENERATOR_HH
