#include "oram/posmap.hh"

#include <array>
#include <cstring>

#include "common/log.hh"

namespace psoram {

PathId
initialPath(std::uint64_t seed, BlockAddr addr, std::uint64_t num_leaves)
{
    // SplitMix64-style PRF; statistical uniformity is all the simulator
    // needs (hardware would use a CSPRNG-filled table).
    std::uint64_t x = seed ^ (addr * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<PathId>(x % num_leaves);
}

PosMap::PosMap(std::uint64_t num_blocks, std::uint64_t num_leaves,
               std::uint64_t seed)
    : num_blocks_(num_blocks), num_leaves_(num_leaves), seed_(seed)
{
    if (num_blocks_ == 0 || num_leaves_ == 0)
        PSORAM_FATAL("PosMap needs non-empty block and leaf spaces");
}

PathId
PosMap::get(BlockAddr addr) const
{
    if (addr >= num_blocks_)
        PSORAM_PANIC("PosMap address ", addr, " out of range");
    const auto it = entries_.find(addr);
    if (it != entries_.end())
        return it->second;
    return initialPath(seed_, addr, num_leaves_);
}

void
PosMap::set(BlockAddr addr, PathId path)
{
    if (addr >= num_blocks_)
        PSORAM_PANIC("PosMap address ", addr, " out of range");
    entries_[addr] = path;
}

void
PosMap::clear()
{
    entries_.clear();
}

PersistentPosMap::PersistentPosMap(Addr base, std::uint64_t num_blocks,
                                   std::uint64_t seed,
                                   std::uint64_t num_leaves)
    : base_(base), num_blocks_(num_blocks), seed_(seed),
      num_leaves_(num_leaves)
{
}

Addr
PersistentPosMap::entryAddr(BlockAddr addr) const
{
    if (addr >= num_blocks_)
        PSORAM_PANIC("persistent PosMap address ", addr, " out of range");
    return base_ + addr * kEntryBytes;
}

std::uint32_t
PersistentPosMap::encodeEntry(PathId path)
{
    if (path & kValidBit)
        PSORAM_PANIC("path id ", path, " collides with the valid bit");
    return static_cast<std::uint32_t>(path) | kValidBit;
}

std::array<std::uint8_t, PersistentPosMap::kEntryBytes>
PersistentPosMap::encodeRecord(PathId path, std::uint32_t epoch)
{
    std::array<std::uint8_t, kEntryBytes> record{};
    const std::uint32_t word = encodeEntry(path);
    std::memcpy(record.data(), &word, sizeof(word));
    std::memcpy(record.data() + 4, &epoch, sizeof(epoch));
    return record;
}

PersistentPosMap::Entry
PersistentPosMap::readFullEntry(const MemoryBackend &device,
                                BlockAddr addr) const
{
    std::uint8_t raw[kEntryBytes] = {};
    device.readBytes(entryAddr(addr), raw, kEntryBytes);
    std::uint32_t word = 0, epoch = 0;
    std::memcpy(&word, raw, sizeof(word));
    std::memcpy(&epoch, raw + 4, sizeof(epoch));
    if (word & kValidBit)
        return Entry{static_cast<PathId>(word & ~kValidBit), epoch};
    return Entry{initialPath(seed_, addr, num_leaves_), 0};
}

PathId
PersistentPosMap::readEntry(const MemoryBackend &device, BlockAddr addr) const
{
    return readFullEntry(device, addr).path;
}

void
PersistentPosMap::writeEntry(MemoryBackend &device, BlockAddr addr,
                             PathId path, std::uint32_t epoch) const
{
    const auto record = encodeRecord(path, epoch);
    device.writeBytes(entryAddr(addr), record.data(), record.size());
}

} // namespace psoram
