/**
 * @file
 * SubtreeCache: decrypted path buckets under fine-grained locking, the
 * shared state that lets access N+1's path fetch overlap access N's
 * write-back in the pipelined engine.
 *
 * The cache maps BucketId -> the bucket's decoded slots. Buckets are
 * striped over independent mutexes (per-bucket locking collapsed to a
 * fixed stripe count), so concurrent fetch threads filling disjoint
 * buckets rarely contend. A fetch *pins* every bucket of its path;
 * pinned buckets are immune to capacity eviction until the access that
 * pinned them retires (stage 3 unpins). The evictor *updates* buckets
 * it rewrites, so the stage-3 integration of a later in-flight access
 * always reads post-eviction contents — the cache, not the raw device,
 * is the coherence point between overlapped accesses.
 *
 * Locking discipline (DESIGN.md §12): a stripe mutex is a leaf lock —
 * no other lock is ever acquired while one is held, except the backing
 * device's shared read lock inside a fill callback (device_mutex is
 * also a leaf; the two nest in one fixed order: stripe then device).
 */

#ifndef PSORAM_ORAM_SUBTREE_CACHE_HH
#define PSORAM_ORAM_SUBTREE_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "oram/block.hh"

namespace psoram {

class SubtreeCache
{
  public:
    struct Config
    {
        /** Capacity in buckets across all stripes (0 = unbounded). */
        std::size_t capacity_buckets = 4096;
        unsigned stripes = 16;
    };

    /** Fills a missing bucket's slots (device read + decode). */
    using FillFn =
        std::function<void(BucketId, std::vector<PlainBlock> &)>;

    explicit SubtreeCache(unsigned bucket_slots)
        : SubtreeCache(bucket_slots, Config())
    {
    }
    SubtreeCache(unsigned bucket_slots, Config config);

    /**
     * Ensure @p bucket is resident and pin it. On a miss the @p fill
     * callback populates the slots under the stripe lock (concurrent
     * fills of the same bucket collapse to one). Every pinFill must be
     * balanced by an unpin once the access retires.
     */
    void pinFill(BucketId bucket, const FillFn &fill);

    void unpin(BucketId bucket);

    /**
     * Copy a resident bucket's slots into @p out.
     * @return false if the bucket is not resident (caller refills)
     */
    bool read(BucketId bucket, std::vector<PlainBlock> &out) const;

    /**
     * Residency probe without copying or touching recency state —
     * advisory only (the answer can change the moment the stripe lock
     * drops). The vectored path fetch uses it to decide which buckets
     * to include in the batched device read before pinning.
     */
    bool contains(BucketId bucket) const;

    /**
     * Upsert a bucket's post-eviction contents. Preserves the pin
     * count of a resident entry; an absent bucket is inserted unpinned
     * (the durable copy is identical, so losing it to capacity
     * eviction is safe).
     */
    void update(BucketId bucket, const std::vector<PlainBlock> &slots);

    /** Drop every unpinned bucket (recovery / reset). */
    void clear();

    unsigned bucketSlots() const { return bucket_slots_; }

    /** @{ Effectiveness counters (thread-safe). */
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    /** @} */

    /** Hits / (hits + misses); 0 when the cache is untouched. */
    double hitRate() const;

    /** Register hit/miss/eviction counters as "<prefix>_*" with
     *  @p group (metrics export; the counters outlive registration as
     *  long as the cache does). */
    void registerStats(StatGroup &group, const std::string &prefix) const;

    const Config &config() const { return config_; }

    /** Resident buckets across all stripes (test observability). */
    std::size_t residentBuckets() const;

    /** Sum of pin counts across all stripes (leak detection). */
    std::uint64_t totalPins() const;

  private:
    struct Entry
    {
        std::vector<PlainBlock> slots;
        std::uint32_t pins = 0;
        /** Position in the stripe's LRU list (front = coldest). */
        std::list<BucketId>::iterator lru_pos;
    };

    struct Stripe
    {
        mutable std::mutex mutex;
        std::unordered_map<BucketId, Entry> buckets;
        /** Recency order, front = least recently used. Kept in sync
         *  with `buckets` so eviction is O(1) amortized — a linear
         *  victim scan per insert melts down at large capacities. */
        std::list<BucketId> lru;
    };

    Stripe &stripeFor(BucketId bucket);
    const Stripe &stripeFor(BucketId bucket) const;

    /** Move @p entry to the hot end of the stripe's LRU list. */
    static void touch(Stripe &stripe, Entry &entry);

    /** Evict LRU unpinned entries while the stripe is over budget. */
    void enforceCapacity(Stripe &stripe);

    unsigned bucket_slots_;
    Config config_;
    std::size_t per_stripe_capacity_; // 0 = unbounded
    std::vector<Stripe> stripes_;

    /** common/stats.hh Counters (relaxed-atomic) so they register
     *  directly with a StatGroup for the metrics exporter. */
    Counter hits_;
    Counter misses_;
    Counter evictions_;
};

} // namespace psoram

#endif // PSORAM_ORAM_SUBTREE_CACHE_HH
