#include "oram/recursive_posmap.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace psoram {

PosMapTreeLevel::PosMapTreeLevel(const Params &params, MemoryBackend &device,
                                 BlockCodec &codec, Rng &rng,
                                 PosResolver missing_resolver)
    : params_(params), device_(device), codec_(codec), rng_(rng),
      geo_(params.layout.geometry), stash_(params.stash_capacity),
      resolver_(std::move(missing_resolver))
{
    if (params_.num_entry_blocks > geo_.numSlots())
        PSORAM_FATAL("PosMap tree too small for ",
                     params_.num_entry_blocks, " entry blocks");
}

PathId
PosMapTreeLevel::blockPosition(std::uint64_t block_index) const
{
    const auto it = positions_.find(block_index);
    if (it != positions_.end())
        return it->second;
    return resolver_(block_index);
}

PosMapTreeLevel::EntryWords
PosMapTreeLevel::unpack(const StashEntry &entry)
{
    EntryWords out;
    std::memcpy(out.words.data(), entry.data.data(), kBlockDataBytes);
    return out;
}

void
PosMapTreeLevel::pack(StashEntry &entry, const EntryWords &words)
{
    std::memcpy(entry.data.data(), words.words.data(), kBlockDataBytes);
}

PosMapTreeLevel::AccessOutcome
PosMapTreeLevel::accessEntry(std::uint64_t entry_index,
                             std::uint32_t new_word,
                             const ReadHook &read_hook)
{
    AccessOutcome outcome;
    outcome.block_index = entry_index / kEntriesPerPosBlock;
    const unsigned offset =
        static_cast<unsigned>(entry_index % kEntriesPerPosBlock);
    const std::uint64_t b = outcome.block_index;

    StashEntry *entry = stash_.find(b);
    if (entry) {
        // Stash-resident entry block: update in place; no path access,
        // no remap (the block is not in the tree, so its position is
        // only consumed when it is eventually evicted).
        ++stash_hits_;
        outcome.stash_hit = true;
        outcome.new_block_pos = entry->path;
        EntryWords words = unpack(*entry);
        outcome.old_word = words.words[offset];
        words.words[offset] = new_word;
        pack(*entry, words);
        return outcome;
    }

    // Remap the entry block: its current path is consumed by this
    // lookup.
    const PathId old_pos = blockPosition(b);
    const PathId new_pos = rng_.nextPath(geo_.numLeaves());
    positions_[b] = new_pos;
    dirty_positions_[b] = true;
    outcome.new_block_pos = new_pos;

    // Load the block's path. Track each loaded live block's slot so the
    // eviction can rewrite it in place (identity placement).
    struct LoadedSlot
    {
        unsigned level;
        unsigned slot;
        BlockAddr addr; // kDummyBlockAddr for dummy/free slots
    };
    std::vector<LoadedSlot> slots;
    slots.reserve(geo_.blocksPerPath());

    for (unsigned level = 0; level <= geo_.height; ++level) {
        const BucketId bucket = geo_.bucketAt(old_pos, level);
        for (unsigned s = 0; s < geo_.bucket_slots; ++s) {
            const Addr slot_addr = params_.layout.slotAddr(bucket, s);
            SlotBytes raw{};
            device_.readBytes(slot_addr, raw.data(), kSlotBytes);
            if (read_hook)
                read_hook(slot_addr);
            ++outcome.slots_read;
            const PlainBlock block = codec_.decode(raw);
            if (block.isDummy() || stash_.find(block.addr)) {
                slots.push_back({level, s, kDummyBlockAddr});
                continue;
            }
            StashEntry loaded;
            loaded.addr = block.addr;
            loaded.path = block.path;
            loaded.data = block.data;
            stash_.insert(loaded);
            slots.push_back({level, s, block.addr});
        }
    }
    outcome.accessed_leaf = old_pos;

    // Materialize the target entry block if it was never written.
    entry = stash_.find(b);
    if (!entry) {
        StashEntry fresh;
        fresh.addr = b;
        fresh.path = old_pos;
        stash_.insert(fresh);
        entry = stash_.find(b);
    }
    EntryWords words = unpack(*entry);
    outcome.old_word = words.words[offset];
    words.words[offset] = new_word;
    pack(*entry, words);
    entry->path = new_pos;

    // Greedy eviction of path old_pos, leaf-first with deepest-eligible
    // blocks preferred. The Rcr-PS-ORAM design commits the whole
    // eviction (this path + the data path + the shadows) in a single
    // atomic WPQ bracket, so intra-eviction write ordering carries no
    // crash-consistency obligation here.
    const unsigned levels = geo_.levels();
    const unsigned z = geo_.bucket_slots;
    evict_plan_.assign(static_cast<std::size_t>(levels) * z,
                       PlainBlock::dummy());

    // commonLevel is cached per entry; the cache mirrors the stash's
    // swap-with-last removal so deepest-eligible tie-breaks stay
    // bit-identical to the per-slot rescan this replaces.
    evict_depths_.clear();
    for (std::size_t i = 0; i < stash_.size(); ++i)
        evict_depths_.push_back(
            geo_.commonLevel(stash_.at(i).path, old_pos));
    for (int level = static_cast<int>(geo_.height); level >= 0;
         --level) {
        for (unsigned s = 0; s < z; ++s) {
            std::size_t best = stash_.size();
            unsigned best_depth = 0;
            for (std::size_t i = 0; i < stash_.size(); ++i) {
                const unsigned common = evict_depths_[i];
                if (common >= static_cast<unsigned>(level) &&
                    (best == stash_.size() || common > best_depth)) {
                    best = i;
                    best_depth = common;
                }
            }
            if (best == stash_.size())
                break;
            evict_plan_[static_cast<std::size_t>(level) * z + s] =
                stash_.at(best).toBlock();
            stash_.removeAt(best);
            evict_depths_[best] = evict_depths_.back();
            evict_depths_.pop_back();
        }
    }
    if (!stash_.empty())
        unplaced_ += stash_.size();
    (void)slots;

    // Emit the full re-encrypted path.
    outcome.writes.reserve(geo_.blocksPerPath());
    for (unsigned level = 0; level < levels; ++level) {
        const BucketId bucket = geo_.bucketAt(old_pos, level);
        for (unsigned s = 0; s < z; ++s) {
            const PlainBlock &block =
                evict_plan_[static_cast<std::size_t>(level) * z + s];
            EvictWrite write;
            write.addr = params_.layout.slotAddr(bucket, s);
            write.data = codec_.encode(block);
            outcome.writes.push_back(write);
            if (!block.isDummy())
                outcome.placed.emplace_back(block.addr, block.path);
        }
    }
    return outcome;
}

bool
PosMapTreeLevel::isPositionDirty(std::uint64_t block_index) const
{
    const auto it = dirty_positions_.find(block_index);
    return it != dirty_positions_.end() && it->second;
}

void
PosMapTreeLevel::markPositionDirty(std::uint64_t block_index)
{
    dirty_positions_[block_index] = true;
}

void
PosMapTreeLevel::clearPositionDirty(std::uint64_t block_index)
{
    dirty_positions_.erase(block_index);
}

void
PosMapTreeLevel::restoreStashEntry(const StashEntry &entry)
{
    stash_.insert(entry);
    positions_[entry.addr] = entry.path;
    markPositionDirty(entry.addr);
}

void
PosMapTreeLevel::loseVolatileState()
{
    stash_.clear();
    positions_.clear();
    dirty_positions_.clear();
}

} // namespace psoram
