#include "oram/integrity.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"
#include "obs/trace.hh"

namespace psoram {

namespace {

/** Root record layout (kRootRecordBytes = 128):
 *    [0, 8)    magic "PSORINT1"
 *    [8, 16)   commit sequence number, little-endian
 *    [16, 24)  version watermark (every issued version is below it)
 *    [24, 32)  slot-codec IV watermark
 *    [32, 64)  Merkle root hash (zero in mac mode)
 *    [64, 96)  reserved, zero
 *    [96, 112) GMAC tag over (record address, seq, payload[0, 96))
 *    [112, 128) reserved, zero
 */
constexpr std::uint64_t kRootMagic = 0x31544e49524f5350ULL; // "PSORINT1"
constexpr std::size_t kRootSeqOffset = 8;
constexpr std::size_t kRootVersionOffset = 16;
constexpr std::size_t kRootIvOffset = 24;
constexpr std::size_t kRootHashOffset = 32;
constexpr std::size_t kRootTagOffset = 96;
constexpr std::size_t kRootPayloadBytes = 96;

std::uint64_t
loadLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
}

void
storeLe64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, 8);
}

bool
allZero(const std::uint8_t *p, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        if (p[i] != 0)
            return false;
    return true;
}

/**
 * The GMAC subkey is derived from the system key instead of reusing it:
 * the slot codec runs CTR under the raw key, and a keystream block that
 * happened to hit counter block 0^128 would equal the GHASH subkey —
 * key separation removes the interaction outright.
 */
Aes128::Key
deriveMacKey(const Aes128::Key &key)
{
    Aes128 kdf(key);
    Aes128::Block label = {'p', 's', 'o', 'r', 'a', 'm', '.', 'g',
                           'm', 'a', 'c', '.', 'k', 'd', 'f', '1'};
    kdf.encryptBlock(label);
    Aes128::Key derived;
    std::copy(label.begin(), label.end(), derived.begin());
    return derived;
}

} // namespace

const char *
integrityModeName(IntegrityMode mode)
{
    switch (mode) {
    case IntegrityMode::Off:
        return "off";
    case IntegrityMode::Mac:
        return "mac";
    case IntegrityMode::Tree:
        return "tree";
    }
    return "?";
}

bool
parseIntegrityMode(const std::string &text, IntegrityMode &out)
{
    if (text == "off")
        out = IntegrityMode::Off;
    else if (text == "mac")
        out = IntegrityMode::Mac;
    else if (text == "tree")
        out = IntegrityMode::Tree;
    else
        return false;
    return true;
}

const char *
IntegrityError::kindName(Kind kind)
{
    switch (kind) {
    case Kind::MacMismatch:
        return "mac-mismatch";
    case Kind::HashMismatch:
        return "hash-mismatch";
    case Kind::RootMismatch:
        return "root-mismatch";
    case Kind::TornRecord:
        return "torn-record";
    }
    return "?";
}

IntegrityError::IntegrityError(Kind kind, Addr addr,
                               const std::string &detail)
    : std::runtime_error(std::string("integrity violation (") +
                         kindName(kind) + ") at NVM address " +
                         std::to_string(addr) + ": " + detail),
      kind_(kind), addr_(addr)
{
}

IntegrityManager::IntegrityManager(const Aes128::Key &key,
                                   IntegrityMode mode,
                                   const TreeLayout &layout,
                                   Addr root_record_base,
                                   Addr merkle_region_base)
    : mode_(mode), layout_(layout), root_record_base_(root_record_base),
      merkle_region_base_(merkle_region_base), gmac_(deriveMacKey(key))
{
    if (mode_ == IntegrityMode::Off)
        PSORAM_PANIC("IntegrityManager constructed with mode=off");
    if (layout_.record_bytes != kIntegrityRecordBytes)
        PSORAM_PANIC("integrity requires ", kIntegrityRecordBytes,
                     "-byte records, layout has ", layout_.record_bytes);
    initFresh();
}

void
IntegrityManager::initFresh()
{
    next_version_ = 1;
    commit_seq_ = 0;
    nodes_repaired_ = 0;
    dirty_nodes_.clear();
    if (mode_ != IntegrityMode::Tree) {
        node_hash_.assign(1, Sha256::Digest{});
        return;
    }

    const TreeGeometry &geo = layout_.geometry;
    const std::uint8_t zero_record[kIntegrityRecordBytes] = {};
    const Sha256::Digest d_rec =
        Sha256::digest(zero_record, sizeof(zero_record));
    Sha256 h;
    for (unsigned s = 0; s < geo.bucket_slots; ++s)
        h.update(d_rec.data(), d_rec.size());
    const Sha256::Digest d_bucket = h.finish();

    // Per-level defaults for the all-zero tree, leaves up.
    std::vector<Sha256::Digest> d_node(geo.levels());
    for (unsigned level = geo.levels(); level-- > 0;) {
        h.reset();
        h.update(d_bucket.data(), d_bucket.size());
        if (level + 1 < geo.levels()) {
            h.update(d_node[level + 1].data(), kHashBytes);
            h.update(d_node[level + 1].data(), kHashBytes);
        }
        d_node[level] = h.finish();
    }

    rec_hash_.assign(geo.numSlots(), d_rec);
    bucket_hash_.assign(geo.numBuckets(), d_bucket);
    node_hash_.resize(geo.numBuckets());
    for (unsigned level = 0; level < geo.levels(); ++level) {
        const std::uint64_t first = (1ULL << level) - 1;
        const std::uint64_t last =
            std::min<std::uint64_t>((2ULL << level) - 1,
                                    geo.numBuckets());
        for (std::uint64_t b = first; b < last; ++b)
            node_hash_[b] = d_node[level];
    }
}

Gcm::Tag
IntegrityManager::recordTag(Addr record_addr, std::uint64_t version,
                            const std::uint8_t *cipher) const
{
    // IV = (version, record index): the version counter never repeats,
    // so no (key, IV) pair is ever reused.
    Gcm::Iv iv{};
    storeLe64(iv.data(), version);
    const std::uint32_t idx = static_cast<std::uint32_t>(
        (record_addr - layout_.base) / layout_.record_bytes);
    std::memcpy(iv.data() + 8, &idx, 4);

    std::uint8_t aad[16 + kSlotBytes];
    storeLe64(aad, record_addr);
    storeLe64(aad + 8, version);
    std::memcpy(aad + 16, cipher, kSlotBytes);
    return gmac_.mac(iv, aad, sizeof(aad));
}

Gcm::Tag
IntegrityManager::rootRecordTag(std::uint64_t seq,
                                const std::uint8_t *payload) const
{
    Gcm::Iv iv{};
    storeLe64(iv.data(), seq);
    std::memset(iv.data() + 8, 0xFF, 4); // disjoint from record IVs

    std::uint8_t aad[16 + kRootPayloadBytes];
    storeLe64(aad, root_record_base_);
    storeLe64(aad + 8, seq);
    std::memcpy(aad + 16, payload, kRootPayloadBytes);
    return gmac_.mac(iv, aad, sizeof(aad));
}

void
IntegrityManager::sealRecord(BucketId bucket, unsigned slot,
                             const SlotBytes &cipher, std::uint8_t *out)
{
    const Addr addr = layout_.slotAddr(bucket, slot);
    const std::uint64_t version = next_version_++;
    std::memset(out, 0, kIntegrityRecordBytes);
    std::memcpy(out, cipher.data(), kSlotBytes);
    const Gcm::Tag tag = recordTag(addr, version, cipher.data());
    std::memcpy(out + kRecordTagOffset, tag.data(), tag.size());
    storeLe64(out + kRecordVersionOffset, version);
}

void
IntegrityManager::verifyRecord(BucketId bucket, unsigned slot,
                               const std::uint8_t *record) const
{
    const Addr addr = layout_.slotAddr(bucket, slot);
    if (mode_ == IntegrityMode::Tree) {
        // The trusted in-RAM hash pins the exact record bytes written
        // last — catches modification AND replay/wipe in one check.
        const Sha256::Digest computed =
            Sha256::digest(record, kIntegrityRecordBytes);
        const std::uint64_t idx = layout_.recordIndex(bucket, slot);
        if (computed != rec_hash_[idx])
            throw IntegrityError(
                IntegrityError::Kind::HashMismatch, addr,
                "record hash disagrees with the trusted Merkle state");
    }

    const std::uint64_t version =
        loadLe64(record + kRecordVersionOffset);
    if (version == 0) {
        if (!allZero(record, kIntegrityRecordBytes))
            throw IntegrityError(
                IntegrityError::Kind::TornRecord, addr,
                "unversioned record with non-zero content");
        return; // never-written slot, decodes as a dummy
    }
    Gcm::Tag stored;
    std::memcpy(stored.data(), record + kRecordTagOffset,
                stored.size());
    if (!Gcm::tagsEqual(stored, recordTag(addr, version, record)))
        throw IntegrityError(IntegrityError::Kind::MacMismatch, addr,
                             "record tag verification failed");
}

Sha256::Digest
IntegrityManager::bucketHashFor(BucketId bucket) const
{
    Sha256 h;
    const std::uint64_t first =
        bucket * layout_.geometry.bucket_slots;
    for (unsigned s = 0; s < layout_.geometry.bucket_slots; ++s)
        h.update(rec_hash_[first + s].data(), kHashBytes);
    return h.finish();
}

Sha256::Digest
IntegrityManager::nodeHashFor(BucketId bucket) const
{
    const std::uint64_t num_buckets = layout_.geometry.numBuckets();
    Sha256 h;
    h.update(bucket_hash_[bucket].data(), kHashBytes);
    if (2 * bucket + 1 < num_buckets)
        h.update(node_hash_[2 * bucket + 1].data(), kHashBytes);
    if (2 * bucket + 2 < num_buckets)
        h.update(node_hash_[2 * bucket + 2].data(), kHashBytes);
    return h.finish();
}

void
IntegrityManager::refreshBucketPath(BucketId bucket, bool mark_dirty)
{
    bucket_hash_[bucket] = bucketHashFor(bucket);
    for (BucketId node = bucket;;) {
        node_hash_[node] = nodeHashFor(node);
        if (mark_dirty)
            dirty_nodes_.insert(node);
        if (node == 0)
            break;
        node = (node - 1) / 2;
    }
}

std::uint64_t
IntegrityManager::recordIndexFor(Addr addr) const
{
    const std::uint64_t footprint = layout_.footprintBytes();
    if (addr < layout_.base || addr >= layout_.base + footprint ||
        (addr - layout_.base) % layout_.record_bytes != 0)
        PSORAM_PANIC("integrity round write at ", addr,
                     " is not a data-tree record address");
    return (addr - layout_.base) / layout_.record_bytes;
}

void
IntegrityManager::noteRoundWrite(Addr addr, const std::uint8_t *record,
                                 std::size_t len)
{
    const std::uint64_t idx = recordIndexFor(addr);
    if (len != layout_.record_bytes)
        PSORAM_PANIC("integrity round write of ", len,
                     " bytes, expected a full record of ",
                     layout_.record_bytes);
    if (mode_ != IntegrityMode::Tree)
        return;
    rec_hash_[idx] = Sha256::digest(record, kIntegrityRecordBytes);
    refreshBucketPath(
        static_cast<BucketId>(idx / layout_.geometry.bucket_slots),
        /*mark_dirty=*/true);
}

WpqEntry
IntegrityManager::makeRootRecord(std::uint64_t next_slot_iv)
{
    std::uint8_t payload[kRootRecordBytes] = {};
    const std::uint64_t seq = ++commit_seq_;
    storeLe64(payload, kRootMagic);
    storeLe64(payload + kRootSeqOffset, seq);
    storeLe64(payload + kRootVersionOffset, next_version_);
    storeLe64(payload + kRootIvOffset, next_slot_iv);
    if (mode_ == IntegrityMode::Tree)
        std::memcpy(payload + kRootHashOffset, node_hash_[0].data(),
                    kHashBytes);
    const Gcm::Tag tag = rootRecordTag(seq, payload);
    std::memcpy(payload + kRootTagOffset, tag.data(), tag.size());

    WpqEntry entry;
    entry.addr = root_record_base_;
    entry.data.assign(payload, payload + kRootRecordBytes);
    return entry;
}

void
IntegrityManager::streamDirtyNodes(MemoryBackend &device)
{
    if (mode_ != IntegrityMode::Tree || dirty_nodes_.empty())
        return;
    for (const BucketId node : dirty_nodes_)
        device.writeBytesQuiet(merkle_region_base_ + node * kHashBytes,
                               node_hash_[node].data(), kHashBytes);
    dirty_nodes_.clear();
}

IntegrityManager::RecoveryStats
IntegrityManager::recoverFromDevice(MemoryBackend &device)
{
    PSORAM_TRACE_SCOPE("recovery", "integrity_recover", 0);
    RecoveryStats stats;
    initFresh();

    const TreeGeometry &geo = layout_.geometry;
    std::uint8_t record[kIntegrityRecordBytes];
    std::uint64_t max_version = 0;
    std::uint64_t max_slot_iv = 0;
    for (BucketId b = 0; b < geo.numBuckets(); ++b) {
        for (unsigned s = 0; s < geo.bucket_slots; ++s) {
            const Addr addr = layout_.slotAddr(b, s);
            device.readBytes(addr, record, sizeof(record));
            const std::uint64_t version =
                loadLe64(record + kRecordVersionOffset);
            if (version == 0) {
                if (!allZero(record, sizeof(record)))
                    throw IntegrityError(
                        IntegrityError::Kind::TornRecord, addr,
                        "unversioned record with non-zero content");
            } else {
                Gcm::Tag stored;
                std::memcpy(stored.data(), record + kRecordTagOffset,
                            stored.size());
                if (!Gcm::tagsEqual(stored,
                                    recordTag(addr, version, record)))
                    throw IntegrityError(
                        IntegrityError::Kind::MacMismatch, addr,
                        "record tag verification failed during "
                        "recovery");
                ++stats.records_verified;
                max_version = std::max(max_version, version);
                max_slot_iv =
                    std::max(max_slot_iv, loadLe64(record));
            }
            if (mode_ == IntegrityMode::Tree)
                rec_hash_[layout_.recordIndex(b, s)] =
                    Sha256::digest(record, sizeof(record));
        }
    }
    if (mode_ == IntegrityMode::Tree)
        for (BucketId b = geo.numBuckets(); b-- > 0;) {
            bucket_hash_[b] = bucketHashFor(b);
            node_hash_[b] = nodeHashFor(b);
        }

    std::uint8_t root[kRootRecordBytes];
    device.readBytes(root_record_base_, root, sizeof(root));
    if (allZero(root, sizeof(root))) {
        // No round ever committed: the tree must still be untouched
        // (every committed round carries a root record).
        if (max_version != 0)
            throw IntegrityError(
                IntegrityError::Kind::RootMismatch, root_record_base_,
                "versioned records present without a committed root "
                "record");
        next_version_ = 1;
        commit_seq_ = 0;
    } else {
        if (loadLe64(root) != kRootMagic)
            throw IntegrityError(IntegrityError::Kind::RootMismatch,
                                 root_record_base_,
                                 "root record magic mismatch");
        const std::uint64_t seq = loadLe64(root + kRootSeqOffset);
        Gcm::Tag stored;
        std::memcpy(stored.data(), root + kRootTagOffset,
                    stored.size());
        if (!Gcm::tagsEqual(stored, rootRecordTag(seq, root)))
            throw IntegrityError(IntegrityError::Kind::RootMismatch,
                                 root_record_base_,
                                 "root record tag verification failed");
        next_version_ = loadLe64(root + kRootVersionOffset);
        stats.slot_iv_floor = loadLe64(root + kRootIvOffset);
        commit_seq_ = seq;
        if (max_version >= next_version_)
            throw IntegrityError(
                IntegrityError::Kind::RootMismatch, root_record_base_,
                "record version at or beyond the committed watermark");
        if (mode_ == IntegrityMode::Tree &&
            std::memcmp(root + kRootHashOffset, node_hash_[0].data(),
                        kHashBytes) != 0)
            throw IntegrityError(
                IntegrityError::Kind::RootMismatch, root_record_base_,
                "recomputed Merkle root disagrees with the committed "
                "root record");
    }

    stats.verify_done_ns = obs::hostNowNs();
    if (mode_ == IntegrityMode::Tree) {
        // The persisted interior nodes are an untrusted accelerator:
        // lazily streamed, possibly stale after a crash. Repair, never
        // believe.
        PSORAM_TRACE_SCOPE("recovery", "node_repair", 0);
        std::uint8_t stored[kHashBytes];
        for (BucketId b = 0; b < geo.numBuckets(); ++b) {
            device.readBytes(merkle_region_base_ + b * kHashBytes,
                             stored, sizeof(stored));
            if (std::memcmp(stored, node_hash_[b].data(), kHashBytes) !=
                0) {
                device.writeBytesQuiet(
                    merkle_region_base_ + b * kHashBytes,
                    node_hash_[b].data(), kHashBytes);
                ++stats.nodes_repaired;
            }
        }
    }
    dirty_nodes_.clear();
    stats.slot_iv_floor = std::max(stats.slot_iv_floor, max_slot_iv);
    nodes_repaired_ = stats.nodes_repaired;
    return stats;
}

} // namespace psoram
