/**
 * @file
 * ORAM tree geometry and NVM address layout.
 *
 * The tree is a complete binary tree of height L (L+1 levels); each node
 * (bucket) holds Z block slots. Buckets are stored in the classic
 * breadth-first flat array: bucket 0 is the root, bucket at (level, index)
 * is (2^level - 1) + index. A path is identified by its leaf label in
 * [0, 2^L).
 */

#ifndef PSORAM_ORAM_TREE_HH
#define PSORAM_ORAM_TREE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "oram/block.hh"

namespace psoram {

struct TreeGeometry
{
    /** Tree height; the paper's 4 GB data ORAM uses L = 23. */
    unsigned height;
    /** Block slots per bucket (the paper uses Z = 4). */
    unsigned bucket_slots;

    unsigned levels() const { return height + 1; }
    std::uint64_t numLeaves() const { return 1ULL << height; }
    std::uint64_t numBuckets() const { return (2ULL << height) - 1; }
    std::uint64_t numSlots() const
    {
        return numBuckets() * bucket_slots;
    }

    /** Blocks on one path (the WPQ worst-case size Z * (L + 1)). */
    unsigned blocksPerPath() const { return bucket_slots * levels(); }

    /**
     * Logical data capacity at the given utilization (the paper stores
     * 2 GB of data in a 4 GB tree, i.e. 50 %).
     */
    std::uint64_t
    dataBlocks(double utilization = 0.5) const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(numSlots()) * utilization);
    }

    /** Bucket id of the node on @p leaf's path at @p level (0 = root). */
    BucketId bucketAt(PathId leaf, unsigned level) const;

    /** All bucket ids on @p leaf's path, root first. */
    std::vector<BucketId> pathBuckets(PathId leaf) const;

    /**
     * Deepest level at which the paths to @p a and @p b coincide.
     * Level L means a == b; level 0 means they only share the root.
     */
    unsigned commonLevel(PathId a, PathId b) const;

    /** A leaf whose path passes through @p bucket (lowest such leaf). */
    PathId leafUnder(BucketId bucket) const;
};

/**
 * Physical placement of a tree in the NVM address space: bucket slots are
 * fixed-size records starting at @p base.
 *
 * A record holds the kSlotBytes encrypted slot first; record_bytes >
 * kSlotBytes reserves a per-record trailer after it (the integrity
 * subsystem stores a MAC tag + version there, oram/integrity.hh). The
 * default keeps the record exactly one slot, so every integrity-off
 * layout stays byte-identical to the historical one.
 */
struct TreeLayout
{
    TreeGeometry geometry;
    Addr base = 0;
    std::uint64_t record_bytes = kSlotBytes;

    std::uint64_t footprintBytes() const
    {
        return geometry.numSlots() * record_bytes;
    }

    /** NVM byte address of (bucket, slot) — the slot ciphertext sits at
     *  the start of the record, so readers of kSlotBytes at this
     *  address are layout-agnostic. */
    Addr
    slotAddr(BucketId bucket, unsigned slot) const
    {
        return base +
               (bucket * geometry.bucket_slots + slot) * record_bytes;
    }

    /** Record index of (bucket, slot) in the flat record array. */
    std::uint64_t
    recordIndex(BucketId bucket, unsigned slot) const
    {
        return bucket * geometry.bucket_slots + slot;
    }
};

} // namespace psoram

#endif // PSORAM_ORAM_TREE_HH
