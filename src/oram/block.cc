#include "oram/block.hh"

#include <cstring>

#include "common/log.hh"
#include "crypto/ctr.hh"

namespace psoram {

namespace {

// Tweaks keep header and data keystreams disjoint under one IV counter.
constexpr std::uint64_t kHeaderTweak = 0x4845414445520000ULL; // "HEADER"
constexpr std::uint64_t kDataTweak = 0x44415441424c4bULL;     // "DATABLK"

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

BlockCodec::BlockCodec(const Aes128::Key &key, CipherKind kind)
    : kind_(kind)
{
    if (kind_ == CipherKind::Aes128Ctr) {
        ctr_ = std::make_unique<CtrCipher>(key);
    } else {
        std::uint64_t folded = 0x243f6a8885a308d3ULL;
        for (std::size_t i = 0; i < key.size(); ++i)
            folded = mix64(folded ^ (std::uint64_t{key[i]} << (8 * (i % 8))));
        fast_key_ = folded;
    }
}

BlockCodec::~BlockCodec() = default;

void
BlockCodec::applyStream(std::uint64_t iv, std::uint8_t *data,
                        std::size_t len) const
{
    if (kind_ == CipherKind::Aes128Ctr) {
        ctr_->apply(iv, data, len);
        return;
    }
    // Fast keyed stream: one mix64 per 8-byte lane. XOR is its own
    // inverse, mirroring CTR semantics.
    std::size_t off = 0;
    std::uint64_t counter = 0;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    // Whole lanes as single 64-bit XORs; on little-endian hosts the
    // byte layout matches the per-byte shift loop below exactly.
    while (off + 8 <= len) {
        const std::uint64_t word = mix64(fast_key_ ^ iv ^ (counter *
                                         0x9e3779b97f4a7c15ULL));
        std::uint64_t lane;
        std::memcpy(&lane, data + off, 8);
        lane ^= word;
        std::memcpy(data + off, &lane, 8);
        off += 8;
        ++counter;
    }
#endif
    while (off < len) {
        const std::uint64_t word = mix64(fast_key_ ^ iv ^ (counter *
                                         0x9e3779b97f4a7c15ULL));
        const std::size_t chunk = std::min<std::size_t>(8, len - off);
        for (std::size_t i = 0; i < chunk; ++i)
            data[off + i] ^= static_cast<std::uint8_t>(word >> (8 * i));
        off += chunk;
        ++counter;
    }
}

SlotBytes
BlockCodec::encode(const PlainBlock &block)
{
    SlotBytes slot{};
    const std::uint64_t iv1 = next_iv_++;
    const std::uint32_t iv2 = static_cast<std::uint32_t>(mix64(iv1));

    std::memcpy(slot.data(), &iv1, 8);

    std::uint8_t header[16];
    std::memcpy(header, &block.addr, 8);
    std::memcpy(header + 8, &block.path, 4);
    std::memcpy(header + 12, &block.epoch, 4);
    applyStream(iv1 ^ kHeaderTweak, header, sizeof(header));
    std::memcpy(slot.data() + 8, header, sizeof(header));

    std::uint8_t payload[kBlockDataBytes];
    std::memcpy(payload, block.data.data(), kBlockDataBytes);
    applyStream((iv1 ^ kDataTweak) + iv2, payload, kBlockDataBytes);
    std::memcpy(slot.data() + 24, payload, kBlockDataBytes);

    return slot;
}

PlainBlock
BlockCodec::decode(const SlotBytes &slot) const
{
    PlainBlock block;

    std::uint64_t iv1 = 0;
    std::memcpy(&iv1, slot.data(), 8);
    if (iv1 == 0) {
        // Never-written slot: lazily materialized tree storage reads as
        // zero; that is by construction a dummy block.
        return PlainBlock::dummy();
    }

    std::uint8_t header[16];
    std::memcpy(header, slot.data() + 8, sizeof(header));
    applyStream(iv1 ^ kHeaderTweak, header, sizeof(header));
    std::memcpy(&block.addr, header, 8);
    std::memcpy(&block.path, header + 8, 4);
    std::memcpy(&block.epoch, header + 12, 4);
    const std::uint32_t iv2 = static_cast<std::uint32_t>(mix64(iv1));

    std::memcpy(block.data.data(), slot.data() + 24, kBlockDataBytes);
    applyStream((iv1 ^ kDataTweak) + iv2, block.data.data(),
                kBlockDataBytes);
    return block;
}

} // namespace psoram
