#include "oram/stash.hh"

#include <algorithm>

#include "common/log.hh"

namespace psoram {

Stash::Stash(std::size_t capacity) : capacity_(capacity)
{
    entries_.reserve(capacity + 16);
    index_.reserve(2 * capacity + 32);
}

StashEntry *
Stash::find(BlockAddr addr)
{
    const auto it = index_.find(keyOf(addr, false));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

const StashEntry *
Stash::find(BlockAddr addr) const
{
    const auto it = index_.find(keyOf(addr, false));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

StashEntry *
Stash::findBackup(BlockAddr addr)
{
    const auto it = index_.find(keyOf(addr, true));
    return it == index_.end() ? nullptr : &entries_[it->second];
}

void
Stash::insert(const StashEntry &entry)
{
    if (entry.addr == kDummyBlockAddr)
        PSORAM_PANIC("dummy blocks never enter the stash");
    const auto [it, fresh] = index_.try_emplace(
        keyOf(entry.addr, entry.is_backup), entries_.size());
    if (!fresh) {
        if (!entry.is_backup)
            PSORAM_PANIC("duplicate live stash entry for block ",
                         entry.addr);
        // Duplicate backup: replace in place. The vector position,
        // index record and occupancy stats all stay as they are —
        // size() is unchanged, so no peak/overflow accounting.
        entries_[it->second] = entry;
        return;
    }
    entries_.push_back(entry);
    if (!entry.is_backup)
        ++live_count_;
    peak_ = std::max(peak_, entries_.size());
    if (entries_.size() > capacity_)
        ++overflows_;
}

void
Stash::eraseAt(std::size_t index)
{
    const StashEntry &victim = entries_[index];
    if (!victim.is_backup)
        --live_count_;
    index_.erase(keyOf(victim.addr, victim.is_backup));
    if (index + 1 != entries_.size()) {
        entries_[index] = entries_.back();
        index_[keyOf(entries_[index].addr, entries_[index].is_backup)] =
            index;
    }
    entries_.pop_back();
}

void
Stash::removeAt(std::size_t index)
{
    if (index >= entries_.size())
        PSORAM_PANIC("stash removeAt out of range");
    eraseAt(index);
}

bool
Stash::remove(BlockAddr addr)
{
    const auto it = index_.find(keyOf(addr, false));
    if (it == index_.end())
        return false;
    eraseAt(it->second);
    return true;
}

bool
Stash::removeBackup(BlockAddr addr)
{
    const auto it = index_.find(keyOf(addr, true));
    if (it == index_.end())
        return false;
    eraseAt(it->second);
    return true;
}

void
Stash::clear()
{
    entries_.clear();
    index_.clear();
    live_count_ = 0;
}

void
Stash::sampleOccupancy()
{
    occupancy_.sample(static_cast<double>(entries_.size()));
}

} // namespace psoram
