#include "oram/stash.hh"

#include <algorithm>

#include "common/log.hh"

namespace psoram {

Stash::Stash(std::size_t capacity) : capacity_(capacity)
{
    entries_.reserve(capacity + 16);
}

StashEntry *
Stash::find(BlockAddr addr)
{
    for (auto &entry : entries_)
        if (!entry.is_backup && entry.addr == addr)
            return &entry;
    return nullptr;
}

const StashEntry *
Stash::find(BlockAddr addr) const
{
    for (const auto &entry : entries_)
        if (!entry.is_backup && entry.addr == addr)
            return &entry;
    return nullptr;
}

StashEntry *
Stash::findBackup(BlockAddr addr)
{
    for (auto &entry : entries_)
        if (entry.is_backup && entry.addr == addr)
            return &entry;
    return nullptr;
}

void
Stash::insert(const StashEntry &entry)
{
    if (entry.addr == kDummyBlockAddr)
        PSORAM_PANIC("dummy blocks never enter the stash");
    if (!entry.is_backup && find(entry.addr))
        PSORAM_PANIC("duplicate live stash entry for block ", entry.addr);
    if (entry.is_backup) {
        if (StashEntry *old = findBackup(entry.addr)) {
            *old = entry;
            return;
        }
    }
    entries_.push_back(entry);
    peak_ = std::max(peak_, entries_.size());
    if (entries_.size() > capacity_)
        ++overflows_;
}

void
Stash::removeAt(std::size_t index)
{
    if (index >= entries_.size())
        PSORAM_PANIC("stash removeAt out of range");
    entries_[index] = entries_.back();
    entries_.pop_back();
}

bool
Stash::remove(BlockAddr addr)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].is_backup && entries_[i].addr == addr) {
            removeAt(i);
            return true;
        }
    }
    return false;
}

void
Stash::clear()
{
    entries_.clear();
}

std::size_t
Stash::liveSize() const
{
    return static_cast<std::size_t>(
        std::count_if(entries_.begin(), entries_.end(),
                      [](const StashEntry &e) { return !e.is_backup; }));
}

void
Stash::sampleOccupancy()
{
    occupancy_.sample(static_cast<double>(entries_.size()));
}

} // namespace psoram
