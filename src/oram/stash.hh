/**
 * @file
 * ORAM stash: the small on-chip buffer holding blocks in flight between
 * path reads and evictions (Table 3b: 200 entries).
 *
 * PS-ORAM additionally stores *backup blocks* in the stash: a copy of the
 * accessed block under its old path id, guaranteed evictable to the path
 * that was just read (paper §4.2.1 step 4). A backup coexists with the
 * live entry for the same address, so entries are keyed by
 * (address, is_backup).
 */

#ifndef PSORAM_ORAM_STASH_HH
#define PSORAM_ORAM_STASH_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "oram/block.hh"

namespace psoram {

struct StashEntry
{
    BlockAddr addr = kDummyBlockAddr;
    PathId path = kInvalidPath;
    /** Remap epoch (see PlainBlock::epoch). */
    std::uint32_t epoch = 0;
    std::array<std::uint8_t, kBlockDataBytes> data{};
    /** True for PS-ORAM backup copies (old path id, pre-access data). */
    bool is_backup = false;

    PlainBlock
    toBlock() const
    {
        return PlainBlock{addr, path, epoch, data};
    }
};

/**
 * The stash keeps an O(1) hash index over (addr, is_backup) alongside
 * the dense entry vector, so the hot per-slot lookups of the path load
 * and eviction phases cost one hash probe instead of a linear scan.
 *
 * Index invariants (maintained by every mutator):
 *   - every entry in entries_ has exactly one index record keyed by
 *     (addr, is_backup) whose value is its current vector position;
 *   - removeAt() swap-with-last re-points the moved entry's record;
 *   - callers may mutate path/epoch/data through find() pointers, but
 *     never addr or is_backup (those are the key).
 */
class Stash
{
  public:
    /** @param capacity nominal entry budget (occupancy stat threshold) */
    explicit Stash(std::size_t capacity);

    /** Find the live (non-backup) entry for @p addr; nullptr if absent. */
    StashEntry *find(BlockAddr addr);
    const StashEntry *find(BlockAddr addr) const;

    /** Find the backup entry for @p addr; nullptr if absent. */
    StashEntry *findBackup(BlockAddr addr);

    /**
     * Insert an entry. Duplicate live entries for one address are a
     * protocol bug and panic; duplicate backups replace the old backup.
     */
    void insert(const StashEntry &entry);

    /** Remove the entry at @p index (swap-with-last). */
    void removeAt(std::size_t index);

    /** Remove the live entry for @p addr if present. */
    bool remove(BlockAddr addr);

    /** Remove the backup entry for @p addr if present. */
    bool removeBackup(BlockAddr addr);

    /** Drop everything (crash: the stash is volatile). */
    void clear();

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    std::size_t capacity() const { return capacity_; }

    /** Entries counting toward ORAM occupancy analysis (live only). */
    std::size_t liveSize() const { return live_count_; }

    StashEntry &at(std::size_t index) { return entries_[index]; }
    const StashEntry &at(std::size_t index) const
    {
        return entries_[index];
    }

    /** Number of times size() exceeded capacity after an insert. */
    std::uint64_t overflowEvents() const { return overflows_.value(); }

    /** Peak size() ever observed. */
    std::size_t peakSize() const { return peak_; }

    const Distribution &occupancy() const { return occupancy_; }

    /** Record an occupancy sample (call once per ORAM access). */
    void sampleOccupancy();

  private:
    /** Index key: address plus the backup bit in the low bit. */
    static std::uint64_t
    keyOf(BlockAddr addr, bool is_backup)
    {
        return (static_cast<std::uint64_t>(addr) << 1) |
               (is_backup ? 1u : 0u);
    }

    void eraseAt(std::size_t index);

    std::size_t capacity_;
    std::vector<StashEntry> entries_;
    /** (addr, is_backup) -> position in entries_. */
    std::unordered_map<std::uint64_t, std::size_t> index_;
    /** Non-backup entry count (kept coherent with the index). */
    std::size_t live_count_ = 0;
    Counter overflows_;
    std::size_t peak_ = 0;
    Distribution occupancy_;
};

} // namespace psoram

#endif // PSORAM_ORAM_STASH_HH
