/**
 * @file
 * Recursive PosMap support: the position map stored in a PosMap ORAM
 * tree in untrusted NVM (Freecursive-style, paper §4.4).
 *
 * The PosMap tree is a Path ORAM over *entry blocks*: 64-byte blocks
 * packing 16 position entries of 4 bytes each. Every data access
 * performs one full path access (read + evict) on this tree — the source
 * of the recursive designs' ~+90 % read traffic (Fig. 6a). The positions
 * of the entry blocks themselves terminate in an on-chip table (the
 * paper's "on-chip PosMap [as] a cache for most recently used PosMap
 * entries"); deeper NVM recursion levels would contribute only a few
 * percent more traffic behind that cache and are absorbed into it (see
 * DESIGN.md, fidelity notes).
 *
 * The level performs its own functional reads but *returns* its eviction
 * writes: the recursive baseline writes them straight to the device,
 * while Rcr-PS-ORAM routes them through the WPQ bracket so the PosMap
 * path write commits atomically with the data path write.
 */

#ifndef PSORAM_ORAM_RECURSIVE_POSMAP_HH
#define PSORAM_ORAM_RECURSIVE_POSMAP_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backend.hh"
#include "oram/block.hh"
#include "oram/posmap.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"

namespace psoram {

/** Position entries packed per 64-byte PosMap entry block. */
inline constexpr unsigned kEntriesPerPosBlock = 16;

/** Valid-tag for stored entry words (word 0 = never written -> PRF). */
inline constexpr std::uint32_t kPosEntryValid = 0x8000'0000u;

/**
 * Resolves the position of an entry block that the on-chip table has no
 * record of: the PRF initial position for a fresh system, or the
 * persisted position region after crash recovery.
 */
using PosResolver = std::function<PathId(std::uint64_t block_index)>;

class PosMapTreeLevel
{
  public:
    struct Params
    {
        TreeLayout layout;
        /** Number of entry blocks this level stores. */
        std::uint64_t num_entry_blocks;
        std::size_t stash_capacity = 64;
        std::uint64_t seed = 1;
    };

    /** One eviction slot write the caller must route to the NVM. */
    struct EvictWrite
    {
        Addr addr;
        SlotBytes data;
    };

    /** Outcome of one entry access. */
    struct AccessOutcome
    {
        /** Raw stored word before the update (0 => never written). */
        std::uint32_t old_word = 0;
        /** Index of the containing entry block. */
        std::uint64_t block_index = 0;
        /** Fresh position assigned to that entry block. */
        PathId new_block_pos = kInvalidPath;
        /** Path that was read and evicted (kInvalidPath on stash hit). */
        PathId accessed_leaf = kInvalidPath;
        /** Eviction writes, in WPQ push order (all overwrite-safe). */
        std::vector<EvictWrite> writes;
        /** Real entry blocks written to the tree: (index, position). */
        std::vector<std::pair<std::uint64_t, PathId>> placed;
        unsigned slots_read = 0;
        bool stash_hit = false;
    };

    /** Timing notification for each slot read the level performs. */
    using ReadHook = std::function<void(Addr)>;

    PosMapTreeLevel(const Params &params, MemoryBackend &device,
                    BlockCodec &codec, Rng &rng,
                    PosResolver missing_resolver);

    /**
     * Access entry @p entry_index: return the stored word and replace it
     * with @p new_word. The containing entry block is loaded along its
     * current path, remapped, and its path evicted with safe placement
     * (identity / dummy-slot writes only).
     */
    AccessOutcome accessEntry(std::uint64_t entry_index,
                              std::uint32_t new_word,
                              const ReadHook &read_hook);

    /** Current (volatile) position of entry block @p block_index. */
    PathId blockPosition(std::uint64_t block_index) const;

    /** @{ Dirty-position tracking: a block whose position changed since
     *  its last persisted position entry (Rcr-PS-ORAM emits a position
     *  region write when a dirty block is placed). */
    bool isPositionDirty(std::uint64_t block_index) const;
    void markPositionDirty(std::uint64_t block_index);
    void clearPositionDirty(std::uint64_t block_index);
    /** @} */

    /** Recovery: restore a shadowed entry block into the stash. */
    void restoreStashEntry(const StashEntry &entry);

    /** Entry blocks currently in the level's stash (crash shadowing). */
    const Stash &stash() const { return stash_; }
    Stash &stash() { return stash_; }

    /** Drop volatile state (crash). */
    void loseVolatileState();

    const Params &params() const { return params_; }
    std::uint64_t unplacedEvents() const { return unplaced_.value(); }
    std::uint64_t stashHits() const { return stash_hits_.value(); }

  private:
    struct EntryWords
    {
        std::array<std::uint32_t, kEntriesPerPosBlock> words;
    };

    static EntryWords unpack(const StashEntry &entry);
    static void pack(StashEntry &entry, const EntryWords &words);

    Params params_;
    MemoryBackend &device_;
    BlockCodec &codec_;
    Rng &rng_;
    TreeGeometry geo_;
    Stash stash_;
    /** @{ Eviction scratch, reused across accesses (no per-access
     *  allocation): flat placement plan [level * z + slot] and the
     *  per-entry commonLevel cache mirrored through swap-with-last
     *  stash removals. */
    std::vector<PlainBlock> evict_plan_;
    std::vector<unsigned> evict_depths_;
    /** @} */
    /** Volatile on-chip positions of entry blocks (lazy via resolver). */
    std::unordered_map<std::uint64_t, PathId> positions_;
    /** Blocks whose position is newer than its persisted entry. */
    std::unordered_map<std::uint64_t, bool> dirty_positions_;
    PosResolver resolver_;
    Counter unplaced_;
    Counter stash_hits_;
};

} // namespace psoram

#endif // PSORAM_ORAM_RECURSIVE_POSMAP_HH
