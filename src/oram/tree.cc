#include "oram/tree.hh"

#include "common/log.hh"

namespace psoram {

BucketId
TreeGeometry::bucketAt(PathId leaf, unsigned level) const
{
    if (level > height)
        PSORAM_PANIC("level ", level, " beyond tree height ", height);
    if (leaf >= numLeaves())
        PSORAM_PANIC("leaf ", leaf, " out of range");
    // The ancestor of the leaf node at the given level: drop the low
    // (height - level) bits of the leaf index, then offset into the
    // breadth-first array.
    const std::uint64_t index = static_cast<std::uint64_t>(leaf) >>
                                (height - level);
    return ((1ULL << level) - 1) + index;
}

std::vector<BucketId>
TreeGeometry::pathBuckets(PathId leaf) const
{
    std::vector<BucketId> buckets;
    buckets.reserve(levels());
    for (unsigned level = 0; level <= height; ++level)
        buckets.push_back(bucketAt(leaf, level));
    return buckets;
}

unsigned
TreeGeometry::commonLevel(PathId a, PathId b) const
{
    unsigned level = height;
    std::uint64_t xa = a, xb = b;
    while (xa != xb) {
        xa >>= 1;
        xb >>= 1;
        --level;
    }
    return level;
}

PathId
TreeGeometry::leafUnder(BucketId bucket) const
{
    if (bucket >= numBuckets())
        PSORAM_PANIC("bucket ", bucket, " out of range");
    unsigned level = 0;
    while (((2ULL << level) - 1) <= bucket)
        ++level;
    const std::uint64_t index = bucket - ((1ULL << level) - 1);
    return static_cast<PathId>(index << (height - level));
}

} // namespace psoram
