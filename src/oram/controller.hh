/**
 * @file
 * Classic Path ORAM controller (Stefanov et al., the paper's §2.2).
 *
 * This is the textbook five-step protocol — check stash, access PosMap,
 * load path, update stash, evict path — with no persistence support. It
 * is both the library's baseline ORAM and the reference implementation
 * the crash-consistent PS-ORAM controller (psoram/psoram_controller.hh)
 * is validated against.
 */

#ifndef PSORAM_ORAM_CONTROLLER_HH
#define PSORAM_ORAM_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "crypto/aes128.hh"
#include "mem/backend.hh"
#include "oram/block.hh"
#include "oram/posmap.hh"
#include "oram/stash.hh"
#include "oram/tree.hh"

namespace psoram {

/** CPU-cycle latency of one AES-128 operation (Table 3b). */
inline constexpr CpuCycle kAesLatencyCpuCycles = 32;

struct PathOramParams
{
    TreeLayout layout;
    /** Logical block address space (<= tree capacity at 50% util). */
    std::uint64_t num_blocks;
    std::size_t stash_capacity = 200;
    Aes128::Key key{};
    CipherKind cipher = CipherKind::Aes128Ctr;
    std::uint64_t seed = 1;
};

/** Per-access outcome, including the timing contribution. */
struct OramAccessInfo
{
    /** NVM-controller cycles this access occupied the memory system. */
    Cycle nvm_cycles = 0;
    /** Leaf label of the accessed (and evicted) path. */
    PathId leaf = kInvalidPath;
    /** True when served from the stash without touching memory. */
    bool stash_hit = false;
};

/**
 * Observer invoked with the leaf label of every path access — the exact
 * information an adversary on the memory bus sees. The security tests
 * feed this to their distribution checks.
 */
using PathObserver = std::function<void(PathId)>;

class PathOramController
{
  public:
    PathOramController(const PathOramParams &params, MemoryBackend &device);
    virtual ~PathOramController() = default;

    /** Read block @p addr into @p out (64 bytes). */
    OramAccessInfo read(BlockAddr addr, std::uint8_t *out);

    /** Write 64 bytes from @p in to block @p addr. */
    OramAccessInfo write(BlockAddr addr, const std::uint8_t *in);

    void setPathObserver(PathObserver observer)
    {
        observer_ = std::move(observer);
    }

    const PathOramParams &params() const { return params_; }
    const Stash &stash() const { return stash_; }
    const PosMap &posmap() const { return posmap_; }

    std::uint64_t accessCount() const { return accesses_.value(); }
    std::uint64_t stashHits() const { return stash_hits_.value(); }

    /**
     * Test helper: functionally locate @p addr by walking its PosMap
     * path in the NVM image (no timing, no state change).
     * @return true and fills @p out when found in the tree; false when
     *         the block lives in the stash or was never written
     */
    bool debugFindInTree(BlockAddr addr, std::uint8_t *out) const;

  protected:
    OramAccessInfo access(BlockAddr addr, bool is_write,
                          std::uint8_t *read_out,
                          const std::uint8_t *write_in);

    /** Load every block of path @p leaf into the stash (step 3). */
    Cycle loadPath(PathId leaf, Cycle start);

    /** Greedy eviction of path @p leaf (step 5). */
    Cycle evictPath(PathId leaf, Cycle start);

    /**
     * Select stash entries for the bucket at (leaf, level) — up to Z
     * entries whose paths pass through that bucket. Chosen entries are
     * removed from the stash and returned.
     */
    std::vector<StashEntry> pickForBucket(PathId leaf, unsigned level);

    PathOramParams params_;
    MemoryBackend &device_;
    TreeGeometry geo_;
    PosMap posmap_;
    Stash stash_;
    BlockCodec codec_;
    Rng rng_;
    PathObserver observer_;

    /** Memory-side clock (NVM cycles); advances with every access. */
    Cycle now_ = 0;

    Counter accesses_;
    Counter stash_hits_;
};

} // namespace psoram

#endif // PSORAM_ORAM_CONTROLLER_HH
