/**
 * @file
 * Memory-integrity subsystem: authenticated bucket records and a
 * persistent Merkle tree over the ORAM tree (ROADMAP item 4).
 *
 * The paper's threat model gives the attacker the NVM: CTR encryption
 * alone accepts any bit-flip, any stale-record replay, and any
 * zero-wipe — including during crash recovery, when the recovery scan
 * consumes whatever bytes the NVM holds. This layer closes that hole
 * in two escalation steps (SystemConfig::integrity):
 *
 *   mac  — every tree record carries a GMAC tag (crypto/gcm.hh) bound
 *          to its NVM address and a globally monotonic version via the
 *          AAD and a never-repeating IV. In-place modification and
 *          cross-slot splicing are detected; *replaying* a stale
 *          (record, tag) pair or wiping a record back to the
 *          never-written all-zero state is NOT (the pair is internally
 *          consistent) — the documented mac-mode gap.
 *   tree — additionally maintains a SHA-256 Merkle tree congruent with
 *          the bucket tree. The trusted root lives in controller RAM
 *          and is persisted *atomically with every ADR round commit*
 *          as a root record riding the PosMap WPQ, so any committed
 *          prefix of rounds carries a root that matches exactly the
 *          records that prefix wrote: replay, wipe and rollback of any
 *          record are detected at read and at recovery.
 *
 * Persist-ordering / crash-consistency argument (DESIGN.md §15):
 *
 *   - The durability atom is the *record* (slot ciphertext + tag +
 *     version in one WPQ entry), not the bucket: WPQ rounds may split
 *     mid-bucket (wpq_entries < Z), and a tag spanning a bucket would
 *     tear across rounds. Binding tag to record keeps every committed
 *     prefix self-consistent.
 *   - Interior Merkle nodes are *streamed lazily* with quiet writes
 *     (no persist boundaries, off the enumerable crash surface) after
 *     round commit; recovery never trusts them — it recomputes every
 *     node from the verified records and repairs the persisted copies.
 *     Only the root record is load-bearing, and it commits inside the
 *     existing ADR bracket: the access path gains zero new persist
 *     boundary kinds.
 *   - The root record lives in the same trusted persistent region the
 *     paper already assumes for the PosMap ("Trusted-NVM-region
 *     persistent PosMap", oram/posmap.hh): an attacker who can roll
 *     back the *entire* NVM including that region to a consistent old
 *     snapshot defeats any integrity scheme without a hardware
 *     monotonic counter; everything short of that is detected.
 *
 * Scope: persistent non-recursive PS-ORAM at pipeline depth 1 (the
 * freshness cache is drive-thread state; sim/system.cc enforces this).
 */

#ifndef PSORAM_ORAM_INTEGRITY_HH
#define PSORAM_ORAM_INTEGRITY_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "crypto/gcm.hh"
#include "crypto/sha256.hh"
#include "mem/backend.hh"
#include "nvm/wpq.hh"
#include "oram/block.hh"
#include "oram/tree.hh"

namespace psoram {

enum class IntegrityMode { Off, Mac, Tree };

const char *integrityModeName(IntegrityMode mode);

/** Parse "off" / "mac" / "tree". @return false on unknown input */
bool parseIntegrityMode(const std::string &text, IntegrityMode &out);

/**
 * Authenticated record layout (TreeLayout::record_bytes = 128):
 *
 *   [0, 96)    slot ciphertext (the historical wire format, unchanged)
 *   [96, 112)  GMAC tag over (record NVM address, version, ciphertext)
 *   [112, 120) record version, little-endian (0 = never written)
 *   [120, 128) reserved, zero
 */
inline constexpr std::uint64_t kIntegrityRecordBytes = 128;
inline constexpr std::size_t kRecordTagOffset = kSlotBytes;
inline constexpr std::size_t kRecordVersionOffset = kSlotBytes + 16;

/** Typed refusal: a record, node or root failed verification. */
class IntegrityError : public std::runtime_error
{
  public:
    enum class Kind
    {
        /** GMAC tag does not match the record content. */
        MacMismatch,
        /** Record hash disagrees with the trusted Merkle state
         *  (stale replay, wipe, or rollback of a single record). */
        HashMismatch,
        /** Persisted root record is missing, malformed, or disagrees
         *  with the recomputed tree root. */
        RootMismatch,
        /** Record is neither all-zero nor carries a version — a torn
         *  or spliced write that no crash can produce. */
        TornRecord,
    };

    IntegrityError(Kind kind, Addr addr, const std::string &detail);

    Kind kind() const { return kind_; }
    Addr addr() const { return addr_; }

    static const char *kindName(Kind kind);

  private:
    Kind kind_;
    Addr addr_;
};

class IntegrityManager
{
  public:
    static constexpr std::size_t kHashBytes = Sha256::kDigestBytes;
    static constexpr std::size_t kRootRecordBytes = 128;

    /** Recovery outcome (also the I5 invariant-check evidence). */
    struct RecoveryStats
    {
        /** Versioned (written) records whose tags verified. */
        std::uint64_t records_verified = 0;
        /** Persisted interior nodes rewritten because they lagged the
         *  recomputed tree (lazy staleness after a crash). */
        std::uint64_t nodes_repaired = 0;
        /** Codec IV watermark from the root record (resume floor). */
        std::uint64_t slot_iv_floor = 0;
        /** Host timestamp at the verify/repair boundary: the record
         *  scan + root check are done, the interior-node repair pass
         *  is about to start (recovery phase attribution). */
        std::uint64_t verify_done_ns = 0;
    };

    /**
     * @param key the system key (the GMAC subkey is derived from it)
     * @param mode Mac or Tree (Off never constructs a manager)
     * @param layout data-tree layout with record_bytes == 128
     * @param root_record_base NVM address of the per-round root record
     * @param merkle_region_base base of the persisted interior-node
     *        array (numBuckets * 32 bytes); 0 in mac mode
     */
    IntegrityManager(const Aes128::Key &key, IntegrityMode mode,
                     const TreeLayout &layout, Addr root_record_base,
                     Addr merkle_region_base);

    IntegrityMode mode() const { return mode_; }

    /**
     * Eviction write-back: format @p cipher plus a fresh version and
     * its tag into @p out (kIntegrityRecordBytes bytes).
     */
    void sealRecord(BucketId bucket, unsigned slot,
                    const SlotBytes &cipher, std::uint8_t *out);

    /**
     * Read-path verification of a record read from the device.
     * @throws IntegrityError on any mismatch
     */
    void verifyRecord(BucketId bucket, unsigned slot,
                      const std::uint8_t *record) const;

    /**
     * WPQ drain: account one data record entering the committing
     * round (updates the Merkle path of its bucket).
     */
    void noteRoundWrite(Addr addr, const std::uint8_t *record,
                        std::size_t len);

    /**
     * The root record for the round about to commit; rides the PosMap
     * WPQ inside the same ADR bracket as the data it covers.
     * @param next_slot_iv the codec's IV watermark to persist
     */
    WpqEntry makeRootRecord(std::uint64_t next_slot_iv);

    /**
     * Lazily persist interior nodes dirtied since the last call, as
     * quiet writes (no persist boundaries). No-op in mac mode.
     */
    void streamDirtyNodes(MemoryBackend &device);

    /**
     * Full recovery scan: verify every record on @p device, rebuild
     * the Merkle state, check it against the persisted root record,
     * repair stale interior nodes, and resume the version counter.
     * @throws IntegrityError when any node fails verification
     */
    RecoveryStats recoverFromDevice(MemoryBackend &device);

    /** Trusted current root (tree mode). */
    const Sha256::Digest &root() const { return node_hash_[0]; }

    std::uint64_t nextVersion() const { return next_version_; }
    std::uint64_t commitSeq() const { return commit_seq_; }

    /** Interior nodes repaired by the last recoverFromDevice(). */
    std::uint64_t nodesRepaired() const { return nodes_repaired_; }

  private:
    std::uint64_t recordIndexFor(Addr addr) const;
    Gcm::Tag recordTag(Addr record_addr, std::uint64_t version,
                       const std::uint8_t *cipher) const;
    Gcm::Tag rootRecordTag(std::uint64_t seq,
                           const std::uint8_t *payload) const;

    /** Reset hashes to the all-zero-tree defaults. */
    void initFresh();

    /** Recompute bucket + ancestor node hashes from rec_hash_. */
    void refreshBucketPath(BucketId bucket, bool mark_dirty);
    Sha256::Digest bucketHashFor(BucketId bucket) const;
    Sha256::Digest nodeHashFor(BucketId bucket) const;

    IntegrityMode mode_;
    TreeLayout layout_;
    Addr root_record_base_;
    Addr merkle_region_base_;
    Gcm gmac_;

    std::uint64_t next_version_ = 1;
    std::uint64_t commit_seq_ = 0;
    std::uint64_t nodes_repaired_ = 0;

    /** @{ Tree-mode trusted state (drive-thread only). */
    std::vector<Sha256::Digest> rec_hash_;    // per record
    std::vector<Sha256::Digest> bucket_hash_; // per bucket
    std::vector<Sha256::Digest> node_hash_;   // per bucket, [0] = root
    std::unordered_set<BucketId> dirty_nodes_;
    /** @} */
};

} // namespace psoram

#endif // PSORAM_ORAM_INTEGRITY_HH
