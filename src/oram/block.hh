/**
 * @file
 * ORAM block representation and its encrypted wire format.
 *
 * Each bucket slot in the NVM-resident ORAM tree stores one block:
 *
 *   [ IV1 : 8B plaintext ]
 *   [ header : 16B, CTR-encrypted under IV1 ]
 *       program address (8B) | path id (4B) | IV2 (4B)
 *   [ data : 64B, CTR-encrypted under the data IV derived from IV1/IV2 ]
 *
 * following the split header/payload encryption of Fletcher et al. (paper
 * ref [20]). Dummy blocks carry the special address ⊥ (kDummyBlockAddr)
 * and random-looking payloads, indistinguishable on the bus from real
 * blocks.
 */

#ifndef PSORAM_ORAM_BLOCK_HH
#define PSORAM_ORAM_BLOCK_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "crypto/aes128.hh"

namespace psoram {

/** Decrypted (on-chip) view of a block. */
struct PlainBlock
{
    BlockAddr addr = kDummyBlockAddr;
    PathId path = kInvalidPath;
    /**
     * Remap epoch: incremented every time the block is re-labeled. A
     * tree copy is live iff both its path AND epoch match the committed
     * PosMap entry — the path alone cannot invalidate an old backup
     * when a later remap happens to land on the same leaf again.
     */
    std::uint32_t epoch = 0;
    std::array<std::uint8_t, kBlockDataBytes> data{};

    bool isDummy() const { return addr == kDummyBlockAddr; }

    static PlainBlock
    dummy()
    {
        return PlainBlock{};
    }
};

/** Bytes of one bucket slot as stored in NVM (88B payload + pad). */
inline constexpr std::size_t kSlotBytes = 96;
inline constexpr std::size_t kSlotPayloadBytes = 88;

/** Serialized slot. */
using SlotBytes = std::array<std::uint8_t, kSlotBytes>;

/**
 * Cipher selection: real AES-128 CTR for functional/security testing, or
 * a fast keyed XOR stream for large timing sweeps (same interface, same
 * wire layout, ~100x faster in software; the hardware latency model is
 * identical either way).
 */
enum class CipherKind { Aes128Ctr, FastStream };

/**
 * Encrypts/decrypts blocks to/from their slot wire format. Owns the IV
 * counter: every encode consumes fresh IVs, so re-encrypting the same
 * plaintext yields a different ciphertext (probabilistic encryption).
 */
class BlockCodec
{
  public:
    BlockCodec(const Aes128::Key &key, CipherKind kind);
    ~BlockCodec();

    BlockCodec(const BlockCodec &) = delete;
    BlockCodec &operator=(const BlockCodec &) = delete;

    /** Encrypt @p block into slot wire format with fresh IVs. */
    SlotBytes encode(const PlainBlock &block);

    /** Decrypt a slot. All-zero slots decode as dummy blocks. */
    PlainBlock decode(const SlotBytes &slot) const;

    CipherKind kind() const { return kind_; }

    /** Number of encodes performed (== IVs consumed). */
    std::uint64_t encodeCount() const { return next_iv_; }

    /** The IV1 the next encode will consume. */
    std::uint64_t nextIv() const { return next_iv_; }

    /**
     * Recovery resume: make sure no future encode reuses an IV at or
     * below @p floor (the watermark the integrity root record
     * persisted). A fresh controller restarting at IV 1 over a
     * populated tree would otherwise repeat CTR keystreams.
     */
    void
    resumeIvsAfter(std::uint64_t floor)
    {
        if (next_iv_ <= floor)
            next_iv_ = floor + 1;
    }

  private:
    void applyStream(std::uint64_t iv, std::uint8_t *data,
                     std::size_t len) const;

    CipherKind kind_;
    std::unique_ptr<class CtrCipher> ctr_;
    std::uint64_t fast_key_ = 0;
    std::uint64_t next_iv_ = 1;
};

} // namespace psoram

#endif // PSORAM_ORAM_BLOCK_HH
