/**
 * @file
 * Position map: logical block address -> path id (leaf label).
 *
 * The on-chip PosMap is lazily initialized: an entry that was never
 * remapped reads as a deterministic pseudo-random initial path (a PRF of
 * the seed and the address). This matches real ORAM initialization, where
 * every block starts on an independently random path, without spending
 * memory or time materializing 2^25 entries up front.
 *
 * PersistentPosMap wraps the *trusted NVM region* copy used by the
 * non-recursive designs: entries are 4-byte records (31-bit path + valid
 * bit) at base + addr * 4, written through the PosMap WPQ.
 */

#ifndef PSORAM_ORAM_POSMAP_HH
#define PSORAM_ORAM_POSMAP_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "mem/backend.hh"

namespace psoram {

/** Deterministic initial path for a block (PRF of seed and address). */
PathId initialPath(std::uint64_t seed, BlockAddr addr,
                   std::uint64_t num_leaves);

class PosMap
{
  public:
    /**
     * @param num_blocks logical address space size
     * @param num_leaves leaves of the tree the paths index into
     * @param seed PRF seed for initial (never-written) entries
     */
    PosMap(std::uint64_t num_blocks, std::uint64_t num_leaves,
           std::uint64_t seed);

    PathId get(BlockAddr addr) const;
    void set(BlockAddr addr, PathId path);

    /** Drop all remapped entries, reverting to the initial PRF state. */
    void clear();

    std::uint64_t numBlocks() const { return num_blocks_; }
    std::uint64_t numLeaves() const { return num_leaves_; }
    std::uint64_t seed() const { return seed_; }

    /** Number of entries that differ from their initial value store. */
    std::size_t populated() const { return entries_.size(); }

    /** Remapped entries (FullNVM designs export these as the content of
     *  their non-volatile on-chip PosMap). */
    const std::unordered_map<BlockAddr, PathId> &
    entries() const
    {
        return entries_;
    }

  private:
    std::uint64_t num_blocks_;
    std::uint64_t num_leaves_;
    std::uint64_t seed_;
    std::unordered_map<BlockAddr, PathId> entries_;
};

/**
 * Trusted-NVM-region persistent PosMap (non-recursive designs).
 *
 * Only the functional codec and addressing live here; the *writes* are
 * performed by draining the PosMap WPQ, and reads happen during crash
 * recovery.
 */
class PersistentPosMap
{
  public:
    /** Record: valid-tagged path word (4B) + remap epoch (4B). */
    static constexpr std::size_t kEntryBytes = 8;
    static constexpr std::uint32_t kValidBit = 0x8000'0000u;

    /** Decoded record. */
    struct Entry
    {
        PathId path;
        std::uint32_t epoch;
    };

    PersistentPosMap(Addr base, std::uint64_t num_blocks,
                     std::uint64_t seed, std::uint64_t num_leaves);

    Addr entryAddr(BlockAddr addr) const;
    std::uint64_t footprintBytes() const
    {
        return num_blocks_ * kEntryBytes;
    }

    /** Serialize a path id into its valid-tagged word. */
    static std::uint32_t encodeEntry(PathId path);

    /** Serialize the full 8-byte record. */
    static std::array<std::uint8_t, kEntryBytes>
    encodeRecord(PathId path, std::uint32_t epoch);

    /**
     * Read the persistent entry for @p addr from @p device;
     * never-written entries decode to the PRF initial path at epoch 0.
     */
    Entry readFullEntry(const MemoryBackend &device, BlockAddr addr) const;

    /** Path-only convenience wrapper. */
    PathId readEntry(const MemoryBackend &device, BlockAddr addr) const;

    /** Functional direct write (used by recovery tooling and tests). */
    void writeEntry(MemoryBackend &device, BlockAddr addr, PathId path,
                    std::uint32_t epoch = 1) const;

    Addr base() const { return base_; }

  private:
    Addr base_;
    std::uint64_t num_blocks_;
    std::uint64_t seed_;
    std::uint64_t num_leaves_;
};

} // namespace psoram

#endif // PSORAM_ORAM_POSMAP_HH
