#include "oram/controller.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace psoram {

PathOramController::PathOramController(const PathOramParams &params,
                                       MemoryBackend &device)
    : params_(params), device_(device), geo_(params.layout.geometry),
      posmap_(params.num_blocks, geo_.numLeaves(), params.seed),
      stash_(params.stash_capacity), codec_(params.key, params.cipher),
      rng_(params.seed ^ 0x5ca1ab1edeadbeefULL)
{
    if (params_.num_blocks > geo_.numSlots())
        PSORAM_FATAL("logical blocks (", params_.num_blocks,
                     ") exceed tree slots (", geo_.numSlots(), ")");
}

OramAccessInfo
PathOramController::read(BlockAddr addr, std::uint8_t *out)
{
    return access(addr, false, out, nullptr);
}

OramAccessInfo
PathOramController::write(BlockAddr addr, const std::uint8_t *in)
{
    return access(addr, true, nullptr, in);
}

OramAccessInfo
PathOramController::access(BlockAddr addr, bool is_write,
                           std::uint8_t *read_out,
                           const std::uint8_t *write_in)
{
    if (addr >= params_.num_blocks)
        PSORAM_PANIC("ORAM access beyond logical capacity: ", addr);
    ++accesses_;
    OramAccessInfo info;

    // Step 1: check stash.
    if (StashEntry *hit = stash_.find(addr)) {
        if (is_write)
            std::memcpy(hit->data.data(), write_in, kBlockDataBytes);
        else
            std::memcpy(read_out, hit->data.data(), kBlockDataBytes);
        ++stash_hits_;
        info.stash_hit = true;
        stash_.sampleOccupancy();
        return info;
    }

    // Step 2: access PosMap; remap to a fresh random path.
    const PathId leaf = posmap_.get(addr);
    const PathId new_leaf = rng_.nextPath(geo_.numLeaves());
    posmap_.set(addr, new_leaf);
    info.leaf = leaf;
    if (observer_)
        observer_(leaf);

    // Step 3: load path into the stash.
    const Cycle start = now_;
    Cycle t = loadPath(leaf, start);

    // Step 4: update stash; serve the request.
    StashEntry *entry = stash_.find(addr);
    if (!entry) {
        // First touch of this block: materialize an all-zero block (the
        // tree is lazily initialized).
        StashEntry fresh;
        fresh.addr = addr;
        stash_.insert(fresh);
        entry = stash_.find(addr);
    }
    entry->path = new_leaf;
    if (is_write)
        std::memcpy(entry->data.data(), write_in, kBlockDataBytes);
    else
        std::memcpy(read_out, entry->data.data(), kBlockDataBytes);

    // Step 5: evict along the just-read path.
    t = evictPath(leaf, t);

    now_ = t;
    info.nvm_cycles = t - start;
    stash_.sampleOccupancy();
    return info;
}

Cycle
PathOramController::loadPath(PathId leaf, Cycle start)
{
    Cycle done = start;
    for (unsigned level = 0; level <= geo_.height; ++level) {
        const BucketId bucket = geo_.bucketAt(leaf, level);
        for (unsigned slot = 0; slot < geo_.bucket_slots; ++slot) {
            const Addr slot_addr = params_.layout.slotAddr(bucket, slot);
            SlotBytes raw{};
            device_.readBytes(slot_addr, raw.data(), kSlotBytes);
            done = std::max(done, device_.accessOne(slot_addr, false,
                                                    start));
            const PlainBlock block = codec_.decode(raw);
            if (block.isDummy())
                continue;
            // Classic Path ORAM never leaves a second copy of a block
            // in the tree (every eviction rewrites the full loaded
            // path), so the only duplicate to guard against is a newer
            // copy already in the stash. Note the header path of the
            // access target intentionally differs from the PosMap here
            // — it was remapped in step 2.
            if (stash_.find(block.addr))
                continue;
            StashEntry entry;
            entry.addr = block.addr;
            entry.path = block.path;
            entry.data = block.data;
            stash_.insert(entry);
        }
    }
    // Decryption of the final block: one pipelined AES latency.
    return done + kAesLatencyCpuCycles / kCpuCyclesPerNvmCycle;
}

std::vector<StashEntry>
PathOramController::pickForBucket(PathId leaf, unsigned level)
{
    std::vector<StashEntry> picked;
    for (std::size_t i = 0;
         i < stash_.size() && picked.size() < geo_.bucket_slots;) {
        const StashEntry &entry = stash_.at(i);
        if (geo_.commonLevel(entry.path, leaf) >= level) {
            picked.push_back(entry);
            stash_.removeAt(i); // swap-with-last: do not advance i
        } else {
            ++i;
        }
    }
    return picked;
}

Cycle
PathOramController::evictPath(PathId leaf, Cycle start)
{
    // Encryption of the first bucket adds one pipelined AES latency.
    const Cycle issue = start + kAesLatencyCpuCycles /
                        kCpuCyclesPerNvmCycle;
    Cycle done = issue;
    // Greedy fill from the leaf up: deepest placement first maximizes
    // future eviction opportunities.
    for (int level = static_cast<int>(geo_.height); level >= 0; --level) {
        const BucketId bucket =
            geo_.bucketAt(leaf, static_cast<unsigned>(level));
        std::vector<StashEntry> chosen =
            pickForBucket(leaf, static_cast<unsigned>(level));
        for (unsigned slot = 0; slot < geo_.bucket_slots; ++slot) {
            PlainBlock block = slot < chosen.size()
                ? chosen[slot].toBlock()
                : PlainBlock::dummy();
            const SlotBytes raw = codec_.encode(block);
            const Addr slot_addr = params_.layout.slotAddr(bucket, slot);
            device_.writeBytes(slot_addr, raw.data(), kSlotBytes);
            done = std::max(done, device_.accessOne(slot_addr, true,
                                                    issue));
        }
    }
    return done;
}

bool
PathOramController::debugFindInTree(BlockAddr addr, std::uint8_t *out) const
{
    const PathId leaf = posmap_.get(addr);
    for (unsigned level = 0; level <= geo_.height; ++level) {
        const BucketId bucket = geo_.bucketAt(leaf, level);
        for (unsigned slot = 0; slot < geo_.bucket_slots; ++slot) {
            SlotBytes raw{};
            device_.readBytes(params_.layout.slotAddr(bucket, slot),
                              raw.data(), kSlotBytes);
            const PlainBlock block = codec_.decode(raw);
            if (!block.isDummy() && block.addr == addr &&
                block.path == leaf) {
                std::memcpy(out, block.data.data(), kBlockDataBytes);
                return true;
            }
        }
    }
    return false;
}

} // namespace psoram
