#include "oram/subtree_cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace psoram {

SubtreeCache::SubtreeCache(unsigned bucket_slots, Config config)
    : bucket_slots_(bucket_slots), config_(config)
{
    if (config_.stripes == 0)
        config_.stripes = 1;
    stripes_ = std::vector<Stripe>(config_.stripes);
    per_stripe_capacity_ = config_.capacity_buckets == 0
        ? 0
        : std::max<std::size_t>(1, config_.capacity_buckets /
                                       config_.stripes);
}

SubtreeCache::Stripe &
SubtreeCache::stripeFor(BucketId bucket)
{
    // Bucket ids are dense (level-order tree indices); mix the bits so
    // neighbouring path levels spread over different stripes.
    const std::uint64_t h = bucket * 0x9e3779b97f4a7c15ULL;
    return stripes_[(h >> 32) % stripes_.size()];
}

const SubtreeCache::Stripe &
SubtreeCache::stripeFor(BucketId bucket) const
{
    const std::uint64_t h = bucket * 0x9e3779b97f4a7c15ULL;
    return stripes_[(h >> 32) % stripes_.size()];
}

void
SubtreeCache::touch(Stripe &stripe, Entry &entry)
{
    stripe.lru.splice(stripe.lru.end(), stripe.lru, entry.lru_pos);
}

void
SubtreeCache::pinFill(BucketId bucket, const FillFn &fill)
{
    Stripe &stripe = stripeFor(bucket);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto [it, inserted] = stripe.buckets.try_emplace(bucket);
    Entry &entry = it->second;
    if (inserted) {
        ++misses_;
        entry.lru_pos = stripe.lru.insert(stripe.lru.end(), bucket);
        entry.slots.assign(bucket_slots_, PlainBlock::dummy());
        fill(bucket, entry.slots);
    } else {
        ++hits_;
        touch(stripe, entry);
    }
    ++entry.pins;
    if (inserted)
        enforceCapacity(stripe);
}

void
SubtreeCache::unpin(BucketId bucket)
{
    Stripe &stripe = stripeFor(bucket);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.buckets.find(bucket);
    if (it == stripe.buckets.end() || it->second.pins == 0)
        PSORAM_PANIC("subtree cache: unpin of unpinned bucket ", bucket);
    --it->second.pins;
}

bool
SubtreeCache::read(BucketId bucket, std::vector<PlainBlock> &out) const
{
    const Stripe &stripe = stripeFor(bucket);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.buckets.find(bucket);
    if (it == stripe.buckets.end())
        return false;
    out = it->second.slots;
    return true;
}

bool
SubtreeCache::contains(BucketId bucket) const
{
    const Stripe &stripe = stripeFor(bucket);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    return stripe.buckets.find(bucket) != stripe.buckets.end();
}

void
SubtreeCache::update(BucketId bucket, const std::vector<PlainBlock> &slots)
{
    Stripe &stripe = stripeFor(bucket);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto [it, inserted] = stripe.buckets.try_emplace(bucket);
    Entry &entry = it->second;
    entry.slots = slots;
    if (inserted)
        entry.lru_pos = stripe.lru.insert(stripe.lru.end(), bucket);
    else
        touch(stripe, entry);
    if (inserted)
        enforceCapacity(stripe);
}

void
SubtreeCache::enforceCapacity(Stripe &stripe)
{
    if (per_stripe_capacity_ == 0)
        return;
    while (stripe.buckets.size() > per_stripe_capacity_) {
        // Coldest unpinned entry: scan from the cold end of the LRU
        // list. Pinned entries are rare (≤ pipeline_depth paths) and
        // recently touched, so the front is almost always evictable —
        // O(1) amortized, where a full victim scan per insert melts
        // down at large capacities.
        auto pos = stripe.lru.begin();
        while (pos != stripe.lru.end() &&
               stripe.buckets.at(*pos).pins != 0)
            ++pos;
        if (pos == stripe.lru.end())
            return; // everything pinned; allow temporary overshoot
        stripe.buckets.erase(*pos);
        stripe.lru.erase(pos);
        ++evictions_;
    }
}

void
SubtreeCache::clear()
{
    for (Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        for (auto it = stripe.buckets.begin();
             it != stripe.buckets.end();) {
            if (it->second.pins == 0) {
                stripe.lru.erase(it->second.lru_pos);
                it = stripe.buckets.erase(it);
            } else {
                ++it;
            }
        }
    }
}

std::size_t
SubtreeCache::residentBuckets() const
{
    std::size_t total = 0;
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        total += stripe.buckets.size();
    }
    return total;
}

std::uint64_t
SubtreeCache::totalPins() const
{
    std::uint64_t total = 0;
    for (const Stripe &stripe : stripes_) {
        std::lock_guard<std::mutex> lock(stripe.mutex);
        for (const auto &[bucket, entry] : stripe.buckets)
            total += entry.pins;
    }
    return total;
}

double
SubtreeCache::hitRate() const
{
    const std::uint64_t h = hits_.value();
    const std::uint64_t m = misses_.value();
    return h + m ? static_cast<double>(h) /
                       static_cast<double>(h + m)
                 : 0.0;
}

void
SubtreeCache::registerStats(StatGroup &group,
                            const std::string &prefix) const
{
    group.addCounter(prefix + "_hits", &hits_,
                     "subtree-cache path buckets already resident");
    group.addCounter(prefix + "_misses", &misses_,
                     "subtree-cache fills from the device");
    group.addCounter(prefix + "_evictions", &evictions_,
                     "subtree-cache capacity evictions");
}

} // namespace psoram
