/**
 * @file
 * Drain energy/time model for crash handling (paper §4.2.4, Tables 1-2).
 *
 * On a power failure the persistence domain must drain to the NVM. The
 * paper compares three designs:
 *
 *  - eADR-ORAM: the whole cache hierarchy + stash + PosMap is inside the
 *    persistence domain and must drain (193.07 MB at the Table 3
 *    configuration).
 *  - eADR-cache: eADR pays only for the caches + stash, without ORAM
 *    protocol persistence (not crash consistent for ORAM).
 *  - PS-ORAM: only the two WPQs drain (96- or 4-entry configurations).
 *
 * Costs follow the BBB (HPCA'21) model the paper cites: reading a byte
 * out of SRAM costs ~1 pJ and moving it to the NVM costs ~11.2 nJ/byte
 * from L2/stash/PosMap/WPQ (11.839 nJ/byte from L1D). Draining time uses
 * the effective NVM write bandwidth implied by those numbers.
 */

#ifndef PSORAM_ENERGY_DRAIN_MODEL_HH
#define PSORAM_ENERGY_DRAIN_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace psoram {

/** Table 1: energy constants. */
struct DrainCostParams
{
    /** Accessing data from SRAM [J/byte]. */
    double sram_access_j_per_byte = 1e-12;
    /** Moving data from L1D to NVM [J/byte]. */
    double l1_to_nvm_j_per_byte = 11.839e-9;
    /** Moving data from L2 / stash / PosMap / WPQs to NVM [J/byte]. */
    double l2_to_nvm_j_per_byte = 11.228e-9;
    /** Effective drain bandwidth implied by the paper's timings
     *  [bytes/s]: 193.07 MB in 4.817 ms. */
    double drain_bytes_per_second = 42.0e9;
};

/** What a design has to drain when power fails. */
struct DrainInventory
{
    std::string name;
    std::uint64_t l1_bytes = 0;
    /** L2 + stash + PosMap + WPQ bytes (all share the same cost). */
    std::uint64_t l2_class_bytes = 0;
};

struct DrainCost
{
    double energy_joules = 0.0;
    double time_seconds = 0.0;
};

class DrainModel
{
  public:
    explicit DrainModel(const DrainCostParams &params = {});

    DrainCost cost(const DrainInventory &inventory) const;

    const DrainCostParams &params() const { return params_; }

    /** @{ The paper's Table 3 inventories. */
    static DrainInventory eadrOram();
    static DrainInventory eadrCache();
    static DrainInventory psOramWpq(std::size_t wpq_entries);
    /** @} */

  private:
    DrainCostParams params_;
};

/** Pretty formatting helpers for Table 2 ("76.530uJ", "4.817ms"). */
std::string formatEnergy(double joules);
std::string formatTime(double seconds);

} // namespace psoram

#endif // PSORAM_ENERGY_DRAIN_MODEL_HH
