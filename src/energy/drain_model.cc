#include "energy/drain_model.hh"

#include <cmath>
#include <sstream>

namespace psoram {

namespace {

constexpr std::uint64_t kMiB = 1ULL << 20;

/** Table 3 on-chip inventory. */
constexpr std::uint64_t kL1Bytes = 64 * 1024;            // 32K I + 32K D
constexpr std::uint64_t kL2Bytes = 1 * kMiB;             // 1 MB L2
constexpr std::uint64_t kStashBytes = 200 * 64;          // 200-entry
constexpr std::uint64_t kPosMapBytes = 192 * kMiB;       // on-chip PosMap
/** Data WPQ entry: one 64 B block; PosMap WPQ entry: 7 B (§4.2.3:
 *  96 entries = 672 B). */
constexpr std::uint64_t kDataWpqEntryBytes = 64;
constexpr std::uint64_t kPosWpqEntryBytes = 7;

} // namespace

DrainModel::DrainModel(const DrainCostParams &params) : params_(params)
{
}

DrainCost
DrainModel::cost(const DrainInventory &inventory) const
{
    const double total_bytes =
        static_cast<double>(inventory.l1_bytes + inventory.l2_class_bytes);
    DrainCost cost;
    cost.energy_joules =
        total_bytes * params_.sram_access_j_per_byte +
        static_cast<double>(inventory.l1_bytes) *
            params_.l1_to_nvm_j_per_byte +
        static_cast<double>(inventory.l2_class_bytes) *
            params_.l2_to_nvm_j_per_byte;
    cost.time_seconds = total_bytes / params_.drain_bytes_per_second;
    return cost;
}

DrainInventory
DrainModel::eadrOram()
{
    // Everything the ORAM controller touches must drain following the
    // ORAM protocol: caches, stash, and the (temporary) PosMap —
    // 1.0625 + 0.0122 + 192 = 193.07 MB (§4.2.4).
    return DrainInventory{"eADR-ORAM", kL1Bytes,
                          kL2Bytes + kStashBytes + kPosMapBytes};
}

DrainInventory
DrainModel::eadrCache()
{
    // eADR covering only the cache hierarchy and the stash (no ORAM
    // protocol persistence).
    return DrainInventory{"eADR-cache", kL1Bytes,
                          kL2Bytes + kStashBytes};
}

DrainInventory
DrainModel::psOramWpq(std::size_t wpq_entries)
{
    return DrainInventory{
        "PS-ORAM (" + std::to_string(wpq_entries) + "-entry WPQs)", 0,
        wpq_entries * (kDataWpqEntryBytes + kPosWpqEntryBytes)};
}

std::string
formatEnergy(double joules)
{
    std::ostringstream os;
    os.precision(4);
    if (joules >= 1.0)
        os << joules << " J";
    else if (joules >= 1e-3)
        os << joules * 1e3 << " mJ";
    else if (joules >= 1e-6)
        os << joules * 1e6 << " uJ";
    else
        os << joules * 1e9 << " nJ";
    return os.str();
}

std::string
formatTime(double seconds)
{
    std::ostringstream os;
    os.precision(4);
    if (seconds >= 1.0)
        os << seconds << " s";
    else if (seconds >= 1e-3)
        os << seconds * 1e3 << " ms";
    else if (seconds >= 1e-6)
        os << seconds * 1e6 << " us";
    else
        os << seconds * 1e9 << " ns";
    return os.str();
}

} // namespace psoram
