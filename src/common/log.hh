/**
 * @file
 * Minimal logging / fatal-error helpers, modeled on gem5's logging.hh.
 *
 * panic()  — simulator bug; should never happen regardless of user input.
 * fatal()  — simulation cannot continue due to a user error (bad config).
 * warn()   — something questionable happened but we can continue.
 * inform() — status message.
 */

#ifndef PSORAM_COMMON_LOG_HH
#define PSORAM_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace psoram {

/** Verbosity levels for inform(); warnings/errors always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide log verbosity (defaults to Normal). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** @{ Internal sinks; use the variadic wrappers below. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** @} */

namespace detail {

inline void
streamAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    streamAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamAll(os, args...);
    return os.str();
}

} // namespace detail

/** Abort with a message: simulator invariant violated. */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, const Args &...args)
{
    panicImpl(file, line, detail::concat(args...));
}

/** Exit(1) with a message: user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, const Args &...args)
{
    fatalImpl(file, line, detail::concat(args...));
}

template <typename... Args>
void
warn(const Args &...args)
{
    warnImpl(detail::concat(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    informImpl(detail::concat(args...));
}

} // namespace psoram

#define PSORAM_PANIC(...) ::psoram::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define PSORAM_FATAL(...) ::psoram::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

#endif // PSORAM_COMMON_LOG_HH
