/**
 * @file
 * Fundamental scalar types shared across the PS-ORAM codebase.
 */

#ifndef PSORAM_COMMON_TYPES_HH
#define PSORAM_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>
#include <limits>

namespace psoram {

/** Byte address in the (simulated) physical NVM address space. */
using Addr = std::uint64_t;

/** Logical block address as seen by the program / LLC (cache-line id). */
using BlockAddr = std::uint64_t;

/** Leaf label (path id) in an ORAM tree; leaves are numbered 0..2^L - 1. */
using PathId = std::uint32_t;

/** Bucket index in the flattened ORAM tree array (root = 0). */
using BucketId = std::uint64_t;

/** Simulated time measured in NVM-controller clock cycles (400 MHz). */
using Cycle = std::uint64_t;

/** Simulated time measured in CPU clock cycles (3.2 GHz). */
using CpuCycle = std::uint64_t;

/** Sentinel path id meaning "no path assigned". */
inline constexpr PathId kInvalidPath =
    std::numeric_limits<PathId>::max();

/** Sentinel block address used for dummy ORAM blocks (the paper's ⊥). */
inline constexpr BlockAddr kDummyBlockAddr =
    std::numeric_limits<BlockAddr>::max();

/** CPU clock cycles per NVM clock cycle (3.2 GHz / 400 MHz). */
inline constexpr CpuCycle kCpuCyclesPerNvmCycle = 8;

/** Cache line / ORAM data payload size in bytes (Table 3). */
inline constexpr std::size_t kBlockDataBytes = 64;

/** Per-block header bytes: program address, path id, two IVs. */
inline constexpr std::size_t kBlockHeaderBytes = 16;

} // namespace psoram

#endif // PSORAM_COMMON_TYPES_HH
