#include "common/sharding.hh"

#include <algorithm>

#include "common/log.hh"

namespace psoram {

const char *
shardPolicyName(ShardPolicy policy)
{
    switch (policy) {
      case ShardPolicy::Interleave:
        return "interleave";
      case ShardPolicy::Range:
        return "range";
    }
    return "?";
}

std::uint64_t
deriveShardSeed(std::uint64_t base_seed, unsigned shard,
                unsigned num_shards)
{
    if (num_shards <= 1)
        return base_seed;
    // splitmix64 finalizer over (base, shard); the odd multiplier keeps
    // shard 0 of a multi-shard run distinct from the base stream too.
    std::uint64_t z = base_seed ^
        (static_cast<std::uint64_t>(shard + 1) * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

ShardRouter::ShardRouter(const ShardingParams &params,
                         std::uint64_t total_blocks)
    : params_(params), total_(total_blocks)
{
    if (params_.num_shards == 0)
        PSORAM_PANIC("shard count must be positive");
    if (total_ < params_.num_shards)
        PSORAM_PANIC("cannot split ", total_, " blocks across ",
                     params_.num_shards, " shards");
    stride_ = (total_ + params_.num_shards - 1) / params_.num_shards;
}

ShardSlot
ShardRouter::route(BlockAddr addr) const
{
    if (addr >= total_)
        PSORAM_PANIC("address ", addr, " outside the ", total_,
                     "-block space");
    if (params_.num_shards == 1)
        return ShardSlot{0, addr};
    if (params_.policy == ShardPolicy::Interleave)
        return ShardSlot{static_cast<unsigned>(addr % params_.num_shards),
                         addr / params_.num_shards};
    return ShardSlot{static_cast<unsigned>(addr / stride_),
                     addr % stride_};
}

BlockAddr
ShardRouter::globalAddr(unsigned shard, BlockAddr local) const
{
    if (shard >= params_.num_shards)
        PSORAM_PANIC("shard ", shard, " out of range");
    if (params_.num_shards == 1)
        return local;
    if (params_.policy == ShardPolicy::Interleave)
        return local * params_.num_shards + shard;
    return static_cast<BlockAddr>(shard) * stride_ + local;
}

std::uint64_t
ShardRouter::shardBlocks(unsigned shard) const
{
    if (shard >= params_.num_shards)
        PSORAM_PANIC("shard ", shard, " out of range");
    if (params_.num_shards == 1)
        return total_;
    if (params_.policy == ShardPolicy::Interleave) {
        const std::uint64_t base = total_ / params_.num_shards;
        return base + (shard < total_ % params_.num_shards ? 1 : 0);
    }
    const std::uint64_t begin = static_cast<std::uint64_t>(shard) * stride_;
    return begin >= total_ ? 0 : std::min(stride_, total_ - begin);
}

} // namespace psoram
