/**
 * @file
 * Small bit-manipulation helpers shared by the tree addressing and the
 * NVM address decoding logic.
 */

#ifndef PSORAM_COMMON_BITOPS_HH
#define PSORAM_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace psoram {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)). @pre v > 0 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)). @pre v > 0 */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    return (v >> lo) & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
}

/** Integer ceil division. @pre b > 0 */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace psoram

#endif // PSORAM_COMMON_BITOPS_HH
