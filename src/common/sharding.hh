/**
 * @file
 * Address-space sharding: the config and routing layer of the sharded
 * ORAM engine.
 *
 * A sharded deployment runs N independent PS-ORAM instances ("shards"),
 * each with its own tree, stash, PosMap, WPQs and NVM region. Because
 * the shards serve *disjoint* logical address ranges and every shard is
 * an unmodified Path-ORAM instance, the access pattern an adversary
 * observes per shard is exactly the single-instance pattern — per-shard
 * obliviousness composes (each shard's trace is independent of which
 * addresses map to the *other* shards, and within a shard the standard
 * Path ORAM argument applies). Crash consistency likewise holds per
 * shard: each shard carries its own WPQ bracket and recovery metadata.
 *
 * The ShardRouter is the single source of truth for the partition:
 * logical address -> (shard, shard-local address) and back. The
 * single-shard configuration is the identity mapping, so an engine in
 * front of one shard produces byte-identical device traffic to the
 * unsharded stack (pinned by test_traffic_equivalence).
 */

#ifndef PSORAM_COMMON_SHARDING_HH
#define PSORAM_COMMON_SHARDING_HH

#include <cstdint>

#include "common/types.hh"

namespace psoram {

/** How logical block addresses are partitioned across shards. */
enum class ShardPolicy
{
    /** shard = addr % N, local = addr / N. Spreads any access pattern
     *  evenly; the default. */
    Interleave,
    /** Contiguous ranges of ceil(total/N) blocks per shard. Keeps
     *  address locality inside one shard (useful when a workload is
     *  range-partitioned by tenant). */
    Range,
};

const char *shardPolicyName(ShardPolicy policy);

/** Sharding configuration (config layer). */
struct ShardingParams
{
    unsigned num_shards = 1;
    ShardPolicy policy = ShardPolicy::Interleave;
};

/**
 * Deterministic per-shard RNG seed. Shard 0 of a single-shard
 * deployment keeps the base seed unchanged (fast-path identity with
 * the unsharded stack); every other (seed, shard) pair is spread by a
 * splitmix64 finalizer so shards draw independent position streams
 * while whole runs stay reproducible from one base seed.
 */
std::uint64_t deriveShardSeed(std::uint64_t base_seed, unsigned shard,
                              unsigned num_shards);

/** Routing result: which shard serves an address, and as what. */
struct ShardSlot
{
    unsigned shard = 0;
    BlockAddr local = 0;
};

class ShardRouter
{
  public:
    /**
     * @param params partition shape (shard count + policy)
     * @param total_blocks logical block address space being split
     */
    ShardRouter(const ShardingParams &params, std::uint64_t total_blocks);

    unsigned numShards() const { return params_.num_shards; }
    ShardPolicy policy() const { return params_.policy; }
    std::uint64_t totalBlocks() const { return total_; }

    /** Logical address -> (shard, shard-local address). */
    ShardSlot route(BlockAddr addr) const;

    /** Inverse of route(): (shard, local) -> logical address. */
    BlockAddr globalAddr(unsigned shard, BlockAddr local) const;

    /** Size of shard @p shard's local address space. */
    std::uint64_t shardBlocks(unsigned shard) const;

  private:
    ShardingParams params_;
    std::uint64_t total_;
    /** Range policy: blocks per shard (ceil). */
    std::uint64_t stride_;
};

} // namespace psoram

#endif // PSORAM_COMMON_SHARDING_HH
