/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's Stats package.
 *
 * Components register named counters/histograms into a StatGroup; the
 * experiment harness dumps a group recursively to produce the per-design
 * statistics that feed the table/figure benches.
 *
 * Thread-safety contract (sharded engine): every primitive here may be
 * written from one worker thread while being read from another (live
 * stats polling, merged per-shard reporting). Counter increments are
 * relaxed atomics — monotonic event counts need no ordering, only
 * tear-freedom. Distribution/Histogram mutate several fields per sample
 * and take a per-object mutex; in the sharded engine each shard owns its
 * own instances, so the lock is uncontended on the hot path. Cross-shard
 * aggregation happens by *merging read-side snapshots*, never by sharing
 * one accumulator between workers.
 */

#ifndef PSORAM_COMMON_STATS_HH
#define PSORAM_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace psoram {

/** Monotonic event counter (relaxed-atomic; safe to read mid-run). */
class Counter
{
  public:
    Counter() = default;

    /**
     * Copying is *snapshot-copy*: the destination receives the source's
     * value as of one relaxed load. That is tear-free (the whole 64-bit
     * value is read atomically) but not synchronized — increments racing
     * with the copy land on exactly one side, so two snapshot-copies of
     * a live counter may differ. Never use copy-assignment to "merge"
     * two live counters: it *replaces* the destination (use += with
     * value() snapshots for read-side shard merges).
     */
    Counter(const Counter &other) : value_(other.value()) {}
    Counter &
    operator=(const Counter &other)
    {
        value_.store(other.value(), std::memory_order_relaxed);
        return *this;
    }

    Counter &
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    Counter &
    operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Running scalar statistic (min / max / mean / count). */
class Distribution
{
  public:
    Distribution() = default;

    /** Snapshot-copy under *both* mutexes: the copy observes one
     *  consistent (count, sum, min, max) tuple — no torn merges even
     *  while the source is being sampled by another thread. (These are
     *  deliberately user-provided; an implicitly generated copy would
     *  bitwise-read the fields outside the mutex and tear.) */
    Distribution(const Distribution &other);
    Distribution &operator=(const Distribution &other);

    void sample(double v);
    void reset();

    std::uint64_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    double sum() const;

    /** One consistent (count, sum, min, max) view under a single lock
     *  (metrics export; four separate getters could tear mid-run). */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;

        double mean() const { return count ? sum / count : 0.0; }
    };
    Snapshot snapshot() const;

    /** Fold @p other's samples into this one (read-side shard merge). */
    void merge(const Distribution &other);

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, buckets * bucketWidth). */
class Histogram
{
  public:
    Histogram(std::size_t num_buckets, double bucket_width);

    /** Snapshot-copy under the mutex (see Distribution): the bucket
     *  array, overflow and total are captured as one consistent view. */
    Histogram(const Histogram &other);
    Histogram &operator=(const Histogram &other);

    void sample(double v);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const;
    double bucketWidth() const { return width_; }
    std::uint64_t overflow() const;
    std::uint64_t total() const;

    /** Smallest value v such that fraction() of samples are <= v. */
    double percentile(double fraction) const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics. Components own a StatGroup and
 * register members once at construction; the harness walks registered
 * entries to dump them. Registration and dumping may happen on
 * different threads (engine workers vs. the reporting thread).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    void addDistribution(const std::string &name, const Distribution *d,
                         const std::string &desc);

    const std::string &name() const { return name_; }

    /** Dump "group.stat value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter value by name; 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /**
     * Point-in-time value copy of every registered stat (the metrics
     * exporter's input). Safe while owners keep mutating: counters are
     * relaxed-atomic, distributions snapshot under their own mutex.
     */
    struct Snapshot
    {
        struct CounterValue
        {
            std::string name;
            std::uint64_t value = 0;
            std::string desc;
        };
        struct DistValue
        {
            std::string name;
            Distribution::Snapshot stats;
            std::string desc;
        };

        std::string name;
        std::vector<CounterValue> counters;
        std::vector<DistValue> dists;
    };
    Snapshot snapshot() const;

  private:
    struct CounterEntry { const Counter *counter; std::string desc; };
    struct DistEntry { const Distribution *dist; std::string desc; };

    std::string name_;
    mutable std::mutex mutex_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, DistEntry> dists_;
};

/**
 * Per-phase access-latency breakdown for the five PS-ORAM protocol
 * phases (remap -> load -> backup -> evict -> drain), in whatever unit
 * the owner samples (the controller keeps one group in host nanoseconds
 * and one in simulated NVM cycles).
 *
 * Invariant the owner maintains: the five phase windows are adjacent
 * and `evict` *excludes* the WPQ drain nested inside it, so for every
 * access   remap + load + backup + evict + drain == total   exactly.
 * `stash_hit` tracks the step-1 fast path and is outside that identity
 * (stash hits never run the phases).
 */
struct PhaseLatencyStats
{
    Distribution remap;    ///< step 2: PosMap access + label backup
    Distribution load;     ///< step 3: path load
    Distribution backup;   ///< step 4: stash update + data backup
    Distribution evict;    ///< step 5 minus the WPQ drain
    Distribution drain;    ///< WPQ rounds: start/push/commit/drain
    Distribution total;    ///< steps 2-5 end to end (full accesses)
    Distribution stash_hit; ///< step-1 fast path (not part of total)

    /** One access's phase windows, sampled under the sum identity. */
    void sampleAccess(double remap_v, double load_v, double backup_v,
                      double evict_v, double drain_v, double total_v);

    /** Fold @p other in (read-side shard merge; safe mid-run). */
    void merge(const PhaseLatencyStats &other);

    void reset();

    /** Register every distribution as "<prefix>.<phase>". */
    void registerWith(StatGroup &group, const std::string &prefix) const;

    /** Sum over the five phase distributions' sample sums (== the sum
     *  of `total` up to floating-point association). */
    double phaseSum() const;
};

/**
 * Per-phase recovery-latency breakdown for the crash-recovery pipeline
 * (RecoveryManager::recover + System::recoverController), in host
 * nanoseconds.
 *
 * Invariant the owner maintains: the six phase windows are adjacent
 * timestamp deltas over one recovery, so for every sampled recovery
 *   wpq_replay + adr_redeliver + image_reload + posmap_rebuild
 *     + integrity_verify + node_repair == total   exactly.
 * Phases a recovery does not run (no write-behind, integrity off, ...)
 * sample 0 so the identity still holds.
 */
struct RecoveryStats
{
    Distribution wpq_replay;       ///< write-behind queued-round replay
    Distribution adr_redeliver;    ///< ADR crashFlush of in-flight WPQs
    Distribution image_reload;     ///< controller/device image rebuild
    Distribution posmap_rebuild;   ///< volatile PosMap/stash/shadow redo
    Distribution integrity_verify; ///< record re-verification scan
    Distribution node_repair;      ///< stale interior-node repair
    Distribution total;            ///< whole recovery, end to end

    Counter recoveries;          ///< recoveries sampled (success only)
    Counter redelivered_entries; ///< WPQ entries crashFlush redelivered
    Counter replayed_rounds;     ///< write-behind rounds replayed
    Counter records_verified;    ///< integrity records that verified
    Counter records_refused;     ///< recoveries refused (IntegrityError)
    Counter nodes_repaired;      ///< interior nodes rewritten
    Counter blackbox_events;     ///< flight-recorder events decoded
    Counter blackbox_torn;       ///< flight-recorder records torn/bad

    /** One recovery's phase windows, sampled under the sum identity. */
    void sampleRecovery(double wpq_replay_v, double adr_redeliver_v,
                        double image_reload_v, double posmap_rebuild_v,
                        double integrity_verify_v, double node_repair_v,
                        double total_v);

    /** Fold @p other in (read-side shard merge; safe mid-run). */
    void merge(const RecoveryStats &other);

    void reset();

    /** Register every stat as "<prefix>.<name>". */
    void registerWith(StatGroup &group, const std::string &prefix) const;

    /** Sum over the six phase distributions' sample sums (== the sum
     *  of `total` up to floating-point association). */
    double phaseSum() const;
};

} // namespace psoram

#endif // PSORAM_COMMON_STATS_HH
