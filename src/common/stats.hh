/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's Stats package.
 *
 * Components register named counters/histograms into a StatGroup; the
 * experiment harness dumps a group recursively to produce the per-design
 * statistics that feed the table/figure benches.
 *
 * Thread-safety contract (sharded engine): every primitive here may be
 * written from one worker thread while being read from another (live
 * stats polling, merged per-shard reporting). Counter increments are
 * relaxed atomics — monotonic event counts need no ordering, only
 * tear-freedom. Distribution/Histogram mutate several fields per sample
 * and take a per-object mutex; in the sharded engine each shard owns its
 * own instances, so the lock is uncontended on the hot path. Cross-shard
 * aggregation happens by *merging read-side snapshots*, never by sharing
 * one accumulator between workers.
 */

#ifndef PSORAM_COMMON_STATS_HH
#define PSORAM_COMMON_STATS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace psoram {

/** Monotonic event counter (relaxed-atomic; safe to read mid-run). */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &other) : value_(other.value()) {}
    Counter &
    operator=(const Counter &other)
    {
        value_.store(other.value(), std::memory_order_relaxed);
        return *this;
    }

    Counter &
    operator++()
    {
        value_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    Counter &
    operator+=(std::uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Running scalar statistic (min / max / mean / count). */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(const Distribution &other);
    Distribution &operator=(const Distribution &other);

    void sample(double v);
    void reset();

    std::uint64_t count() const;
    double mean() const;
    double min() const;
    double max() const;
    double sum() const;

    /** Fold @p other's samples into this one (read-side shard merge). */
    void merge(const Distribution &other);

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, buckets * bucketWidth). */
class Histogram
{
  public:
    Histogram(std::size_t num_buckets, double bucket_width);
    Histogram(const Histogram &other);
    Histogram &operator=(const Histogram &other);

    void sample(double v);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const;
    double bucketWidth() const { return width_; }
    std::uint64_t overflow() const;
    std::uint64_t total() const;

    /** Smallest value v such that fraction() of samples are <= v. */
    double percentile(double fraction) const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics. Components own a StatGroup and
 * register members once at construction; the harness walks registered
 * entries to dump them. Registration and dumping may happen on
 * different threads (engine workers vs. the reporting thread).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    void addDistribution(const std::string &name, const Distribution *d,
                         const std::string &desc);

    const std::string &name() const { return name_; }

    /** Dump "group.stat value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter value by name; 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

  private:
    struct CounterEntry { const Counter *counter; std::string desc; };
    struct DistEntry { const Distribution *dist; std::string desc; };

    std::string name_;
    mutable std::mutex mutex_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, DistEntry> dists_;
};

} // namespace psoram

#endif // PSORAM_COMMON_STATS_HH
