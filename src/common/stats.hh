/**
 * @file
 * Lightweight statistics framework in the spirit of gem5's Stats package.
 *
 * Components register named counters/histograms into a StatGroup; the
 * experiment harness dumps a group recursively to produce the per-design
 * statistics that feed the table/figure benches.
 */

#ifndef PSORAM_COMMON_STATS_HH
#define PSORAM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace psoram {

/** Monotonic event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running scalar statistic (min / max / mean / count). */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, buckets * bucketWidth). */
class Histogram
{
  public:
    Histogram(std::size_t num_buckets, double bucket_width);

    void sample(double v);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Smallest value v such that fraction() of samples are <= v. */
    double percentile(double fraction) const;

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A named collection of statistics. Components own a StatGroup and
 * register members once at construction; the harness walks registered
 * entries to dump them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(const std::string &name, const Counter *c,
                    const std::string &desc);
    void addDistribution(const std::string &name, const Distribution *d,
                         const std::string &desc);

    const std::string &name() const { return name_; }

    /** Dump "group.stat value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter value by name; 0 if absent. */
    std::uint64_t counterValue(const std::string &name) const;

  private:
    struct CounterEntry { const Counter *counter; std::string desc; };
    struct DistEntry { const Distribution *dist; std::string desc; };

    std::string name_;
    std::map<std::string, CounterEntry> counters_;
    std::map<std::string, DistEntry> dists_;
};

} // namespace psoram

#endif // PSORAM_COMMON_STATS_HH
