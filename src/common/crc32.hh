/**
 * @file
 * CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte range. Shared
 * by the on-disk page trailers (nvm/paged_disk) and the persistent
 * flight-recorder records (nvm/flight_recorder): both need a cheap
 * integrity stamp that detects torn or misdirected writes, not an
 * adversary (the authenticated-record machinery covers that).
 */

#ifndef PSORAM_COMMON_CRC32_HH
#define PSORAM_COMMON_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace psoram {

inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace psoram

#endif // PSORAM_COMMON_CRC32_HH
