/**
 * @file
 * Key/value configuration store with typed accessors.
 *
 * Benches and examples accept "key=value" command-line overrides; every
 * simulated component pulls its parameters from a Config so experiments
 * are reproducible from a single flat parameter list (Table 3 style).
 */

#ifndef PSORAM_COMMON_CONFIG_HH
#define PSORAM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace psoram {

class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, std::int64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    bool has(const std::string &key) const;

    /** @{ Typed getters; fall back to @p def when the key is absent.
     *  Malformed values are fatal (user error). */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;
    /** @} */

    /**
     * Parse a "key=value" token (as passed on a bench command line).
     * @return false if the token is not of that shape.
     */
    bool parseAssignment(const std::string &token);

    /** Parse every argv token of the form key=value; ignore the rest. */
    void parseArgs(int argc, char **argv);

    /** All keys in sorted order, for config dumps. */
    std::vector<std::string> keys() const;

    /** Dump "key = value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::optional<std::string> lookup(const std::string &key) const;

    std::map<std::string, std::string> values_;
};

} // namespace psoram

#endif // PSORAM_COMMON_CONFIG_HH
