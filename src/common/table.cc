#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace psoram {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        PSORAM_PANIC("table row arity ", row.size(), " != header arity ",
                     header_.size());
    std::lock_guard<std::mutex> lock(mutex_);
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::pct(double ratio, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << std::showpos
       << ratio * 100.0 << "%";
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    const auto printRow = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(static_cast<int>(width[c]))
               << row[c] << " |";
        os << "\n";
    };
    const auto printRule = [&]() {
        os << "+";
        for (const auto w : width)
            os << std::string(w + 2, '-') << "+";
        os << "\n";
    };

    printRule();
    printRow(header_);
    printRule();
    for (const auto &row : rows_)
        printRow(row);
    printRule();
}

} // namespace psoram
