#include "common/log.hh"

#include <cstdlib>
#include <iostream>

namespace psoram {

namespace {

LogLevel g_level = LogLevel::Normal;

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " (" << file << ":" << line << ")\n";
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level != LogLevel::Quiet)
        std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    if (g_level == LogLevel::Verbose)
        std::cerr << "info: " << msg << "\n";
}

} // namespace psoram
