#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/log.hh"

namespace psoram {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::size_t num_buckets, double bucket_width)
    : buckets_(num_buckets, 0), width_(bucket_width)
{
    if (num_buckets == 0 || bucket_width <= 0.0)
        PSORAM_PANIC("histogram needs positive bucket count and width");
}

void
Histogram::sample(double v)
{
    ++total_;
    if (v < 0.0) {
        ++buckets_[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

double
Histogram::percentile(double fraction) const
{
    if (total_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(fraction * total_);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (running >= target)
            return (i + 1) * width_;
    }
    return buckets_.size() * width_;
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    counters_[name] = CounterEntry{c, desc};
}

void
StatGroup::addDistribution(const std::string &name, const Distribution *d,
                           const std::string &desc)
{
    dists_[name] = DistEntry{d, desc};
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, entry] : counters_) {
        os << std::left << std::setw(44) << (name_ + "." + name)
           << std::right << std::setw(16) << entry.counter->value()
           << "  # " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : dists_) {
        const auto &d = *entry.dist;
        os << std::left << std::setw(44)
           << (name_ + "." + name + ".mean")
           << std::right << std::setw(16) << d.mean()
           << "  # " << entry.desc << "\n";
        os << std::left << std::setw(44)
           << (name_ + "." + name + ".max")
           << std::right << std::setw(16) << d.max()
           << "  # max of " << entry.desc << "\n";
    }
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.counter->value();
}

} // namespace psoram
