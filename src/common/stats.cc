#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/log.hh"

namespace psoram {

Distribution::Distribution(const Distribution &other)
{
    *this = other;
}

Distribution &
Distribution::operator=(const Distribution &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
    return *this;
}

void
Distribution::sample(double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Distribution::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

std::uint64_t
Distribution::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Distribution::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? sum_ / count_ : 0.0;
}

double
Distribution::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? min_ : 0.0;
}

double
Distribution::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ ? max_ : 0.0;
}

double
Distribution::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

Distribution::Snapshot
Distribution::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.count = count_;
    snap.sum = sum_;
    snap.min = count_ ? min_ : 0.0;
    snap.max = count_ ? max_ : 0.0;
    return snap;
}

void
Distribution::merge(const Distribution &other)
{
    std::scoped_lock lock(mutex_, other.mutex_);
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

Histogram::Histogram(std::size_t num_buckets, double bucket_width)
    : buckets_(num_buckets, 0), width_(bucket_width)
{
    if (num_buckets == 0 || bucket_width <= 0.0)
        PSORAM_PANIC("histogram needs positive bucket count and width");
}

Histogram::Histogram(const Histogram &other) : width_(other.width_)
{
    std::lock_guard<std::mutex> lock(other.mutex_);
    buckets_ = other.buckets_;
    overflow_ = other.overflow_;
    total_ = other.total_;
}

Histogram &
Histogram::operator=(const Histogram &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mutex_, other.mutex_);
    buckets_ = other.buckets_;
    width_ = other.width_;
    overflow_ = other.overflow_;
    total_ = other.total_;
    return *this;
}

void
Histogram::sample(double v)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_;
    if (v < 0.0) {
        ++buckets_[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buckets_.at(i);
}

std::size_t
Histogram::numBuckets() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buckets_.size();
}

std::uint64_t
Histogram::overflow() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return overflow_;
}

std::uint64_t
Histogram::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

double
Histogram::percentile(double fraction) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (total_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(fraction * total_);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (running >= target)
            return (i + 1) * width_;
    }
    return buckets_.size() * width_;
}

void
StatGroup::addCounter(const std::string &name, const Counter *c,
                      const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] = CounterEntry{c, desc};
}

void
StatGroup::addDistribution(const std::string &name, const Distribution *d,
                           const std::string &desc)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dists_[name] = DistEntry{d, desc};
}

void
StatGroup::dump(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, entry] : counters_) {
        os << std::left << std::setw(44) << (name_ + "." + name)
           << std::right << std::setw(16) << entry.counter->value()
           << "  # " << entry.desc << "\n";
    }
    for (const auto &[name, entry] : dists_) {
        const auto &d = *entry.dist;
        os << std::left << std::setw(44)
           << (name_ + "." + name + ".mean")
           << std::right << std::setw(16) << d.mean()
           << "  # " << entry.desc << "\n";
        os << std::left << std::setw(44)
           << (name_ + "." + name + ".max")
           << std::right << std::setw(16) << d.max()
           << "  # max of " << entry.desc << "\n";
    }
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.counter->value();
}

StatGroup::Snapshot
StatGroup::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.name = name_;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, entry] : counters_)
        snap.counters.push_back(
            {name, entry.counter->value(), entry.desc});
    snap.dists.reserve(dists_.size());
    for (const auto &[name, entry] : dists_)
        snap.dists.push_back({name, entry.dist->snapshot(), entry.desc});
    return snap;
}

void
PhaseLatencyStats::sampleAccess(double remap_v, double load_v,
                                double backup_v, double evict_v,
                                double drain_v, double total_v)
{
    remap.sample(remap_v);
    load.sample(load_v);
    backup.sample(backup_v);
    evict.sample(evict_v);
    drain.sample(drain_v);
    total.sample(total_v);
}

void
PhaseLatencyStats::merge(const PhaseLatencyStats &other)
{
    remap.merge(other.remap);
    load.merge(other.load);
    backup.merge(other.backup);
    evict.merge(other.evict);
    drain.merge(other.drain);
    total.merge(other.total);
    stash_hit.merge(other.stash_hit);
}

void
PhaseLatencyStats::reset()
{
    remap.reset();
    load.reset();
    backup.reset();
    evict.reset();
    drain.reset();
    total.reset();
    stash_hit.reset();
}

void
PhaseLatencyStats::registerWith(StatGroup &group,
                                const std::string &prefix) const
{
    group.addDistribution(prefix + ".remap", &remap,
                          "step 2: PosMap access + label backup");
    group.addDistribution(prefix + ".load", &load,
                          "step 3: path load");
    group.addDistribution(prefix + ".backup", &backup,
                          "step 4: stash update + data backup");
    group.addDistribution(prefix + ".evict", &evict,
                          "step 5: eviction excluding the WPQ drain");
    group.addDistribution(prefix + ".drain", &drain,
                          "WPQ rounds: start/push/commit/drain");
    group.addDistribution(prefix + ".total", &total,
                          "steps 2-5 end to end (full accesses)");
    group.addDistribution(prefix + ".stash_hit", &stash_hit,
                          "step-1 fast path (no phases run)");
}

double
PhaseLatencyStats::phaseSum() const
{
    return remap.sum() + load.sum() + backup.sum() + evict.sum() +
           drain.sum();
}

void
RecoveryStats::sampleRecovery(double wpq_replay_v, double adr_redeliver_v,
                              double image_reload_v,
                              double posmap_rebuild_v,
                              double integrity_verify_v,
                              double node_repair_v, double total_v)
{
    wpq_replay.sample(wpq_replay_v);
    adr_redeliver.sample(adr_redeliver_v);
    image_reload.sample(image_reload_v);
    posmap_rebuild.sample(posmap_rebuild_v);
    integrity_verify.sample(integrity_verify_v);
    node_repair.sample(node_repair_v);
    total.sample(total_v);
    ++recoveries;
}

void
RecoveryStats::merge(const RecoveryStats &other)
{
    wpq_replay.merge(other.wpq_replay);
    adr_redeliver.merge(other.adr_redeliver);
    image_reload.merge(other.image_reload);
    posmap_rebuild.merge(other.posmap_rebuild);
    integrity_verify.merge(other.integrity_verify);
    node_repair.merge(other.node_repair);
    total.merge(other.total);
    recoveries += other.recoveries.value();
    redelivered_entries += other.redelivered_entries.value();
    replayed_rounds += other.replayed_rounds.value();
    records_verified += other.records_verified.value();
    records_refused += other.records_refused.value();
    nodes_repaired += other.nodes_repaired.value();
    blackbox_events += other.blackbox_events.value();
    blackbox_torn += other.blackbox_torn.value();
}

void
RecoveryStats::reset()
{
    wpq_replay.reset();
    adr_redeliver.reset();
    image_reload.reset();
    posmap_rebuild.reset();
    integrity_verify.reset();
    node_repair.reset();
    total.reset();
    recoveries.reset();
    redelivered_entries.reset();
    replayed_rounds.reset();
    records_verified.reset();
    records_refused.reset();
    nodes_repaired.reset();
    blackbox_events.reset();
    blackbox_torn.reset();
}

void
RecoveryStats::registerWith(StatGroup &group,
                            const std::string &prefix) const
{
    group.addDistribution(prefix + ".wpq_replay_ns", &wpq_replay,
                          "write-behind queued-round replay");
    group.addDistribution(prefix + ".adr_redeliver_ns", &adr_redeliver,
                          "ADR crashFlush of the in-flight WPQ rounds");
    group.addDistribution(prefix + ".image_reload_ns", &image_reload,
                          "controller teardown + image rebuild");
    group.addDistribution(prefix + ".posmap_rebuild_ns", &posmap_rebuild,
                          "volatile PosMap/stash/shadow-region rebuild");
    group.addDistribution(prefix + ".integrity_verify_ns",
                          &integrity_verify,
                          "integrity record re-verification scan");
    group.addDistribution(prefix + ".node_repair_ns", &node_repair,
                          "stale Merkle interior-node repair");
    group.addDistribution(prefix + ".total_ns", &total,
                          "whole recovery, end to end");
    group.addCounter(prefix + ".recoveries", &recoveries,
                     "recoveries sampled (successful only)");
    group.addCounter(prefix + ".redelivered_entries", &redelivered_entries,
                     "WPQ entries redelivered by the ADR crash flush");
    group.addCounter(prefix + ".replayed_rounds", &replayed_rounds,
                     "write-behind queued rounds replayed");
    group.addCounter(prefix + ".records_verified", &records_verified,
                     "integrity records whose tags verified");
    group.addCounter(prefix + ".records_refused", &records_refused,
                     "recoveries refused with an IntegrityError");
    group.addCounter(prefix + ".nodes_repaired", &nodes_repaired,
                     "stale persisted interior nodes rewritten");
    group.addCounter(prefix + ".blackbox_events", &blackbox_events,
                     "flight-recorder events decoded at recovery");
    group.addCounter(prefix + ".blackbox_torn", &blackbox_torn,
                     "flight-recorder records dropped (torn/bad CRC)");
}

double
RecoveryStats::phaseSum() const
{
    return wpq_replay.sum() + adr_redeliver.sum() + image_reload.sum() +
           posmap_rebuild.sum() + integrity_verify.sum() +
           node_repair.sum();
}

} // namespace psoram
