#include "common/config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace psoram {

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::setInt(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::setBool(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::optional<std::string>
Config::lookup(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    return lookup(key).value_or(def);
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    const auto v = lookup(key);
    if (!v)
        return def;
    char *end = nullptr;
    const std::int64_t out = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        PSORAM_FATAL("config key '", key, "' is not an integer: ", *v);
    return out;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    const auto v = lookup(key);
    if (!v)
        return def;
    char *end = nullptr;
    const std::uint64_t out = std::strtoull(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        PSORAM_FATAL("config key '", key, "' is not an integer: ", *v);
    return out;
}

double
Config::getDouble(const std::string &key, double def) const
{
    const auto v = lookup(key);
    if (!v)
        return def;
    char *end = nullptr;
    const double out = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        PSORAM_FATAL("config key '", key, "' is not a number: ", *v);
    return out;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    const auto v = lookup(key);
    if (!v)
        return def;
    if (*v == "true" || *v == "1" || *v == "yes")
        return true;
    if (*v == "false" || *v == "0" || *v == "no")
        return false;
    PSORAM_FATAL("config key '", key, "' is not a boolean: ", *v);
}

bool
Config::parseAssignment(const std::string &token)
{
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(token.substr(0, eq), token.substr(eq + 1));
    return true;
}

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        parseAssignment(argv[i]);
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

void
Config::dump(std::ostream &os) const
{
    for (const auto &[k, v] : values_)
        os << k << " = " << v << "\n";
}

} // namespace psoram
