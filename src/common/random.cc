#include "common/random.hh"

#include <cassert>

namespace psoram {

namespace {

/** SplitMix64 step, used only to expand the seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // A state of all zeros is the one forbidden state; SplitMix64 never
    // produces four consecutive zeros from any seed.
    for (auto &word : s)
        word = splitMix64(seed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

PathId
Rng::nextPath(std::uint64_t num_leaves)
{
    return static_cast<PathId>(nextBelow(num_leaves));
}

} // namespace psoram
