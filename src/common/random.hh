/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be reproducible run-to-run, so every stochastic
 * component (path remapping, trace generation, crash injection) draws from
 * an explicitly seeded Xoshiro256** generator instead of global state.
 */

#ifndef PSORAM_COMMON_RANDOM_HH
#define PSORAM_COMMON_RANDOM_HH

#include <cstdint>

#include "common/types.hh"

namespace psoram {

/**
 * Xoshiro256** PRNG (Blackman & Vigna). Small, fast, and good enough for
 * simulation purposes; not a CSPRNG. The ORAM security analysis assumes a
 * cryptographic RNG in hardware — the statistical properties exercised by
 * the simulator are identical.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound), bias-corrected. @pre bound > 0 */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /** Uniform leaf label for a tree with the given number of leaves. */
    PathId nextPath(std::uint64_t num_leaves);

  private:
    std::uint64_t s[4];
};

} // namespace psoram

#endif // PSORAM_COMMON_RANDOM_HH
