/**
 * @file
 * ASCII table printer used by the bench harnesses to reproduce the
 * paper's tables and figure data series in a readable text form.
 *
 * Row accumulation is mutex-guarded: sharded-engine completion
 * callbacks (and the bench loops that drive per-shard reporting) may
 * append rows from several threads concurrently. Rows are printed in
 * insertion order.
 */

#ifndef PSORAM_COMMON_TABLE_HH
#define PSORAM_COMMON_TABLE_HH

#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace psoram {

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header.
     *  Thread-safe: callable from concurrent engine callbacks. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Format a ratio as a percentage string like "+4.29%". */
    static std::string pct(double ratio, int precision = 2);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    mutable std::mutex mutex_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace psoram

#endif // PSORAM_COMMON_TABLE_HH
