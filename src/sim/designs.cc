#include "sim/designs.hh"

#include "common/log.hh"

namespace psoram {

std::vector<DesignKind>
nonRecursiveDesigns()
{
    return {DesignKind::Baseline, DesignKind::FullNvm,
            DesignKind::FullNvmStt, DesignKind::NaivePsOram,
            DesignKind::PsOram};
}

std::vector<DesignKind>
recursiveDesigns()
{
    return {DesignKind::RcrBaseline, DesignKind::RcrPsOram};
}

std::vector<DesignKind>
allDesigns()
{
    std::vector<DesignKind> designs = nonRecursiveDesigns();
    for (const DesignKind kind : recursiveDesigns())
        designs.push_back(kind);
    return designs;
}

SystemConfig
configFromOverrides(const Config &overrides, DesignKind design)
{
    SystemConfig config;
    config.design = design;
    config.tree_height =
        static_cast<unsigned>(overrides.getUint("height", 23));
    config.bucket_slots = static_cast<unsigned>(overrides.getUint("z", 4));
    config.stash_capacity =
        static_cast<std::size_t>(overrides.getUint("stash", 200));
    config.wpq_entries =
        static_cast<std::size_t>(overrides.getUint("wpq", 96));
    config.channels =
        static_cast<unsigned>(overrides.getUint("channels", 1));
    config.banks_per_channel =
        static_cast<unsigned>(overrides.getUint("banks", 8));
    config.seed = overrides.getUint("seed", 1);
    config.fetch_threads = static_cast<unsigned>(
        overrides.getUint("fetchthreads", config.fetch_threads));
    config.cache_buckets = static_cast<std::size_t>(
        overrides.getUint("cachebuckets", 0));
    config.cache_stripes = static_cast<unsigned>(
        overrides.getUint("cachestripes", 0));

    const std::string cipher = overrides.getString("cipher", "fast");
    if (cipher == "aes")
        config.cipher = CipherKind::Aes128Ctr;
    else if (cipher == "fast")
        config.cipher = CipherKind::FastStream;
    else
        PSORAM_FATAL("unknown cipher '", cipher, "' (aes|fast)");

    const std::string tech = overrides.getString("tech", "pcm");
    if (tech == "pcm")
        config.main_tech = NvmTech::PCM;
    else if (tech == "stt")
        config.main_tech = NvmTech::STTRAM;
    else
        PSORAM_FATAL("unknown tech '", tech, "' (pcm|stt)");

    const std::string integrity = overrides.getString("integrity", "off");
    if (!parseIntegrityMode(integrity, config.integrity))
        PSORAM_FATAL("unknown integrity '", integrity,
                     "' (off|mac|tree)");

    const std::string backend = overrides.getString("backend", "memory");
    if (backend == "memory")
        config.backend = BackendKind::Memory;
    else if (backend == "file")
        config.backend = BackendKind::File;
    else if (backend == "disk")
        config.backend = BackendKind::Disk;
    else
        PSORAM_FATAL("unknown backend '", backend,
                     "' (memory|file|disk)");
    config.backing_file = overrides.getString("backingfile", "");
    config.disk_cache_pages = static_cast<std::size_t>(
        overrides.getUint("cachepages", config.disk_cache_pages));
    config.disk_pinned_pages = static_cast<std::size_t>(
        overrides.getUint("pinpages", config.disk_pinned_pages));
    config.flight_recorder = overrides.getUint("flightrec", 0) != 0;
    config.flight_records = static_cast<std::size_t>(
        overrides.getUint("flightrecords", config.flight_records));
    return config;
}

void
printConfigBanner(std::ostream &os, const SystemConfig &config,
                  std::uint64_t instructions)
{
    const TreeGeometry geo{config.tree_height, config.bucket_slots};
    os << "# Configuration (Table 3)\n"
       << "#   core: in-order, 3.2 GHz; L1 32K/32K 2-way (2 cyc); "
          "L2 1MB 8-way (20 cyc)\n"
       << "#   ORAM: L=" << config.tree_height << ", Z="
       << config.bucket_slots << ", 64B blocks, "
       << geo.dataBlocks(0.5) << " logical blocks (50% util), stash "
       << config.stash_capacity << ", C_tPos 96\n"
       << "#   NVM: " << nvmTechName(config.main_tech) << " 400 MHz, "
       << config.channels << " channel(s) x "
       << config.banks_per_channel << " banks, WPQs "
       << config.wpq_entries << "-entry\n"
       << "#   trace: " << instructions
       << " instructions per workload (simpoint-style sample)\n";
}

} // namespace psoram
