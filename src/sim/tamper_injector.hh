/**
 * @file
 * Adversarial tamper injection against the authenticated ORAM tree.
 *
 * The FaultInjector models an *accidental* adversary (power failures at
 * persist boundaries); this models the *malicious* one the integrity
 * subsystem (oram/integrity.hh) exists for: an attacker with the NVM
 * who flips ciphertext bytes, truncates tags, replays stale records,
 * wipes records back to their never-written state, or corrupts the
 * persisted Merkle nodes and root record.
 *
 * Tampers mutate the device with *quiet* writes — they change durable
 * bytes without perturbing the deterministic persist-boundary numbering
 * — and can be applied two ways:
 *
 *   - immediately via apply(), for recovery-path tests ("corrupt the
 *     image, then recover, expect a typed IntegrityError");
 *   - armed at a persist-boundary index via armAt() + attachTo(), which
 *     installs a FaultInjector observer so the mutation lands at an
 *     exact point of the protocol sequence — including the very
 *     boundary a crash fault is armed at.
 *
 * tests/test_integrity.cc drives the full detection matrix: every
 * TamperKind must surface as an IntegrityError at read or recovery
 * when integrity is on, and the negative control proves the *detector*
 * (not an accident of the workload) is what catches it.
 */

#ifndef PSORAM_SIM_TAMPER_INJECTOR_HH
#define PSORAM_SIM_TAMPER_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "mem/backend.hh"
#include "nvm/fault_injector.hh"
#include "oram/tree.hh"

namespace psoram {

/** The tamper classes the detection matrix enumerates. */
enum class TamperKind
{
    /** Flip one bit of a record's slot ciphertext. */
    FlipCipherByte,
    /** Flip one bit of a record's GMAC tag. */
    FlipTagByte,
    /** Zero the tail of a record's tag (truncation splice). */
    TruncateTag,
    /** Write back a stale-but-self-consistent snapshot of the record
     *  (the mac-mode blind spot; tree mode must catch it). */
    ReplayRecord,
    /** Wipe the record to the never-written all-zero state (also
     *  internally consistent; tree mode must catch it). */
    WipeRecord,
    /** Flip a bit of a persisted interior Merkle node (untrusted
     *  accelerator — recovery must repair, never refuse). */
    FlipMerkleNode,
    /** Flip a bit of the persisted root record. */
    FlipRootRecord,
};

inline constexpr std::size_t kNumTamperKinds = 7;

const char *tamperKindName(TamperKind kind);

class TamperInjector
{
  public:
    /**
     * @param device the NVM the tampers mutate
     * @param layout data-tree layout (record addressing)
     * @param root_record_base integrity root record address
     * @param merkle_region_base persisted interior-node array base
     *        (only needed for FlipMerkleNode)
     */
    TamperInjector(MemoryBackend &device, const TreeLayout &layout,
                   Addr root_record_base, Addr merkle_region_base);

    /**
     * Capture the current bytes of (bucket, slot) as the replay
     * payload a later ReplayRecord tamper writes back.
     */
    void snapshotRecord(BucketId bucket, unsigned slot);

    /** Mutate the device now. @return the tampered NVM address */
    Addr apply(TamperKind kind, BucketId bucket, unsigned slot);

    /**
     * Arm: when the attached FaultInjector counts boundary
     * @p boundary_index, apply the tamper at that exact point.
     */
    void armAt(std::uint64_t boundary_index, TamperKind kind,
               BucketId bucket, unsigned slot);

    /** Install this injector as @p injector's boundary observer. */
    void attachTo(FaultInjector &injector);

    bool fired() const { return fired_; }
    std::uint64_t applications() const { return applications_; }

    /** Disarm and clear fired state (snapshot is kept). */
    void reset();

  private:
    MemoryBackend &device_;
    TreeLayout layout_;
    Addr root_record_base_;
    Addr merkle_region_base_;

    std::vector<std::uint8_t> snapshot_;
    Addr snapshot_addr_ = 0;
    bool have_snapshot_ = false;

    bool armed_ = false;
    bool fired_ = false;
    std::uint64_t target_ = 0;
    TamperKind armed_kind_ = TamperKind::FlipCipherByte;
    BucketId armed_bucket_ = 0;
    unsigned armed_slot_ = 0;
    std::uint64_t applications_ = 0;
};

} // namespace psoram

#endif // PSORAM_SIM_TAMPER_INJECTOR_HH
