/**
 * @file
 * Sharded system builder: N independent PS-ORAM instances over disjoint
 * logical address ranges.
 *
 * Each shard is a full System (device + controller): its own tree,
 * stash, PosMap, temporary PosMap, WPQs and — when file-backed — its
 * own NVM backing file (`<path>.shardK`). The ShardRouter decides which
 * shard serves a logical address; the sharded engine (sim/sharded_engine)
 * drives the shards from a worker pool.
 *
 * Invariants:
 *  - The single-shard configuration is *identical* to buildSystem():
 *    same tree height, same seed, same backing path. An engine over one
 *    shard therefore produces byte-identical device traffic to the
 *    unsharded stack.
 *  - With N > 1 each shard's tree is re-sized to its share of the
 *    address space (smallest height with >= 2x slot headroom, the same
 *    50 % utilization rule the unsharded layout uses), and its RNG seed
 *    is derived via deriveShardSeed() so runs stay reproducible.
 *  - Crash consistency is per shard: recoverShard()/recoverAll() apply
 *    the ADR flush + recovery sequence to one shard / every shard.
 */

#ifndef PSORAM_SIM_SHARDED_SYSTEM_HH
#define PSORAM_SIM_SHARDED_SYSTEM_HH

#include <vector>

#include "common/sharding.hh"
#include "sim/system.hh"

namespace psoram {

struct ShardedSystemConfig
{
    /** Template for every shard; num_blocks/seed/backing_file and (for
     *  N > 1) tree_height are specialized per shard. */
    SystemConfig base;
    ShardingParams sharding;
};

struct ShardedSystem
{
    ShardedSystemConfig config;
    ShardRouter router;
    std::vector<System> shards;

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards.size());
    }
    PsOramController &controller(unsigned shard)
    {
        return *shards.at(shard).controller;
    }

    /** Crash-recover one shard (ADR flush + rebuild, see System). */
    void recoverShard(unsigned shard);

    /** Crash-recover every shard in shard order. */
    void recoverAll();

    /** Summed NVM traffic across all shards. */
    TrafficCounts aggregateTraffic() const;

    /** Summed controller access count across all shards. */
    std::uint64_t totalAccesses() const;
};

/** The SystemConfig shard @p shard runs with (exposed for tests). */
SystemConfig shardSystemConfig(const ShardedSystemConfig &config,
                               const ShardRouter &router, unsigned shard);

/** Construct router + all shard systems for @p config. */
ShardedSystem buildShardedSystem(const ShardedSystemConfig &config);

} // namespace psoram

#endif // PSORAM_SIM_SHARDED_SYSTEM_HH
