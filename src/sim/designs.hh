/**
 * @file
 * Catalog of the evaluated design variants and the Table 3 config dump
 * shared by the bench binaries.
 */

#ifndef PSORAM_SIM_DESIGNS_HH
#define PSORAM_SIM_DESIGNS_HH

#include <ostream>
#include <vector>

#include "common/config.hh"
#include "psoram/design.hh"
#include "sim/system.hh"

namespace psoram {

/** The non-recursive designs of Fig. 5(a)/6 in paper order. */
std::vector<DesignKind> nonRecursiveDesigns();

/** The recursive designs of Fig. 5(b). */
std::vector<DesignKind> recursiveDesigns();

/** All seven evaluated designs. */
std::vector<DesignKind> allDesigns();

/**
 * Build a SystemConfig from command-line style overrides. Recognized
 * keys: height, z, stash, wpq, channels, banks, seed, cipher
 * (aes|fast), tech (pcm|stt), fetchthreads, cachebuckets,
 * cachestripes (0 = pipeline defaults).
 */
SystemConfig configFromOverrides(const Config &overrides,
                                 DesignKind design);

/** Print the Table 3 style configuration banner. */
void printConfigBanner(std::ostream &os, const SystemConfig &config,
                       std::uint64_t instructions);

} // namespace psoram

#endif // PSORAM_SIM_DESIGNS_HH
