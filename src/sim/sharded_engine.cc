#include "sim/sharded_engine.hh"

#include <cstring>
#include <string>

#include "common/log.hh"
#include "obs/trace.hh"

namespace psoram {

namespace {

std::vector<PsOramController *>
systemControllers(ShardedSystem &system)
{
    std::vector<PsOramController *> controllers;
    controllers.reserve(system.numShards());
    for (unsigned k = 0; k < system.numShards(); ++k)
        controllers.push_back(&system.controller(k));
    return controllers;
}

} // namespace

ShardedOramEngine::ShardedOramEngine(ShardedSystem &system, Config config)
    : ShardedOramEngine(system.router, systemControllers(system),
                        std::move(config))
{
}

ShardedOramEngine::ShardedOramEngine(
    const ShardRouter &router,
    std::vector<PsOramController *> controllers, Config config)
    : router_(router), config_(config)
{
    if (controllers.size() != router_.numShards())
        PSORAM_PANIC("router expects ", router_.numShards(),
                     " shards, got ", controllers.size(),
                     " controllers");
    EngineConfig inner;
    inner.coalesce = config_.coalesce;
    // Workers hand completions to the drain thread; the inner engines
    // must not also retain them.
    inner.record_completions = false;
    inner.pipeline_depth = config_.pipeline_depth;
    workers_.reserve(controllers.size());
    for (unsigned k = 0; k < controllers.size(); ++k) {
        auto worker = std::make_unique<Worker>();
        worker->shard = k;
        worker->controller = controllers[k];
        worker->engine =
            std::make_unique<OramEngine>(*controllers[k], inner);
        workers_.push_back(std::move(worker));
    }
    start();
}

void
ShardedOramEngine::start()
{
    drain_thread_ = std::thread([this] { drainLoop(); });
    for (auto &worker : workers_)
        worker->thread =
            std::thread([this, w = worker.get()] { workerLoop(*w); });
}

ShardedOramEngine::~ShardedOramEngine()
{
    for (auto &worker : workers_) {
        {
            std::lock_guard<std::mutex> lock(worker->mutex);
            worker->stop = true;
        }
        worker->cv.notify_all();
        worker->space_cv.notify_all();
    }
    for (auto &worker : workers_)
        worker->thread.join();
    {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        completion_stop_ = true;
    }
    completion_cv_.notify_all();
    drain_thread_.join();
}

ShardedOramEngine::RequestId
ShardedOramEngine::submit(BlockAddr addr, bool is_write,
                          const std::uint8_t *data, Callback callback)
{
    const ShardSlot slot = router_.route(addr);
    const RequestId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    Request request;
    request.id = id;
    request.global_addr = addr;
    request.local_addr = slot.local;
    request.is_write = is_write;
    if (is_write)
        std::memcpy(request.data.data(), data, kBlockDataBytes);
    request.callback = std::move(callback);

    submitted_.fetch_add(1, std::memory_order_relaxed);
    PSORAM_TRACE_INSTANT_ARG("engine",
                             is_write ? "submit_write" : "submit_read",
                             id, "shard",
                             static_cast<std::int64_t>(slot.shard));
    Worker &worker = *workers_[slot.shard];
    bool was_empty;
    {
        std::unique_lock<std::mutex> lock(worker.mutex);
        // Submit-side backpressure: block until the worker has swapped
        // the mailbox below the bound (or is shutting down), so an
        // open-loop producer cannot grow it without limit.
        if (worker.mailbox.size() >= config_.max_mailbox)
            ++worker.backpressure_waits;
        worker.space_cv.wait(lock, [&] {
            return worker.stop ||
                   worker.mailbox.size() < config_.max_mailbox;
        });
        was_empty = worker.mailbox.empty();
        worker.mailbox.push_back(std::move(request));
    }
    // The worker only ever waits on an empty mailbox (the predicate is
    // re-checked under the same mutex), so pushes onto a non-empty
    // mailbox never need a wake-up — mid-burst submissions just grow
    // the batch the worker will swap out next.
    if (was_empty)
        worker.cv.notify_one();
    return id;
}

ShardedOramEngine::RequestId
ShardedOramEngine::submitRead(BlockAddr addr, Callback callback)
{
    return submit(addr, false, nullptr, std::move(callback));
}

ShardedOramEngine::RequestId
ShardedOramEngine::submitWrite(BlockAddr addr, const std::uint8_t *data,
                               Callback callback)
{
    return submit(addr, true, data, std::move(callback));
}

void
ShardedOramEngine::workerLoop(Worker &worker)
{
    // One trace track per shard worker, named once at thread start.
    obs::TraceRecorder::setThreadName(
        "shard" + std::to_string(worker.shard) + ".worker");
    for (;;) {
        std::deque<Request> batch;
        {
            std::unique_lock<std::mutex> lock(worker.mutex);
            worker.cv.wait(lock, [&] {
                return worker.stop || !worker.mailbox.empty();
            });
            if (worker.mailbox.empty() && worker.stop)
                return;
            batch.swap(worker.mailbox);
        }
        // The swap freed the whole mailbox; wake submitters parked on
        // the max_mailbox bound.
        worker.space_cv.notify_all();
        // Feed the whole batch into the shard engine so back-to-back
        // same-block requests coalesce exactly as in the single-shard
        // stack, then run it to completion. Only this thread touches
        // the shard's controller, stash and device.
        //
        // Requests with no callback when completion records are off
        // skip the drain thread entirely: nothing would observe the
        // Completion, so copying it through the queue (plus a cv
        // wakeup per request) would be pure overhead. They are counted
        // in one batched idle update after the engine drains.
        std::uint64_t fire_and_forget = 0;
        for (Request &request : batch) {
            const bool silent =
                !request.callback && !config_.record_completions;
            if (silent)
                ++fire_and_forget;
            auto wrapped = silent
                ? OramEngine::Callback()
                : OramEngine::Callback(
                      [this, id = request.id,
                       global = request.global_addr,
                       shard = worker.shard,
                       callback = std::move(request.callback)](
                          const OramEngine::Completion &inner) {
                          Completion out;
                          out.id = id;
                          out.addr = global;
                          out.shard = shard;
                          out.local_addr = inner.addr;
                          out.is_write = inner.is_write;
                          out.coalesced = inner.coalesced;
                          out.latency_cycles = inner.latency_cycles;
                          out.info = inner.info;
                          out.data = inner.data;
                          deliver(std::move(out), std::move(callback));
                      });
            // Force the outer request id onto the inner engine so the
            // shard controller's phase events carry the id the caller
            // observed at submit time.
            if (request.is_write)
                worker.engine->submitWrite(request.local_addr,
                                           request.data.data(),
                                           std::move(wrapped),
                                           request.id);
            else
                worker.engine->submitRead(request.local_addr,
                                          std::move(wrapped),
                                          request.id);
        }
        worker.engine->drain();
        if (fire_and_forget != 0) {
            {
                std::lock_guard<std::mutex> lock(idle_mutex_);
                completed_ += fire_and_forget;
            }
            idle_cv_.notify_all();
        }
    }
}

void
ShardedOramEngine::deliver(Completion completion, Callback callback)
{
    {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        completion_queue_.push_back(
            Delivery{std::move(completion), std::move(callback)});
    }
    completion_cv_.notify_one();
}

void
ShardedOramEngine::drainLoop()
{
    obs::TraceRecorder::setThreadName("completions.drain");
    for (;;) {
        // Swap the whole queue per wakeup (condition-variable wait, no
        // spinning): a burst of completions costs one wakeup, one
        // records_ lock and one idle update instead of one of each per
        // completion.
        std::deque<Delivery> batch;
        {
            std::unique_lock<std::mutex> lock(completion_mutex_);
            completion_cv_.wait(lock, [&] {
                return completion_stop_ || !completion_queue_.empty();
            });
            if (completion_queue_.empty() && completion_stop_)
                return;
            batch.swap(completion_queue_);
        }
        for (Delivery &delivery : batch)
            if (delivery.callback)
                delivery.callback(delivery.completion);
        if (config_.record_completions) {
            std::lock_guard<std::mutex> lock(records_mutex_);
            for (Delivery &delivery : batch)
                records_.push_back(std::move(delivery.completion));
        }
        {
            std::lock_guard<std::mutex> lock(idle_mutex_);
            completed_ += batch.size();
        }
        idle_cv_.notify_all();
    }
}

void
ShardedOramEngine::drain()
{
    std::unique_lock<std::mutex> lock(idle_mutex_);
    idle_cv_.wait(lock, [&] {
        return completed_ == submitted_.load(std::memory_order_relaxed);
    });
}

std::uint64_t
ShardedOramEngine::pending() const
{
    std::lock_guard<std::mutex> lock(idle_mutex_);
    return submitted_.load(std::memory_order_relaxed) - completed_;
}

std::vector<ShardedOramEngine::Completion>
ShardedOramEngine::takeCompletions()
{
    std::vector<Completion> out;
    std::lock_guard<std::mutex> lock(records_mutex_);
    out.swap(records_);
    return out;
}

ShardedOramEngine::StatsSnapshot
ShardedOramEngine::shardStats(unsigned shard) const
{
    const Worker &worker = *workers_.at(shard);
    const OramEngine::Stats &inner = worker.engine->stats();
    StatsSnapshot snap;
    snap.submitted = inner.submitted.value();
    snap.completed = inner.completed.value();
    snap.physical_accesses = inner.physical_accesses.value();
    snap.coalesced = inner.coalesced.value();
    snap.controller_accesses = worker.controller->accessCount();
    snap.stash_hits = worker.controller->stashHits();
    snap.backpressure_waits = worker.backpressure_waits.value();
    return snap;
}

PhaseLatencyStats
ShardedOramEngine::mergedPhaseHostNs() const
{
    PhaseLatencyStats merged;
    for (const auto &worker : workers_)
        merged.merge(worker->controller->phaseHostNs());
    return merged;
}

PhaseLatencyStats
ShardedOramEngine::mergedPhaseSimCycles() const
{
    PhaseLatencyStats merged;
    for (const auto &worker : workers_)
        merged.merge(worker->controller->phaseSimCycles());
    return merged;
}

void
ShardedOramEngine::registerShardStats(unsigned shard,
                                      StatGroup &group) const
{
    const Worker &worker = *workers_.at(shard);
    worker.engine->registerStats(group);
    worker.controller->registerStats(group);
    group.addCounter("mailbox_backpressure_waits",
                     &worker.backpressure_waits,
                     "submits that parked on the full mailbox");
}

ShardedOramEngine::StatsSnapshot
ShardedOramEngine::stats() const
{
    StatsSnapshot total;
    for (unsigned k = 0; k < numShards(); ++k) {
        const StatsSnapshot shard = shardStats(k);
        total.submitted += shard.submitted;
        total.completed += shard.completed;
        total.physical_accesses += shard.physical_accesses;
        total.coalesced += shard.coalesced;
        total.controller_accesses += shard.controller_accesses;
        total.stash_hits += shard.stash_hits;
        total.backpressure_waits += shard.backpressure_waits;
    }
    return total;
}

} // namespace psoram
