/**
 * @file
 * System builder: lays out the NVM address space (ORAM tree, trusted
 * PosMap region, PosMap ORAM tree, shadow regions) and wires a device +
 * controller pair for one of the §5.1 design variants.
 */

#ifndef PSORAM_SIM_SYSTEM_HH
#define PSORAM_SIM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mem/backend.hh"
#include "nvm/fault_injector.hh"
#include "nvm/flight_recorder.hh"
#include "oram/integrity.hh"
#include "psoram/design.hh"
#include "psoram/psoram_controller.hh"

namespace psoram {

/** Which concrete MemoryBackend buildSystem constructs. */
enum class BackendKind
{
    /** In-memory NvmDevice (the default golden-digest model). */
    Memory,
    /** FileBackedNvm: in-memory model, image persisted at checkpoints. */
    File,
    /** PagedDiskBackend: out-of-core page-cached tree on a real file. */
    Disk,
};

const char *backendName(BackendKind kind);

struct SystemConfig
{
    DesignKind design = DesignKind::PsOram;

    /** @{ Memory system (Table 3c, Fig. 7 sweeps channels). */
    NvmTech main_tech = NvmTech::PCM;
    unsigned channels = 1;
    unsigned banks_per_channel = 8;
    /** @} */

    /** @{ ORAM geometry (Table 3b). */
    unsigned tree_height = 23;
    unsigned bucket_slots = 4;
    /** 0 = derive from 50 % utilization. */
    std::uint64_t num_blocks = 0;
    std::size_t stash_capacity = 200;
    std::size_t wpq_entries = 96;
    std::size_t temp_posmap_entries = 96;
    /** @} */

    CipherKind cipher = CipherKind::FastStream;
    std::uint64_t seed = 1;

    /**
     * Memory-integrity level (oram/integrity.hh): off keeps the
     * historical 96-byte slot layout byte-identical; mac widens tree
     * records to 128 bytes with a per-record GMAC tag; tree adds the
     * persistent Merkle tree + per-round root record. Non-Off requires
     * a persistent non-recursive design at pipeline_depth 1.
     */
    IntegrityMode integrity = IntegrityMode::Off;

    /**
     * Intra-shard pipelining (DESIGN.md §12): > 1 builds the controller
     * with the subtree cache + write-behind retire queue so an
     * OramEngine can keep this many accesses in flight. 1 (default)
     * builds none of the pipeline machinery — traffic is byte-identical
     * to the synchronous engine.
     */
    unsigned pipeline_depth = 1;
    /** Fetch-pool threads per shard when pipeline_depth > 1. */
    unsigned fetch_threads = 2;
    /** SubtreeCache capacity override; 0 keeps PipelineParams' default. */
    std::size_t cache_buckets = 0;
    /** SubtreeCache lock-stripe override; 0 keeps PipelineParams'
     *  default (tune alongside fetch_threads — stripes bound fill
     *  concurrency). */
    unsigned cache_stripes = 0;
    /** Retire-queue depth override; 0 keeps PipelineParams' default. */
    std::size_t retire_queue_rounds = 0;

    /**
     * Persistent flight recorder ("black box", nvm/flight_recorder.hh):
     * reserve a CRC-stamped event ring at the end of the NVM layout and
     * wire it through the drainer, the write-behind retirer and the
     * file-image checkpoints. Off by default: the ring appends are
     * quiet writes, which the golden traffic digests DO count — every
     * byte-pinned configuration runs without it. The reserved region is
     * laid out last, so enabling it shifts no other region base.
     */
    bool flight_recorder = false;
    /** Ring capacity in 64-byte event records. */
    std::size_t flight_records = 64;

    /**
     * Fault-injection negative control: suppress §4.2.2 backup blocks
     * while keeping the rest of the persistence machinery. The crash
     * enumerator must detect the resulting data loss — a build where it
     * does not is a broken checker.
     */
    bool disable_backup_blocks = false;

    /**
     * Storage backend. For back-compat, Memory (the default) combined
     * with a non-empty backing_file still builds FileBackedNvm, exactly
     * as before the flag existed; Disk requires a backing_file.
     */
    BackendKind backend = BackendKind::Memory;

    /**
     * Non-empty: back the NVM image with this file (FileBackedNvm), so
     * the persistent state survives process restarts — or, with
     * backend == Disk, the paged on-disk tree itself. Empty: in-memory
     * NvmDevice.
     */
    std::string backing_file;

    /** @{ PagedDiskBackend tuning (backend == Disk only). */
    std::size_t disk_cache_pages = 1024;
    std::size_t disk_pinned_pages = 64;
    /** @} */

    /** The backend buildSystem will actually construct, with the
     *  Memory+backing_file → File inference applied. */
    BackendKind effectiveBackend() const
    {
        if (backend == BackendKind::Memory && !backing_file.empty())
            return BackendKind::File;
        return backend;
    }
};

/** A wired device + controller pair. */
struct System
{
    /**
     * Invoked with every freshly recovered controller so observers,
     * crash policies and other per-instance registrations survive
     * recovery (they are attached to the controller object and would
     * otherwise be silently dropped).
     */
    using RebindHook = std::function<void(PsOramController &)>;

    SystemConfig config;
    PsOramParams params;
    /**
     * Black box + recovery stats. Declared BEFORE the device: members
     * destroy in reverse order, so the recorder outlives the backend's
     * destructor-time image persist (which stamps a final checkpoint
     * marker through its raw recorder pointer). Null when
     * config.flight_recorder is off (recovery_stats always exists).
     */
    std::unique_ptr<FlightRecorder> flight_recorder;
    std::unique_ptr<RecoveryStats> recovery_stats;
    std::unique_ptr<MemoryBackend> device;
    std::unique_ptr<PsOramController> controller;
    RebindHook rebind_hook;
    /** Non-owning; survives recovery (re-attached to the rebuilt
     *  controller). */
    FaultInjector *fault_injector = nullptr;

    /**
     * Rebuild the controller after a crash (keeps the device): applies
     * the ADR power-failure flush, drops all volatile state, and runs
     * recovery from the NVM image. The rebind hook (if set) is then
     * called with the new controller to re-attach observers and crash
     * policies. An attached fault injector is suspended for the
     * duration (recovery-era flush writes are not enumerable persist
     * boundaries) and re-attached to the new controller.
     */
    void recoverController();

    void setRebindHook(RebindHook hook) { rebind_hook = std::move(hook); }

    /**
     * Wire @p injector through the whole persist path: the device's
     * functional writes, the controller's WPQ start/end signals, and —
     * when file-backed — the image checkpoints. Null detaches.
     */
    void attachFaultInjector(FaultInjector *injector);
};

/** Construct the full system for @p config. */
System buildSystem(const SystemConfig &config);

/** Derive the controller parameter block (region layout) only. */
PsOramParams systemParams(const SystemConfig &config);

} // namespace psoram

#endif // PSORAM_SIM_SYSTEM_HH
