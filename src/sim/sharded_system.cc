#include "sim/sharded_system.hh"

#include <string>

namespace psoram {

namespace {

/** Logical block count the sharded deployment serves in total. */
std::uint64_t
totalLogicalBlocks(const SystemConfig &base)
{
    if (base.num_blocks != 0)
        return base.num_blocks;
    return TreeGeometry{base.tree_height, base.bucket_slots}
        .dataBlocks(0.5);
}

/**
 * Smallest tree height whose slot capacity covers @p blocks at the
 * 50 % utilization rule, floored so even tiny shards get a real tree.
 */
unsigned
shardTreeHeight(const SystemConfig &base, std::uint64_t blocks)
{
    unsigned height = 3;
    while (height < base.tree_height &&
           TreeGeometry{height, base.bucket_slots}.dataBlocks(0.5) <
               blocks)
        ++height;
    return height;
}

} // namespace

SystemConfig
shardSystemConfig(const ShardedSystemConfig &config,
                  const ShardRouter &router, unsigned shard)
{
    SystemConfig sc = config.base;
    const unsigned n = router.numShards();
    // The single-shard deployment must be byte-identical to the
    // unsharded stack: keep height, seed and backing path untouched.
    if (n == 1)
        return sc;
    sc.num_blocks = router.shardBlocks(shard);
    sc.tree_height = shardTreeHeight(config.base, sc.num_blocks);
    sc.seed = deriveShardSeed(config.base.seed, shard, n);
    if (!sc.backing_file.empty())
        sc.backing_file += ".shard" + std::to_string(shard);
    return sc;
}

ShardedSystem
buildShardedSystem(const ShardedSystemConfig &config)
{
    const std::uint64_t total = totalLogicalBlocks(config.base);
    ShardedSystem system{config, ShardRouter(config.sharding, total), {}};
    system.shards.reserve(config.sharding.num_shards);
    for (unsigned k = 0; k < config.sharding.num_shards; ++k)
        system.shards.push_back(
            buildSystem(shardSystemConfig(config, system.router, k)));
    return system;
}

void
ShardedSystem::recoverShard(unsigned shard)
{
    shards.at(shard).recoverController();
}

void
ShardedSystem::recoverAll()
{
    for (unsigned k = 0; k < numShards(); ++k)
        recoverShard(k);
}

TrafficCounts
ShardedSystem::aggregateTraffic() const
{
    TrafficCounts total;
    for (const System &shard : shards) {
        const TrafficCounts t = shard.controller->traffic();
        total.reads += t.reads;
        total.writes += t.writes;
    }
    return total;
}

std::uint64_t
ShardedSystem::totalAccesses() const
{
    std::uint64_t total = 0;
    for (const System &shard : shards)
        total += shard.controller->accessCount();
    return total;
}

} // namespace psoram
