/**
 * @file
 * ShardedOramEngine: a concurrent frontend over N PS-ORAM shards.
 *
 * Topology: one worker thread per shard plus one completion drain
 * thread.
 *
 *   submit*() --route--> per-shard mailbox --worker--> shard OramEngine
 *                                                         |
 *   callbacks / takeCompletions() <-- drain thread <-- completion queue
 *
 * Each worker owns its shard's controller exclusively: it swaps its
 * mailbox empty and pushes the batch through a per-shard OramEngine, so
 * same-block coalescing is per shard and requests to one logical
 * address retain submission order (an address always routes to the same
 * shard). Workers never touch another shard's state; the only shared
 * structures are the mailboxes and the completion queue, both
 * mutex-guarded.
 *
 * Completion callbacks fire on the drain thread — never on a worker and
 * never on the submitting thread — so user callbacks are serialized and
 * may safely touch shared caller state without locking against each
 * other. Do not submit new requests from inside a callback while
 * drain() is waiting.
 *
 * Statistics are per-shard accumulators (the shard engines' relaxed
 * Counters) merged on read; stats() is safe to call while workers run.
 */

#ifndef PSORAM_SIM_SHARDED_ENGINE_HH
#define PSORAM_SIM_SHARDED_ENGINE_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sharding.hh"
#include "sim/engine.hh"
#include "sim/sharded_system.hh"

namespace psoram {

/** Sharded-engine tunables. */
struct ShardedEngineConfig
{
    /** Per-shard same-block coalescing (see OramEngine). */
    bool coalesce = true;
    /** Keep completion records for takeCompletions(); benches turn
     *  this off so multi-million-request runs stay bounded. */
    bool record_completions = true;
    /** Per-shard in-flight access window, forwarded to each shard's
     *  OramEngine (0 follows the shard controller's pipeline params;
     *  see EngineConfig::pipeline_depth). */
    unsigned pipeline_depth = 0;
    /** Submit-side backpressure: a submit to a shard whose mailbox
     *  holds this many requests blocks until the worker drains it
     *  below the bound. */
    std::size_t max_mailbox = 1 << 16;
};

class ShardedOramEngine
{
  public:
    using RequestId = std::uint64_t;
    using Config = ShardedEngineConfig;

    /** Outcome of one submitted request. */
    struct Completion
    {
        RequestId id = 0;
        /** Logical (pre-routing) address. */
        BlockAddr addr = kDummyBlockAddr;
        /** Shard that served the request, and as what local address. */
        unsigned shard = 0;
        BlockAddr local_addr = 0;
        bool is_write = false;
        bool coalesced = false;
        /** Shard-controller cycles from the batch's first activity. */
        Cycle latency_cycles = 0;
        OramAccessInfo info;
        std::array<std::uint8_t, kBlockDataBytes> data{};
    };

    using Callback = std::function<void(const Completion &)>;

    /** Front @p system's shards (does not take ownership). */
    ShardedOramEngine(ShardedSystem &system, Config config = Config());

    /** Front explicit controllers (tests wire instrumented backends). */
    ShardedOramEngine(const ShardRouter &router,
                      std::vector<PsOramController *> controllers,
                      Config config = Config());

    /** Stops and joins the worker pool; pending requests complete. */
    ~ShardedOramEngine();

    ShardedOramEngine(const ShardedOramEngine &) = delete;
    ShardedOramEngine &operator=(const ShardedOramEngine &) = delete;

    /** @{ Enqueue a request onto its shard's mailbox; returns
     *  immediately. The write payload is copied. The callback fires on
     *  the drain thread. */
    RequestId submitRead(BlockAddr addr, Callback callback = nullptr);
    RequestId submitWrite(BlockAddr addr, const std::uint8_t *data,
                          Callback callback = nullptr);
    /** @} */

    /** Block until every submitted request has completed (callbacks
     *  included). */
    void drain();

    /** Requests submitted but not yet completed. */
    std::uint64_t pending() const;

    /** Completions accumulated since the last takeCompletions()
     *  (completion order; empty when record_completions is off). */
    std::vector<Completion> takeCompletions();

    unsigned numShards() const
    {
        return static_cast<unsigned>(workers_.size());
    }
    const ShardRouter &router() const { return router_; }

    /** Merged-on-read statistics snapshot. */
    struct StatsSnapshot
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t physical_accesses = 0;
        std::uint64_t coalesced = 0;
        /** Controller-level accesses (stash hits included). */
        std::uint64_t controller_accesses = 0;
        std::uint64_t stash_hits = 0;
        /** Submits that parked on a full mailbox (max_mailbox bound) —
         *  the engine-side saturation signal the serving harness
         *  reports. */
        std::uint64_t backpressure_waits = 0;
    };

    /** One shard's counters (safe while workers run). */
    StatsSnapshot shardStats(unsigned shard) const;

    /** All shards merged (safe while workers run). */
    StatsSnapshot stats() const;

    /** @{ Per-phase latency breakdowns merged across every shard's
     *  controller (read-side snapshot merge; safe while workers run). */
    PhaseLatencyStats mergedPhaseHostNs() const;
    PhaseLatencyStats mergedPhaseSimCycles() const;
    /** @} */

    /** Register shard @p shard's engine counters and its controller's
     *  phase latencies with @p group (metrics export). */
    void registerShardStats(unsigned shard, StatGroup &group) const;

  private:
    struct Request
    {
        RequestId id;
        BlockAddr global_addr;
        BlockAddr local_addr;
        bool is_write;
        std::array<std::uint8_t, kBlockDataBytes> data;
        Callback callback;
    };

    /** One shard's mailbox + inner engine + thread. */
    struct Worker
    {
        unsigned shard = 0;
        PsOramController *controller = nullptr;
        std::unique_ptr<OramEngine> engine;
        std::mutex mutex;
        std::condition_variable cv;
        /** Signals mailbox space to submitters blocked on the
         *  max_mailbox bound. */
        std::condition_variable space_cv;
        std::deque<Request> mailbox;
        bool stop = false;
        /** Submits that blocked on this mailbox's max_mailbox bound. */
        Counter backpressure_waits;
        std::thread thread;
    };

    struct Delivery
    {
        Completion completion;
        Callback callback;
    };

    RequestId submit(BlockAddr addr, bool is_write,
                     const std::uint8_t *data, Callback callback);
    void workerLoop(Worker &worker);
    void drainLoop();
    void deliver(Completion completion, Callback callback);
    void start();

    ShardRouter router_;
    Config config_;
    std::vector<std::unique_ptr<Worker>> workers_;

    /** @{ Completion pipeline (drain thread). */
    std::mutex completion_mutex_;
    std::condition_variable completion_cv_;
    std::deque<Delivery> completion_queue_;
    bool completion_stop_ = false;
    std::thread drain_thread_;
    /** @} */

    /** @{ Retained completion records (takeCompletions()). */
    std::mutex records_mutex_;
    std::vector<Completion> records_;
    /** @} */

    /** @{ Idle tracking for drain(). */
    mutable std::mutex idle_mutex_;
    std::condition_variable idle_cv_;
    std::uint64_t completed_ = 0;
    /** @} */

    std::atomic<RequestId> next_id_{1};
    std::atomic<std::uint64_t> submitted_{0};
};

} // namespace psoram

#endif // PSORAM_SIM_SHARDED_ENGINE_HH
