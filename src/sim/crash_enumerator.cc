#include "sim/crash_enumerator.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "common/random.hh"
#include "obs/trace.hh"
#include "sim/engine.hh"

namespace psoram {

std::vector<TraceOp>
makeCrashTrace(std::uint64_t seed, std::size_t ops,
               std::uint64_t num_blocks, double write_fraction)
{
    Rng rng(seed);
    std::vector<TraceOp> trace;
    trace.reserve(ops);
    for (std::size_t op = 0; op < ops; ++op) {
        TraceOp entry;
        entry.addr = rng.nextBelow(num_blocks);
        entry.is_write = rng.nextBool(write_fraction);
        entry.version = static_cast<std::uint32_t>(op + 1);
        trace.push_back(entry);
    }
    return trace;
}

std::string
CrashEnumSummary::describe() const
{
    std::ostringstream out;
    out << total_boundaries << " boundaries (";
    bool first = true;
    for (std::size_t kind = 0; kind < kind_counts.size(); ++kind) {
        if (kind_counts[kind] == 0)
            continue;
        if (!first)
            out << ", ";
        first = false;
        out << kind_counts[kind] << " "
            << persistBoundaryName(static_cast<PersistBoundary>(kind));
    }
    out << "), " << replays << " replays, " << failures.size()
        << " failing crash points";
    return out.str();
}

namespace {

/**
 * Drive @p trace through a pipelined OramEngine (systems built with
 * pipeline_depth > 1), keeping the configured window of accesses in
 * flight so faults land with drains and fetches genuinely overlapped.
 *
 * The oracle's latest[] is bumped at submit: a submitted-but-unretired
 * write only widens the old-or-new window the invariant checker
 * accepts, exactly like the sync path's catch-side bump.
 */
bool
runTraceEngine(System &system, const std::vector<TraceOp> &trace,
               RecoveryOracle &oracle)
{
    EngineConfig config;
    config.record_completions = false;
    OramEngine engine(*system.controller, config);
    std::uint8_t buf[kBlockDataBytes];
    try {
        for (const TraceOp &op : trace) {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                oracle.latest[op.addr] = op.version;
                engine.submitWrite(op.addr, buf);
            } else {
                engine.submitRead(op.addr);
            }
        }
        engine.drain();
    } catch (const InjectedFault &) {
        return true;
    }
    return false;
}

/**
 * Drive @p trace against @p system with @p oracle tracking durability.
 * @return true if an InjectedFault aborted the run.
 */
bool
runTrace(System &system, const std::vector<TraceOp> &trace,
         RecoveryOracle &oracle)
{
    if (system.controller->pipelineSupported())
        return runTraceEngine(system, trace, oracle);
    std::uint8_t buf[kBlockDataBytes];
    for (const TraceOp &op : trace) {
        try {
            if (op.is_write) {
                stampPayload(op.addr, op.version, buf);
                system.controller->write(op.addr, buf);
                oracle.latest[op.addr] = op.version;
            } else {
                system.controller->read(op.addr, buf);
            }
        } catch (const InjectedFault &) {
            // The in-flight write may or may not have persisted — both
            // outcomes are legal under old-or-new.
            if (op.is_write)
                oracle.latest[op.addr] = op.version;
            return true;
        }
    }
    return false;
}

} // namespace

std::vector<std::string>
runArmedCrash(const CrashEnumConfig &config, std::uint64_t k)
{
    // Record this replay in isolation: a failure then writes exactly
    // the dying run's events, not the whole enumeration's history.
    if (!config.trace_path.empty()) {
        obs::TraceRecorder &recorder = obs::TraceRecorder::instance();
        if (!obs::TraceRecorder::enabled())
            recorder.enable();
        recorder.clear();
    }

    System system = buildSystem(config.system);
    RecoveryOracle oracle;
    system.controller->setCommitObserver(oracle.observer());
    system.setRebindHook([&oracle](PsOramController &ctrl) {
        ctrl.setCommitObserver(oracle.observer());
    });

    FaultInjector injector;
    system.attachFaultInjector(&injector);
    injector.armAt(k);

    const bool crashed = runTrace(system, config.trace, oracle);
    const std::string where =
        "boundary " + std::to_string(k) +
        (injector.fired()
             ? std::string(" (") +
                   persistBoundaryName(injector.firedKind()) + ")"
             : std::string(" (never fired)"));
    std::vector<std::string> violations;
    if (!crashed) {
        violations.push_back(where +
                             ": trace completed without the armed fault "
                             "firing — k outside the boundary domain?");
        return violations;
    }

    // Power failure: ADR flush, volatile state lost, rebuild, recover.
    system.recoverController();
    if (config.recovery_stats)
        config.recovery_stats->merge(*system.recovery_stats);

    for (std::string &v : checkRecoveryInvariants(system, oracle))
        violations.push_back(where + ": " + std::move(v));

    // Recovery must leave a fully working ORAM: verified follow-up
    // workload (versions disjoint from the trace's).
    Rng rng(config.system.seed ^ 0x9e3779b97f4a7c15ULL ^ k);
    std::uint8_t buf[kBlockDataBytes];
    std::map<BlockAddr, std::uint32_t> post;
    for (std::size_t op = 0; op < config.post_recovery_ops; ++op) {
        const BlockAddr addr = rng.nextBelow(config.system.num_blocks);
        if (rng.nextBool(0.5)) {
            const auto version =
                static_cast<std::uint32_t>(1'000'000 + op);
            stampPayload(addr, version, buf);
            system.controller->write(addr, buf);
            post[addr] = version;
        } else if (post.count(addr)) {
            system.controller->read(addr, buf);
            if (payloadVersion(buf) != post[addr])
                violations.push_back(
                    where + ": post-recovery ORAM broken: addr " +
                    std::to_string(addr) + " read version " +
                    std::to_string(payloadVersion(buf)) + ", wrote " +
                    std::to_string(post[addr]));
        }
    }
    if (!violations.empty() && !config.trace_path.empty())
        obs::TraceRecorder::instance().writeTo(config.trace_path);
    if (!violations.empty() && !config.blackbox_path.empty() &&
        system.flight_recorder) {
        std::ofstream out(config.blackbox_path, std::ios::trunc);
        out << FlightRecorder::format(FlightRecorder::decode(
            *system.device, system.params.flight_recorder_base,
            system.params.flight_recorder_records));
    }
    return violations;
}

CrashEnumSummary
enumerateCrashPoints(const CrashEnumConfig &config)
{
    CrashEnumSummary summary;

    // Probe run: count the boundary population for this (config, trace).
    {
        System system = buildSystem(config.system);
        RecoveryOracle oracle;
        FaultInjector injector;
        system.attachFaultInjector(&injector);
        runTrace(system, config.trace, oracle);
        summary.total_boundaries = injector.boundariesSeen();
        for (std::size_t kind = 0; kind < kNumPersistBoundaryKinds;
             ++kind)
            summary.kind_counts[kind] =
                injector.kindCount(static_cast<PersistBoundary>(kind));
    }

    const std::uint64_t stride = config.stride == 0 ? 1 : config.stride;
    CrashEnumConfig armed = config;
    for (std::uint64_t k = 1; k <= summary.total_boundaries;
         k += stride) {
        ++summary.replays;
        std::vector<std::string> violations = runArmedCrash(armed, k);
        if (!violations.empty()) {
            CrashPointFailure failure;
            failure.boundary = k;
            failure.violations = std::move(violations);
            summary.failures.push_back(std::move(failure));
            // Keep the *first* failing replay's trace + black box.
            armed.trace_path.clear();
            armed.blackbox_path.clear();
        }
    }
    return summary;
}

} // namespace psoram
