/**
 * @file
 * Recovery-invariant checker: the properties every post-crash recovered
 * system must satisfy, checked exhaustively by the crash-point
 * enumerator (sim/crash_enumerator.hh) and the torture harness.
 *
 * The checker is deliberately oracle-driven: the workload stamps every
 * write with (addr, version), a CommitObserver tracks which version
 * last became durable, and after recovery the checker verifies
 *
 *   I1  structural tree sanity — every non-dummy slot in the data tree
 *       (and, for recursive designs, the PoM tree) decodes to an
 *       in-range address and a path that actually passes through the
 *       bucket holding it;
 *   I2  PosMap sanity — every committed position is a valid leaf;
 *   I3  reachability — every address with a durable version is found
 *       either on its committed path (path+epoch match, i.e. what
 *       recovery walks) or in the recovered stash;
 *   I4  old-or-new (§4.3) — a functional read of every address returns
 *       a version v with durable <= v <= latest and an untorn payload.
 *
 * Violations are returned as strings rather than asserted, so both
 * gtest suites and the stand-alone torture binary can report them.
 */

#ifndef PSORAM_SIM_RECOVERY_INVARIANTS_HH
#define PSORAM_SIM_RECOVERY_INVARIANTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "psoram/params.hh"
#include "sim/system.hh"

namespace psoram {

/** @{ Versioned-payload convention shared by every crash harness:
 *  bytes [0,8) carry the address, bytes [8,12) the version. */
void stampPayload(BlockAddr addr, std::uint32_t version,
                  std::uint8_t *out);
std::uint32_t payloadVersion(const std::uint8_t *data);
BlockAddr payloadAddr(const std::uint8_t *data);
/** @} */

/**
 * Durability oracle fed by the controller's CommitObserver. `durable`
 * holds the last version known crash-recoverable per address; `latest`
 * the last version written (updated by the driving harness).
 */
struct RecoveryOracle
{
    std::map<BlockAddr, std::uint32_t> durable;
    std::map<BlockAddr, std::uint32_t> latest;
    /** Set when the observer reports a version older than one already
     *  durable — itself an invariant violation (durability must be
     *  monotonic). */
    bool non_monotonic = false;

    CommitObserver observer();

    std::uint32_t
    durableOf(BlockAddr addr) const
    {
        const auto it = durable.find(addr);
        return it == durable.end() ? 0 : it->second;
    }
};

/**
 * Run invariants I1..I4 against a *recovered* @p system. Read-only
 * checks run first; I4 issues real ORAM reads (which mutate the tree),
 * so the checker must own the post-recovery instant it is called at.
 *
 * @return human-readable violation descriptions; empty means all
 *         invariants hold.
 */
std::vector<std::string>
checkRecoveryInvariants(System &system, const RecoveryOracle &oracle);

} // namespace psoram

#endif // PSORAM_SIM_RECOVERY_INVARIANTS_HH
