#include "sim/tamper_injector.hh"

#include <cstring>

#include "common/log.hh"
#include "oram/integrity.hh"

namespace psoram {

const char *
tamperKindName(TamperKind kind)
{
    switch (kind) {
    case TamperKind::FlipCipherByte:
        return "flip-cipher-byte";
    case TamperKind::FlipTagByte:
        return "flip-tag-byte";
    case TamperKind::TruncateTag:
        return "truncate-tag";
    case TamperKind::ReplayRecord:
        return "replay-record";
    case TamperKind::WipeRecord:
        return "wipe-record";
    case TamperKind::FlipMerkleNode:
        return "flip-merkle-node";
    case TamperKind::FlipRootRecord:
        return "flip-root-record";
    }
    return "?";
}

TamperInjector::TamperInjector(MemoryBackend &device,
                               const TreeLayout &layout,
                               Addr root_record_base,
                               Addr merkle_region_base)
    : device_(device), layout_(layout),
      root_record_base_(root_record_base),
      merkle_region_base_(merkle_region_base)
{
}

void
TamperInjector::snapshotRecord(BucketId bucket, unsigned slot)
{
    snapshot_addr_ = layout_.slotAddr(bucket, slot);
    snapshot_.resize(layout_.record_bytes);
    device_.readBytes(snapshot_addr_, snapshot_.data(),
                      snapshot_.size());
    have_snapshot_ = true;
}

Addr
TamperInjector::apply(TamperKind kind, BucketId bucket, unsigned slot)
{
    const Addr record_addr = layout_.slotAddr(bucket, slot);
    const std::uint64_t record_bytes = layout_.record_bytes;
    std::vector<std::uint8_t> buf(record_bytes);
    ++applications_;
    switch (kind) {
    case TamperKind::FlipCipherByte:
        device_.readBytes(record_addr, buf.data(), record_bytes);
        buf[0] ^= 0x01;
        device_.writeBytesQuiet(record_addr, buf.data(), record_bytes);
        return record_addr;
    case TamperKind::FlipTagByte:
        device_.readBytes(record_addr, buf.data(), record_bytes);
        buf[kRecordTagOffset] ^= 0x01;
        device_.writeBytesQuiet(record_addr, buf.data(), record_bytes);
        return record_addr;
    case TamperKind::TruncateTag:
        device_.readBytes(record_addr, buf.data(), record_bytes);
        std::memset(buf.data() + kRecordTagOffset + Gcm::kTagBytes / 2,
                    0, Gcm::kTagBytes / 2);
        device_.writeBytesQuiet(record_addr, buf.data(), record_bytes);
        return record_addr;
    case TamperKind::ReplayRecord:
        if (!have_snapshot_)
            PSORAM_PANIC("ReplayRecord tamper without a prior "
                         "snapshotRecord()");
        device_.writeBytesQuiet(snapshot_addr_, snapshot_.data(),
                                snapshot_.size());
        return snapshot_addr_;
    case TamperKind::WipeRecord:
        std::fill(buf.begin(), buf.end(), std::uint8_t{0});
        device_.writeBytesQuiet(record_addr, buf.data(), record_bytes);
        return record_addr;
    case TamperKind::FlipMerkleNode: {
        const Addr node_addr =
            merkle_region_base_ +
            bucket * IntegrityManager::kHashBytes;
        std::uint8_t hash[IntegrityManager::kHashBytes];
        device_.readBytes(node_addr, hash, sizeof(hash));
        hash[0] ^= 0x01;
        device_.writeBytesQuiet(node_addr, hash, sizeof(hash));
        return node_addr;
    }
    case TamperKind::FlipRootRecord: {
        std::uint8_t root[IntegrityManager::kRootRecordBytes];
        device_.readBytes(root_record_base_, root, sizeof(root));
        // Hit the Merkle-root field: the most load-bearing bytes.
        root[32] ^= 0x01;
        device_.writeBytesQuiet(root_record_base_, root, sizeof(root));
        return root_record_base_;
    }
    }
    PSORAM_PANIC("unknown tamper kind");
}

void
TamperInjector::armAt(std::uint64_t boundary_index, TamperKind kind,
                      BucketId bucket, unsigned slot)
{
    armed_ = true;
    fired_ = false;
    target_ = boundary_index;
    armed_kind_ = kind;
    armed_bucket_ = bucket;
    armed_slot_ = slot;
}

void
TamperInjector::attachTo(FaultInjector &injector)
{
    injector.setObserver(
        [this](PersistBoundary, std::uint64_t index) {
            if (!armed_ || index != target_)
                return;
            armed_ = false;
            fired_ = true;
            apply(armed_kind_, armed_bucket_, armed_slot_);
        });
}

void
TamperInjector::reset()
{
    armed_ = false;
    fired_ = false;
    target_ = 0;
    applications_ = 0;
}

} // namespace psoram
