/**
 * @file
 * Exhaustive crash-point enumerator.
 *
 * For a fixed (config, trace) pair the persist-boundary sequence is
 * deterministic: every WPQ round start/commit, every drained or direct
 * functional write, and every image checkpoint fires in the same order
 * on every run. The enumerator exploits this:
 *
 *   1. *Probe*: run the trace once with an unarmed FaultInjector and
 *      count the boundaries, B.
 *   2. *Replay*: for every k in [1, B], rebuild the system from
 *      scratch, arm the injector at boundary k, run the trace until
 *      the injected fault aborts it, apply the power-failure recovery
 *      sequence, and run the full recovery-invariant checker
 *      (sim/recovery_invariants.hh) plus a verified post-recovery
 *      workload.
 *
 * A design is crash-consistent under this model iff *no* k produces a
 * violation — the property the paper argues in §4.3, here checked at
 * every single durable-state transition rather than at hand-picked
 * protocol sites.
 */

#ifndef PSORAM_SIM_CRASH_ENUMERATOR_HH
#define PSORAM_SIM_CRASH_ENUMERATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nvm/fault_injector.hh"
#include "sim/recovery_invariants.hh"
#include "sim/system.hh"

namespace psoram {

/** One access of a crash trace. Versions are assigned 1..N in trace
 *  order so the oracle can tell every write apart. */
struct TraceOp
{
    BlockAddr addr;
    bool is_write;
    std::uint32_t version;
};

/** Deterministic random trace over @p num_blocks addresses. */
std::vector<TraceOp> makeCrashTrace(std::uint64_t seed, std::size_t ops,
                                    std::uint64_t num_blocks,
                                    double write_fraction = 0.6);

struct CrashEnumConfig
{
    SystemConfig system;
    std::vector<TraceOp> trace;
    /** Verified workload length run on top of every recovery. */
    std::size_t post_recovery_ops = 64;
    /** Replay every stride-th boundary only (1 = exhaustive). The
     *  torture harness uses larger strides for big traces. */
    std::uint64_t stride = 1;
    /**
     * Non-empty: record every armed replay into the trace ring buffers
     * (cleared per replay) and write the Chrome trace of a *failing*
     * replay here — enumerateCrashPoints() keeps the first failure's
     * trace, so a red run ships with the dying run's event timeline.
     */
    std::string trace_path;
    /**
     * Non-empty: on a *failing* replay, decode the dying system's
     * persistent flight ring (requires system.flight_recorder) and
     * write the human-readable black-box dump here, next to the trace.
     */
    std::string blackbox_path;
    /**
     * Non-null: every replay's recovery stats (phase latencies,
     * redelivery counters, black-box decode counts) are merged here
     * after its recovery — the harnesses export the aggregate.
     */
    RecoveryStats *recovery_stats = nullptr;
};

/** Outcome of one armed replay that produced violations. */
struct CrashPointFailure
{
    std::uint64_t boundary = 0;
    std::vector<std::string> violations;
};

struct CrashEnumSummary
{
    /** Boundaries the probe run counted (the enumeration domain). */
    std::uint64_t total_boundaries = 0;
    /** Replays actually executed (== total_boundaries / stride). */
    std::uint64_t replays = 0;
    /** Probe-run count per boundary kind, indexed by PersistBoundary. */
    std::array<std::uint64_t, kNumPersistBoundaryKinds> kind_counts{};
    std::vector<CrashPointFailure> failures;

    bool ok() const { return failures.empty(); }
    /** One-line human summary ("B boundaries, R replays, F failures"). */
    std::string describe() const;
};

/**
 * Run one armed replay: crash at boundary @p k, recover, check.
 * Exposed separately so the torture harness can replay single points.
 *
 * @return violation list (empty = invariants hold), each prefixed with
 *         the boundary index and kind.
 */
std::vector<std::string> runArmedCrash(const CrashEnumConfig &config,
                                       std::uint64_t k);

/** Probe + exhaustive replay of every persist boundary. */
CrashEnumSummary enumerateCrashPoints(const CrashEnumConfig &config);

} // namespace psoram

#endif // PSORAM_SIM_CRASH_ENUMERATOR_HH
