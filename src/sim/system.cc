#include "sim/system.hh"

#include "common/bitops.hh"
#include "common/log.hh"
#include "nvm/device.hh"
#include "nvm/file_backed.hh"
#include "nvm/paged_disk.hh"
#include "psoram/recovery.hh"

namespace psoram {

namespace {

/** Align a region base up to a 4 KiB boundary. */
Addr
alignUp(Addr addr)
{
    return (addr + 4095) & ~Addr{4095};
}

} // namespace

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Memory:
        return "memory";
      case BackendKind::File:
        return "file";
      case BackendKind::Disk:
        return "disk";
    }
    return "?";
}

PsOramParams
systemParams(const SystemConfig &config)
{
    PsOramParams params;
    params.data_layout.geometry =
        TreeGeometry{config.tree_height, config.bucket_slots};
    params.data_layout.base = 0;

    params.num_blocks = config.num_blocks != 0
        ? config.num_blocks
        : params.data_layout.geometry.dataBlocks(0.5);
    params.stash_capacity = config.stash_capacity;
    params.cipher = config.cipher;
    params.seed = config.seed;
    params.pipeline.depth = config.pipeline_depth;
    params.pipeline.fetch_threads = config.fetch_threads;
    if (config.cache_buckets != 0)
        params.pipeline.cache_buckets = config.cache_buckets;
    if (config.cache_stripes != 0)
        params.pipeline.cache_stripes = config.cache_stripes;
    if (config.retire_queue_rounds != 0)
        params.pipeline.retire_queue_rounds = config.retire_queue_rounds;

    params.design = designOptions(config.design);
    params.design.wpq_entries = config.wpq_entries;
    params.design.temp_posmap_entries = config.temp_posmap_entries;
    if (config.disable_backup_blocks)
        params.design.backup_blocks = false;

    if (config.integrity != IntegrityMode::Off) {
        // Scope: the per-record freshness hashes are drive-thread
        // state, and only backup-block persistence puts whole records
        // through the WPQ the root record can bind to.
        if (params.design.persist == PersistMode::None ||
            params.design.recursive_posmap)
            PSORAM_FATAL("integrity=",
                         integrityModeName(config.integrity),
                         " requires a persistent non-recursive design "
                         "(got ", designName(config.design), ")");
        if (config.pipeline_depth > 1)
            PSORAM_FATAL("integrity=",
                         integrityModeName(config.integrity),
                         " requires pipeline_depth=1 (fetch threads "
                         "would race the freshness hashes)");
        if (config.wpq_entries < 2)
            PSORAM_FATAL("integrity needs wpq_entries >= 2");
        params.integrity = config.integrity;
        params.data_layout.record_bytes = kIntegrityRecordBytes;
    }

    // Region layout, packed after the data tree.
    Addr cursor = alignUp(params.data_layout.footprintBytes());

    params.posmap_region_base = cursor;
    cursor = alignUp(cursor +
                     params.num_blocks * PersistentPosMap::kEntryBytes);

    if (params.design.recursive_posmap) {
        // PoM tree sized at ~50 % utilization for the entry blocks.
        const std::uint64_t entry_blocks =
            divCeil(params.num_blocks, kEntriesPerPosBlock);
        unsigned height = 1;
        while (static_cast<std::uint64_t>(config.bucket_slots) *
                   ((2ULL << height) - 1) < 2 * entry_blocks)
            ++height;
        params.pom_height = height;
        const TreeGeometry pom_geo{height, config.bucket_slots};
        params.pom_tree_base = cursor;
        cursor = alignUp(cursor + pom_geo.numSlots() * kSlotBytes);

        params.pom_pos_region_base = cursor;
        cursor = alignUp(cursor +
                         entry_blocks * PersistentPosMap::kEntryBytes);

        params.shadow_data_base = cursor;
        cursor = alignUp(cursor + ShadowStashRegion::kHeaderBytes +
                         2 * params.stash_capacity * kSlotBytes);
        params.shadow_pom_base = cursor;
        cursor = alignUp(cursor + ShadowStashRegion::kHeaderBytes +
                         2 * params.pom_stash_capacity * kSlotBytes);

        if (params.design.usesWpq()) {
            // The recursive eviction bundle (data path + PoM path +
            // stash shadows) must commit in ONE atomic bracket: the
            // §4.2.3 write-ordering scheme for small WPQs is defined
            // for the non-recursive design only (see DESIGN.md). Size
            // the WPQs for the worst-case bundle.
            const std::uint64_t data_side =
                params.data_layout.geometry.blocksPerPath() +
                params.stash_capacity + 1 +
                params.pom_stash_capacity + 1;
            const std::uint64_t pom_path =
                static_cast<std::uint64_t>(config.bucket_slots) *
                (height + 1);
            const std::uint64_t min_entries =
                std::max<std::uint64_t>(data_side, 2 * pom_path + 8);
            if (params.design.wpq_entries < min_entries)
                params.design.wpq_entries = min_entries;
        }
    }

    params.naive_scratch_base = cursor;
    cursor = alignUp(cursor + params.data_layout.geometry.blocksPerPath() *
                              kBlockDataBytes);

    if (params.integrity != IntegrityMode::Off) {
        params.integrity_root_base = cursor;
        cursor = alignUp(cursor + IntegrityManager::kRootRecordBytes);
        if (params.integrity == IntegrityMode::Tree) {
            params.merkle_region_base = cursor;
            cursor = alignUp(cursor +
                             params.data_layout.geometry.numBuckets() *
                                 IntegrityManager::kHashBytes);
        }
    }

    if (config.flight_recorder) {
        // Laid out LAST: enabling the black box must not move any
        // other region (tree traffic stays byte-identical — pinned by
        // the transparency differential).
        params.flight_recorder_base = cursor;
        params.flight_recorder_records =
            config.flight_records ? config.flight_records
                                  : FlightRecorder::kDefaultRecords;
        cursor = alignUp(cursor + FlightRecorder::regionBytes(
                                      params.flight_recorder_records));
    }

    return params;
}

System
buildSystem(const SystemConfig &config)
{
    System system;
    system.config = config;
    system.params = systemParams(config);

    // Capacity: everything laid out above plus headroom (the scratch
    // or integrity regions are laid out last in systemParams).
    Addr last =
        system.params.naive_scratch_base +
        system.params.data_layout.geometry.blocksPerPath() *
            kBlockDataBytes;
    if (system.params.integrity == IntegrityMode::Mac)
        last = system.params.integrity_root_base +
               IntegrityManager::kRootRecordBytes;
    else if (system.params.integrity == IntegrityMode::Tree)
        last = system.params.merkle_region_base +
               system.params.data_layout.geometry.numBuckets() *
                   IntegrityManager::kHashBytes;
    if (system.params.flight_recorder_base != 0)
        last = system.params.flight_recorder_base +
               FlightRecorder::regionBytes(
                   system.params.flight_recorder_records);
    const std::uint64_t capacity = alignUp(last) + (1ULL << 20);
    switch (config.effectiveBackend()) {
      case BackendKind::Disk: {
        if (config.backing_file.empty())
            PSORAM_FATAL("backend=disk needs a backing_file path");
        PagedDiskConfig disk;
        disk.path = config.backing_file;
        disk.cache_pages = config.disk_cache_pages;
        disk.pinned_pages = config.disk_pinned_pages;
        system.device = std::make_unique<PagedDiskBackend>(
            timingsFor(config.main_tech), config.channels,
            config.banks_per_channel, capacity, std::move(disk));
        break;
      }
      case BackendKind::File:
        system.device = std::make_unique<FileBackedNvm>(
            timingsFor(config.main_tech), config.channels,
            config.banks_per_channel, capacity, config.backing_file);
        break;
      case BackendKind::Memory:
        system.device = std::make_unique<NvmDevice>(
            timingsFor(config.main_tech), config.channels,
            config.banks_per_channel, capacity);
        break;
    }
    system.recovery_stats = std::make_unique<RecoveryStats>();
    if (system.params.flight_recorder_base != 0) {
        system.flight_recorder = std::make_unique<FlightRecorder>(
            system.params.flight_recorder_base,
            system.params.flight_recorder_records);
        system.flight_recorder->attach(*system.device);
        system.device->setFlightRecorder(system.flight_recorder.get());
    }
    system.controller = std::make_unique<PsOramController>(
        system.params, *system.device);
    if (system.flight_recorder)
        system.controller->attachFlightRecorder(
            system.flight_recorder.get());
    return system;
}

void
System::recoverController()
{
    {
        const FaultInjector::ScopedSuspend suspend(fault_injector);
        // Simulated power failure: any RAM cache in front of the
        // durable medium is gone BEFORE the ADR flush and the retiring
        // wrapper's teardown redeliver in-flight rounds — so those
        // redeliveries land durably, and everything else the cache
        // held un-flushed is genuinely lost to recovery.
        device->dropVolatile();
        controller = RecoveryManager::recover(std::move(controller),
                                              *device, nullptr,
                                              recovery_stats.get(),
                                              flight_recorder.get());
    }
    if (fault_injector)
        controller->attachFaultInjector(fault_injector);
    if (flight_recorder)
        controller->attachFlightRecorder(flight_recorder.get());
    if (rebind_hook)
        rebind_hook(*controller);
}

void
System::attachFaultInjector(FaultInjector *injector)
{
    fault_injector = injector;
    if (device)
        device->setFaultInjector(injector);
    if (controller)
        controller->attachFaultInjector(injector);
}

} // namespace psoram
