/**
 * @file
 * OramEngine: a batched asynchronous frontend over the PS-ORAM
 * controller.
 *
 * Callers submit read/write requests and receive completions through
 * poll()/drain(), either by callback or from the returned completion
 * records. The engine owns a FIFO request queue; the controller is only
 * driven when the caller polls, so submission never blocks on NVM
 * timing.
 *
 * Back-to-back requests to the same logical block are *coalesced*: a
 * run of duplicate reads (or a write-led run) costs one path
 * load/eviction, and a read-then-write run costs two — the folded
 * writes land as one physical write of the final value. This mirrors
 * what a write-combining front buffer does for a DIMM, and it is safe
 * for obliviousness — the adversary observes one access where the
 * trace had a run of accesses to one (hidden) address, revealing
 * nothing about which address that was.
 */

#ifndef PSORAM_SIM_ENGINE_HH
#define PSORAM_SIM_ENGINE_HH

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "oram/block.hh"
#include "oram/controller.hh"
#include "psoram/psoram_controller.hh"

namespace psoram {

/** Engine tunables. */
struct EngineConfig
{
    /** Merge back-to-back same-block requests into one access. */
    bool coalesce = true;
    /** Keep completion records for takeCompletions(). The sharded
     *  engine's workers deliver completions through callbacks instead
     *  and turn recording off so long runs stay bounded. */
    bool record_completions = true;
    /**
     * In-flight access window (DESIGN.md §12). 0 follows the
     * controller's params().pipeline.depth; an explicit value > 1 is
     * still clamped to 1 unless the controller was built with pipeline
     * support. Depth 1 runs the untouched synchronous poll path.
     */
    unsigned pipeline_depth = 0;
    /**
     * Submit-side backpressure: a submit that would leave more than
     * this many requests pending drives the engine until the queue is
     * back under the bound, so open-loop producers cannot grow the
     * queue without limit.
     */
    std::size_t max_pending = 1 << 16;
};

class OramEngine
{
  public:
    using RequestId = std::uint64_t;
    using Config = EngineConfig;

    /** Outcome of one submitted request. */
    struct Completion
    {
        RequestId id = 0;
        BlockAddr addr = kDummyBlockAddr;
        bool is_write = false;
        /** Served by an earlier request's physical access. */
        bool coalesced = false;
        /** Memory-side cycles from first controller activity of the
         *  request's batch to its completion. */
        Cycle latency_cycles = 0;
        /** Controller-level outcome of the batch's physical access. */
        OramAccessInfo info;
        /** Block contents observed by the request (read result, or the
         *  written data echoed back). */
        std::array<std::uint8_t, kBlockDataBytes> data{};
    };

    using Callback = std::function<void(const Completion &)>;

    explicit OramEngine(PsOramController &ctrl, Config config = Config());
    ~OramEngine();

    OramEngine(const OramEngine &) = delete;
    OramEngine &operator=(const OramEngine &) = delete;

    /** Resolved in-flight window: 1 when the controller lacks pipeline
     *  support (the synchronous path), else the configured depth. */
    unsigned pipelineDepth() const { return depth_; }

    /** @{ Enqueue a request; returns immediately. The write payload is
     *  copied. The callback (optional) fires during poll()/drain().
     *
     *  @p forced_id (0 = assign from the engine's own sequence) lets an
     *  outer frontend impose its request id, so trace events recorded by
     *  the controller correlate with the id the outer caller saw. The
     *  caller owns uniqueness of forced ids. */
    RequestId submitRead(BlockAddr addr, Callback callback = nullptr,
                         RequestId forced_id = 0);
    RequestId submitWrite(BlockAddr addr, const std::uint8_t *data,
                          Callback callback = nullptr,
                          RequestId forced_id = 0);
    /** @} */

    /**
     * Process the next batch (one coalescing run; a single request when
     * coalescing is off or neighbours differ) and deliver its
     * completions.
     * @return completions produced (0 when the queue is empty)
     */
    std::size_t poll();

    /** Process the whole queue. @return total completions delivered. */
    std::size_t drain();

    std::size_t pending() const
    {
        return queue_.size() + inflight_.size();
    }

    /** Completions accumulated since the last takeCompletions(). */
    std::vector<Completion> takeCompletions();

    /** Engine counters. Relaxed-atomic (common/stats.hh Counter) so the
     *  sharded frontend can merge per-shard stats while workers run. */
    struct Stats
    {
        Counter submitted;
        Counter completed;
        /** Controller accesses that touched the tree (no stash hit). */
        Counter physical_accesses;
        /** Requests absorbed into an earlier request's access. */
        Counter coalesced;
        /** Submits that found the queue over max_pending and had to
         *  drive the engine inline (saturation signal). */
        Counter backpressure_stalls;
    };
    const Stats &stats() const { return stats_; }

    /** Register the engine counters with @p group (metrics export). */
    void registerStats(StatGroup &group) const;

    /** @{ Per-phase latency breakdown, delegated to the controller. */
    const PhaseLatencyStats &phaseHostNs() const
    {
        return ctrl_.phaseHostNs();
    }
    const PhaseLatencyStats &phaseSimCycles() const
    {
        return ctrl_.phaseSimCycles();
    }
    /** @} */

  private:
    struct Pending
    {
        RequestId id;
        BlockAddr addr;
        bool is_write;
        std::array<std::uint8_t, kBlockDataBytes> data;
        Callback callback;
        /** Internal folded-write request: apply the data but deliver no
         *  completion (the originating batch already completed). */
        bool silent = false;
    };

    /**
     * One coalescing run moving through the pipeline. The staged access
     * belongs to the run's leading request; trailing requests are served
     * from the fold at commit time, exactly as in the synchronous path.
     *
     * fetch_state is guarded by FetchPool::mutex: 0 = no fetch needed
     * (stash hit at stageBegin), 1 = queued, 3 = running (on a pool
     * thread, or on the drive thread after a steal in wait()), 2 =
     * done (fetch_error set if it threw).
     */
    struct Flight
    {
        std::vector<Pending> batch;
        BlockAddr addr = kDummyBlockAddr;
        bool read_led = true;
        Cycle start = 0;
        std::unique_ptr<PsOramController::StagedAccess> sa;
        int fetch_state = 0;
        std::exception_ptr fetch_error;
    };

    /**
     * Worker threads running stageFetch (stage 2) off the drive thread.
     * Fetches only pin-and-fill the subtree cache from the (read-only,
     * internally locked) device view, so they commute; all protocol
     * mutation stays on the drive thread in ticket order.
     */
    struct FetchPool
    {
        FetchPool(PsOramController &ctrl, unsigned num_threads);
        ~FetchPool();

        void dispatch(Flight *flight);
        void wait(Flight *flight);

        PsOramController &ctrl;
        std::mutex mutex;
        std::condition_variable work_cv;
        std::condition_variable done_cv;
        std::deque<Flight *> work;
        bool stop = false;
        std::vector<std::thread> threads;
    };

    void finish(const Pending &request, bool coalesced, Cycle start,
                const OramAccessInfo &info,
                const std::array<std::uint8_t, kBlockDataBytes> &block);

    std::size_t pollSync();
    std::size_t pollPipelined();
    /** Launch flights while the window has room and the head-of-queue
     *  address is not already in flight. */
    void issueReady();
    /** Complete the oldest flight (waits for its fetch), delivering its
     *  batch completions. Returns completions delivered. */
    std::size_t commitFront();
    void backpressure();

    PsOramController &ctrl_;
    Config config_;
    std::deque<Pending> queue_;
    std::vector<Completion> completions_;
    Stats stats_;
    RequestId next_id_ = 1;

    unsigned depth_ = 1;
    bool faulted_ = false;
    std::deque<std::unique_ptr<Flight>> inflight_;
    std::unordered_set<BlockAddr> inflight_addrs_;
    /** Last member: its destructor joins the fetch threads before the
     *  flights they reference are destroyed. */
    std::unique_ptr<FetchPool> pool_;
};

} // namespace psoram

#endif // PSORAM_SIM_ENGINE_HH
