/**
 * @file
 * OramEngine: a batched asynchronous frontend over the PS-ORAM
 * controller.
 *
 * Callers submit read/write requests and receive completions through
 * poll()/drain(), either by callback or from the returned completion
 * records. The engine owns a FIFO request queue; the controller is only
 * driven when the caller polls, so submission never blocks on NVM
 * timing.
 *
 * Back-to-back requests to the same logical block are *coalesced*: a
 * run of duplicate reads (or a write-led run) costs one path
 * load/eviction, and a read-then-write run costs two — the folded
 * writes land as one physical write of the final value. This mirrors
 * what a write-combining front buffer does for a DIMM, and it is safe
 * for obliviousness — the adversary observes one access where the
 * trace had a run of accesses to one (hidden) address, revealing
 * nothing about which address that was.
 */

#ifndef PSORAM_SIM_ENGINE_HH
#define PSORAM_SIM_ENGINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "oram/block.hh"
#include "oram/controller.hh"
#include "psoram/psoram_controller.hh"

namespace psoram {

/** Engine tunables. */
struct EngineConfig
{
    /** Merge back-to-back same-block requests into one access. */
    bool coalesce = true;
    /** Keep completion records for takeCompletions(). The sharded
     *  engine's workers deliver completions through callbacks instead
     *  and turn recording off so long runs stay bounded. */
    bool record_completions = true;
};

class OramEngine
{
  public:
    using RequestId = std::uint64_t;
    using Config = EngineConfig;

    /** Outcome of one submitted request. */
    struct Completion
    {
        RequestId id = 0;
        BlockAddr addr = kDummyBlockAddr;
        bool is_write = false;
        /** Served by an earlier request's physical access. */
        bool coalesced = false;
        /** Memory-side cycles from first controller activity of the
         *  request's batch to its completion. */
        Cycle latency_cycles = 0;
        /** Controller-level outcome of the batch's physical access. */
        OramAccessInfo info;
        /** Block contents observed by the request (read result, or the
         *  written data echoed back). */
        std::array<std::uint8_t, kBlockDataBytes> data{};
    };

    using Callback = std::function<void(const Completion &)>;

    explicit OramEngine(PsOramController &ctrl, Config config = Config())
        : ctrl_(ctrl), config_(config)
    {
    }

    /** @{ Enqueue a request; returns immediately. The write payload is
     *  copied. The callback (optional) fires during poll()/drain().
     *
     *  @p forced_id (0 = assign from the engine's own sequence) lets an
     *  outer frontend impose its request id, so trace events recorded by
     *  the controller correlate with the id the outer caller saw. The
     *  caller owns uniqueness of forced ids. */
    RequestId submitRead(BlockAddr addr, Callback callback = nullptr,
                         RequestId forced_id = 0);
    RequestId submitWrite(BlockAddr addr, const std::uint8_t *data,
                          Callback callback = nullptr,
                          RequestId forced_id = 0);
    /** @} */

    /**
     * Process the next batch (one coalescing run; a single request when
     * coalescing is off or neighbours differ) and deliver its
     * completions.
     * @return completions produced (0 when the queue is empty)
     */
    std::size_t poll();

    /** Process the whole queue. @return total completions delivered. */
    std::size_t drain();

    std::size_t pending() const { return queue_.size(); }

    /** Completions accumulated since the last takeCompletions(). */
    std::vector<Completion> takeCompletions();

    /** Engine counters. Relaxed-atomic (common/stats.hh Counter) so the
     *  sharded frontend can merge per-shard stats while workers run. */
    struct Stats
    {
        Counter submitted;
        Counter completed;
        /** Controller accesses that touched the tree (no stash hit). */
        Counter physical_accesses;
        /** Requests absorbed into an earlier request's access. */
        Counter coalesced;
    };
    const Stats &stats() const { return stats_; }

    /** Register the engine counters with @p group (metrics export). */
    void registerStats(StatGroup &group) const;

    /** @{ Per-phase latency breakdown, delegated to the controller. */
    const PhaseLatencyStats &phaseHostNs() const
    {
        return ctrl_.phaseHostNs();
    }
    const PhaseLatencyStats &phaseSimCycles() const
    {
        return ctrl_.phaseSimCycles();
    }
    /** @} */

  private:
    struct Pending
    {
        RequestId id;
        BlockAddr addr;
        bool is_write;
        std::array<std::uint8_t, kBlockDataBytes> data;
        Callback callback;
    };

    void finish(const Pending &request, bool coalesced, Cycle start,
                const OramAccessInfo &info,
                const std::array<std::uint8_t, kBlockDataBytes> &block);

    PsOramController &ctrl_;
    Config config_;
    std::deque<Pending> queue_;
    std::vector<Completion> completions_;
    Stats stats_;
    RequestId next_id_ = 1;
};

} // namespace psoram

#endif // PSORAM_SIM_ENGINE_HH
