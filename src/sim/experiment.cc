#include "sim/experiment.hh"

#include <cmath>
#include <cstring>

#include "common/log.hh"

namespace psoram {

namespace {

/** Synthesize deterministic write payloads for trace-driven stores. */
void
fillPayload(BlockAddr addr, std::uint64_t version, std::uint8_t *out)
{
    for (std::size_t i = 0; i < kBlockDataBytes; i += 8) {
        const std::uint64_t word =
            (addr * 0x9e3779b97f4a7c15ULL) ^ (version + i);
        std::memcpy(out + i, &word, sizeof(word));
    }
}

} // namespace

WorkloadResult
runWorkload(const SystemConfig &config, const WorkloadSpec &workload,
            const GeneratorParams &gen)
{
    System system = buildSystem(config);
    PsOramController &oram = *system.controller;

    GeneratorParams gen_params = gen;
    gen_params.address_space_lines = system.params.num_blocks;
    SyntheticTrace trace(workload, gen_params);

    CacheHierarchy hierarchy;
    InOrderCore core(hierarchy);

    std::uint64_t version = 0;
    std::uint8_t buffer[kBlockDataBytes];
    const MemRequestHandler handler =
        [&](const MemRequest &request) -> CpuCycle {
        OramAccessInfo info;
        if (request.is_write) {
            fillPayload(request.line, ++version, buffer);
            info = oram.write(request.line, buffer);
        } else {
            info = oram.read(request.line, buffer);
        }
        return info.nvm_cycles * kCpuCyclesPerNvmCycle +
               kControllerOverheadCpuCycles;
    };

    WorkloadResult result;
    result.workload = workload.name;
    result.design = designName(config.design);
    result.core = core.run(trace, handler);
    result.traffic = oram.traffic();
    result.oram_accesses = oram.accessCount();
    result.stash_hits = oram.stashHits();
    result.stash_peak = oram.stash().peakSize();
    result.stash_mean_occupancy = oram.stash().occupancy().mean();
    result.backups = oram.backupsCreated();
    if (oram.drainer())
        result.wpq_rounds = oram.drainer()->roundsIssued();
    return result;
}

WorkloadResult
runWorkloadNoOram(const SystemConfig &config,
                  const WorkloadSpec &workload,
                  const GeneratorParams &gen)
{
    // A plain NVM main memory with the same device model.
    NvmDevice device(timingsFor(config.main_tech), config.channels,
                     config.banks_per_channel, 8ULL << 30);

    GeneratorParams gen_params = gen;
    SyntheticTrace trace(workload, gen_params);
    CacheHierarchy hierarchy;
    InOrderCore core(hierarchy);

    Cycle now = 0;
    const MemRequestHandler handler =
        [&](const MemRequest &request) -> CpuCycle {
        const Cycle done = device.accessOne(request.line * 64,
                                            request.is_write, now);
        const Cycle latency = done > now ? done - now : 0;
        now = done;
        return latency * kCpuCyclesPerNvmCycle + 4;
    };

    WorkloadResult result;
    result.workload = workload.name;
    result.design = "No-ORAM";
    result.core = core.run(trace, handler);
    result.traffic.reads = device.totalReads();
    result.traffic.writes = device.totalWrites();
    return result;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace psoram
