#include "sim/engine.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/trace.hh"

namespace psoram {

OramEngine::OramEngine(PsOramController &ctrl, Config config)
    : ctrl_(ctrl), config_(config)
{
    const unsigned want = config_.pipeline_depth != 0
        ? config_.pipeline_depth
        : ctrl_.params().pipeline.depth;
    depth_ = (want > 1 && ctrl_.pipelineSupported()) ? want : 1;
    if (depth_ > 1) {
        // 0 workers is valid: every fetch is then stolen and run
        // inline by wait(), which is the fastest configuration on a
        // single-core host (no context-switch round trips).
        pool_ = std::make_unique<FetchPool>(
            ctrl_, ctrl_.params().pipeline.fetch_threads);
    }
}

OramEngine::~OramEngine() = default;

OramEngine::FetchPool::FetchPool(PsOramController &controller,
                                 unsigned num_threads)
    : ctrl(controller)
{
    threads.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
        threads.emplace_back([this] {
            for (;;) {
                Flight *flight = nullptr;
                {
                    std::unique_lock<std::mutex> lock(mutex);
                    work_cv.wait(lock, [this] {
                        return stop || !work.empty();
                    });
                    // On shutdown, discard queued fetches: a pool is
                    // only torn down with work pending after a fault,
                    // and those flights are about to be destroyed.
                    if (stop)
                        return;
                    flight = work.front();
                    work.pop_front();
                    flight->fetch_state = 3; // running (worker)
                }
                try {
                    ctrl.stageFetch(*flight->sa);
                } catch (...) {
                    flight->fetch_error = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    flight->fetch_state = 2;
                }
                done_cv.notify_all();
            }
        });
    }
}

OramEngine::FetchPool::~FetchPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stop = true;
    }
    work_cv.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
OramEngine::FetchPool::dispatch(Flight *flight)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        flight->fetch_state = 1;
        work.push_back(flight);
    }
    work_cv.notify_one();
}

void
OramEngine::FetchPool::wait(Flight *flight)
{
    std::unique_lock<std::mutex> lock(mutex);
    if (flight->fetch_state == 1) {
        // Work stealing: the fetch is still queued — run it on the
        // waiting (drive) thread instead of paying a context-switch
        // round trip to a worker. On a single-core host this turns the
        // pool into an inline fallback with no handoff cost; with real
        // cores the workers win the race and the drive thread only
        // steals when they are saturated.
        work.erase(std::find(work.begin(), work.end(), flight));
        flight->fetch_state = 3;
        lock.unlock();
        try {
            ctrl.stageFetch(*flight->sa);
        } catch (...) {
            flight->fetch_error = std::current_exception();
        }
        lock.lock();
        flight->fetch_state = 2;
        return;
    }
    done_cv.wait(lock, [flight] { return flight->fetch_state == 2; });
}

OramEngine::RequestId
OramEngine::submitRead(BlockAddr addr, Callback callback,
                       RequestId forced_id)
{
    Pending request;
    request.id = forced_id != 0 ? forced_id : next_id_++;
    request.addr = addr;
    request.is_write = false;
    request.callback = std::move(callback);
    queue_.push_back(std::move(request));
    ++stats_.submitted;
    // A forced id means an outer frontend already emitted the submit
    // marker on the caller's thread; don't double-count the event.
    if (forced_id == 0)
        PSORAM_TRACE_INSTANT("engine", "submit_read",
                             queue_.back().id);
    const RequestId id = queue_.back().id;
    backpressure();
    return id;
}

OramEngine::RequestId
OramEngine::submitWrite(BlockAddr addr, const std::uint8_t *data,
                        Callback callback, RequestId forced_id)
{
    Pending request;
    request.id = forced_id != 0 ? forced_id : next_id_++;
    request.addr = addr;
    request.is_write = true;
    std::memcpy(request.data.data(), data, kBlockDataBytes);
    request.callback = std::move(callback);
    queue_.push_back(std::move(request));
    ++stats_.submitted;
    if (forced_id == 0)
        PSORAM_TRACE_INSTANT("engine", "submit_write",
                             queue_.back().id);
    const RequestId id = queue_.back().id;
    backpressure();
    return id;
}

void
OramEngine::backpressure()
{
    // Bound the pending queue: an open-loop producer that outruns the
    // controller drives the engine inline until it is back under the
    // configured watermark, instead of growing the deque without limit.
    if (queue_.size() > config_.max_pending)
        ++stats_.backpressure_stalls;
    while (queue_.size() > config_.max_pending && !faulted_)
        if (poll() == 0 && inflight_.empty())
            break;
}

void
OramEngine::finish(const Pending &request, bool coalesced, Cycle start,
                   const OramAccessInfo &info,
                   const std::array<std::uint8_t, kBlockDataBytes> &block)
{
    Completion completion;
    completion.id = request.id;
    completion.addr = request.addr;
    completion.is_write = request.is_write;
    completion.coalesced = coalesced;
    completion.latency_cycles = ctrl_.nowCycles() - start;
    completion.info = info;
    completion.data = block;
    ++stats_.completed;
    if (coalesced)
        ++stats_.coalesced;
    PSORAM_TRACE_INSTANT("engine", "complete", completion.id);
    if (request.callback)
        request.callback(completion);
    if (config_.record_completions)
        completions_.push_back(std::move(completion));
}

std::size_t
OramEngine::poll()
{
    if (depth_ > 1)
        return pollPipelined();
    return pollSync();
}

std::size_t
OramEngine::pollSync()
{
    if (queue_.empty())
        return 0;

    // Pop the next coalescing run: the head request plus every
    // back-to-back successor addressing the same block.
    std::vector<Pending> batch;
    const BlockAddr addr = queue_.front().addr;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    while (config_.coalesce && !queue_.empty() &&
           queue_.front().addr == addr) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }

    const Cycle start = ctrl_.nowCycles();
    std::array<std::uint8_t, kBlockDataBytes> block{};
    OramAccessInfo info;

    // A run headed by a read must observe the pre-run block value, so
    // it opens with a physical read. A run headed by a write squashes
    // the old value (writes are full-block), so no read is needed.
    if (!batch.front().is_write) {
        ctrl_.setNextAccessId(batch.front().id);
        info = ctrl_.read(addr, block.data());
        if (!info.stash_hit)
            ++stats_.physical_accesses;
    }

    // Fold the run over the local copy: each request observes the block
    // as of its queue position, writes squash in order.
    std::vector<std::array<std::uint8_t, kBlockDataBytes>> observed;
    observed.reserve(batch.size());
    bool any_write = false;
    for (const Pending &request : batch) {
        if (request.is_write) {
            block = request.data;
            any_write = true;
        }
        observed.push_back(block);
    }

    // All folded writes land in one physical write of the final value.
    if (any_write) {
        ctrl_.setNextAccessId(batch.front().id);
        const OramAccessInfo winfo = ctrl_.write(addr, block.data());
        if (!winfo.stash_hit)
            ++stats_.physical_accesses;
        if (batch.front().is_write)
            info = winfo;
    }

    for (std::size_t i = 0; i < batch.size(); ++i)
        finish(batch[i], i > 0, start, info, observed[i]);

    return batch.size();
}

void
OramEngine::issueReady()
{
    while (!faulted_ && inflight_.size() < depth_ && !queue_.empty()) {
        // Conflict defer (head-of-line): never launch an address that
        // is already in flight. The older flight's commit both fixes
        // the observable value order and publishes the block's stash /
        // PosMap state the younger access must see at stageBegin.
        if (inflight_addrs_.count(queue_.front().addr) != 0)
            return;

        auto flight = std::make_unique<Flight>();
        const BlockAddr addr = queue_.front().addr;
        // A silent folded write flies alone: coalescing real requests
        // into it would mark their completions silent too.
        const bool silent = queue_.front().silent;
        flight->addr = addr;
        flight->batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        while (config_.coalesce && !silent && !queue_.empty() &&
               queue_.front().addr == addr) {
            flight->batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        flight->read_led = !flight->batch.front().is_write;
        flight->start = ctrl_.nowCycles();

        flight->sa =
            std::make_unique<PsOramController::StagedAccess>();
        PsOramController::StagedAccess &sa = *flight->sa;
        sa.addr = addr;
        sa.is_write = !flight->read_led;
        if (sa.is_write) {
            // Write-led run: the physical access writes the final
            // folded value (full-block writes squash, no read needed).
            for (const Pending &request : flight->batch)
                if (request.is_write)
                    sa.data = request.data;
        }

        ctrl_.setNextAccessId(flight->batch.front().id);
        try {
            ctrl_.stageBegin(sa);
        } catch (...) {
            // Crash-injection faults surface here; the controller is
            // rebuilt by recovery, this engine is done.
            faulted_ = true;
            throw;
        }
        if (!sa.stash_hit)
            pool_->dispatch(flight.get());

        inflight_addrs_.insert(addr);
        inflight_.push_back(std::move(flight));
    }
}

std::size_t
OramEngine::commitFront()
{
    Flight &flight = *inflight_.front();
    PsOramController::StagedAccess &sa = *flight.sa;

    OramAccessInfo info = sa.ctx.info;
    if (!sa.stash_hit) {
        pool_->wait(&flight);
        if (flight.fetch_error) {
            faulted_ = true;
            std::rethrow_exception(flight.fetch_error);
        }
        try {
            // Stage 3, strictly in ticket order (we always retire the
            // oldest flight): the temp-PosMap horizon proof in
            // DESIGN.md §12 depends on this.
            info = ctrl_.stageFinish(sa);
        } catch (...) {
            faulted_ = true;
            throw;
        }
        ++stats_.physical_accesses;
    }

    // Fold the run exactly as the synchronous path does: a read-led
    // run starts from the fetched value, a write-led run squashes from
    // a zero block; each request observes the block as of its slot.
    std::array<std::uint8_t, kBlockDataBytes> block{};
    if (flight.read_led)
        block = sa.data;
    std::vector<std::array<std::uint8_t, kBlockDataBytes>> observed;
    observed.reserve(flight.batch.size());
    bool any_write = false;
    for (const Pending &request : flight.batch) {
        if (request.is_write) {
            block = request.data;
            any_write = true;
        }
        observed.push_back(block);
    }

    std::size_t delivered = 0;
    const bool silent = flight.batch.front().silent;
    if (!silent) {
        for (std::size_t i = 0; i < flight.batch.size(); ++i)
            finish(flight.batch[i], i > 0, flight.start, info,
                   observed[i]);
        delivered = flight.batch.size();
    }

    // A read-led run with writes needs a second access landing the
    // folded value (the sync path issues ctrl_.write here). To keep
    // stage finishes in ticket order we re-enqueue it as a silent
    // head-of-queue request: conflict defer has kept this address out
    // of the rest of the window, so it launches next and usually
    // stash-hits on the copy the read just pulled in.
    if (flight.read_led && any_write) {
        Pending follow;
        follow.id = flight.batch.front().id;
        follow.addr = flight.addr;
        follow.is_write = true;
        follow.data = block;
        follow.silent = true;
        queue_.push_front(std::move(follow));
    }

    inflight_addrs_.erase(flight.addr);
    inflight_.pop_front();
    return delivered;
}

std::size_t
OramEngine::pollPipelined()
{
    if (faulted_)
        return 0;
    issueReady();
    if (inflight_.empty())
        return 0;
    const std::size_t delivered = commitFront();
    issueReady();
    return delivered;
}

std::size_t
OramEngine::drain()
{
    std::size_t total = 0;
    while (!faulted_ && (!queue_.empty() || !inflight_.empty()))
        total += poll();
    return total;
}

std::vector<OramEngine::Completion>
OramEngine::takeCompletions()
{
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

void
OramEngine::registerStats(StatGroup &group) const
{
    group.addCounter("submitted", &stats_.submitted,
                     "requests enqueued");
    group.addCounter("completed", &stats_.completed,
                     "completions delivered");
    group.addCounter("physical_accesses", &stats_.physical_accesses,
                     "controller accesses that touched the tree");
    group.addCounter("coalesced", &stats_.coalesced,
                     "requests absorbed into an earlier access");
    group.addCounter("backpressure_stalls", &stats_.backpressure_stalls,
                     "submits that hit the max_pending bound");
}

} // namespace psoram
