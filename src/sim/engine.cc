#include "sim/engine.hh"

#include <cstring>

#include "obs/trace.hh"

namespace psoram {

OramEngine::RequestId
OramEngine::submitRead(BlockAddr addr, Callback callback,
                       RequestId forced_id)
{
    Pending request;
    request.id = forced_id != 0 ? forced_id : next_id_++;
    request.addr = addr;
    request.is_write = false;
    request.callback = std::move(callback);
    queue_.push_back(std::move(request));
    ++stats_.submitted;
    // A forced id means an outer frontend already emitted the submit
    // marker on the caller's thread; don't double-count the event.
    if (forced_id == 0)
        PSORAM_TRACE_INSTANT("engine", "submit_read",
                             queue_.back().id);
    return queue_.back().id;
}

OramEngine::RequestId
OramEngine::submitWrite(BlockAddr addr, const std::uint8_t *data,
                        Callback callback, RequestId forced_id)
{
    Pending request;
    request.id = forced_id != 0 ? forced_id : next_id_++;
    request.addr = addr;
    request.is_write = true;
    std::memcpy(request.data.data(), data, kBlockDataBytes);
    request.callback = std::move(callback);
    queue_.push_back(std::move(request));
    ++stats_.submitted;
    if (forced_id == 0)
        PSORAM_TRACE_INSTANT("engine", "submit_write",
                             queue_.back().id);
    return queue_.back().id;
}

void
OramEngine::finish(const Pending &request, bool coalesced, Cycle start,
                   const OramAccessInfo &info,
                   const std::array<std::uint8_t, kBlockDataBytes> &block)
{
    Completion completion;
    completion.id = request.id;
    completion.addr = request.addr;
    completion.is_write = request.is_write;
    completion.coalesced = coalesced;
    completion.latency_cycles = ctrl_.nowCycles() - start;
    completion.info = info;
    completion.data = block;
    ++stats_.completed;
    if (coalesced)
        ++stats_.coalesced;
    PSORAM_TRACE_INSTANT("engine", "complete", completion.id);
    if (request.callback)
        request.callback(completion);
    if (config_.record_completions)
        completions_.push_back(std::move(completion));
}

std::size_t
OramEngine::poll()
{
    if (queue_.empty())
        return 0;

    // Pop the next coalescing run: the head request plus every
    // back-to-back successor addressing the same block.
    std::vector<Pending> batch;
    const BlockAddr addr = queue_.front().addr;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    while (config_.coalesce && !queue_.empty() &&
           queue_.front().addr == addr) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
    }

    const Cycle start = ctrl_.nowCycles();
    std::array<std::uint8_t, kBlockDataBytes> block{};
    OramAccessInfo info;

    // A run headed by a read must observe the pre-run block value, so
    // it opens with a physical read. A run headed by a write squashes
    // the old value (writes are full-block), so no read is needed.
    if (!batch.front().is_write) {
        ctrl_.setNextAccessId(batch.front().id);
        info = ctrl_.read(addr, block.data());
        if (!info.stash_hit)
            ++stats_.physical_accesses;
    }

    // Fold the run over the local copy: each request observes the block
    // as of its queue position, writes squash in order.
    std::vector<std::array<std::uint8_t, kBlockDataBytes>> observed;
    observed.reserve(batch.size());
    bool any_write = false;
    for (const Pending &request : batch) {
        if (request.is_write) {
            block = request.data;
            any_write = true;
        }
        observed.push_back(block);
    }

    // All folded writes land in one physical write of the final value.
    if (any_write) {
        ctrl_.setNextAccessId(batch.front().id);
        const OramAccessInfo winfo = ctrl_.write(addr, block.data());
        if (!winfo.stash_hit)
            ++stats_.physical_accesses;
        if (batch.front().is_write)
            info = winfo;
    }

    for (std::size_t i = 0; i < batch.size(); ++i)
        finish(batch[i], i > 0, start, info, observed[i]);

    return batch.size();
}

std::size_t
OramEngine::drain()
{
    std::size_t total = 0;
    while (!queue_.empty())
        total += poll();
    return total;
}

std::vector<OramEngine::Completion>
OramEngine::takeCompletions()
{
    std::vector<Completion> out;
    out.swap(completions_);
    return out;
}

void
OramEngine::registerStats(StatGroup &group) const
{
    group.addCounter("submitted", &stats_.submitted,
                     "requests enqueued");
    group.addCounter("completed", &stats_.completed,
                     "completions delivered");
    group.addCounter("physical_accesses", &stats_.physical_accesses,
                     "controller accesses that touched the tree");
    group.addCounter("coalesced", &stats_.coalesced,
                     "requests absorbed into an earlier access");
}

} // namespace psoram
