#include "sim/recovery_invariants.hh"

#include <bit>
#include <cstring>
#include <sstream>

#include "common/bitops.hh"
#include "obs/trace.hh"
#include "oram/block.hh"
#include "oram/integrity.hh"
#include "oram/recursive_posmap.hh"
#include "oram/tree.hh"

namespace psoram {

void
stampPayload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
payloadVersion(const std::uint8_t *data)
{
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    return version;
}

BlockAddr
payloadAddr(const std::uint8_t *data)
{
    BlockAddr addr = 0;
    std::memcpy(&addr, data, sizeof(addr));
    return addr;
}

CommitObserver
RecoveryOracle::observer()
{
    return [this](BlockAddr addr,
                  const std::array<std::uint8_t, kBlockDataBytes> &data) {
        const std::uint32_t version = payloadVersion(data.data());
        auto &slot = durable[addr];
        if (version < slot)
            non_monotonic = true;
        else
            slot = version;
    };
}

namespace {

/** Level of @p bucket in the BFS flat array (root = 0). */
unsigned
bucketLevel(BucketId bucket)
{
    return static_cast<unsigned>(std::bit_width(bucket + 1)) - 1;
}

/**
 * I1 for one tree: decode every slot, flag out-of-range addresses,
 * invalid paths, and blocks stored in a bucket their path does not
 * pass through. @p max_addr is the tree's logical address space.
 */
void
scanTree(const MemoryBackend &device, const TreeLayout &layout,
         const BlockCodec &codec, std::uint64_t max_addr,
         const char *tree_name, std::vector<std::string> &violations)
{
    const TreeGeometry &geo = layout.geometry;
    SlotBytes raw{};
    for (BucketId bucket = 0; bucket < geo.numBuckets(); ++bucket) {
        for (unsigned slot = 0; slot < geo.bucket_slots; ++slot) {
            device.readBytes(layout.slotAddr(bucket, slot), raw.data(),
                             raw.size());
            const PlainBlock block = codec.decode(raw);
            if (block.isDummy())
                continue;
            std::ostringstream at;
            at << tree_name << " bucket " << bucket << " slot " << slot;
            if (block.addr >= max_addr) {
                violations.push_back("I1: out-of-range addr " +
                                     std::to_string(block.addr) +
                                     " at " + at.str());
                continue;
            }
            if (block.path >= geo.numLeaves()) {
                violations.push_back(
                    "I1: invalid path " + std::to_string(block.path) +
                    " for addr " + std::to_string(block.addr) + " at " +
                    at.str());
                continue;
            }
            const unsigned level = bucketLevel(bucket);
            if (geo.bucketAt(block.path, level) != bucket)
                violations.push_back(
                    "I1: addr " + std::to_string(block.addr) +
                    " labeled path " + std::to_string(block.path) +
                    " does not pass through " + at.str());
        }
    }
}

} // namespace

std::vector<std::string>
checkRecoveryInvariants(System &system, const RecoveryOracle &oracle)
{
    PSORAM_TRACE_SCOPE("recovery", "check_invariants", 0);
    std::vector<std::string> violations;
    PsOramController &ctrl = *system.controller;
    const PsOramParams &params = system.params;
    const MemoryBackend &device = *system.device;

    if (oracle.non_monotonic)
        violations.push_back(
            "oracle: commit observer reported a non-monotonic durable "
            "version");

    // I1: structural sanity of every persistent tree. Decode is
    // stateless, so a local codec with the system's key suffices.
    const BlockCodec codec(params.key, params.cipher);
    scanTree(device, params.data_layout, codec, params.num_blocks,
             "data-tree", violations);
    if (params.design.recursive_posmap) {
        const TreeLayout pom_layout{
            TreeGeometry{params.pom_height,
                         params.data_layout.geometry.bucket_slots},
            params.pom_tree_base};
        const std::uint64_t entry_blocks =
            divCeil(params.num_blocks, kEntriesPerPosBlock);
        scanTree(device, pom_layout, codec, entry_blocks, "pom-tree",
                 violations);
    }

    // I5: no recovery path ever accepts a node whose MAC/hash fails —
    // an independent verifier over the post-recovery image must come up
    // clean (every record tag valid, recomputed Merkle root matching
    // the committed root record). A crash can tear at most what ADR
    // semantics allow, and every committed prefix carries its own root
    // record, so any IntegrityError here means recovery accepted a
    // tampered or torn node.
    if (params.integrity != IntegrityMode::Off) {
        try {
            IntegrityManager verifier(params.key, params.integrity,
                                      params.data_layout,
                                      params.integrity_root_base,
                                      params.merkle_region_base);
            verifier.recoverFromDevice(*system.device);
        } catch (const IntegrityError &err) {
            violations.push_back(std::string("I5: ") + err.what());
        }
    }

    // I2: committed positions must be valid leaves.
    const std::uint64_t leaves = params.data_layout.geometry.numLeaves();
    for (BlockAddr addr = 0; addr < params.num_blocks; ++addr) {
        const PathId path = ctrl.committedPath(addr);
        if (path >= leaves)
            violations.push_back("I2: committed path " +
                                 std::to_string(path) + " for addr " +
                                 std::to_string(addr) +
                                 " outside leaf range");
    }

    // I3: every durable block must be reachable — on its committed
    // path with a matching epoch (what recovery walks), or carried by
    // the recovered stash (shadow-region designs).
    std::uint8_t buf[kBlockDataBytes];
    for (const auto &[addr, version] : oracle.durable) {
        if (version == 0)
            continue;
        if (!ctrl.committedDataInTree(addr, buf) &&
            ctrl.stash().find(addr) == nullptr)
            violations.push_back(
                "I3: durable addr " + std::to_string(addr) +
                " (version " + std::to_string(version) +
                ") unreachable: not on its committed path, not in the "
                "recovered stash");
    }

    // I4: old-or-new, via real post-recovery reads (mutating — last).
    for (const auto &[addr, latest] : oracle.latest) {
        ctrl.read(addr, buf);
        const std::uint32_t v = payloadVersion(buf);
        const std::uint32_t durable = oracle.durableOf(addr);
        if (v < durable)
            violations.push_back(
                "I4: addr " + std::to_string(addr) + " lost data: read "
                "version " + std::to_string(v) + " < durable " +
                std::to_string(durable));
        if (v > latest)
            violations.push_back(
                "I4: addr " + std::to_string(addr) +
                " corrupt: read version " + std::to_string(v) +
                " > latest written " + std::to_string(latest));
        if (v != 0 && payloadAddr(buf) != addr)
            violations.push_back("I4: addr " + std::to_string(addr) +
                                 " torn payload (stamped addr " +
                                 std::to_string(payloadAddr(buf)) + ")");
    }

    return violations;
}

} // namespace psoram
