/**
 * @file
 * Experiment runner: drives a workload trace through core + caches +
 * ORAM controller + NVM and collects the metrics the paper's figures
 * report (normalized execution time, read/write traffic).
 */

#ifndef PSORAM_SIM_EXPERIMENT_HH
#define PSORAM_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "mem/core.hh"
#include "sim/system.hh"
#include "trace/generator.hh"

namespace psoram {

struct WorkloadResult
{
    std::string workload;
    std::string design;
    CoreRunStats core;
    TrafficCounts traffic;
    std::uint64_t oram_accesses = 0;
    std::uint64_t stash_hits = 0;
    std::uint64_t stash_peak = 0;
    double stash_mean_occupancy = 0.0;
    std::uint64_t wpq_rounds = 0;
    std::uint64_t backups = 0;

    double cyclesPerInstruction() const
    {
        return core.instructions == 0
            ? 0.0
            : static_cast<double>(core.cycles) /
                  static_cast<double>(core.instructions);
    }
};

/** Fixed per-access controller overhead outside the NVM system. */
inline constexpr CpuCycle kControllerOverheadCpuCycles = 16;

/**
 * Run @p workload on a full system built from @p config.
 *
 * @param gen trace generation parameters (instruction budget etc.)
 */
WorkloadResult runWorkload(const SystemConfig &config,
                           const WorkloadSpec &workload,
                           const GeneratorParams &gen);

/**
 * Run @p workload against a plain (non-ORAM) NVM main memory: every LLC
 * miss is one NVM transaction. Used for the §5.1 "ORAM costs 2x-24x"
 * comparison.
 */
WorkloadResult runWorkloadNoOram(const SystemConfig &config,
                                 const WorkloadSpec &workload,
                                 const GeneratorParams &gen);

/** Geometric mean of per-workload normalized values. */
double geomean(const std::vector<double> &values);

} // namespace psoram

#endif // PSORAM_SIM_EXPERIMENT_HH
