/**
 * @file
 * Load generation for the serving harness: deterministic request
 * streams with production-shaped key popularity and arrival processes.
 *
 * A RequestStream yields Request records — arrival time (open-loop), a
 * key set (1 for point requests, batch_size for recsys-style multi-key
 * lookups) and a read/write flag. Everything is derived from one seed,
 * so the same StreamConfig always produces the identical sequence of
 * arrival times and keys; multi-submitter harnesses derive per-stream
 * seeds (deriveStreamSeed) and split the offered rate, exploiting that
 * a superposition of independent Poisson processes is Poisson.
 *
 * Key distributions:
 *  - Uniform: every key equally likely.
 *  - Zipfian: rank-k popularity ∝ 1/k^s (YCSB-style rejection-free
 *    inversion over the precomputed generalized harmonic number); keys
 *    are rank-scrambled so popular keys spread over the address space
 *    (and therefore over shards) instead of clustering at address 0.
 *  - HotSet: a fraction of traffic targets a small pinned key set, the
 *    rest is uniform over the remainder.
 */

#ifndef PSORAM_SERVE_REQUEST_STREAM_HH
#define PSORAM_SERVE_REQUEST_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace psoram::serve {

enum class ArrivalMode
{
    /** Poisson arrivals at offered_rate; latency is measured from the
     *  scheduled arrival time, so queueing delay is included and the
     *  measurement is free of coordinated omission. */
    OpenLoop,
    /** Submit-on-completion: each submitter keeps a fixed number of
     *  requests outstanding; arrival times are not generated. */
    ClosedLoop,
};

enum class KeyDist
{
    Uniform,
    Zipfian,
    HotSet,
};

const char *arrivalModeName(ArrivalMode mode);
const char *keyDistName(KeyDist dist);

struct StreamConfig
{
    ArrivalMode mode = ArrivalMode::OpenLoop;
    KeyDist dist = KeyDist::Zipfian;

    /** Logical key space [0, num_keys). */
    std::uint64_t num_keys = 1 << 20;

    /** Zipfian skew exponent (s = 0.99 is the YCSB default). */
    double zipf_s = 0.99;

    /** @{ HotSet shape: hot_fraction of requests draw from hot_keys
     *  keys, the rest uniform over the remaining space. */
    double hot_fraction = 0.9;
    std::uint64_t hot_keys = 64;
    /** @} */

    /** Fraction of requests that are reads. */
    double read_fraction = 0.95;

    /** Keys per request: 1 = point lookups, > 1 = multi-key batch
     *  reads (writes stay single-key). */
    unsigned batch_size = 1;

    /** Open-loop offered rate for THIS stream, requests/sec. */
    double offered_rate = 10'000.0;

    std::uint64_t seed = 1;
};

/** One generated request. */
struct Request
{
    /** Scheduled arrival, ns from stream start (open-loop only). */
    std::uint64_t arrival_ns = 0;
    bool is_write = false;
    /** batch_size keys for batch reads, exactly 1 key otherwise. */
    std::vector<BlockAddr> keys;
};

/**
 * Zipfian(n, s) sampler: popularity of rank k (1-based) ∝ 1/k^s.
 * Inversion over the precomputed harmonic table is O(log n) per draw
 * and exact (no approximation error a goodness-of-fit test would
 * trip over). Construction is O(n) — build once per stream.
 */
class ZipfianSampler
{
  public:
    ZipfianSampler(std::uint64_t num_keys, double s);

    /** Rank in [0, n) of the next draw; rank 0 is the most popular. */
    std::uint64_t nextRank(Rng &rng) const;

    /** Expected probability of rank @p k (tests: chi-square fit). */
    double rankProbability(std::uint64_t k) const;

  private:
    /** cdf_[k] = P(rank <= k); strictly increasing, back() == 1. */
    std::vector<double> cdf_;
};

class RequestStream
{
  public:
    explicit RequestStream(StreamConfig config);

    /** Generate the next request (streams are infinite). */
    void next(Request &out);

    const StreamConfig &config() const { return config_; }

    /** Restart from the beginning (identical sequence). */
    void reset();

  private:
    BlockAddr sampleKey();

    StreamConfig config_;
    Rng rng_;
    ZipfianSampler zipf_;
    /** Multiplicative scramble applied to Zipfian ranks so hot keys
     *  interleave across shards (odd constant, mod num_keys). */
    std::uint64_t rank_scramble_;
    double clock_ns_ = 0.0;
};

/** Per-submitter seed for stream @p index of a multi-stream run. */
std::uint64_t deriveStreamSeed(std::uint64_t base_seed, unsigned index);

} // namespace psoram::serve

#endif // PSORAM_SERVE_REQUEST_STREAM_HH
