/**
 * @file
 * BatchScheduler: cross-request admission in front of ShardedOramEngine.
 *
 * The per-shard OramEngine already coalesces *back-to-back* same-block
 * requests inside one mailbox batch; this scheduler generalizes that to
 * requests that are merely *concurrent* — submitted by different
 * threads, interleaved with other keys, or spread across a multi-key
 * batch:
 *
 *  - **Read dedup.** The first read of a key becomes the leader and is
 *    submitted to the engine; reads of the same key arriving while the
 *    leader is in flight attach as waiters and never reach the engine.
 *    One physical ORAM access fans out to N completions. Under Zipfian
 *    skew this converts hot-key contention from serialized shard work
 *    into coalesced hits.
 *
 *  - **Read-after-write forwarding.** A read of a key with an
 *    in-flight write is served immediately from the pending write's
 *    payload (the value the read would observe anyway, since the
 *    engine orders same-key requests per shard). These complete inline
 *    on the *submitting* thread.
 *
 *  - **Multi-key batches.** submitBatch() admits a recsys-style
 *    embedding lookup: the keys are routed through the normal read
 *    path (so batch keys dedupe against point reads and against each
 *    other), fan out across shards, and a join delivers one completion
 *    carrying every value in key order once the last key lands.
 *
 * Obliviousness: dedup only elides *duplicate* accesses to one hidden
 * address, exactly like the engine's run coalescing — the adversary
 * observes fewer accesses, never which addresses were equal (the
 * engine's traffic remains a sequence of uniformly distributed path
 * reads). Forwarded reads generate no tree traffic at all.
 *
 * Threading: submit* may be called from any thread. Leader/write
 * completions fire on the engine's drain thread; deduped waiters fire
 * on the drain thread inside the leader's completion; forwarded reads
 * fire inline on the submitter; a batch join fires on whichever thread
 * delivers the batch's last key. Callbacks must not call back into the
 * scheduler while drain() is waiting (same rule as the engine).
 */

#ifndef PSORAM_SERVE_BATCH_SCHEDULER_HH
#define PSORAM_SERVE_BATCH_SCHEDULER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "sim/sharded_engine.hh"

namespace psoram::serve {

struct BatchSchedulerConfig
{
    /** Attach concurrent same-key reads to the in-flight leader. */
    bool dedupe_reads = true;
    /** Serve reads of a key with an in-flight write from its payload. */
    bool forward_writes = true;
};

class BatchScheduler
{
  public:
    using RequestId = std::uint64_t;
    using Config = BatchSchedulerConfig;

    /** Outcome of one scheduled key access. */
    struct Result
    {
        BlockAddr addr = kDummyBlockAddr;
        bool is_write = false;
        /** Served without its own engine submission (dedup attach or
         *  pending-write forward). */
        bool coalesced = false;
        std::array<std::uint8_t, kBlockDataBytes> data{};
    };

    /** Outcome of one multi-key batch: values in submitted key order. */
    struct BatchResult
    {
        std::vector<BlockAddr> keys;
        std::vector<std::array<std::uint8_t, kBlockDataBytes>> values;
        /** Keys served by dedup/forwarding instead of own accesses. */
        std::uint32_t coalesced_keys = 0;
    };

    using Callback = std::function<void(const Result &)>;
    using BatchCallback = std::function<void(const BatchResult &)>;

    BatchScheduler(ShardedOramEngine &engine, Config config = Config());

    BatchScheduler(const BatchScheduler &) = delete;
    BatchScheduler &operator=(const BatchScheduler &) = delete;

    /** @{ Admit one request; returns immediately (a forwarded read may
     *  invoke @p callback inline before returning). */
    void submitRead(BlockAddr addr, Callback callback);
    void submitWrite(BlockAddr addr, const std::uint8_t *data,
                     Callback callback = nullptr);
    /** @} */

    /** Admit a multi-key read batch; @p callback fires once, after the
     *  last key completes. @pre !keys.empty() */
    void submitBatch(const std::vector<BlockAddr> &keys,
                     BatchCallback callback);

    /** Block until everything admitted so far has completed (all
     *  fan-out and join callbacks included). */
    void drain();

    /** Scheduler counters (relaxed; safe to read mid-run). */
    struct Stats
    {
        Counter reads;          ///< point + batch keys admitted as reads
        Counter writes;         ///< writes admitted
        Counter batches;        ///< multi-key batches admitted
        Counter batch_keys;     ///< keys across all batches
        Counter engine_reads;   ///< reads actually submitted (leaders)
        Counter deduped_reads;  ///< reads attached to an in-flight leader
        Counter forwarded_reads; ///< reads served from a pending write
    };
    const Stats &stats() const { return stats_; }

    /** Register the scheduler counters with @p group (metrics export). */
    void registerStats(StatGroup &group) const;

    const ShardedOramEngine &engine() const { return engine_; }

  private:
    /** A parked duplicate read (or batch key) awaiting the leader. */
    struct Waiter
    {
        Callback callback;
    };

    /** In-flight leader read state, keyed by address. */
    struct InflightRead
    {
        std::vector<Waiter> waiters;
    };

    /** Latest pending write payload, keyed by address. */
    struct PendingWrite
    {
        std::array<std::uint8_t, kBlockDataBytes> data;
        /** Submission sequence: only the completion of the *latest*
         *  write erases the entry (an older completion must not drop a
         *  newer payload). */
        std::uint64_t seq = 0;
    };

    void completeLeader(BlockAddr addr,
                        const ShardedOramEngine::Completion &inner,
                        Callback leader_callback);

    ShardedOramEngine &engine_;
    Config config_;
    Stats stats_;

    std::mutex mutex_;
    std::unordered_map<BlockAddr, InflightRead> inflight_reads_;
    std::unordered_map<BlockAddr, PendingWrite> pending_writes_;
    std::uint64_t write_seq_ = 0;
};

} // namespace psoram::serve

#endif // PSORAM_SERVE_BATCH_SCHEDULER_HH
