/**
 * @file
 * ServingHarness: drive a sharded PS-ORAM stack with production-shaped
 * traffic and measure what a client would see.
 *
 * One run() executes a single *load point*: S submitter threads, each
 * with its own deterministic RequestStream (derived seed, 1/S of the
 * offered rate), pushing requests through either the BatchScheduler or
 * straight into the ShardedOramEngine (the bypass path the scheduler
 * is compared against).
 *
 * Latency semantics:
 *  - Open loop: each request has a *scheduled* arrival time; the
 *    submitter sleeps until it, then submits. Latency = completion
 *    time − scheduled arrival. When the system falls behind, the
 *    submitter does not sleep and the unsent backlog's queueing delay
 *    lands in the measurement — the coordinated-omission-free
 *    definition tail-latency SLOs need.
 *  - Closed loop: each submitter keeps `closed_loop_depth` requests
 *    outstanding (token semaphore refilled by completions); latency =
 *    completion − submit.
 *
 * A run ends when the wall-clock duration elapses (open loop stops
 * *submitting* at the deadline, then drains; the drain tail is part of
 * the measured completions but the achieved rate is computed over the
 * full time to last completion, so a backlogged system cannot inflate
 * its throughput).
 */

#ifndef PSORAM_SERVE_HARNESS_HH
#define PSORAM_SERVE_HARNESS_HH

#include <cstdint>
#include <vector>

#include "serve/batch_scheduler.hh"
#include "serve/latency.hh"
#include "serve/request_stream.hh"
#include "sim/sharded_engine.hh"

namespace psoram::serve {

struct HarnessConfig
{
    /** Stream shape; offered_rate is the TOTAL open-loop rate, split
     *  evenly across submitters. */
    StreamConfig stream;
    unsigned submitters = 2;
    /** Outstanding requests per submitter in closed loop. */
    unsigned closed_loop_depth = 8;
    /** Wall-clock budget for the submission phase, seconds. */
    double duration_s = 1.0;
    /** Hard cap on submitted requests (0 = duration only). */
    std::uint64_t max_requests = 0;
    /** Route requests through the BatchScheduler (false = bypass:
     *  straight into the engine, the comparison baseline). */
    bool use_scheduler = true;
};

/** Everything measured at one load point. */
struct LoadPointResult
{
    double offered_rate = 0.0;
    /** Completed requests / wall time to last completion. */
    double achieved_rate = 0.0;
    /** Completed keys (batch members counted) / wall time. */
    double achieved_key_rate = 0.0;
    std::uint64_t submitted_requests = 0;
    std::uint64_t completed_requests = 0;
    std::uint64_t completed_keys = 0;
    double wall_seconds = 0.0;
    LatencySnapshot latency;

    /** @{ Scheduler counters over the run (zero on the bypass path). */
    std::uint64_t deduped_reads = 0;
    std::uint64_t forwarded_reads = 0;
    std::uint64_t engine_reads = 0;
    std::uint64_t batches = 0;
    /** @} */

    /** @{ Engine deltas over the run. */
    std::uint64_t physical_accesses = 0;
    std::uint64_t engine_coalesced = 0;
    std::uint64_t stash_hits = 0;
    /** Submits that parked on a full shard mailbox (saturation). */
    std::uint64_t backpressure_waits = 0;
    /** @} */
};

class ServingHarness
{
  public:
    /** @p scheduler may be null when every run bypasses it. */
    ServingHarness(ShardedOramEngine &engine, BatchScheduler *scheduler);

    /** Execute one load point (blocking). */
    LoadPointResult run(const HarnessConfig &config);

  private:
    ShardedOramEngine &engine_;
    BatchScheduler *scheduler_;
};

} // namespace psoram::serve

#endif // PSORAM_SERVE_HARNESS_HH
