#include "serve/batch_scheduler.hh"

#include <cstring>

#include "common/log.hh"

namespace psoram::serve {

BatchScheduler::BatchScheduler(ShardedOramEngine &engine, Config config)
    : engine_(engine), config_(config)
{
}

void
BatchScheduler::submitRead(BlockAddr addr, Callback callback)
{
    ++stats_.reads;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (config_.forward_writes) {
            const auto pending = pending_writes_.find(addr);
            if (pending != pending_writes_.end()) {
                Result result;
                result.addr = addr;
                result.coalesced = true;
                result.data = pending->second.data;
                ++stats_.forwarded_reads;
                lock.unlock();
                // Inline completion on the submitting thread: the value
                // is already known, no engine round-trip exists to
                // defer to.
                if (callback)
                    callback(result);
                return;
            }
        }
        if (config_.dedupe_reads) {
            const auto inflight = inflight_reads_.find(addr);
            if (inflight != inflight_reads_.end()) {
                inflight->second.waiters.push_back(
                    Waiter{std::move(callback)});
                ++stats_.deduped_reads;
                return;
            }
            inflight_reads_.emplace(addr, InflightRead{});
        }
    }
    // Leader: the one submission that reaches the engine. Submitted
    // outside the lock — the engine applies submit-side backpressure
    // and may block; duplicate reads keep attaching meanwhile.
    ++stats_.engine_reads;
    engine_.submitRead(
        addr, [this, addr, callback = std::move(callback)](
                  const ShardedOramEngine::Completion &inner) mutable {
            completeLeader(addr, inner, std::move(callback));
        });
}

void
BatchScheduler::completeLeader(BlockAddr addr,
                               const ShardedOramEngine::Completion &inner,
                               Callback leader_callback)
{
    std::vector<Waiter> waiters;
    if (config_.dedupe_reads) {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = inflight_reads_.find(addr);
        if (it != inflight_reads_.end()) {
            waiters = std::move(it->second.waiters);
            inflight_reads_.erase(it);
        }
    }
    Result result;
    result.addr = addr;
    result.is_write = false;
    result.coalesced = false;
    result.data = inner.data;
    if (leader_callback)
        leader_callback(result);
    // Fan the one physical access out to every attached duplicate.
    result.coalesced = true;
    for (Waiter &waiter : waiters)
        if (waiter.callback)
            waiter.callback(result);
}

void
BatchScheduler::submitWrite(BlockAddr addr, const std::uint8_t *data,
                            Callback callback)
{
    ++stats_.writes;
    std::uint64_t seq;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        seq = ++write_seq_;
        PendingWrite &pending = pending_writes_[addr];
        std::memcpy(pending.data.data(), data, kBlockDataBytes);
        pending.seq = seq;
    }
    engine_.submitWrite(
        addr, data,
        [this, addr, seq, callback = std::move(callback)](
            const ShardedOramEngine::Completion &inner) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                const auto it = pending_writes_.find(addr);
                // Only the latest write retires the forwarding entry;
                // an older completion racing a newer submit must not
                // drop the newer payload.
                if (it != pending_writes_.end() &&
                    it->second.seq == seq)
                    pending_writes_.erase(it);
            }
            if (callback) {
                Result result;
                result.addr = addr;
                result.is_write = true;
                result.coalesced = inner.coalesced;
                result.data = inner.data;
                callback(result);
            }
        });
}

namespace {

/** Join state shared by a batch's per-key completions. */
struct BatchJoin
{
    BatchScheduler::BatchResult result;
    std::atomic<std::uint32_t> remaining;
    std::atomic<std::uint32_t> coalesced{0};
    BatchScheduler::BatchCallback callback;
};

} // namespace

void
BatchScheduler::submitBatch(const std::vector<BlockAddr> &keys,
                            BatchCallback callback)
{
    if (keys.empty())
        PSORAM_PANIC("submitBatch with no keys");
    ++stats_.batches;
    stats_.batch_keys += keys.size();

    auto join = std::make_shared<BatchJoin>();
    join->result.keys = keys;
    join->result.values.resize(keys.size());
    join->remaining.store(static_cast<std::uint32_t>(keys.size()),
                          std::memory_order_relaxed);
    join->callback = std::move(callback);

    for (std::size_t i = 0; i < keys.size(); ++i) {
        // Each key runs the normal read path, so batch keys dedupe
        // against point reads, other batches, and duplicates within
        // this batch. Distinct slots make the per-key value writes
        // race-free; the joiner's acq_rel decrement publishes them.
        submitRead(keys[i], [join, i](const Result &r) {
            join->result.values[i] = r.data;
            if (r.coalesced)
                join->coalesced.fetch_add(1, std::memory_order_relaxed);
            if (join->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                join->result.coalesced_keys =
                    join->coalesced.load(std::memory_order_relaxed);
                if (join->callback)
                    join->callback(join->result);
            }
        });
    }
}

void
BatchScheduler::drain()
{
    // Forwarded reads complete inline at submit; everything else is an
    // engine request whose scheduler-side fan-out (waiters, batch
    // joins) runs inside the engine callback — by the time the engine
    // is idle every scheduler callback has fired too.
    engine_.drain();
}

void
BatchScheduler::registerStats(StatGroup &group) const
{
    group.addCounter("reads", &stats_.reads,
                     "reads admitted (point + batch keys)");
    group.addCounter("writes", &stats_.writes, "writes admitted");
    group.addCounter("batches", &stats_.batches,
                     "multi-key batches admitted");
    group.addCounter("batch_keys", &stats_.batch_keys,
                     "keys across all multi-key batches");
    group.addCounter("engine_reads", &stats_.engine_reads,
                     "leader reads submitted to the engine");
    group.addCounter("deduped_reads", &stats_.deduped_reads,
                     "reads attached to an in-flight leader");
    group.addCounter("forwarded_reads", &stats_.forwarded_reads,
                     "reads served from a pending write's payload");
}

} // namespace psoram::serve
