#include "serve/request_stream.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hh"

namespace psoram::serve {

const char *
arrivalModeName(ArrivalMode mode)
{
    return mode == ArrivalMode::OpenLoop ? "open" : "closed";
}

const char *
keyDistName(KeyDist dist)
{
    switch (dist) {
    case KeyDist::Uniform:
        return "uniform";
    case KeyDist::Zipfian:
        return "zipfian";
    case KeyDist::HotSet:
        return "hotset";
    }
    return "?";
}

ZipfianSampler::ZipfianSampler(std::uint64_t num_keys, double s)
{
    if (num_keys == 0)
        PSORAM_PANIC("ZipfianSampler over an empty key space");
    cdf_.resize(num_keys);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < num_keys; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = sum;
    }
    for (double &c : cdf_)
        c /= sum;
    cdf_.back() = 1.0;
}

std::uint64_t
ZipfianSampler::nextRank(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

double
ZipfianSampler::rankProbability(std::uint64_t k) const
{
    if (k >= cdf_.size())
        return 0.0;
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

namespace {

/** Smallest multiplier >= hint that is coprime with n (so the rank ->
 *  key scramble is a bijection of [0, n)). */
std::uint64_t
coprimeScramble(std::uint64_t n, std::uint64_t hint)
{
    if (n <= 2)
        return 1;
    std::uint64_t a = (hint % n) | 1;
    while (std::gcd(a, n) != 1)
        a = (a + 2) % n | 1;
    return a;
}

} // namespace

RequestStream::RequestStream(StreamConfig config)
    : config_(config), rng_(config.seed),
      zipf_(config.dist == KeyDist::Zipfian ? config.num_keys : 1,
            config.zipf_s),
      rank_scramble_(coprimeScramble(config.num_keys,
                                     0x9e3779b97f4a7c15ULL))
{
    if (config_.num_keys == 0)
        PSORAM_PANIC("RequestStream over an empty key space");
    if (config_.batch_size == 0)
        config_.batch_size = 1;
    if (config_.mode == ArrivalMode::OpenLoop &&
        config_.offered_rate <= 0.0)
        PSORAM_PANIC("open-loop stream needs offered_rate > 0");
    config_.hot_keys = std::min(config_.hot_keys, config_.num_keys);
}

void
RequestStream::reset()
{
    rng_ = Rng(config_.seed);
    clock_ns_ = 0.0;
}

BlockAddr
RequestStream::sampleKey()
{
    switch (config_.dist) {
    case KeyDist::Uniform:
        return rng_.nextBelow(config_.num_keys);
    case KeyDist::Zipfian: {
        // Scramble the rank so popular keys spread across the address
        // space (and shards) instead of packing the lowest addresses.
        const std::uint64_t rank = zipf_.nextRank(rng_);
        return (rank * rank_scramble_) % config_.num_keys;
    }
    case KeyDist::HotSet: {
        if (config_.hot_keys > 0 && rng_.nextBool(config_.hot_fraction)) {
            const std::uint64_t rank = rng_.nextBelow(config_.hot_keys);
            return (rank * rank_scramble_) % config_.num_keys;
        }
        return rng_.nextBelow(config_.num_keys);
    }
    }
    return 0;
}

void
RequestStream::next(Request &out)
{
    if (config_.mode == ArrivalMode::OpenLoop) {
        // Exponential interarrival at offered_rate; clock_ns_ is kept
        // in double ns so sub-ns residue at high rates is not lost to
        // truncation.
        const double u = rng_.nextDouble();
        clock_ns_ +=
            -std::log(1.0 - u) * (1e9 / config_.offered_rate);
        out.arrival_ns = static_cast<std::uint64_t>(clock_ns_);
    } else {
        out.arrival_ns = 0;
    }
    out.is_write = !rng_.nextBool(config_.read_fraction);
    const unsigned keys =
        out.is_write ? 1 : config_.batch_size;
    out.keys.clear();
    for (unsigned i = 0; i < keys; ++i)
        out.keys.push_back(sampleKey());
}

std::uint64_t
deriveStreamSeed(std::uint64_t base_seed, unsigned index)
{
    // SplitMix64 finalizer over (seed, index): streams are decorrelated
    // but each is still a pure function of the base seed.
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                      (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace psoram::serve
