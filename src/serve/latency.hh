/**
 * @file
 * LatencyHistogram: HDR-style log-bucketed latency accumulator.
 *
 * Values (nanoseconds) are bucketed into octaves each split into
 * kSubBuckets linear sub-buckets, giving a constant ~1.6 % relative
 * resolution across the full range (1 ns .. ~6 days; anything beyond
 * clamps into the last bucket) in a few KiB of fixed storage — percentile queries stay accurate at the tail without
 * retaining per-sample data, which an open-loop run at tens of
 * thousands of requests/sec would otherwise accumulate without bound.
 *
 * Not thread-safe by design: the serving harness keeps one instance per
 * submitter (samples happen on the engine's completion drain thread,
 * but one histogram is only ever touched by one thread at a time there)
 * and merges read-side, the same pattern the shard stats use.
 */

#ifndef PSORAM_SERVE_LATENCY_HH
#define PSORAM_SERVE_LATENCY_HH

#include <array>
#include <cstdint>

namespace psoram::serve {

class LatencyHistogram
{
  public:
    static constexpr unsigned kOctaves = 44;
    static constexpr unsigned kSubBuckets = 64;

    LatencyHistogram() = default;

    void record(std::uint64_t ns);

    /** Fold @p other in (read-side merge across submitters). */
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t maxNs() const { return max_; }
    double meanNs() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Smallest bucket upper bound v such that at least @p fraction of
     * the recorded samples are <= v (0 when empty). The bucket width
     * bounds the error at ~1/kSubBuckets relative.
     */
    std::uint64_t percentileNs(double fraction) const;

    void reset();

  private:
    static unsigned bucketIndex(std::uint64_t ns);
    static std::uint64_t bucketUpperBound(unsigned index);

    std::array<std::uint64_t, kOctaves * kSubBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/** The percentile set every serving report carries. */
struct LatencySnapshot
{
    std::uint64_t count = 0;
    double mean_ns = 0.0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::uint64_t max_ns = 0;

    static LatencySnapshot from(const LatencyHistogram &hist);
};

} // namespace psoram::serve

#endif // PSORAM_SERVE_LATENCY_HH
