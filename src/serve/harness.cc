#include "serve/harness.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "common/log.hh"

namespace psoram::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
nsSince(Clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
}

/**
 * Per-submitter measurement state. Completions may land on the engine
 * drain thread, on the submitting thread (forwarded reads), or on
 * whichever thread joins a batch, so the histogram and counters are
 * mutex-guarded; the lock is uncontended relative to the cost of an
 * ORAM access.
 */
struct Submitter
{
    std::mutex mutex;
    std::condition_variable cv;
    LatencyHistogram latency;
    std::uint64_t completed_requests = 0;
    std::uint64_t completed_keys = 0;
    std::uint64_t submitted_requests = 0;
    /** Closed loop: tokens available to submit. */
    unsigned tokens = 0;

    void
    complete(std::uint64_t latency_ns, std::uint64_t keys, bool refill)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            latency.record(latency_ns);
            ++completed_requests;
            completed_keys += keys;
            if (refill)
                ++tokens;
        }
        if (refill)
            cv.notify_one();
    }
};

/** Join for a bypass-path multi-key batch (the scheduler path uses
 *  BatchScheduler's own join). */
struct BypassJoin
{
    std::atomic<std::uint32_t> remaining;
    std::function<void()> done;
};

/** Deterministic write payload for @p key (the engine copies it). */
std::array<std::uint8_t, kBlockDataBytes>
payloadFor(BlockAddr key)
{
    std::array<std::uint8_t, kBlockDataBytes> payload{};
    std::memcpy(payload.data(), &key, sizeof(key));
    return payload;
}

} // namespace

ServingHarness::ServingHarness(ShardedOramEngine &engine,
                               BatchScheduler *scheduler)
    : engine_(engine), scheduler_(scheduler)
{
}

LoadPointResult
ServingHarness::run(const HarnessConfig &config)
{
    if (config.use_scheduler && scheduler_ == nullptr)
        PSORAM_PANIC("harness has no scheduler but use_scheduler set");
    const unsigned num_submitters = std::max(1u, config.submitters);

    const ShardedOramEngine::StatsSnapshot engine_before =
        engine_.stats();
    const BatchScheduler::Stats *sched_stats =
        scheduler_ ? &scheduler_->stats() : nullptr;
    const std::uint64_t sched_before[4] = {
        sched_stats ? sched_stats->deduped_reads.value() : 0,
        sched_stats ? sched_stats->forwarded_reads.value() : 0,
        sched_stats ? sched_stats->engine_reads.value() : 0,
        sched_stats ? sched_stats->batches.value() : 0,
    };

    std::vector<std::unique_ptr<Submitter>> submitters;
    for (unsigned s = 0; s < num_submitters; ++s)
        submitters.push_back(std::make_unique<Submitter>());

    std::atomic<std::int64_t> budget{
        config.max_requests
            ? static_cast<std::int64_t>(config.max_requests)
            : INT64_MAX};

    const auto t0 = Clock::now();
    const std::uint64_t duration_ns = static_cast<std::uint64_t>(
        config.duration_s * 1e9);

    const auto submitOne = [&](Submitter &sub, const Request &request,
                               std::uint64_t reference_ns,
                               bool refill) {
        const std::uint64_t keys = request.keys.size();
        const auto onDone = [&sub, reference_ns, keys, refill, t0] {
            const std::uint64_t now = nsSince(t0);
            sub.complete(now > reference_ns ? now - reference_ns : 0,
                         keys, refill);
        };
        if (config.use_scheduler) {
            if (request.is_write)
                scheduler_->submitWrite(
                    request.keys[0], payloadFor(request.keys[0]).data(),
                    [onDone](const BatchScheduler::Result &) {
                        onDone();
                    });
            else if (keys == 1)
                scheduler_->submitRead(
                    request.keys[0],
                    [onDone](const BatchScheduler::Result &) {
                        onDone();
                    });
            else
                scheduler_->submitBatch(
                    request.keys,
                    [onDone](const BatchScheduler::BatchResult &) {
                        onDone();
                    });
        } else {
            if (request.is_write)
                engine_.submitWrite(
                    request.keys[0], payloadFor(request.keys[0]).data(),
                    [onDone](const ShardedOramEngine::Completion &) {
                        onDone();
                    });
            else if (keys == 1)
                engine_.submitRead(
                    request.keys[0],
                    [onDone](const ShardedOramEngine::Completion &) {
                        onDone();
                    });
            else {
                auto join = std::make_shared<BypassJoin>();
                join->remaining.store(
                    static_cast<std::uint32_t>(keys),
                    std::memory_order_relaxed);
                join->done = onDone;
                for (const BlockAddr key : request.keys)
                    engine_.submitRead(
                        key,
                        [join](const ShardedOramEngine::Completion &) {
                            if (join->remaining.fetch_sub(
                                    1, std::memory_order_acq_rel) == 1)
                                join->done();
                        });
            }
        }
    };

    std::vector<std::thread> threads;
    for (unsigned s = 0; s < num_submitters; ++s) {
        threads.emplace_back([&, s] {
            Submitter &sub = *submitters[s];
            StreamConfig stream_config = config.stream;
            stream_config.seed =
                deriveStreamSeed(config.stream.seed, s);
            stream_config.offered_rate =
                config.stream.offered_rate / num_submitters;
            RequestStream stream(stream_config);
            Request request;

            if (config.stream.mode == ArrivalMode::OpenLoop) {
                for (;;) {
                    stream.next(request);
                    // The schedule, not the wall clock, ends the run:
                    // a backlogged system still submits exactly the
                    // offered request count for the window.
                    if (request.arrival_ns >= duration_ns)
                        break;
                    if (budget.fetch_sub(1,
                                         std::memory_order_relaxed) <= 0)
                        break;
                    const std::uint64_t now = nsSince(t0);
                    if (request.arrival_ns > now)
                        std::this_thread::sleep_for(
                            std::chrono::nanoseconds(
                                request.arrival_ns - now));
                    ++sub.submitted_requests;
                    submitOne(sub, request, request.arrival_ns, false);
                }
            } else {
                {
                    std::lock_guard<std::mutex> lock(sub.mutex);
                    sub.tokens = std::max(1u, config.closed_loop_depth);
                }
                for (;;) {
                    if (nsSince(t0) >= duration_ns)
                        break;
                    if (budget.fetch_sub(1,
                                         std::memory_order_relaxed) <= 0)
                        break;
                    {
                        std::unique_lock<std::mutex> lock(sub.mutex);
                        sub.cv.wait(lock, [&] { return sub.tokens > 0; });
                        --sub.tokens;
                    }
                    stream.next(request);
                    ++sub.submitted_requests;
                    submitOne(sub, request, nsSince(t0), true);
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // Everything submitted; wait out the backlog. The drain tail is
    // charged to wall_seconds, so falling behind shows up as reduced
    // achieved rate (and as queueing delay in the open-loop latencies).
    if (scheduler_)
        scheduler_->drain();
    else
        engine_.drain();
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    LoadPointResult result;
    result.offered_rate = config.stream.mode == ArrivalMode::OpenLoop
        ? config.stream.offered_rate
        : 0.0;
    result.wall_seconds = wall_seconds;
    LatencyHistogram merged;
    for (const auto &sub : submitters) {
        std::lock_guard<std::mutex> lock(sub->mutex);
        merged.merge(sub->latency);
        result.submitted_requests += sub->submitted_requests;
        result.completed_requests += sub->completed_requests;
        result.completed_keys += sub->completed_keys;
    }
    result.latency = LatencySnapshot::from(merged);
    if (wall_seconds > 0.0) {
        result.achieved_rate =
            static_cast<double>(result.completed_requests) /
            wall_seconds;
        result.achieved_key_rate =
            static_cast<double>(result.completed_keys) / wall_seconds;
    }

    if (sched_stats) {
        result.deduped_reads =
            sched_stats->deduped_reads.value() - sched_before[0];
        result.forwarded_reads =
            sched_stats->forwarded_reads.value() - sched_before[1];
        result.engine_reads =
            sched_stats->engine_reads.value() - sched_before[2];
        result.batches = sched_stats->batches.value() - sched_before[3];
    }
    const ShardedOramEngine::StatsSnapshot engine_after =
        engine_.stats();
    result.physical_accesses = engine_after.physical_accesses -
                               engine_before.physical_accesses;
    result.engine_coalesced =
        engine_after.coalesced - engine_before.coalesced;
    result.stash_hits =
        engine_after.stash_hits - engine_before.stash_hits;
    result.backpressure_waits = engine_after.backpressure_waits -
                                engine_before.backpressure_waits;
    return result;
}

} // namespace psoram::serve
