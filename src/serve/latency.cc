#include "serve/latency.hh"

#include <algorithm>
#include <bit>

namespace psoram::serve {

unsigned
LatencyHistogram::bucketIndex(std::uint64_t ns)
{
    // Values below kSubBuckets map linearly (octave 0 shares the
    // sub-bucket array); above that, the octave is the position of the
    // leading bit relative to the sub-bucket resolution and the
    // sub-bucket the next log2(kSubBuckets) bits.
    if (ns < kSubBuckets)
        return static_cast<unsigned>(ns);
    const unsigned msb = 63 - std::countl_zero(ns);
    const unsigned octave = msb - 5; // log2(kSubBuckets) == 6
    const unsigned sub =
        static_cast<unsigned>((ns >> (msb - 6)) & (kSubBuckets - 1));
    const unsigned index = octave * kSubBuckets + sub;
    return std::min(index,
                    static_cast<unsigned>(kOctaves * kSubBuckets - 1));
}

std::uint64_t
LatencyHistogram::bucketUpperBound(unsigned index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned octave = index / kSubBuckets;
    const unsigned sub = index % kSubBuckets;
    // Inverse of bucketIndex: reconstruct the highest value mapping to
    // (octave, sub) — the next bucket's lower bound minus one.
    const unsigned msb = octave + 5;
    const std::uint64_t base = (1ULL << msb) |
        (static_cast<std::uint64_t>(sub) << (msb - 6));
    return base + ((1ULL << (msb - 6)) - 1);
}

void
LatencyHistogram::record(std::uint64_t ns)
{
    ++buckets_[bucketIndex(ns)];
    ++count_;
    sum_ += ns;
    max_ = std::max(max_, ns);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
}

std::uint64_t
LatencyHistogram::percentileNs(double fraction) const
{
    if (count_ == 0)
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const double target = fraction * static_cast<double>(count_);
    std::uint64_t running = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (static_cast<double>(running) >= target && running > 0)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

void
LatencyHistogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    max_ = 0;
}

LatencySnapshot
LatencySnapshot::from(const LatencyHistogram &hist)
{
    LatencySnapshot snap;
    snap.count = hist.count();
    snap.mean_ns = hist.meanNs();
    snap.p50_ns = hist.percentileNs(0.50);
    snap.p90_ns = hist.percentileNs(0.90);
    snap.p99_ns = hist.percentileNs(0.99);
    snap.p999_ns = hist.percentileNs(0.999);
    snap.max_ns = hist.maxNs();
    return snap;
}

} // namespace psoram::serve
