/**
 * @file
 * OramEngine tests: async submit/poll semantics, completion callbacks
 * and latency tracking, and — the headline — request coalescing: a run
 * of back-to-back accesses to one logical block costs exactly the tree
 * traffic of a single access.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/engine.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

SystemConfig
engineConfig()
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = 6;
    config.num_blocks = 120;
    config.stash_capacity = 64;
    config.seed = 17;
    return config;
}

std::array<std::uint8_t, kBlockDataBytes>
pattern(std::uint8_t tag)
{
    std::array<std::uint8_t, kBlockDataBytes> data{};
    data.fill(tag);
    return data;
}

TEST(OramEngine, SubmitQueuesAndPollCompletes)
{
    System system = buildSystem(engineConfig());
    OramEngine engine(*system.controller);

    const auto data = pattern(0x42);
    int callbacks = 0;
    const auto id_w = engine.submitWrite(
        7, data.data(), [&](const OramEngine::Completion &c) {
            ++callbacks;
            EXPECT_EQ(c.addr, 7u);
            EXPECT_TRUE(c.is_write);
        });
    const auto id_r = engine.submitRead(
        9, [&](const OramEngine::Completion &c) {
            ++callbacks;
            EXPECT_EQ(c.addr, 9u);
            EXPECT_FALSE(c.is_write);
        });
    EXPECT_NE(id_w, id_r);
    EXPECT_EQ(engine.pending(), 2u);
    EXPECT_EQ(callbacks, 0); // nothing runs before poll()

    EXPECT_EQ(engine.drain(), 2u);
    EXPECT_EQ(engine.pending(), 0u);
    EXPECT_EQ(callbacks, 2);

    const auto completions = engine.takeCompletions();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0].id, id_w);
    EXPECT_GT(completions[0].latency_cycles, 0u);
    EXPECT_EQ(engine.stats().submitted.value(), 2u);
    EXPECT_EQ(engine.stats().completed.value(), 2u);
    EXPECT_EQ(engine.stats().physical_accesses.value(), 2u);
}

TEST(OramEngine, ReadObservesEarlierQueuedWrite)
{
    System system = buildSystem(engineConfig());
    OramEngine engine(*system.controller);

    const auto data = pattern(0x77);
    engine.submitWrite(3, data.data());
    engine.submitRead(3);
    engine.drain();

    const auto completions = engine.takeCompletions();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[1].data, data);
    EXPECT_TRUE(completions[1].coalesced);
}

TEST(OramEngine, CoalescedRunCostsOnePhysicalAccess)
{
    System system = buildSystem(engineConfig());
    OramEngine engine(*system.controller);

    constexpr int kDuplicates = 5;
    for (int i = 0; i < kDuplicates; ++i)
        engine.submitRead(11);
    EXPECT_EQ(engine.drain(), static_cast<std::size_t>(kDuplicates));

    // One controller access served the whole run.
    EXPECT_EQ(system.controller->accessCount(), 1u);
    EXPECT_EQ(engine.stats().physical_accesses.value(), 1u);
    EXPECT_EQ(engine.stats().coalesced.value(),
              static_cast<std::uint64_t>(kDuplicates - 1));

    // Tree traffic is *identical* to a single access on a twin system.
    System twin = buildSystem(engineConfig());
    std::uint8_t buf[kBlockDataBytes];
    twin.controller->read(11, buf);
    EXPECT_EQ(system.device->totalReads(), twin.device->totalReads());
    EXPECT_EQ(system.device->totalWrites(), twin.device->totalWrites());
}

TEST(OramEngine, CoalescingOffIssuesEveryAccess)
{
    System system = buildSystem(engineConfig());
    EngineConfig config;
    config.coalesce = false;
    OramEngine engine(*system.controller, config);

    for (int i = 0; i < 4; ++i)
        engine.submitRead(11);
    engine.drain();

    // Every request reaches the controller: safe-placement eviction
    // returns the block to the tree each access, so each read walks a
    // full path again.
    EXPECT_EQ(system.controller->accessCount(), 4u);
    EXPECT_EQ(engine.stats().physical_accesses.value(), 4u);
    EXPECT_EQ(engine.stats().coalesced.value(), 0u);
}

TEST(OramEngine, CoalescedTrailingWriteLandsInOram)
{
    System system = buildSystem(engineConfig());
    {
        OramEngine engine(*system.controller);
        const auto data = pattern(0x99);
        engine.submitRead(21);
        engine.submitWrite(21, data.data());
        engine.drain();
        // Read-then-write run: the opening read plus one folded write.
        EXPECT_LE(engine.stats().physical_accesses.value(), 2u);
        EXPECT_GE(engine.stats().physical_accesses.value(), 1u);
    }
    // The folded write must be visible to a plain controller read.
    std::uint8_t buf[kBlockDataBytes] = {};
    system.controller->read(21, buf);
    EXPECT_EQ(buf[0], 0x99);
    EXPECT_EQ(buf[kBlockDataBytes - 1], 0x99);
}

TEST(OramEngine, DistinctAddressesDoNotCoalesce)
{
    System system = buildSystem(engineConfig());
    OramEngine engine(*system.controller);

    engine.submitRead(1);
    engine.submitRead(2);
    engine.submitRead(1); // not adjacent to the first: no merge
    engine.drain();

    EXPECT_EQ(engine.stats().coalesced.value(), 0u);
    EXPECT_EQ(system.controller->accessCount(), 3u);
}

} // namespace
} // namespace psoram
