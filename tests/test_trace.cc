/**
 * @file
 * Workload/trace generator tests, including the Table 4 MPKI
 * calibration property: running each synthetic workload through the
 * Table 3a cache hierarchy must reproduce its published MPKI.
 */

#include <gtest/gtest.h>

#include "mem/core.hh"
#include "trace/generator.hh"
#include "trace/workloads.hh"

namespace psoram {
namespace {

TEST(Workloads, RosterMatchesTable4)
{
    const auto &workloads = spec2006Workloads();
    EXPECT_EQ(workloads.size(), 14u);

    const auto sjeng = findWorkload("458.sjeng");
    ASSERT_TRUE(sjeng.has_value());
    EXPECT_NEAR(sjeng->mpki, 110.99, 1e-9);

    const auto gcc = findWorkload("403.gcc");
    ASSERT_TRUE(gcc.has_value());
    EXPECT_NEAR(gcc->mpki, 1.19, 1e-9);

    EXPECT_FALSE(findWorkload("999.nonexistent").has_value());
}

TEST(SyntheticTrace, DeterministicForSameSeed)
{
    const WorkloadSpec spec = *findWorkload("429.mcf");
    GeneratorParams params;
    params.instructions = 50000;
    SyntheticTrace a(spec, params), b(spec, params);
    TraceRecord ra{}, rb{};
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.gap, rb.gap);
        EXPECT_EQ(ra.line, rb.line);
        EXPECT_EQ(ra.is_write, rb.is_write);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST(SyntheticTrace, ResetReplaysIdentically)
{
    const WorkloadSpec spec = *findWorkload("470.lbm");
    GeneratorParams params;
    params.instructions = 20000;
    SyntheticTrace trace(spec, params);
    std::vector<TraceRecord> first;
    TraceRecord r{};
    while (trace.next(r))
        first.push_back(r);
    trace.reset();
    for (const TraceRecord &expected : first) {
        ASSERT_TRUE(trace.next(r));
        EXPECT_EQ(r.line, expected.line);
    }
}

TEST(SyntheticTrace, EmitsRequestedInstructionCount)
{
    const WorkloadSpec spec = *findWorkload("444.namd");
    GeneratorParams params;
    params.instructions = 123456;
    SyntheticTrace trace(spec, params);
    TraceRecord r{};
    std::uint64_t instructions = 0;
    while (trace.next(r))
        instructions += r.gap;
    EXPECT_EQ(instructions, 123456u);
}

TEST(SyntheticTrace, WriteFractionApproximatelyMet)
{
    const WorkloadSpec spec = *findWorkload("462.libquantum");
    GeneratorParams params;
    params.instructions = 500000;
    SyntheticTrace trace(spec, params);
    TraceRecord r{};
    std::uint64_t writes = 0, total = 0;
    while (trace.next(r)) {
        ++total;
        writes += r.is_write;
    }
    EXPECT_NEAR(static_cast<double>(writes) / total,
                spec.write_fraction, 0.02);
}

TEST(SyntheticTrace, AddressesStayInConfiguredSpace)
{
    const WorkloadSpec spec = *findWorkload("401.bzip2");
    GeneratorParams params;
    params.instructions = 100000;
    params.address_space_lines = 1 << 22;
    SyntheticTrace trace(spec, params);
    TraceRecord r{};
    while (trace.next(r))
        EXPECT_LT(r.line, params.address_space_lines);
}

/** Table 4 calibration property, parameterized over all 14 workloads. */
class MpkiCalibration : public ::testing::TestWithParam<WorkloadSpec>
{
};

TEST_P(MpkiCalibration, MeasuredMpkiTracksTable4)
{
    const WorkloadSpec spec = GetParam();
    GeneratorParams params;
    params.instructions = 2'000'000;
    SyntheticTrace trace(spec, params);

    CacheHierarchy hierarchy;
    InOrderCore core(hierarchy);
    const MemRequestHandler memory = [](const MemRequest &) -> CpuCycle {
        return 0;
    };
    const CoreRunStats stats = core.run(trace, memory);

    // Within 15 % + 1 MPKI of the published value: the generator's miss
    // stream is guaranteed-miss, the slack covers hot-set cold misses
    // and L2 dirty-writeback classification.
    EXPECT_NEAR(stats.mpki(), spec.mpki,
                0.15 * spec.mpki + 1.0)
        << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, MpkiCalibration,
    ::testing::ValuesIn(spec2006Workloads()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (c == '.' || c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace psoram
