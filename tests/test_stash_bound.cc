/**
 * @file
 * Statistical stash-occupancy test (Stefanov et al., "Path ORAM",
 * CCS'13, Theorem 1).
 *
 * For Z = 4 the stash-overflow tail is bounded by
 *
 *     P[stash > R] <= 14 * (0.6002)^R
 *
 * per access. Over a 100k-access random workload the union bound puts
 * P[max stash > 45] below 2e-4, so a max-occupancy excursion past that
 * threshold indicates an eviction bug, not bad luck. On failure the
 * whole post-eviction occupancy distribution is printed so the shape
 * of the regression is visible, not just the max.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "common/random.hh"
#include "nvm/device.hh"
#include "oram/controller.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

constexpr std::size_t kAccesses = 100000;
constexpr std::uint64_t kBlocks = 512; // 50 % of a height-8, Z=4 tree
constexpr unsigned kHeight = 8;

/** Union bound over kAccesses of 14 * 0.6002^R, R = 45. */
constexpr std::size_t kStashBound = 45;

/** Occupancy histogram of post-eviction stash residue. */
std::string
describeDistribution(const std::map<std::size_t, std::uint64_t> &hist)
{
    std::ostringstream out;
    out << "post-eviction stash occupancy distribution:\n";
    for (const auto &[size, count] : hist)
        out << "  size " << size << ": " << count << " accesses\n";
    return out.str();
}

TEST(StashBound, PathOramStaysWithinStefanovTail)
{
    PathOramParams params;
    params.layout.geometry = TreeGeometry{kHeight, 4};
    params.num_blocks = kBlocks;
    // Generous physical capacity so the test observes the natural
    // excursion rather than a forced-merge clamp.
    params.stash_capacity = 200;
    params.cipher = CipherKind::FastStream;
    params.seed = 404;
    NvmDevice device(pcmTimings(), 1, 8, 256ULL << 20);
    PathOramController oram(params, device);

    Rng rng(808);
    std::uint8_t buf[kBlockDataBytes]{};
    std::map<std::size_t, std::uint64_t> hist;
    std::size_t max_seen = 0;
    for (std::size_t op = 0; op < kAccesses; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        if (rng.nextBool(0.5))
            oram.write(addr, buf);
        else
            oram.read(addr, buf);
        const std::size_t size = oram.stash().liveSize();
        ++hist[size];
        max_seen = std::max(max_seen, size);
    }
    EXPECT_LE(max_seen, kStashBound) << describeDistribution(hist);
    // Sanity on the other side: a healthy eviction keeps the stash
    // nearly empty most of the time.
    EXPECT_GE(hist.count(0) ? hist[0] : 0, kAccesses / 2)
        << describeDistribution(hist);
}

TEST(StashBound, PsOramSafePlacementStaysWithinStefanovTail)
{
    // Safe placement (the §4.2.3 crash-consistent evictor) restricts
    // where blocks may land; it must not degrade the stash tail beyond
    // the classic bound.
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = kHeight;
    config.bucket_slots = 4;
    config.num_blocks = kBlocks;
    config.stash_capacity = 200;
    config.wpq_entries = 96;
    config.cipher = CipherKind::FastStream;
    config.seed = 404;
    System system = buildSystem(config);

    Rng rng(808);
    std::uint8_t buf[kBlockDataBytes]{};
    std::map<std::size_t, std::uint64_t> hist;
    std::size_t max_seen = 0;
    for (std::size_t op = 0; op < kAccesses; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        if (rng.nextBool(0.5))
            system.controller->write(addr, buf);
        else
            system.controller->read(addr, buf);
        const std::size_t size = system.controller->stash().liveSize();
        ++hist[size];
        max_seen = std::max(max_seen, size);
    }
    EXPECT_LE(max_seen, kStashBound) << describeDistribution(hist);
    EXPECT_GE(hist.count(0) ? hist[0] : 0, kAccesses / 4)
        << describeDistribution(hist);
}

} // namespace
} // namespace psoram
