/**
 * @file
 * Tree-traffic equivalence: the hot-path optimizations (indexed stash,
 * single-pass evictor, batched AES-NI CTR, preallocated access
 * buffers) must not change a single byte of what the ORAM controller
 * exchanges with the NVM — the obliviousness and crash-consistency
 * arguments are made about the memory-bus sequence, so lookup-cost
 * changes must leave it bit-identical.
 *
 * Every functional device operation (reads: op/addr/len; writes:
 * op/addr/len/payload) is folded into one FNV-1a digest over a
 * fixed-seed access mix. The golden digests below were captured from
 * the pre-optimization implementation (PR 1 tree, commit 8d9f9a8) and
 * pin the exact bucket write sequence including eviction placement
 * tie-breaks and the CTR keystream.
 *
 * Run with PSORAM_PRINT_TRAFFIC=1 to print digests (for re-capturing
 * after an *intentional* protocol change — never after a perf change).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "fixture_cache.hh"
#include "nvm/device.hh"
#include "nvm/timing.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

/** Forwards to an inner backend, digesting the functional traffic. */
class HashingBackend final : public MemoryBackend
{
  public:
    explicit HashingBackend(MemoryBackend &inner) : inner_(inner) {}

    void
    readBytes(Addr addr, std::uint8_t *out,
              std::size_t len) const override
    {
        inner_.readBytes(addr, out, len);
        mixOp('R', addr, len);
    }

    void
    writeBytes(Addr addr, const std::uint8_t *in,
               std::size_t len) override
    {
        mixOp('W', addr, len);
        for (std::size_t i = 0; i < len; ++i)
            mixByte(in[i]);
        inner_.writeBytes(addr, in, len);
    }

    Cycle
    access(Addr addr, std::size_t len, bool is_write,
           Cycle earliest) override
    {
        return inner_.access(addr, len, is_write, earliest);
    }

    Cycle
    accessOne(Addr addr, bool is_write, Cycle earliest) override
    {
        return inner_.accessOne(addr, is_write, earliest);
    }

    std::uint64_t capacity() const override { return inner_.capacity(); }
    std::uint64_t totalReads() const override
    {
        return inner_.totalReads();
    }
    std::uint64_t totalWrites() const override
    {
        return inner_.totalWrites();
    }
    std::uint64_t distinctLinesWritten() const override
    {
        return inner_.distinctLinesWritten();
    }
    std::uint64_t maxLineWrites() const override
    {
        return inner_.maxLineWrites();
    }
    double meanLineWrites() const override
    {
        return inner_.meanLineWrites();
    }
    void resetStats() override { inner_.resetStats(); }
    MemoryImage image() const override { return inner_.image(); }
    void
    restoreImage(const MemoryImage &img) override
    {
        inner_.restoreImage(img);
    }

    std::uint64_t digest() const { return hash_; }
    std::uint64_t operations() const { return ops_; }

  private:
    void
    mixByte(std::uint8_t b) const
    {
        hash_ = (hash_ ^ b) * 0x100000001b3ULL; // FNV-1a 64
    }

    void
    mixOp(std::uint8_t op, Addr addr, std::size_t len) const
    {
        ++ops_;
        mixByte(op);
        for (int shift = 0; shift < 64; shift += 8)
            mixByte(static_cast<std::uint8_t>(addr >> shift));
        for (int shift = 0; shift < 32; shift += 8)
            mixByte(static_cast<std::uint8_t>(len >> shift));
    }

    MemoryBackend &inner_;
    mutable std::uint64_t hash_ = 0xcbf29ce484222325ULL;
    mutable std::uint64_t ops_ = 0;
};

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
runTrafficDigestUncached(DesignKind design, CipherKind cipher,
                         std::uint64_t accesses)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 10;
    config.cipher = cipher;
    config.seed = 7;
    const PsOramParams params = systemParams(config);

    // Capacity layout mirrors buildSystem (scratch region is last).
    const Addr last = params.naive_scratch_base +
                      params.data_layout.geometry.blocksPerPath() *
                          kBlockDataBytes;
    const std::uint64_t capacity =
        ((last + 4095) & ~Addr{4095}) + (1ULL << 20);

    NvmDevice device(timingsFor(config.main_tech), config.channels,
                     config.banks_per_channel, capacity);
    HashingBackend hashed(device);
    PsOramController controller(params, hashed);

    std::uint64_t rng = 0x70736f72616dULL ^
                        (static_cast<std::uint64_t>(design) << 56);
    std::array<std::uint8_t, kBlockDataBytes> buf{};
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const std::uint64_t draw = splitmix64(rng);
        const BlockAddr addr = draw % params.num_blocks;
        if (draw & (1ULL << 40)) {
            for (std::size_t b = 0; b < buf.size(); ++b)
                buf[b] = static_cast<std::uint8_t>(draw >> (b % 8));
            controller.write(addr, buf.data());
        } else {
            controller.read(addr, buf.data());
        }
    }
    return hashed.digest();
}

/**
 * The digest runs are the most expensive fixtures in the suite and
 * several tests share them; ctest runs each test in its own process,
 * so the sharing goes through the file-backed fixture cache (keyed by
 * the test binary build — a rebuild always recomputes).
 */
std::uint64_t
runTrafficDigest(DesignKind design, CipherKind cipher,
                 std::uint64_t accesses)
{
    std::ostringstream key;
    key << "traffic_" << static_cast<int>(design) << "_"
        << (cipher == CipherKind::Aes128Ctr ? "aes" : "fast") << "_"
        << accesses;
    return testing::cachedU64(key.str(), [&]() {
        return runTrafficDigestUncached(design, cipher, accesses);
    });
}

void
expectDigest(DesignKind design, CipherKind cipher,
             std::uint64_t accesses, std::uint64_t golden)
{
    const std::uint64_t digest =
        runTrafficDigest(design, cipher, accesses);
    if (std::getenv("PSORAM_PRINT_TRAFFIC") != nullptr) {
        std::cout << "TRAFFIC_DIGEST design=" << static_cast<int>(design)
                  << " cipher=" << (cipher == CipherKind::Aes128Ctr
                                        ? "aes" : "fast")
                  << " accesses=" << accesses << " digest=0x" << std::hex
                  << digest << std::dec << "\n";
        return;
    }
    EXPECT_EQ(digest, golden);
}

// 10k-access run of the flagship design, with the real AES-CTR codec:
// pins safe placement, the backup protocol, WPQ round splitting, the
// persistent-PosMap metadata writes AND the exact keystream bytes.
TEST(TrafficEquivalence, PsOramAesCtr10k)
{
    expectDigest(DesignKind::PsOram, CipherKind::Aes128Ctr, 10'000,
                 0x9bd8cfa78442b22eULL);
}

// Classic greedy eviction (non-persistent baseline) — pins the
// deepest-eligible candidate selection including its tie-breaks.
TEST(TrafficEquivalence, BaselineGreedy6k)
{
    expectDigest(DesignKind::Baseline, CipherKind::FastStream, 6'000,
                 0xacd7960772d6fe8aULL);
}

// Naive-PS-ORAM: one metadata write per path slot (NaiveAll mode).
TEST(TrafficEquivalence, NaivePsOram4k)
{
    expectDigest(DesignKind::NaivePsOram, CipherKind::FastStream, 4'000,
                 0xf133d179bdf79819ULL);
}

// Recursive PS design: PoM traffic, shadow-stash snapshots and the
// single atomic bracket.
TEST(TrafficEquivalence, RcrPsOram2k)
{
    expectDigest(DesignKind::RcrPsOram, CipherKind::FastStream, 2'000,
                 0x3ba24a9fe549f905ULL);
}

// FullNVM: classic greedy plus the on-chip stash read phase.
TEST(TrafficEquivalence, FullNvm4k)
{
    expectDigest(DesignKind::FullNvm, CipherKind::FastStream, 4'000,
                 0x4c73000753776c8dULL);
}

/**
 * Drive the same access mix through the worker-pool sharded engine
 * instead of direct controller calls. Coalescing is off so every
 * request issues its own controller access, exactly like the direct
 * loop; per-shard FIFO then makes each shard's device traffic
 * deterministic.
 */
std::vector<std::uint64_t>
runShardedTrafficDigests(DesignKind design, CipherKind cipher,
                         unsigned num_shards, std::uint64_t accesses)
{
    ShardedSystemConfig sharded;
    sharded.base.design = design;
    sharded.base.tree_height = 10;
    sharded.base.cipher = cipher;
    sharded.base.seed = 7;
    sharded.sharding.num_shards = num_shards;

    ShardRouter router(sharded.sharding,
                       systemParams(sharded.base).num_blocks);

    // Mirror buildShardedSystem, but wrap every shard device in a
    // HashingBackend so each shard's functional traffic is digested.
    std::vector<std::unique_ptr<NvmDevice>> devices;
    std::vector<std::unique_ptr<HashingBackend>> hashed;
    std::vector<std::unique_ptr<PsOramController>> controllers;
    std::vector<PsOramController *> raw;
    for (unsigned k = 0; k < num_shards; ++k) {
        const SystemConfig sc = shardSystemConfig(sharded, router, k);
        const PsOramParams params = systemParams(sc);
        const Addr last = params.naive_scratch_base +
                          params.data_layout.geometry.blocksPerPath() *
                              kBlockDataBytes;
        const std::uint64_t capacity =
            ((last + 4095) & ~Addr{4095}) + (1ULL << 20);
        devices.push_back(std::make_unique<NvmDevice>(
            timingsFor(sc.main_tech), sc.channels, sc.banks_per_channel,
            capacity));
        hashed.push_back(std::make_unique<HashingBackend>(*devices.back()));
        controllers.push_back(
            std::make_unique<PsOramController>(params, *hashed.back()));
        raw.push_back(controllers.back().get());
    }

    {
        ShardedEngineConfig config;
        config.coalesce = false;
        config.record_completions = false;
        ShardedOramEngine engine(router, raw, config);

        const std::uint64_t total = router.totalBlocks();
        std::uint64_t rng = 0x70736f72616dULL ^
                            (static_cast<std::uint64_t>(design) << 56);
        std::array<std::uint8_t, kBlockDataBytes> buf{};
        for (std::uint64_t i = 0; i < accesses; ++i) {
            const std::uint64_t draw = splitmix64(rng);
            const BlockAddr addr = draw % total;
            if (draw & (1ULL << 40)) {
                for (std::size_t b = 0; b < buf.size(); ++b)
                    buf[b] = static_cast<std::uint8_t>(draw >> (b % 8));
                engine.submitWrite(addr, buf.data());
            } else {
                engine.submitRead(addr);
            }
        }
        engine.drain();
    } // joins the worker pool before the digests are read

    std::vector<std::uint64_t> digests;
    for (unsigned k = 0; k < num_shards; ++k)
        digests.push_back(hashed[k]->digest());
    return digests;
}

// The single-shard fast path must be byte-identical to the unsharded
// stack: same golden digest as PsOramAesCtr10k, produced through the
// mailbox -> worker -> per-shard engine pipeline.
TEST(TrafficEquivalence, ShardedSingleShardByteIdentical)
{
    const std::vector<std::uint64_t> digests = runShardedTrafficDigests(
        DesignKind::PsOram, CipherKind::Aes128Ctr, 1, 10'000);
    ASSERT_EQ(digests.size(), 1u);
    EXPECT_EQ(digests[0], 0x9bd8cfa78442b22eULL);
    // And cross-check against a fresh direct-controller run.
    EXPECT_EQ(digests[0],
              runTrafficDigest(DesignKind::PsOram, CipherKind::Aes128Ctr,
                               10'000));
}

// With 4 shards the *global* interleaving is scheduler-dependent, but
// each shard's own device traffic must be a deterministic function of
// the config — two runs must produce identical per-shard digests.
TEST(TrafficEquivalence, ShardedPerShardTrafficIsDeterministic)
{
    const auto first = runShardedTrafficDigests(
        DesignKind::PsOram, CipherKind::FastStream, 4, 4'000);
    const auto second = runShardedTrafficDigests(
        DesignKind::PsOram, CipherKind::FastStream, 4, 4'000);
    ASSERT_EQ(first.size(), 4u);
    EXPECT_EQ(first, second);
    // Shards draw from derived seeds: their traffic must differ.
    EXPECT_NE(first[0], first[1]);
}

} // namespace
} // namespace psoram
