/**
 * @file
 * Drainer tests: atomic round bracketing, multi-round splitting with a
 * limited persistence domain, and the metadata ordering rule (a PosMap
 * entry never commits before its block's data write).
 */

#include <gtest/gtest.h>

#include "nvm/device.hh"

#include "psoram/drainer.hh"

namespace psoram {
namespace {

WpqEntry
dataEntry(Addr addr, std::uint8_t value)
{
    WpqEntry e;
    e.addr = addr;
    e.data.assign(16, value);
    return e;
}

PosmapWrite
posEntry(Addr addr, std::uint8_t value, std::size_t after_data)
{
    PosmapWrite w;
    w.entry.addr = addr;
    w.entry.data.assign(4, value);
    w.after_data = after_data;
    return w;
}

class DrainerTest : public ::testing::Test
{
  protected:
    NvmDevice device_{pcmTimings(), 1, 8, 1 << 20};
};

TEST_F(DrainerTest, SingleRoundWhenEverythingFits)
{
    Drainer drainer(8, 8);
    EvictionBundle bundle;
    for (int i = 0; i < 6; ++i)
        bundle.data_writes.push_back(
            dataEntry(static_cast<Addr>(i) * 64, 1));
    bundle.posmap_writes.push_back(posEntry(4096, 2, 3));
    drainer.persist(bundle, device_, 0, nullptr);
    EXPECT_EQ(drainer.roundsIssued(), 1u);
    EXPECT_EQ(drainer.splitEvictions(), 0u);
    EXPECT_EQ(drainer.entriesPersisted(), 7u);
}

TEST_F(DrainerTest, SplitsIntoRoundsWithSmallWpq)
{
    Drainer drainer(4, 4);
    EvictionBundle bundle;
    for (int i = 0; i < 10; ++i)
        bundle.data_writes.push_back(
            dataEntry(static_cast<Addr>(i) * 64, 1));
    drainer.persist(bundle, device_, 0, nullptr);
    EXPECT_EQ(drainer.roundsIssued(), 3u); // 4 + 4 + 2
    EXPECT_EQ(drainer.splitEvictions(), 2u);
}

TEST_F(DrainerTest, AllDataReachesNvm)
{
    Drainer drainer(4, 4);
    EvictionBundle bundle;
    for (int i = 0; i < 9; ++i)
        bundle.data_writes.push_back(dataEntry(
            static_cast<Addr>(i) * 64, static_cast<std::uint8_t>(i)));
    drainer.persist(bundle, device_, 0, nullptr);
    for (int i = 0; i < 9; ++i) {
        std::uint8_t b = 0;
        device_.readBytes(static_cast<Addr>(i) * 64, &b, 1);
        EXPECT_EQ(b, i);
    }
}

TEST_F(DrainerTest, PosmapEntryNeverCommitsBeforeItsData)
{
    // With a 2-entry WPQ and a metadata entry constrained to data index
    // 5, the entry must land in round 3 (after data 0..5 committed).
    Drainer drainer(2, 2);
    EvictionBundle bundle;
    for (int i = 0; i < 6; ++i)
        bundle.data_writes.push_back(
            dataEntry(static_cast<Addr>(i) * 64, 1));
    bundle.posmap_writes.push_back(posEntry(4096, 7, 5));

    // Track commit order through the crash hook: at every commit,
    // check whether the metadata is already durable while its data is
    // not.
    int rounds_seen = 0;
    bool violation = false;
    drainer.persist(
        bundle, device_, 0, [&](CrashSite site) {
            if (site != CrashSite::AfterCommit)
                return;
            ++rounds_seen;
            std::uint8_t meta = 0;
            device_.readBytes(4096, &meta, 1);
            // Note: at AfterCommit the round is committed but not yet
            // drained; simulate the ADR flush to observe its effect.
            // (crashFlush is idempotent for this check.)
            if (meta == 7) {
                std::uint8_t d = 0;
                device_.readBytes(4 * 64, &d, 1); // data index 4 < 5
                if (d == 0)
                    violation = true;
            }
        });
    EXPECT_FALSE(violation);
    EXPECT_GE(rounds_seen, 3);
}

TEST_F(DrainerTest, CrashBetweenRoundsKeepsPrefix)
{
    Drainer drainer(3, 3);
    EvictionBundle bundle;
    for (int i = 0; i < 9; ++i)
        bundle.data_writes.push_back(dataEntry(
            static_cast<Addr>(i) * 64, static_cast<std::uint8_t>(i + 1)));

    int rounds = 0;
    EXPECT_THROW(
        drainer.persist(bundle, device_, 0,
                        [&](CrashSite site) {
                            if (site == CrashSite::BetweenRounds &&
                                ++rounds == 2)
                                throw CrashEvent(site, 0);
                        }),
        CrashEvent);
    drainer.domain().crashFlush(device_);

    // Rounds 1-2 (entries 0..5) are durable; round 3 never started.
    for (int i = 0; i < 6; ++i) {
        std::uint8_t b = 0;
        device_.readBytes(static_cast<Addr>(i) * 64, &b, 1);
        EXPECT_EQ(b, i + 1);
    }
    std::uint8_t b = 0;
    device_.readBytes(6 * 64, &b, 1);
    EXPECT_EQ(b, 0);
}

TEST_F(DrainerTest, CrashBeforeCommitDropsCurrentRoundOnly)
{
    Drainer drainer(3, 3);
    EvictionBundle bundle;
    for (int i = 0; i < 6; ++i)
        bundle.data_writes.push_back(dataEntry(
            static_cast<Addr>(i) * 64, static_cast<std::uint8_t>(i + 1)));

    int commits = 0;
    EXPECT_THROW(
        drainer.persist(bundle, device_, 0,
                        [&](CrashSite site) {
                            if (site == CrashSite::BeforeCommit &&
                                commits++ == 1)
                                throw CrashEvent(site, 0);
                        }),
        CrashEvent);
    drainer.domain().crashFlush(device_);

    for (int i = 0; i < 3; ++i) {
        std::uint8_t b = 0;
        device_.readBytes(static_cast<Addr>(i) * 64, &b, 1);
        EXPECT_EQ(b, i + 1) << "committed round lost";
    }
    for (int i = 3; i < 6; ++i) {
        std::uint8_t b = 0;
        device_.readBytes(static_cast<Addr>(i) * 64, &b, 1);
        EXPECT_EQ(b, 0) << "uncommitted round leaked";
    }
}

TEST_F(DrainerTest, CrashAfterCommitFlushesViaAdr)
{
    Drainer drainer(3, 3);
    EvictionBundle bundle;
    for (int i = 0; i < 3; ++i)
        bundle.data_writes.push_back(dataEntry(
            static_cast<Addr>(i) * 64, static_cast<std::uint8_t>(i + 1)));

    EXPECT_THROW(
        drainer.persist(bundle, device_, 0,
                        [&](CrashSite site) {
                            if (site == CrashSite::AfterCommit)
                                throw CrashEvent(site, 0);
                        }),
        CrashEvent);
    drainer.domain().crashFlush(device_);
    for (int i = 0; i < 3; ++i) {
        std::uint8_t b = 0;
        device_.readBytes(static_cast<Addr>(i) * 64, &b, 1);
        EXPECT_EQ(b, i + 1) << "ADR failed to flush committed round";
    }
}

TEST_F(DrainerTest, DrainTimeGrowsWithEntries)
{
    Drainer drainer(96, 96);
    EvictionBundle small, large;
    for (int i = 0; i < 4; ++i)
        small.data_writes.push_back(
            dataEntry(static_cast<Addr>(i) * 64, 1));
    for (int i = 0; i < 90; ++i)
        large.data_writes.push_back(
            dataEntry(static_cast<Addr>(i) * 64, 1));
    const Cycle t_small = drainer.persist(small, device_, 0, nullptr);
    NvmDevice device2{pcmTimings(), 1, 8, 1 << 20};
    Drainer drainer2(96, 96);
    const Cycle t_large = drainer2.persist(large, device2, 0, nullptr);
    EXPECT_GT(t_large, t_small);
}

} // namespace
} // namespace psoram
