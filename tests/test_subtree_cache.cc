/**
 * @file
 * SubtreeCache tests: pin/fill/read/update semantics, LRU capacity
 * enforcement with pin immunity, and a multi-threaded stress mixing
 * concurrent fillers, readers and updaters — the test TSan runs against
 * the pipelined engine's shared cache.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "oram/subtree_cache.hh"

namespace psoram {
namespace {

constexpr unsigned kSlots = 4;

PlainBlock
tagged(BlockAddr addr, PathId path)
{
    PlainBlock block = PlainBlock::dummy();
    block.addr = addr;
    block.path = path;
    return block;
}

SubtreeCache::FillFn
fillWithTag(std::uint32_t tag)
{
    return [tag](BucketId bucket, std::vector<PlainBlock> &slots) {
        for (unsigned s = 0; s < slots.size(); ++s)
            slots[s] = tagged(bucket * 100 + s, tag);
    };
}

TEST(SubtreeCache, MissFillsThenHits)
{
    SubtreeCache cache(kSlots);
    cache.pinFill(7, fillWithTag(1));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    std::vector<PlainBlock> out;
    ASSERT_TRUE(cache.read(7, out));
    ASSERT_EQ(out.size(), kSlots);
    EXPECT_EQ(out[2].addr, 7u * 100 + 2);

    // Second pin of a resident bucket: hit, no refill.
    cache.pinFill(7, fillWithTag(2));
    EXPECT_EQ(cache.hits(), 1u);
    ASSERT_TRUE(cache.read(7, out));
    EXPECT_EQ(out[0].addr, 7u * 100); // tag-1 fill preserved
    EXPECT_EQ(cache.totalPins(), 2u);

    cache.unpin(7);
    cache.unpin(7);
    EXPECT_EQ(cache.totalPins(), 0u);
}

TEST(SubtreeCache, UpdateOverwritesAndPreservesPins)
{
    SubtreeCache cache(kSlots);
    cache.pinFill(3, fillWithTag(1));

    std::vector<PlainBlock> fresh(kSlots, PlainBlock::dummy());
    fresh[0] = tagged(4242, 9);
    cache.update(3, fresh);

    std::vector<PlainBlock> out;
    ASSERT_TRUE(cache.read(3, out));
    EXPECT_EQ(out[0].addr, 4242u);
    EXPECT_EQ(cache.totalPins(), 1u); // pin survived the update
    cache.unpin(3);

    // Update of an absent bucket inserts it unpinned.
    cache.update(8, fresh);
    ASSERT_TRUE(cache.read(8, out));
    EXPECT_EQ(cache.totalPins(), 0u);
}

TEST(SubtreeCache, CapacityEvictsLruButNeverPinned)
{
    SubtreeCache::Config config;
    config.capacity_buckets = 4;
    config.stripes = 1; // single stripe: capacity applies globally
    SubtreeCache cache(kSlots, config);

    cache.pinFill(0, fillWithTag(1)); // stays pinned
    for (BucketId b = 1; b < 10; ++b) {
        cache.pinFill(b, fillWithTag(1));
        cache.unpin(b);
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_LE(cache.residentBuckets(), 4u);

    // The pinned bucket survived every round of capacity pressure.
    std::vector<PlainBlock> out;
    EXPECT_TRUE(cache.read(0, out));
    cache.unpin(0);
}

TEST(SubtreeCache, ClearDropsOnlyUnpinned)
{
    SubtreeCache cache(kSlots);
    cache.pinFill(1, fillWithTag(1));
    cache.pinFill(2, fillWithTag(1));
    cache.unpin(2);
    cache.clear();

    std::vector<PlainBlock> out;
    EXPECT_TRUE(cache.read(1, out));  // pinned: kept
    EXPECT_FALSE(cache.read(2, out)); // unpinned: dropped
    cache.unpin(1);
}

TEST(SubtreeCache, ConcurrentStress)
{
    // The pipelined engine's real access pattern, concentrated: several
    // fetch threads pin-filling overlapping paths while an "evictor"
    // thread publishes updates and a reader polls. TSan must see no
    // races; the assertions check pin balance and fill-once semantics.
    SubtreeCache::Config config;
    config.capacity_buckets = 64;
    config.stripes = 8;
    SubtreeCache cache(kSlots, config);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kRounds = 2000;
    constexpr BucketId kBuckets = 96;
    std::atomic<std::uint64_t> fills{0};

    std::vector<std::thread> fetchers;
    for (unsigned t = 0; t < kThreads; ++t) {
        fetchers.emplace_back([&cache, &fills, t] {
            for (unsigned round = 0; round < kRounds; ++round) {
                // A "path": a deterministic clique of buckets, heavily
                // overlapping between threads.
                const BucketId base =
                    (round * 7 + t * 13) % (kBuckets - 4);
                for (BucketId b = base; b < base + 4; ++b)
                    cache.pinFill(
                        b, [&fills](BucketId bucket,
                                    std::vector<PlainBlock> &slots) {
                            fills.fetch_add(1);
                            for (unsigned s = 0; s < slots.size(); ++s)
                                slots[s] = tagged(bucket * 100 + s, 0);
                        });
                std::vector<PlainBlock> out;
                for (BucketId b = base; b < base + 4; ++b)
                    if (cache.read(b, out))
                        EXPECT_EQ(out[0].addr, b * 100);
                for (BucketId b = base; b < base + 4; ++b)
                    cache.unpin(b);
            }
        });
    }
    std::thread updater([&cache] {
        for (unsigned round = 0; round < kRounds; ++round) {
            std::vector<PlainBlock> fresh(kSlots, PlainBlock::dummy());
            const BucketId bucket = (round * 11) % kBuckets;
            fresh[0] = tagged(bucket * 100, 1);
            cache.update(bucket, fresh);
        }
    });
    for (std::thread &t : fetchers)
        t.join();
    updater.join();

    EXPECT_EQ(cache.totalPins(), 0u);
    EXPECT_EQ(cache.misses() + cache.hits(),
              std::uint64_t{kThreads} * kRounds * 4);
    EXPECT_EQ(fills.load(), cache.misses());
}

} // namespace
} // namespace psoram
