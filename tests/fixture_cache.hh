/**
 * @file
 * File-backed fixture cache for expensive deterministic test setup.
 *
 * gtest_discover_tests runs every TEST in its own ctest process, so
 * in-process memoization cannot share work between tests: fixtures
 * like the 10k-access AES traffic digests are recomputed by every test
 * that needs them. This helper caches such values in files under
 * `fixture_cache/` in the test working directory.
 *
 * Staleness safety: every cache file is keyed by a signature of the
 * running test binary (path, size, mtime via /proc/self/exe). A
 * rebuild changes the signature, so a code change can never be masked
 * by a stale cached value — the worst case is a cold cache. Writes go
 * through a temp file + rename, so concurrent ctest processes racing
 * on the same fixture are benign (both compute the same deterministic
 * value; the rename is atomic).
 */

#ifndef PSORAM_TESTS_FIXTURE_CACHE_HH
#define PSORAM_TESTS_FIXTURE_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>

namespace psoram {
namespace testing {

/**
 * Return the cached value for @p key, or run @p compute and cache its
 * result. @p key must uniquely describe the fixture (e.g.
 * "traffic_psoram_aes_10000") and be filesystem-safe.
 */
std::uint64_t cachedU64(const std::string &key,
                        const std::function<std::uint64_t()> &compute);

/** Number of cache hits this process served (for the cache's tests). */
std::uint64_t fixtureCacheHits();

} // namespace testing
} // namespace psoram

#endif // PSORAM_TESTS_FIXTURE_CACHE_HH
