/**
 * @file
 * Block codec tests: encrypted wire format round trips, dummy handling,
 * and probabilistic-encryption properties (fresh IVs per encode).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "oram/block.hh"

namespace psoram {
namespace {

PlainBlock
sampleBlock(BlockAddr addr, PathId path)
{
    PlainBlock block;
    block.addr = addr;
    block.path = path;
    for (std::size_t i = 0; i < kBlockDataBytes; ++i)
        block.data[i] = static_cast<std::uint8_t>(addr + i);
    return block;
}

class BlockCodecTest : public ::testing::TestWithParam<CipherKind>
{
  protected:
    Aes128::Key key_{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                     16};
};

TEST_P(BlockCodecTest, RoundTripPreservesEverything)
{
    BlockCodec codec(key_, GetParam());
    const PlainBlock original = sampleBlock(0xDEADBEEF, 42);
    const SlotBytes wire = codec.encode(original);
    const PlainBlock decoded = codec.decode(wire);
    EXPECT_EQ(decoded.addr, original.addr);
    EXPECT_EQ(decoded.path, original.path);
    EXPECT_EQ(decoded.data, original.data);
}

TEST_P(BlockCodecTest, ZeroSlotDecodesAsDummy)
{
    BlockCodec codec(key_, GetParam());
    SlotBytes zero{};
    EXPECT_TRUE(codec.decode(zero).isDummy());
}

TEST_P(BlockCodecTest, DummyRoundTrip)
{
    BlockCodec codec(key_, GetParam());
    const SlotBytes wire = codec.encode(PlainBlock::dummy());
    EXPECT_TRUE(codec.decode(wire).isDummy());
}

TEST_P(BlockCodecTest, ReencodingSamePlaintextChangesCiphertext)
{
    // Probabilistic encryption: the bus must not reveal that the same
    // block is written twice.
    BlockCodec codec(key_, GetParam());
    const PlainBlock block = sampleBlock(7, 3);
    const SlotBytes first = codec.encode(block);
    const SlotBytes second = codec.encode(block);
    EXPECT_NE(first, second);
    EXPECT_EQ(codec.decode(first).data, codec.decode(second).data);
}

TEST_P(BlockCodecTest, CiphertextHidesPlaintextBytes)
{
    BlockCodec codec(key_, GetParam());
    PlainBlock block = sampleBlock(1, 1);
    std::memset(block.data.data(), 0xAB, kBlockDataBytes);
    const SlotBytes wire = codec.encode(block);
    // The payload region must not contain long runs of the plaintext
    // byte.
    int matches = 0;
    for (std::size_t i = 24; i < 24 + kBlockDataBytes; ++i)
        matches += (wire[i] == 0xAB);
    EXPECT_LT(matches, 8);
}

TEST_P(BlockCodecTest, DummyAndRealAreIndistinguishableInSize)
{
    BlockCodec codec(key_, GetParam());
    const SlotBytes real = codec.encode(sampleBlock(1, 1));
    const SlotBytes dummy = codec.encode(PlainBlock::dummy());
    EXPECT_EQ(real.size(), dummy.size());
}

TEST_P(BlockCodecTest, EncodeCountAdvances)
{
    BlockCodec codec(key_, GetParam());
    const auto before = codec.encodeCount();
    codec.encode(PlainBlock::dummy());
    codec.encode(PlainBlock::dummy());
    EXPECT_EQ(codec.encodeCount(), before + 2);
}

TEST_P(BlockCodecTest, DifferentKeysCannotDecode)
{
    BlockCodec codec(key_, GetParam());
    Aes128::Key other = key_;
    other[0] ^= 0xFF;
    BlockCodec wrong(other, GetParam());

    const PlainBlock block = sampleBlock(123, 9);
    const SlotBytes wire = codec.encode(block);
    const PlainBlock decoded = wrong.decode(wire);
    // Wrong key: the header decrypts to garbage, so either the block
    // looks like a different (garbage) address or corrupt data.
    EXPECT_TRUE(decoded.addr != block.addr ||
                decoded.data != block.data);
}

INSTANTIATE_TEST_SUITE_P(Ciphers, BlockCodecTest,
                         ::testing::Values(CipherKind::Aes128Ctr,
                                           CipherKind::FastStream),
                         [](const auto &info) {
                             return info.param == CipherKind::Aes128Ctr
                                 ? "Aes" : "Fast";
                         });

} // namespace
} // namespace psoram
