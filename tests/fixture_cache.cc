#include "fixture_cache.hh"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace psoram {
namespace testing {

namespace {

std::uint64_t cache_hits = 0;

std::uint64_t
fnv1a(const std::string &bytes, std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    for (const char c : bytes)
        hash = (hash ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    return hash;
}

/**
 * Signature of the running test binary: a cached value may only be
 * reused by the *same build* of the same executable.
 */
std::uint64_t
binarySignature()
{
    struct stat st = {};
    if (stat("/proc/self/exe", &st) != 0)
        return 0; // no signature -> per-run uniqueness via pid below
    std::ostringstream sig;
    sig << st.st_size << ":" << st.st_mtime << ":" << st.st_ino;
    return fnv1a(sig.str());
}

std::string
cachePath(const std::string &key)
{
    std::ostringstream path;
    std::uint64_t sig = binarySignature();
    if (sig == 0)
        sig = static_cast<std::uint64_t>(getpid());
    path << "fixture_cache/" << std::hex << sig << "_" << key << ".txt";
    return path.str();
}

} // namespace

std::uint64_t
cachedU64(const std::string &key,
          const std::function<std::uint64_t()> &compute)
{
    const std::string path = cachePath(key);
    {
        std::ifstream in(path);
        std::uint64_t value = 0;
        if (in >> std::hex >> value) {
            ++cache_hits;
            return value;
        }
    }

    const std::uint64_t value = compute();

    ::mkdir("fixture_cache", 0755); // EEXIST is fine
    const std::string tmp = path + "." + std::to_string(getpid());
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << std::hex << value << "\n";
        if (!out)
            return value; // cache is best-effort
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
    return value;
}

std::uint64_t
fixtureCacheHits()
{
    return cache_hits;
}

} // namespace testing
} // namespace psoram
