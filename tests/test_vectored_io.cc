/**
 * @file
 * The vectored seam contract (mem/backend.hh): the default readv/writev
 * forwarding is byte- and boundary-equivalent to scalar loops, noisy
 * batches keep per-span persist-boundary granularity, and the
 * write-behind decorator resolves whole span lists against its pending
 * rounds in one pass.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/backend.hh"
#include "nvm/device.hh"
#include "nvm/fault_injector.hh"
#include "nvm/wpq.hh"
#include "nvm/write_behind.hh"

namespace psoram {
namespace {

constexpr std::uint64_t kCapacity = 1ULL << 20;

std::vector<std::uint8_t>
pattern(std::size_t len, std::uint8_t salt)
{
    std::vector<std::uint8_t> bytes(len);
    for (std::size_t i = 0; i < len; ++i)
        bytes[i] = static_cast<std::uint8_t>(salt + i * 7);
    return bytes;
}

TEST(VectoredIo, DefaultForwardingMatchesScalarOps)
{
    NvmDevice vectored(pcmTimings(), 1, 8, kCapacity);
    NvmDevice scalar(pcmTimings(), 1, 8, kCapacity);

    const auto a = pattern(96, 1);
    const auto b = pattern(64, 2);
    const auto c = pattern(200, 3);
    const std::vector<WriteSpan> writes{
        {0, a.data(), a.size()},
        {4096, b.data(), b.size()},
        {70000, c.data(), c.size()},
    };
    vectored.writev(writes);
    for (const WriteSpan &span : writes)
        scalar.writeBytes(span.addr, span.data, span.len);

    std::vector<std::uint8_t> got_a(96), got_b(64), got_c(200);
    const std::vector<ReadSpan> reads{
        {0, got_a.data(), got_a.size()},
        {4096, got_b.data(), got_b.size()},
        {70000, got_c.data(), got_c.size()},
    };
    vectored.readv(reads);
    EXPECT_EQ(got_a, a);
    EXPECT_EQ(got_b, b);
    EXPECT_EQ(got_c, c);

    // Same functional image either way.
    EXPECT_EQ(vectored.image(), scalar.image());
}

TEST(VectoredIo, NoisyWritevReportsOneBoundaryPerSpan)
{
    NvmDevice device(pcmTimings(), 1, 8, kCapacity);
    FaultInjector injector;
    device.setFaultInjector(&injector);

    const auto payload = pattern(64, 9);
    const std::vector<WriteSpan> spans{
        {0, payload.data(), payload.size()},
        {128, payload.data(), payload.size()},
        {256, payload.data(), payload.size()},
    };
    device.writev(spans);
    EXPECT_EQ(injector.boundariesSeen(), 3u);
    EXPECT_EQ(injector.kindCount(PersistBoundary::DirectWrite), 3u);

    {
        const FaultInjector::ScopedDrain drain(&injector);
        device.writev(spans);
    }
    EXPECT_EQ(injector.kindCount(PersistBoundary::DrainWrite), 3u);

    // Quiet batches are not enumerable crash points.
    const std::uint64_t before = injector.boundariesSeen();
    device.writevQuiet(spans);
    EXPECT_EQ(injector.boundariesSeen(), before);
}

TEST(VectoredIo, FaultMidWritevAppliesEarlierSpansOnly)
{
    NvmDevice device(pcmTimings(), 1, 8, kCapacity);
    FaultInjector injector;
    device.setFaultInjector(&injector);
    injector.armAt(2); // second span's boundary fires before its write

    const auto payload = pattern(64, 5);
    const std::vector<WriteSpan> spans{
        {0, payload.data(), payload.size()},
        {128, payload.data(), payload.size()},
        {256, payload.data(), payload.size()},
    };
    EXPECT_THROW(device.writev(spans), InjectedFault);

    std::vector<std::uint8_t> got(64);
    device.readBytes(0, got.data(), got.size());
    EXPECT_EQ(got, payload) << "span before the fault must be applied";
    device.readBytes(128, got.data(), got.size());
    EXPECT_EQ(got, std::vector<std::uint8_t>(64, 0))
        << "faulting span must not be applied";
    device.readBytes(256, got.data(), got.size());
    EXPECT_EQ(got, std::vector<std::uint8_t>(64, 0))
        << "span after the fault must not be applied";
}

TEST(VectoredIo, WriteBehindReadvResolvesPendingRounds)
{
    NvmDevice inner(pcmTimings(), 1, 8, kCapacity);
    const auto durable = pattern(64, 40);
    inner.writeBytes(1024, durable.data(), durable.size());

    WriteBehindNvm device(inner, 8);
    const auto queued = pattern(96, 41);
    WpqEntry entry;
    entry.addr = 0;
    entry.data.assign(queued.begin(), queued.end());
    std::vector<WpqEntry> round;
    round.push_back(entry);
    device.submitRound(std::move(round));

    // One readv mixing a pending hit (addr 0, still unretired) with an
    // inner-device miss (addr 1024).
    std::vector<std::uint8_t> got_pending(96), got_inner(64);
    const std::vector<ReadSpan> spans{
        {0, got_pending.data(), got_pending.size()},
        {1024, got_inner.data(), got_inner.size()},
    };
    device.readv(spans);
    EXPECT_EQ(got_pending, queued) << "read-your-writes across readv";
    EXPECT_EQ(got_inner, durable);

    device.flushQueued();
    std::vector<std::uint8_t> retired(96);
    inner.readBytes(0, retired.data(), retired.size());
    EXPECT_EQ(retired, queued);
    EXPECT_GE(device.roundsRetired(), 1u);
}

TEST(VectoredIo, WriteBehindWritevFlushesQueueFirst)
{
    NvmDevice inner(pcmTimings(), 1, 8, kCapacity);
    WriteBehindNvm device(inner, 8);

    const auto queued = pattern(96, 50);
    WpqEntry entry;
    entry.addr = 512;
    entry.data.assign(queued.begin(), queued.end());
    std::vector<WpqEntry> round;
    round.push_back(entry);
    device.submitRound(std::move(round));

    // A direct vectored write to the same address must order after the
    // queued round (program order), not under it.
    const auto direct = pattern(96, 51);
    const std::vector<WriteSpan> spans{{512, direct.data(), direct.size()}};
    device.writev(spans);

    std::vector<std::uint8_t> got(96);
    inner.readBytes(512, got.data(), got.size());
    EXPECT_EQ(got, direct);
}

} // namespace
} // namespace psoram
