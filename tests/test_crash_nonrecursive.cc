/**
 * @file
 * Crash-consistency tests for the non-recursive designs (§3.3 / §4.3).
 *
 * The harness runs a random workload with a versioned-payload oracle:
 * every write carries (addr, version); the controller's commit observer
 * records which version last became durable. A crash is injected at a
 * protocol site, the ADR flush + recovery sequence runs, and the test
 * checks the paper's guarantee: every address recovers a version
 * between its last durable version and its last written version
 * (atomic old-or-new), and the ORAM remains fully functional.
 *
 * The Baseline and FullNVM designs are tested negatively: the paper's
 * case studies say they lose data, and they must do so here too.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/random.hh"
#include "psoram/recovery.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

constexpr std::uint64_t kBlocks = 48;

SystemConfig
crashConfig(DesignKind design, std::size_t wpq = 96)
{
    SystemConfig config;
    config.design = design;
    config.tree_height = 5;
    config.bucket_slots = 4;
    config.num_blocks = kBlocks;
    config.stash_capacity = 64;
    config.wpq_entries = wpq;
    config.cipher = CipherKind::FastStream;
    config.seed = 99;
    return config;
}

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t version = 0;
    std::memcpy(&version, data + 8, sizeof(version));
    return version;
}

/** Versioned-payload oracle fed by the commit observer. */
struct Oracle
{
    std::map<BlockAddr, std::uint32_t> committed;
    std::map<BlockAddr, std::uint32_t> latest;

    CommitObserver
    observer()
    {
        return [this](BlockAddr addr,
                      const std::array<std::uint8_t, kBlockDataBytes>
                          &data) {
            const std::uint32_t version = versionOf(data.data());
            auto &slot = committed[addr];
            // Durability is monotonic: the observer must never report
            // an older version than one already durable.
            ASSERT_GE(version, slot);
            slot = version;
        };
    }
};

struct CrashRunResult
{
    bool crashed = false;
    BlockAddr in_flight = kDummyBlockAddr;
};

/**
 * Run @p ops random accesses with a crash armed at (site, occurrence);
 * on crash, recover and verify the old-or-new guarantee for every
 * address; then run a post-recovery workload to confirm the ORAM still
 * functions.
 */
CrashRunResult
runCrashScenario(const SystemConfig &config, CrashSite site,
                 std::uint64_t occurrence, int ops, std::uint64_t seed)
{
    System system = buildSystem(config);
    Oracle oracle;
    system.controller->setCommitObserver(oracle.observer());
    CrashAtOccurrence policy(site, occurrence);
    system.controller->setCrashPolicy(&policy);

    Rng rng(seed);
    std::uint8_t buf[kBlockDataBytes];
    CrashRunResult result;

    for (int op = 0; op < ops; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const bool is_write = rng.nextBool(0.6);
        try {
            if (is_write) {
                const auto version = static_cast<std::uint32_t>(op + 1);
                payload(addr, version, buf);
                system.controller->write(addr, buf);
                oracle.latest[addr] = version;
            } else {
                system.controller->read(addr, buf);
            }
        } catch (const CrashEvent &event) {
            result.crashed = true;
            result.in_flight = addr;
            // The write that crashed mid-flight may persist or abort.
            if (is_write)
                oracle.latest[addr] =
                    static_cast<std::uint32_t>(op + 1);
            break;
        }
    }
    if (!result.crashed)
        return result;

    // Power failure: ADR flush, volatile state lost, rebuild, recover.
    system.recoverController();
    system.controller->setCommitObserver(oracle.observer());

    // The paper's guarantee (§4.3): every block recovers a version
    // v with durable <= v <= latest; nothing is lost, nothing is torn.
    for (const auto &[addr, latest] : oracle.latest) {
        system.controller->read(addr, buf);
        const std::uint32_t v = versionOf(buf);
        const auto it = oracle.committed.find(addr);
        const std::uint32_t durable =
            it == oracle.committed.end() ? 0 : it->second;
        EXPECT_GE(v, durable)
            << "addr " << addr << " lost data at "
            << crashSiteName(site) << " occurrence " << occurrence;
        EXPECT_LE(v, latest) << "addr " << addr << " corrupt";
        if (v != 0) {
            BlockAddr stored = 0;
            std::memcpy(&stored, buf, sizeof(stored));
            EXPECT_EQ(stored, addr) << "payload torn";
        }
    }

    // Recovery must leave a fully working ORAM: run a fresh verified
    // workload on top.
    std::map<BlockAddr, std::uint32_t> post;
    for (int op = 0; op < 300; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        if (rng.nextBool(0.5)) {
            const auto version =
                static_cast<std::uint32_t>(100000 + op);
            payload(addr, version, buf);
            system.controller->write(addr, buf);
            post[addr] = version;
        } else if (post.count(addr)) {
            system.controller->read(addr, buf);
            EXPECT_EQ(versionOf(buf), post[addr])
                << "post-recovery ORAM broken at op " << op;
        }
    }
    return result;
}

struct CrashCase
{
    CrashSite site;
    std::uint64_t occurrence;
};

class PsOramCrash
    : public ::testing::TestWithParam<std::tuple<DesignKind, CrashCase>>
{
};

TEST_P(PsOramCrash, RecoversConsistently)
{
    const auto [design, crash] = GetParam();
    const CrashRunResult result = runCrashScenario(
        crashConfig(design), crash.site, crash.occurrence, 400, 7);
    EXPECT_TRUE(result.crashed) << "crash site never reached";
}

const CrashCase kCrashCases[] = {
    {CrashSite::BetweenAccesses, 5},
    {CrashSite::BetweenAccesses, 120},
    {CrashSite::AfterRemap, 3},
    {CrashSite::AfterRemap, 60},
    {CrashSite::DuringLoad, 10},
    {CrashSite::DuringLoad, 90},
    {CrashSite::AfterStashUpdate, 7},
    {CrashSite::AfterStashUpdate, 77},
    {CrashSite::BeforeCommit, 4},
    {CrashSite::BeforeCommit, 44},
    {CrashSite::AfterCommit, 6},
    {CrashSite::AfterCommit, 66},
};

INSTANTIATE_TEST_SUITE_P(
    Sites, PsOramCrash,
    ::testing::Combine(::testing::Values(DesignKind::PsOram,
                                         DesignKind::NaivePsOram),
                       ::testing::ValuesIn(kCrashCases)),
    [](const auto &info) {
        const DesignKind design = std::get<0>(info.param);
        const CrashCase crash = std::get<1>(info.param);
        std::string out;
        for (const char c : designName(design))
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        out += "_";
        for (const char c : crashSiteName(crash.site))
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        out += "_" + std::to_string(crash.occurrence);
        return out;
    });

/** Limited persistence domain (§4.2.3): 4-entry WPQs force multi-round
 *  evictions; crash windows between rounds must stay safe. */
class SmallWpqCrash : public ::testing::TestWithParam<CrashCase>
{
};

TEST_P(SmallWpqCrash, RecoversWithFourEntryWpq)
{
    const CrashCase crash = GetParam();
    const CrashRunResult result =
        runCrashScenario(crashConfig(DesignKind::PsOram, 4), crash.site,
                         crash.occurrence, 400, 13);
    EXPECT_TRUE(result.crashed) << "crash site never reached";
}

INSTANTIATE_TEST_SUITE_P(
    Rounds, SmallWpqCrash,
    ::testing::Values(CrashCase{CrashSite::BetweenRounds, 2},
                      CrashCase{CrashSite::BetweenRounds, 9},
                      CrashCase{CrashSite::BetweenRounds, 33},
                      CrashCase{CrashSite::BetweenRounds, 101},
                      CrashCase{CrashSite::BeforeCommit, 15},
                      CrashCase{CrashSite::AfterCommit, 15}),
    [](const auto &info) {
        std::string out = crashSiteName(info.param.site);
        std::string clean;
        for (const char c : out)
            if (std::isalnum(static_cast<unsigned char>(c)))
                clean += c;
        return clean + "_" + std::to_string(info.param.occurrence);
    });

TEST(PsOramCrashSweep, EveryEvictionBoundarySurvives)
{
    // Dense sweep: crash at every 7th commit boundary across several
    // runs — broad coverage of stash/temp states.
    for (std::uint64_t occurrence = 1; occurrence <= 120;
         occurrence += 7) {
        const CrashRunResult result =
            runCrashScenario(crashConfig(DesignKind::PsOram),
                             CrashSite::AfterCommit, occurrence, 300,
                             occurrence);
        EXPECT_TRUE(result.crashed);
    }
}

TEST(BaselineCrash, LosesDataWithoutPersistence)
{
    // The paper's motivating failure: with no persistence support the
    // volatile stash and PosMap vanish; after a crash the tree cannot
    // be interpreted (§3.3 Case 1a).
    System system = buildSystem(crashConfig(DesignKind::Baseline));
    Rng rng(5);
    std::uint8_t buf[kBlockDataBytes];
    std::map<BlockAddr, std::uint32_t> latest;
    CrashAtOccurrence policy(CrashSite::DuringDirectEviction, 80);
    system.controller->setCrashPolicy(&policy);

    bool crashed = false;
    for (int op = 0; op < 400 && !crashed; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        const auto version = static_cast<std::uint32_t>(op + 1);
        payload(addr, version, buf);
        try {
            system.controller->write(addr, buf);
            latest[addr] = version;
        } catch (const CrashEvent &) {
            crashed = true;
        }
    }
    ASSERT_TRUE(crashed);

    system.recoverController();
    std::size_t lost = 0;
    for (const auto &[addr, version] : latest) {
        system.controller->read(addr, buf);
        if (versionOf(buf) != version)
            ++lost;
    }
    // Baseline must demonstrably lose data — that is the problem
    // statement of the paper.
    EXPECT_GT(lost, 0u);
}

TEST(FullNvmCrash, NonAtomicMetadataLosesInFlightBlock)
{
    // §3.3 Case 1b: FullNVM persists the PosMap update (step 2) before
    // the data moves; a crash right after the remap makes the target
    // unreachable even though stash and PosMap survive in on-chip NVM.
    System system = buildSystem(crashConfig(DesignKind::FullNvm));
    Rng rng(21);
    std::uint8_t buf[kBlockDataBytes];
    std::map<BlockAddr, std::uint32_t> latest;

    // Phase 1: populate every block (no crash).
    for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
        const auto version = static_cast<std::uint32_t>(addr + 1);
        payload(addr, version, buf);
        system.controller->write(addr, buf);
        latest[addr] = version;
    }

    // Phase 2: crash at the remap of some later access.
    CrashAtOccurrence policy(CrashSite::AfterRemap, 30);
    system.controller->setCrashPolicy(&policy);
    BlockAddr in_flight = kDummyBlockAddr;
    bool crashed = false;
    for (int op = 0; op < 300 && !crashed; ++op) {
        const BlockAddr addr = rng.nextBelow(kBlocks);
        try {
            system.controller->read(addr, buf);
        } catch (const CrashEvent &) {
            crashed = true;
            in_flight = addr;
        }
    }
    ASSERT_TRUE(crashed);

    system.recoverController();
    system.controller->read(in_flight, buf);
    // The block's data cannot be located: the PosMap (persistent in
    // on-chip NVM) already points at the new path, where nothing was
    // ever written.
    EXPECT_NE(versionOf(buf), latest[in_flight]);
}

TEST(PsOramCrashDetail, BackupRestoresPreCrashValue)
{
    // Focused §4.3 Case 3 scenario: block written, evicted, re-written
    // (new value only in the stash), crash before the new value
    // commits. Recovery must return the OLD value via the backup block.
    System system = buildSystem(crashConfig(DesignKind::PsOram));
    Oracle oracle;
    system.controller->setCommitObserver(oracle.observer());
    std::uint8_t buf[kBlockDataBytes];

    payload(5, 1, buf);
    system.controller->write(5, buf);
    // Force block 5 out of the stash so it commits.
    for (BlockAddr a = 10; a < 40; ++a) {
        payload(a, 1, buf);
        system.controller->write(a, buf);
    }
    if (system.controller->stash().find(5) != nullptr)
        GTEST_SKIP() << "block 5 never evicted with this seed";
    ASSERT_EQ(oracle.committed[5], 1u);

    // Re-write with version 2; crash during the eviction of that very
    // access, before its round commits.
    CrashAtOccurrence policy(CrashSite::BeforeCommit, 1);
    system.controller->setCrashPolicy(&policy);
    payload(5, 2, buf);
    EXPECT_THROW(system.controller->write(5, buf), CrashEvent);

    system.recoverController();
    system.controller->read(5, buf);
    EXPECT_EQ(versionOf(buf), 1u)
        << "backup block failed to restore the committed value";
}

TEST(PsOramCrashDetail, RepeatedCrashesAndRecoveries)
{
    // Crash -> recover -> crash -> recover ... the system must stay
    // consistent across arbitrarily many failures.
    SystemConfig config = crashConfig(DesignKind::PsOram);
    System system = buildSystem(config);
    Oracle oracle;
    system.controller->setCommitObserver(oracle.observer());
    Rng rng(31);
    std::uint8_t buf[kBlockDataBytes];

    for (int round = 0; round < 6; ++round) {
        CrashAtOccurrence policy(CrashSite::AfterCommit,
                                 5 + static_cast<std::uint64_t>(round));
        system.controller->setCrashPolicy(&policy);
        for (int op = 0; op < 200; ++op) {
            const BlockAddr addr = rng.nextBelow(kBlocks);
            const auto version =
                static_cast<std::uint32_t>(1000 * round + op + 1);
            payload(addr, version, buf);
            try {
                system.controller->write(addr, buf);
                oracle.latest[addr] = version;
            } catch (const CrashEvent &) {
                oracle.latest[addr] = version;
                break;
            }
        }
        system.recoverController();
        system.controller->setCommitObserver(oracle.observer());
        for (const auto &[addr, latest] : oracle.latest) {
            system.controller->read(addr, buf);
            const std::uint32_t v = versionOf(buf);
            EXPECT_GE(v, oracle.committed.count(addr)
                             ? oracle.committed[addr] : 0u)
                << "round " << round << " addr " << addr;
            EXPECT_LE(v, latest);
            // Re-baseline the oracle to the recovered state: the value
            // read back is what is durable now.
            oracle.latest[addr] = v;
            oracle.committed[addr] = v;
        }
    }
}

} // namespace
} // namespace psoram
