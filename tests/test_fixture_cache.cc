/**
 * @file
 * Tests for the file-backed fixture cache (tests/fixture_cache.hh):
 * compute-once semantics, persistence across calls, and the
 * binary-signature keying that prevents stale reuse after a rebuild.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <unistd.h>

#include "fixture_cache.hh"

namespace psoram {
namespace {

/** Key unique to this process run, so reruns of the same binary start
 *  cold (the cache itself persists across processes by design). */
std::string
freshKey(const char *tag)
{
    const auto now = std::chrono::steady_clock::now()
                         .time_since_epoch()
                         .count();
    return std::string("selftest_") + tag + "_" +
           std::to_string(getpid()) + "_" + std::to_string(now);
}

TEST(FixtureCache, ComputesOnceThenServesFromCache)
{
    const std::string key = freshKey("once");
    int computes = 0;
    const auto compute = [&computes]() -> std::uint64_t {
        ++computes;
        return 0xdeadbeefULL;
    };
    EXPECT_EQ(testing::cachedU64(key, compute), 0xdeadbeefULL);
    EXPECT_EQ(computes, 1);
    const std::uint64_t hits_before = testing::fixtureCacheHits();
    EXPECT_EQ(testing::cachedU64(key, compute), 0xdeadbeefULL);
    EXPECT_EQ(computes, 1) << "second call recomputed the fixture";
    EXPECT_EQ(testing::fixtureCacheHits(), hits_before + 1);
}

TEST(FixtureCache, DistinctKeysDoNotCollide)
{
    const std::string base = freshKey("keys");
    const auto value_a = testing::cachedU64(
        base + "_a", []() -> std::uint64_t { return 1; });
    const auto value_b = testing::cachedU64(
        base + "_b", []() -> std::uint64_t { return 2; });
    EXPECT_EQ(value_a, 1u);
    EXPECT_EQ(value_b, 2u);
    // And each remains individually cached.
    EXPECT_EQ(testing::cachedU64(base + "_a",
                                 []() -> std::uint64_t { return 99; }),
              1u);
}

} // namespace
} // namespace psoram
