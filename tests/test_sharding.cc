/**
 * @file
 * Sharding tests: the ShardRouter partition (both policies, inverse
 * mapping, coverage), per-shard seed derivation, the sharded system
 * builder's per-shard specialization, and the worker-pool
 * ShardedOramEngine — correctness under concurrent submitters,
 * callback-thread discipline, ordering per logical address, merged
 * stats, and per-shard crash recovery.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/sharding.hh"
#include "sim/sharded_engine.hh"
#include "sim/sharded_system.hh"

namespace psoram {
namespace {

ShardedSystemConfig
shardedConfig(unsigned shards, ShardPolicy policy = ShardPolicy::Interleave)
{
    ShardedSystemConfig config;
    config.base.design = DesignKind::PsOram;
    config.base.tree_height = 6;
    config.base.num_blocks = 120;
    config.base.stash_capacity = 64;
    config.base.seed = 17;
    config.sharding.num_shards = shards;
    config.sharding.policy = policy;
    return config;
}

std::array<std::uint8_t, kBlockDataBytes>
payload(BlockAddr addr, std::uint8_t salt)
{
    std::array<std::uint8_t, kBlockDataBytes> data{};
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(addr * 31 + salt + i);
    return data;
}

TEST(ShardRouter, InterleaveRoundTripsAndCovers)
{
    for (const unsigned n : {1u, 2u, 3u, 4u, 8u}) {
        const std::uint64_t total = 109; // prime: uneven shard sizes
        ShardRouter router({n, ShardPolicy::Interleave}, total);

        std::uint64_t covered = 0;
        for (unsigned k = 0; k < n; ++k)
            covered += router.shardBlocks(k);
        EXPECT_EQ(covered, total) << n << " shards";

        for (BlockAddr addr = 0; addr < total; ++addr) {
            const ShardSlot slot = router.route(addr);
            ASSERT_LT(slot.shard, n);
            ASSERT_LT(slot.local, router.shardBlocks(slot.shard));
            EXPECT_EQ(router.globalAddr(slot.shard, slot.local), addr);
        }
    }
}

TEST(ShardRouter, RangeRoundTripsAndCovers)
{
    for (const unsigned n : {1u, 2u, 3u, 5u}) {
        const std::uint64_t total = 97;
        ShardRouter router({n, ShardPolicy::Range}, total);

        std::uint64_t covered = 0;
        for (unsigned k = 0; k < n; ++k)
            covered += router.shardBlocks(k);
        EXPECT_EQ(covered, total);

        BlockAddr previous_shard = 0;
        for (BlockAddr addr = 0; addr < total; ++addr) {
            const ShardSlot slot = router.route(addr);
            // Ranges are monotone in the address.
            EXPECT_GE(slot.shard, previous_shard);
            previous_shard = slot.shard;
            EXPECT_EQ(router.globalAddr(slot.shard, slot.local), addr);
        }
    }
}

TEST(ShardRouter, SingleShardIsIdentity)
{
    ShardRouter router({1, ShardPolicy::Interleave}, 64);
    for (BlockAddr addr = 0; addr < 64; ++addr) {
        const ShardSlot slot = router.route(addr);
        EXPECT_EQ(slot.shard, 0u);
        EXPECT_EQ(slot.local, addr);
    }
}

TEST(Sharding, SeedDerivationIsReproducibleAndDisjoint)
{
    // Fast-path identity: one shard keeps the base seed.
    EXPECT_EQ(deriveShardSeed(17, 0, 1), 17u);

    std::set<std::uint64_t> seen;
    for (unsigned k = 0; k < 8; ++k) {
        const std::uint64_t seed = deriveShardSeed(17, k, 8);
        EXPECT_EQ(seed, deriveShardSeed(17, k, 8)) << "not deterministic";
        EXPECT_TRUE(seen.insert(seed).second) << "shard seeds collide";
    }
    // Different base seeds must give different shard streams.
    EXPECT_NE(deriveShardSeed(17, 3, 8), deriveShardSeed(18, 3, 8));
}

TEST(ShardedSystem, SingleShardConfigMatchesUnsharded)
{
    const ShardedSystemConfig config = shardedConfig(1);
    ShardRouter router(config.sharding, config.base.num_blocks);
    const SystemConfig sc = shardSystemConfig(config, router, 0);
    EXPECT_EQ(sc.tree_height, config.base.tree_height);
    EXPECT_EQ(sc.num_blocks, config.base.num_blocks);
    EXPECT_EQ(sc.seed, config.base.seed);
    EXPECT_EQ(sc.backing_file, config.base.backing_file);
}

TEST(ShardedSystem, ShardsPartitionBlocksAndDeriveSeeds)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(4));
    ASSERT_EQ(system.numShards(), 4u);

    std::uint64_t total = 0;
    std::set<std::uint64_t> seeds;
    for (unsigned k = 0; k < 4; ++k) {
        const System &shard = system.shards[k];
        EXPECT_EQ(shard.params.num_blocks, system.router.shardBlocks(k));
        EXPECT_LE(shard.config.tree_height, 6u);
        seeds.insert(shard.config.seed);
        total += shard.params.num_blocks;
    }
    EXPECT_EQ(total, 120u);
    EXPECT_EQ(seeds.size(), 4u) << "per-shard seeds must differ";
}

TEST(ShardedEngine, WritesAndReadsBackAcrossShards)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(4));
    ShardedOramEngine engine(system);

    constexpr BlockAddr kBlocks = 120;
    for (BlockAddr addr = 0; addr < kBlocks; ++addr)
        engine.submitWrite(addr, payload(addr, 1).data());
    engine.drain();

    std::mutex mutex;
    std::map<BlockAddr, std::array<std::uint8_t, kBlockDataBytes>> seen;
    for (BlockAddr addr = 0; addr < kBlocks; ++addr)
        engine.submitRead(addr,
                          [&](const ShardedOramEngine::Completion &c) {
                              std::lock_guard<std::mutex> lock(mutex);
                              seen[c.addr] = c.data;
                          });
    engine.drain();

    ASSERT_EQ(seen.size(), kBlocks);
    for (BlockAddr addr = 0; addr < kBlocks; ++addr)
        EXPECT_EQ(seen[addr], payload(addr, 1)) << "addr " << addr;

    // Every shard served its partition's share.
    const ShardedOramEngine::StatsSnapshot total = engine.stats();
    EXPECT_EQ(total.submitted, 2 * kBlocks);
    EXPECT_EQ(total.completed, 2 * kBlocks);
    std::uint64_t merged = 0;
    for (unsigned k = 0; k < engine.numShards(); ++k) {
        const auto shard = engine.shardStats(k);
        EXPECT_GT(shard.completed, 0u) << "idle shard " << k;
        merged += shard.completed;
    }
    EXPECT_EQ(merged, total.completed);
}

TEST(ShardedEngine, CompletionsRouteToOwningShard)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(3));
    ShardedOramEngine engine(system);

    for (BlockAddr addr = 0; addr < 60; ++addr)
        engine.submitWrite(addr, payload(addr, 9).data());
    engine.drain();

    for (const auto &completion : engine.takeCompletions()) {
        const ShardSlot slot = system.router.route(completion.addr);
        EXPECT_EQ(completion.shard, slot.shard);
        EXPECT_EQ(completion.local_addr, slot.local);
    }
}

TEST(ShardedEngine, CallbacksFireOnSingleDrainThread)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(2));
    ShardedOramEngine engine(system);

    std::mutex mutex;
    std::set<std::thread::id> callback_threads;
    for (BlockAddr addr = 0; addr < 40; ++addr)
        engine.submitWrite(addr, payload(addr, 3).data(),
                           [&](const ShardedOramEngine::Completion &) {
                               std::lock_guard<std::mutex> lock(mutex);
                               callback_threads.insert(
                                   std::this_thread::get_id());
                           });
    engine.drain();

    ASSERT_EQ(callback_threads.size(), 1u)
        << "callbacks must be serialized on one drain thread";
    EXPECT_NE(*callback_threads.begin(), std::this_thread::get_id())
        << "callbacks must not run on the submitting thread";
}

TEST(ShardedEngine, ReadObservesEarlierQueuedWritePerAddress)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(4));
    ShardedOramEngine engine(system);

    // Same-address requests route to one shard and stay FIFO there,
    // so a read queued after a write must observe it.
    std::mutex mutex;
    std::map<BlockAddr, std::array<std::uint8_t, kBlockDataBytes>> reads;
    for (BlockAddr addr = 0; addr < 30; ++addr) {
        engine.submitWrite(addr, payload(addr, 5).data());
        engine.submitWrite(addr, payload(addr, 6).data());
        engine.submitRead(addr,
                          [&](const ShardedOramEngine::Completion &c) {
                              std::lock_guard<std::mutex> lock(mutex);
                              reads[c.addr] = c.data;
                          });
    }
    engine.drain();
    for (BlockAddr addr = 0; addr < 30; ++addr)
        EXPECT_EQ(reads[addr], payload(addr, 6)) << "addr " << addr;
}

TEST(ShardedEngine, ConcurrentSubmittersAreSafe)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(4));
    ShardedOramEngine engine(system);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kOpsPerThread = 64;
    std::vector<std::vector<ShardedOramEngine::RequestId>> ids(kThreads);
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (unsigned i = 0; i < kOpsPerThread; ++i) {
                const BlockAddr addr = (t * kOpsPerThread + i) % 120;
                ids[t].push_back(
                    engine.submitWrite(addr, payload(addr, 7).data()));
            }
        });
    }
    for (auto &thread : submitters)
        thread.join();
    engine.drain();

    std::set<ShardedOramEngine::RequestId> unique;
    for (const auto &thread_ids : ids)
        unique.insert(thread_ids.begin(), thread_ids.end());
    EXPECT_EQ(unique.size(), kThreads * kOpsPerThread)
        << "request ids must be globally unique";
    EXPECT_EQ(engine.stats().completed, kThreads * kOpsPerThread);
    EXPECT_EQ(engine.pending(), 0u);
}

TEST(ShardedEngine, AggregateStatsMergePerShardAccumulators)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(4));
    ShardedOramEngine engine(system);

    for (BlockAddr addr = 0; addr < 120; ++addr)
        engine.submitWrite(addr, payload(addr, 2).data());
    engine.drain();

    ShardedOramEngine::StatsSnapshot merged;
    for (unsigned k = 0; k < engine.numShards(); ++k) {
        const auto shard = engine.shardStats(k);
        merged.submitted += shard.submitted;
        merged.completed += shard.completed;
        merged.physical_accesses += shard.physical_accesses;
        merged.coalesced += shard.coalesced;
        merged.controller_accesses += shard.controller_accesses;
        merged.stash_hits += shard.stash_hits;
    }
    const auto total = engine.stats();
    EXPECT_EQ(total.submitted, merged.submitted);
    EXPECT_EQ(total.completed, merged.completed);
    EXPECT_EQ(total.physical_accesses, merged.physical_accesses);
    EXPECT_EQ(total.coalesced, merged.coalesced);
    EXPECT_EQ(total.controller_accesses, merged.controller_accesses);
    EXPECT_EQ(merged.controller_accesses, system.totalAccesses());
}

TEST(ShardedSystem, RecoverAllRebuildsEveryShard)
{
    ShardedSystem system = buildShardedSystem(shardedConfig(3));

    constexpr BlockAddr kBlocks = 120;
    std::uint8_t buf[kBlockDataBytes];
    for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
        const auto data = payload(addr, 8);
        const ShardSlot slot = system.router.route(addr);
        system.controller(slot.shard).write(slot.local, data.data());
    }

    // Power failure between accesses: all completed writes are durable.
    // recoverController() applies the ADR flush before rebuilding.
    system.recoverAll();

    for (BlockAddr addr = 0; addr < kBlocks; ++addr) {
        const ShardSlot slot = system.router.route(addr);
        std::memset(buf, 0, sizeof(buf));
        system.controller(slot.shard).read(slot.local, buf);
        EXPECT_EQ(std::memcmp(buf, payload(addr, 8).data(),
                              kBlockDataBytes),
                  0)
            << "addr " << addr << " lost across recovery";
    }
}

} // namespace
} // namespace psoram
