/**
 * @file
 * Configuration-matrix property tests: functional correctness and
 * crash consistency of PS-ORAM across tree heights, bucket sizes and
 * WPQ capacities (property-style sweep via parameterized gtest).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>

#include "common/random.hh"
#include "psoram/recovery.hh"
#include "sim/system.hh"

namespace psoram {
namespace {

// (tree height, bucket slots Z, wpq entries)
using MatrixParam = std::tuple<unsigned, unsigned, std::size_t>;

SystemConfig
matrixConfig(const MatrixParam &param)
{
    SystemConfig config;
    config.design = DesignKind::PsOram;
    config.tree_height = std::get<0>(param);
    config.bucket_slots = std::get<1>(param);
    config.wpq_entries = std::get<2>(param);
    config.num_blocks =
        TreeGeometry{config.tree_height, config.bucket_slots}
            .dataBlocks(0.4);
    config.stash_capacity = 128;
    config.cipher = CipherKind::FastStream;
    config.seed = 1234;
    return config;
}

void
payload(BlockAddr addr, std::uint32_t version, std::uint8_t *out)
{
    std::memset(out, 0, kBlockDataBytes);
    std::memcpy(out, &addr, sizeof(addr));
    std::memcpy(out + 8, &version, sizeof(version));
}

std::uint32_t
versionOf(const std::uint8_t *data)
{
    std::uint32_t v = 0;
    std::memcpy(&v, data + 8, sizeof(v));
    return v;
}

class PsOramMatrix : public ::testing::TestWithParam<MatrixParam>
{
};

TEST_P(PsOramMatrix, FunctionalAcrossGeometries)
{
    const SystemConfig config = matrixConfig(GetParam());
    System system = buildSystem(config);
    Rng rng(5);
    std::map<BlockAddr, std::uint32_t> reference;
    std::uint8_t buf[kBlockDataBytes];
    for (int op = 0; op < 800; ++op) {
        const BlockAddr addr = rng.nextBelow(config.num_blocks);
        if (rng.nextBool(0.5)) {
            payload(addr, op + 1, buf);
            system.controller->write(addr, buf);
            reference[addr] = static_cast<std::uint32_t>(op + 1);
        } else {
            system.controller->read(addr, buf);
            const auto it = reference.find(addr);
            EXPECT_EQ(versionOf(buf),
                      it == reference.end() ? 0u : it->second)
                << "op " << op;
        }
    }
    EXPECT_EQ(system.controller->stash().overflowEvents(), 0u);
}

TEST_P(PsOramMatrix, CrashRecoveryAcrossGeometries)
{
    const SystemConfig config = matrixConfig(GetParam());
    System system = buildSystem(config);
    std::map<BlockAddr, std::uint32_t> durable, latest;
    system.controller->setCommitObserver(
        [&](BlockAddr addr, const auto &data) {
            durable[addr] =
                std::max(durable[addr], versionOf(data.data()));
        });
    CrashAtOccurrence policy(CrashSite::BeforeCommit, 25);
    system.controller->setCrashPolicy(&policy);

    Rng rng(9);
    std::uint8_t buf[kBlockDataBytes];
    bool crashed = false;
    for (int op = 0; op < 400 && !crashed; ++op) {
        const BlockAddr addr = rng.nextBelow(config.num_blocks);
        payload(addr, op + 1, buf);
        try {
            system.controller->write(addr, buf);
            latest[addr] = static_cast<std::uint32_t>(op + 1);
        } catch (const CrashEvent &) {
            crashed = true;
            latest[addr] = static_cast<std::uint32_t>(op + 1);
        }
    }
    ASSERT_TRUE(crashed);

    system.recoverController();
    for (const auto &[addr, version] : latest) {
        system.controller->read(addr, buf);
        const std::uint32_t v = versionOf(buf);
        EXPECT_GE(v, durable[addr]) << "addr " << addr;
        EXPECT_LE(v, version) << "addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PsOramMatrix,
    ::testing::Values(MatrixParam{4, 4, 96}, MatrixParam{6, 4, 96},
                      MatrixParam{8, 4, 96}, MatrixParam{6, 2, 96},
                      MatrixParam{6, 6, 96}, MatrixParam{6, 4, 8},
                      MatrixParam{6, 4, 4}, MatrixParam{8, 2, 16},
                      MatrixParam{5, 8, 96}, MatrixParam{10, 4, 96}),
    [](const auto &info) {
        return "h" + std::to_string(std::get<0>(info.param)) + "_z" +
               std::to_string(std::get<1>(info.param)) + "_wpq" +
               std::to_string(std::get<2>(info.param));
    });

/** Seed sweep of the crash matrix at one geometry: broad state
 *  coverage of stash/temp/backup interleavings. */
class PsOramCrashSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PsOramCrashSeeds, ConsistentUnderRandomizedSchedules)
{
    SystemConfig config = matrixConfig(MatrixParam{6, 4, 96});
    config.seed = GetParam();
    System system = buildSystem(config);
    std::map<BlockAddr, std::uint32_t> durable, latest;
    system.controller->setCommitObserver(
        [&](BlockAddr addr, const auto &data) {
            durable[addr] =
                std::max(durable[addr], versionOf(data.data()));
        });
    CrashAtOccurrence policy(
        static_cast<CrashSite>(GetParam() % 6),
        10 + GetParam() % 40);
    system.controller->setCrashPolicy(&policy);

    Rng rng(GetParam() * 17 + 3);
    std::uint8_t buf[kBlockDataBytes];
    for (int op = 0; op < 400; ++op) {
        const BlockAddr addr = rng.nextBelow(config.num_blocks);
        payload(addr, op + 1, buf);
        try {
            system.controller->write(addr, buf);
            latest[addr] = static_cast<std::uint32_t>(op + 1);
        } catch (const CrashEvent &) {
            latest[addr] = static_cast<std::uint32_t>(op + 1);
            break;
        }
    }

    system.recoverController();
    for (const auto &[addr, version] : latest) {
        system.controller->read(addr, buf);
        const std::uint32_t v = versionOf(buf);
        EXPECT_GE(v, durable[addr]) << "addr " << addr;
        EXPECT_LE(v, version) << "addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsOramCrashSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

} // namespace
} // namespace psoram
