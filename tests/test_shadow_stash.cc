/**
 * @file
 * Shadow stash region tests: snapshot/recover round trips, the
 * double-buffer flip, and crash-window semantics (an uncommitted
 * snapshot must leave the previous one intact).
 */

#include <gtest/gtest.h>

#include "nvm/device.hh"

#include "psoram/shadow_stash.hh"

namespace psoram {
namespace {

class ShadowStashTest : public ::testing::Test
{
  protected:
    ShadowStashTest()
        : device_(pcmTimings(), 1, 8, 16ULL << 20),
          codec_(Aes128::Key{5}, CipherKind::FastStream),
          region_(4096, 8)
    {
    }

    StashEntry
    entry(BlockAddr addr, PathId path, std::uint8_t tag)
    {
        StashEntry e;
        e.addr = addr;
        e.path = path;
        e.data.fill(tag);
        return e;
    }

    void
    applyAll(const std::vector<WpqEntry> &writes)
    {
        for (const auto &w : writes)
            device_.writeBytes(w.addr, w.data.data(), w.data.size());
    }

    NvmDevice device_;
    BlockCodec codec_;
    ShadowStashRegion region_;
};

TEST_F(ShadowStashTest, EmptyRegionRecoversNothing)
{
    const auto entries = region_.recover(device_, codec_);
    EXPECT_TRUE(entries.empty());
}

TEST_F(ShadowStashTest, SnapshotRecoverRoundTrip)
{
    Stash stash(8);
    stash.insert(entry(1, 10, 0xA1));
    stash.insert(entry(2, 20, 0xB2));
    applyAll(region_.snapshotWrites(stash, codec_));

    const auto recovered = region_.recover(device_, codec_);
    ASSERT_EQ(recovered.size(), 2u);
    for (const auto &e : recovered) {
        if (e.addr == 1) {
            EXPECT_EQ(e.path, 10u);
            EXPECT_EQ(e.data[0], 0xA1);
        } else {
            EXPECT_EQ(e.addr, 2u);
            EXPECT_EQ(e.path, 20u);
            EXPECT_EQ(e.data[0], 0xB2);
        }
    }
}

TEST_F(ShadowStashTest, BackupsAreExcluded)
{
    Stash stash(8);
    stash.insert(entry(1, 10, 0xA1));
    StashEntry backup = entry(1, 5, 0xCC);
    backup.is_backup = true;
    stash.insert(backup);
    applyAll(region_.snapshotWrites(stash, codec_));
    const auto recovered = region_.recover(device_, codec_);
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_FALSE(recovered[0].is_backup);
}

TEST_F(ShadowStashTest, NewSnapshotReplacesOld)
{
    Stash stash(8);
    stash.insert(entry(1, 10, 0xA1));
    applyAll(region_.snapshotWrites(stash, codec_));

    Stash stash2(8);
    stash2.insert(entry(3, 30, 0xC3));
    stash2.insert(entry(4, 40, 0xD4));
    applyAll(region_.snapshotWrites(stash2, codec_));

    const auto recovered = region_.recover(device_, codec_);
    ASSERT_EQ(recovered.size(), 2u);
    for (const auto &e : recovered)
        EXPECT_TRUE(e.addr == 3 || e.addr == 4);
}

TEST_F(ShadowStashTest, UncommittedSnapshotLeavesPreviousIntact)
{
    // Double-buffering: if a crash drops a snapshot's writes (slots or
    // header), recovery must see the previous snapshot unharmed.
    Stash stash(8);
    stash.insert(entry(1, 10, 0xA1));
    applyAll(region_.snapshotWrites(stash, codec_));

    Stash stash2(8);
    stash2.insert(entry(9, 90, 0xE9));
    auto writes = region_.snapshotWrites(stash2, codec_);
    // Apply only the slot writes, NOT the trailing header (the round
    // never committed).
    for (std::size_t i = 0; i + 1 < writes.size(); ++i)
        device_.writeBytes(writes[i].addr, writes[i].data.data(),
                           writes[i].data.size());

    const auto recovered = region_.recover(device_, codec_);
    ASSERT_EQ(recovered.size(), 1u);
    EXPECT_EQ(recovered[0].addr, 1u);
    EXPECT_EQ(recovered[0].data[0], 0xA1);
}

TEST_F(ShadowStashTest, ResumeFromContinuesAlternation)
{
    Stash stash(8);
    stash.insert(entry(1, 10, 0xA1));
    applyAll(region_.snapshotWrites(stash, codec_));

    // A recovered region object must not clobber the active area on
    // its first post-recovery snapshot.
    ShadowStashRegion recovered_region(4096, 8);
    recovered_region.resumeFrom(device_);

    Stash stash2(8);
    stash2.insert(entry(7, 70, 0xF7));
    auto writes = recovered_region.snapshotWrites(stash2, codec_);
    // Drop the snapshot (crash before commit): the old one survives.
    for (std::size_t i = 0; i + 1 < writes.size(); ++i)
        device_.writeBytes(writes[i].addr, writes[i].data.data(),
                           writes[i].data.size());
    const auto entries = recovered_region.recover(device_, codec_);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].addr, 1u);
}

TEST_F(ShadowStashTest, OverflowCountsDropped)
{
    Stash stash(16);
    for (BlockAddr a = 0; a < 12; ++a)
        stash.insert(entry(a, static_cast<PathId>(a), 1));
    applyAll(region_.snapshotWrites(stash, codec_)); // capacity 8
    EXPECT_EQ(region_.droppedEntries(), 4u);
    EXPECT_EQ(region_.recover(device_, codec_).size(), 8u);
}

TEST_F(ShadowStashTest, FootprintCoversBothAreas)
{
    EXPECT_EQ(region_.footprintBytes(),
              ShadowStashRegion::kHeaderBytes + 2 * 8 * kSlotBytes);
}

} // namespace
} // namespace psoram
