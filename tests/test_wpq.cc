/**
 * @file
 * Write Pending Queue and ADR domain tests: the start/end bracket
 * protocol, drain semantics, and the power-failure guarantees the
 * PS-ORAM eviction relies on (§4.2.2 step 5-B/5-C).
 */

#include <gtest/gtest.h>

#include "nvm/device.hh"

#include "nvm/adr_domain.hh"
#include "nvm/wpq.hh"

namespace psoram {
namespace {

WpqEntry
entry(Addr addr, std::uint8_t value)
{
    WpqEntry e;
    e.addr = addr;
    e.data.assign(8, value);
    return e;
}

std::uint8_t
firstByteAt(const NvmDevice &device, Addr addr)
{
    std::uint8_t b = 0;
    device.readBytes(addr, &b, 1);
    return b;
}

class WpqTest : public ::testing::Test
{
  protected:
    NvmDevice device{pcmTimings(), 1, 8, 1 << 20};
};

TEST_F(WpqTest, RoundLifecycle)
{
    Wpq wpq("q", 4);
    EXPECT_FALSE(wpq.open());
    wpq.start();
    EXPECT_TRUE(wpq.open());
    EXPECT_TRUE(wpq.push(entry(0, 1)));
    EXPECT_TRUE(wpq.push(entry(64, 2)));
    wpq.end();
    EXPECT_TRUE(wpq.committed());
    EXPECT_FALSE(wpq.open());

    wpq.drainTo(device, 0);
    EXPECT_EQ(wpq.size(), 0u);
    EXPECT_EQ(firstByteAt(device, 0), 1);
    EXPECT_EQ(firstByteAt(device, 64), 2);
    EXPECT_EQ(wpq.totalDrained(), 2u);
}

TEST_F(WpqTest, PushBeyondCapacityRefused)
{
    Wpq wpq("q", 2);
    wpq.start();
    EXPECT_TRUE(wpq.push(entry(0, 1)));
    EXPECT_TRUE(wpq.push(entry(64, 2)));
    EXPECT_TRUE(wpq.full());
    EXPECT_FALSE(wpq.push(entry(128, 3)));
    EXPECT_EQ(wpq.size(), 2u);
}

TEST_F(WpqTest, CommittedRoundSurvivesPowerFailure)
{
    Wpq wpq("q", 4);
    wpq.start();
    wpq.push(entry(0, 0xAA));
    wpq.end(); // "end" was issued: ADR must flush this
    const std::size_t flushed = wpq.crashFlush(device);
    EXPECT_EQ(flushed, 1u);
    EXPECT_EQ(firstByteAt(device, 0), 0xAA);
}

TEST_F(WpqTest, UncommittedRoundIsDiscarded)
{
    Wpq wpq("q", 4);
    wpq.start();
    wpq.push(entry(0, 0xAA));
    // No end signal: the original NVM content must not be overwritten.
    const std::size_t flushed = wpq.crashFlush(device);
    EXPECT_EQ(flushed, 0u);
    EXPECT_EQ(firstByteAt(device, 0), 0);
}

TEST_F(WpqTest, ProtocolViolationsPanic)
{
    Wpq wpq("q", 2);
    EXPECT_DEATH(wpq.push(entry(0, 1)), "without start");
    EXPECT_DEATH(wpq.end(), "without start");
    wpq.start();
    EXPECT_DEATH(wpq.start(), "round is open");
}

TEST_F(WpqTest, DrainBeforeEndPanics)
{
    Wpq wpq("q", 2);
    wpq.start();
    wpq.push(entry(0, 1));
    EXPECT_DEATH(wpq.drainTo(device, 0), "before end");
}

TEST_F(WpqTest, QueuedBytesSumsPayloads)
{
    Wpq wpq("q", 4);
    wpq.start();
    wpq.push(entry(0, 1));
    wpq.push(entry(64, 2));
    EXPECT_EQ(wpq.queuedBytes(), 16u);
}

TEST_F(WpqTest, DrainAdvancesTime)
{
    Wpq wpq("q", 8);
    wpq.start();
    for (int i = 0; i < 8; ++i)
        wpq.push(entry(static_cast<Addr>(i) * 64, 1));
    wpq.end();
    const Cycle done = wpq.drainTo(device, 1000);
    EXPECT_GT(done, 1000u);
}

TEST_F(WpqTest, AdrDomainBracketsBothQueuesAtomically)
{
    AdrDomain adr(4, 4);
    adr.start();
    EXPECT_TRUE(adr.dataWpq().open());
    EXPECT_TRUE(adr.posmapWpq().open());
    adr.dataWpq().push(entry(0, 1));
    adr.posmapWpq().push(entry(4096, 2));
    adr.end();
    EXPECT_TRUE(adr.dataWpq().committed());
    EXPECT_TRUE(adr.posmapWpq().committed());
    EXPECT_EQ(adr.bytesPersisted(), 16u);

    adr.drain(device, 0);
    EXPECT_EQ(firstByteAt(device, 0), 1);
    EXPECT_EQ(firstByteAt(device, 4096), 2);
}

TEST_F(WpqTest, AdrCrashFlushIsConsistentAcrossQueues)
{
    AdrDomain adr(4, 4);
    adr.start();
    adr.dataWpq().push(entry(0, 1));
    adr.posmapWpq().push(entry(4096, 2));
    // Crash before end: BOTH queues drop their round — data and
    // metadata stay mutually consistent (the atomicity requirement of
    // §3.2).
    EXPECT_EQ(adr.crashFlush(device), 0u);
    EXPECT_EQ(firstByteAt(device, 0), 0);
    EXPECT_EQ(firstByteAt(device, 4096), 0);
}

TEST_F(WpqTest, ZeroCapacityIsFatal)
{
    EXPECT_DEATH(Wpq("bad", 0), "capacity");
}

} // namespace
} // namespace psoram
